//! Property-based tests over the core invariants (proptest).

use prcost::prr::PrrOrganization as Org;
use prfpga::prelude::*;
use proptest::prelude::*;

fn arb_family() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::Virtex4),
        Just(Family::Virtex5),
        Just(Family::Virtex6),
        Just(Family::Series7),
        Just(Family::Spartan6),
    ]
}

/// Arbitrary internally consistent synthesis reports, built from the pair
/// breakdown so the slice algebra holds by construction.
fn arb_report() -> impl Strategy<Value = SynthReport> {
    (
        arb_family(),
        0u64..4000,
        0u64..4000,
        0u64..4000,
        0u64..64,
        0u64..32,
    )
        .prop_map(|(family, unused_lut, fully, unused_ff, dsps, brams)| {
            SynthReport::from_breakdown(
                "prop",
                family,
                synth::report::PairBreakdown {
                    unused_lut,
                    fully_used: fully,
                    unused_ff,
                },
                dsps,
                brams,
            )
        })
}

fn arb_org() -> impl Strategy<Value = Org> {
    (arb_family(), 1u32..9, 0u32..24, 0u32..4, 0u32..4)
        .prop_filter("non-empty", |(_, _, c, d, b)| c + d + b > 0)
        .prop_map(|(family, height, clb_cols, dsp_cols, bram_cols)| Org {
            family,
            height,
            clb_cols,
            dsp_cols,
            bram_cols,
        })
}

proptest! {
    /// Every consistent report validates and round-trips its breakdown.
    #[test]
    fn report_breakdown_round_trip(report in arb_report()) {
        report.validate().unwrap();
        let b = report.breakdown().unwrap();
        prop_assert_eq!(b.pairs(), report.lut_ff_pairs);
        prop_assert_eq!(b.luts(), report.luts);
        prop_assert_eq!(b.ffs(), report.ffs);
    }

    /// XST text round-trip is lossless for arbitrary consistent reports.
    #[test]
    fn xst_round_trip(report in arb_report()) {
        let text = synth::xst::write_report(&report, "xcprop");
        let parsed = synth::xst::parse_report(&text).unwrap();
        prop_assert_eq!(parsed, report);
    }

    /// Planning invariants on every device that accepts the PRM: the PRR
    /// covers the requirements, utilizations stay in [0, 100], the placed
    /// window matches the organization, and the chosen candidate minimizes
    /// the predicted bitstream over the trace.
    #[test]
    fn plan_invariants(report in arb_report()) {
        for device in fabric::all_devices() {
            if device.family() != report.family {
                continue;
            }
            let Ok(plan) = plan_prr(&report, &device) else { continue };
            let req = &plan.requirements;
            let avail = plan.organization.available();
            prop_assert!(avail.clb() >= req.clb_req);
            prop_assert!(avail.dsp() >= req.dsp_req);
            prop_assert!(avail.bram() >= req.bram_req);
            for ru in plan.utilization.as_array() {
                prop_assert!((0.0..=100.0).contains(&ru), "RU {ru}");
            }
            let counts = plan.window.column_counts();
            prop_assert_eq!(counts.clb(), u64::from(plan.organization.clb_cols));
            prop_assert_eq!(counts.dsp(), u64::from(plan.organization.dsp_cols));
            prop_assert_eq!(counts.bram(), u64::from(plan.organization.bram_cols));
            let min_feasible = plan
                .trace
                .candidates
                .iter()
                .filter_map(|c| c.bitstream_bytes())
                .min()
                .unwrap();
            prop_assert_eq!(plan.bitstream_bytes, min_feasible);
        }
    }

    /// The Eq. 18 model equals the generator's output byte-for-byte for
    /// arbitrary organizations (placement synthesized to match).
    #[test]
    fn model_equals_generator(org in arb_org()) {
        // Build a synthetic window with the right composition.
        let mut columns = Vec::new();
        columns.extend(std::iter::repeat_n(ResourceKind::Clb, org.clb_cols as usize));
        columns.extend(std::iter::repeat_n(ResourceKind::Dsp, org.dsp_cols as usize));
        columns.extend(std::iter::repeat_n(ResourceKind::Bram, org.bram_cols as usize));
        let spec = bitstream::BitstreamSpec {
            device: "xcprop".into(),
            module: "prop".into(),
            organization: org,
            start_col: 3,
            start_row: 1,
            columns,
        };
        let bs = bitstream::generate(&spec).unwrap();
        prop_assert_eq!(bs.len_bytes(), prcost::bitstream_size_bytes(&org));

        // And the stream parses back with a valid CRC and H config rows.
        let parsed = bitstream::parser::parse_words(&bs.words, true).unwrap();
        prop_assert!(parsed.crc_ok);
        prop_assert_eq!(parsed.rows_configured(), org.height);
    }

    /// Single-bit corruption anywhere in the frame payload is detected.
    #[test]
    fn corruption_detected(org in arb_org(), flip in 0usize..10_000, bit in 0u32..32) {
        let mut columns = Vec::new();
        columns.extend(std::iter::repeat_n(ResourceKind::Clb, org.clb_cols as usize));
        columns.extend(std::iter::repeat_n(ResourceKind::Dsp, org.dsp_cols as usize));
        columns.extend(std::iter::repeat_n(ResourceKind::Bram, org.bram_cols as usize));
        let spec = bitstream::BitstreamSpec {
            device: "xcprop".into(),
            module: "prop".into(),
            organization: org,
            start_col: 0,
            start_row: 1,
            columns,
        };
        let mut bs = bitstream::generate(&spec).unwrap();
        let geom = &org.family.params().frames;
        // Pick a word strictly inside the first FDRI payload.
        let payload_start = (geom.iw + geom.far_fdri) as usize;
        let payload_len = (prcost::bits::breakdown(&org).config_words_per_row
            - u64::from(geom.far_fdri)) as usize;
        let idx = payload_start + flip % payload_len;
        bs.words[idx] ^= 1 << bit;
        let parsed = bitstream::parser::parse_words(&bs.words, false);
        // An Err is also a detection (the flip corrupted structure).
        if let Ok(p) = parsed {
            prop_assert!(!p.crc_ok, "flip at {idx} undetected");
        }
    }

    /// Bitstream size is monotone: adding a column or a row never shrinks
    /// the predicted bitstream.
    #[test]
    fn bitstream_monotonicity(org in arb_org()) {
        let base = prcost::bitstream_size_bytes(&org);
        let taller = Org { height: org.height + 1, ..org };
        prop_assert!(prcost::bitstream_size_bytes(&taller) > base);
        let wider = Org { clb_cols: org.clb_cols + 1, ..org };
        prop_assert!(prcost::bitstream_size_bytes(&wider) > base);
        let brammier = Org { bram_cols: org.bram_cols + 1, ..org };
        prop_assert!(prcost::bitstream_size_bytes(&brammier) > base);
    }

    /// Netlist round trip: materializing a report and recounting it is
    /// the identity, for arbitrary consistent reports.
    #[test]
    fn netlist_round_trip(report in arb_report(), seed in any::<u64>()) {
        let nl = synth::Netlist::from_report(&report, seed).unwrap();
        let back = nl.to_report();
        prop_assert_eq!(back.lut_ff_pairs, report.lut_ff_pairs);
        prop_assert_eq!(back.luts, report.luts);
        prop_assert_eq!(back.ffs, report.ffs);
        prop_assert_eq!(back.dsps, report.dsps);
        prop_assert_eq!(back.brams, report.brams);
    }

    /// Context save/restore costs are monotone in the PRR organization and
    /// a restore always costs at least a plain bitstream write.
    #[test]
    fn context_cost_invariants(org in arb_org()) {
        let ctx = bitstream::context_cost(&org);
        prop_assert!(ctx.restore_bytes() >= prcost::bitstream_size_bytes(&org));
        let taller = Org { height: org.height + 1, ..org };
        let bigger = bitstream::context_cost(&taller);
        prop_assert!(bigger.save_bytes() > ctx.save_bytes());
        prop_assert!(bigger.restore_bytes() > ctx.restore_bytes());
        // Word size follows the family (Spartan-6 = 2 bytes).
        prop_assert_eq!(
            ctx.bytes_per_word,
            u64::from(org.family.params().frames.bytes_word)
        );
    }

    /// The auto-floorplanner never overlaps PRRs and never beats the sum
    /// of each spec's individually optimal plan.
    #[test]
    fn autofloorplan_invariants(seeds in proptest::collection::vec(0u64..64, 1..4)) {
        use parflow::autofloorplan::{auto_floorplan, PrrSpec};
        let device = fabric::device_by_name("xc5vsx95t").unwrap();
        let specs: Vec<PrrSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                PrrSpec::single(
                    format!("p{i}"),
                    synth::prm::GenericPrm::random(s, 200 + (s as u32) * 13)
                        .synthesize(device.family()),
                )
            })
            .collect();
        let Ok(plan) = auto_floorplan(&specs, &device, 5_000) else { return Ok(()) };
        for (i, a) in plan.prrs.iter().enumerate() {
            for b in &plan.prrs[i + 1..] {
                prop_assert!(!a.window.overlaps(&b.window));
            }
        }
        let individual: u64 = specs
            .iter()
            .filter_map(|spec| {
                let req = spec.combined_requirements()?;
                prcost::search::plan_prr_from_requirements(&req, &device)
                    .ok()
                    .map(|p| p.bitstream_bytes)
            })
            .sum();
        prop_assert!(plan.total_bitstream_bytes >= individual);
        plan.to_floorplan(&device).validate(&device).unwrap();
    }

    /// Full-device bitstreams dominate any PRR's partial bitstream on the
    /// same device family (sampled over database devices).
    #[test]
    fn full_bitstream_dominates_partials(org in arb_org()) {
        for device in fabric::all_devices() {
            if device.family() != org.family {
                continue;
            }
            let fits = u64::from(org.clb_cols) <= device.column_counts().clb()
                && u64::from(org.dsp_cols) <= device.column_counts().dsp()
                && u64::from(org.bram_cols) <= device.column_counts().bram()
                && org.height <= device.rows();
            if fits {
                prop_assert!(
                    prcost::bitstream_size_bytes(&org)
                        < prcost::full_bitstream_size_bytes(&device)
                );
            }
        }
    }
}
