//! Multi-thread stress suite for the sharded planning engine: 16 worker
//! threads driving a mixed hit / miss / infeasible workload, with the
//! cache-accounting invariants checked exactly afterwards, a serial
//! oracle pass proving every concurrent answer equals direct planning,
//! and a concurrent snapshot reader exercising the documented
//! [`prcost::Metrics::snapshot`] ordering guarantee (parts never exceed
//! totals, even mid-flight).

use prfpga::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};
use synth::GenericPrm;

const THREADS: usize = 16;
const ROUNDS: usize = 12;

/// The stress workload: for each device, the six PRM generators
/// (feasible, heavily repeated → hits), per-thread-unique generic PRMs
/// (cold misses), and oversized reports no window satisfies (memoized
/// `Err` plans, replayed as hits like any other point).
fn stress_points(devices: &[Device]) -> Vec<(SynthReport, Device)> {
    let generators: Vec<Box<dyn PrmGenerator>> = vec![
        Box::new(FirFilter::paper()),
        Box::new(MipsCore::paper()),
        Box::new(SdramController::paper()),
        Box::new(Uart::standard()),
        Box::new(AesEngine::standard()),
        Box::new(FftCore::standard()),
    ];
    let mut points = Vec::new();
    for device in devices {
        for generator in &generators {
            points.push((generator.synthesize(device.family()), device.clone()));
        }
        for seed in 0..4u64 {
            points.push((
                GenericPrm::random(seed, 800).synthesize(device.family()),
                device.clone(),
            ));
        }
        points.push((
            SynthReport {
                module: "oversize".into(),
                family: device.family(),
                lut_ff_pairs: 500_000,
                luts: 400_000,
                ffs: 400_000,
                dsps: 5_000,
                brams: 5_000,
            },
            device.clone(),
        ));
    }
    points
}

/// 16 threads replay the mixed workload in thread-dependent order and
/// round-robin phase; when they finish, every counter pair must add up
/// *exactly* — each plan either built its memo entry or hit one, each
/// plan resolved its device exactly once, and the memo holds exactly one
/// entry per distinct point (first-writer-wins; racing losers count as
/// hits, never as double builds).
#[test]
fn sixteen_threads_mixed_workload_accounts_exactly() {
    let devices = fabric::all_devices();
    let points = stress_points(&devices);
    let engine = Engine::new();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let points = &points;
            scope.spawn(move || {
                let mut scratch = PlanScratch::default();
                for round in 0..ROUNDS {
                    for i in 0..points.len() {
                        // Offset per thread and per round so threads race
                        // on different points at any instant.
                        let (report, device) = &points[(i + t * 7 + round * 3) % points.len()];
                        let _ = engine.plan_with_scratch(report, device, &mut scratch);
                    }
                }
            });
        }
    });

    let total = (THREADS * ROUNDS * points.len()) as u64;
    let c = engine.snapshot().counters;
    assert_eq!(c.plans, total, "every plan call counted");
    assert_eq!(
        c.plan_builds + c.plan_cache_hits,
        c.plans,
        "every plan either built its memo entry or hit one"
    );
    assert_eq!(
        c.geometry_builds + c.geometry_cache_hits,
        c.plans,
        "every plan resolved its device exactly once"
    );
    assert_eq!(c.plans_feasible + c.plans_infeasible, c.plans);
    assert_eq!(
        c.plan_builds,
        points.len() as u64,
        "each distinct point built exactly once (first-writer-wins)"
    );
    assert_eq!(engine.plan_memo_len(), points.len());
    assert_eq!(c.geometry_builds, devices.len() as u64);
    assert!(c.plans_infeasible >= (THREADS * ROUNDS * devices.len()) as u64);
}

/// Every answer produced under 16-thread contention equals the serial
/// oracle: a fresh single-threaded `plan_prr` per point, compared in full
/// (organization, window, bitstream bytes, search trace) — and `Err`
/// points agree on the error value.
#[test]
fn concurrent_plans_equal_serial_oracle() {
    let devices = fabric::all_devices();
    let points = stress_points(&devices);
    let engine = Engine::new();

    let results: Vec<Vec<Result<PrrPlan, prcost::CostError>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                let points = &points;
                scope.spawn(move || {
                    let mut scratch = PlanScratch::default();
                    (0..points.len())
                        .map(|i| {
                            let (report, device) = &points[(i + t * 5) % points.len()];
                            engine.plan_with_scratch(report, device, &mut scratch)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress worker panicked"))
            .collect()
    });

    let oracle: Vec<Result<PrrPlan, prcost::CostError>> = points
        .iter()
        .map(|(report, device)| plan_prr(report, device))
        .collect();
    for (t, thread_results) in results.iter().enumerate() {
        for (i, got) in thread_results.iter().enumerate() {
            let expect = &oracle[(i + t * 5) % points.len()];
            assert_eq!(got, expect, "thread {t} point {i} diverged from oracle");
        }
    }
}

/// Bugfix regression (metrics snapshot consistency): a snapshot taken
/// *while* 16 threads plan must never show a part exceeding its total —
/// the engine bumps totals before parts and the snapshot reads parts
/// before totals, so `feasible + infeasible <= plans`,
/// `builds + hits <= lookups` hold in every mid-flight snapshot even
/// though the snapshot is not a point-in-time copy.
#[test]
fn snapshot_invariants_hold_under_concurrent_load() {
    let devices = fabric::all_devices();
    let points = stress_points(&devices);
    let engine = Arc::new(Engine::new());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            let points = &points;
            scope.spawn(move || {
                let mut scratch = PlanScratch::default();
                for round in 0..ROUNDS {
                    for i in 0..points.len() {
                        let (report, device) = &points[(i + t * 11 + round) % points.len()];
                        let _ = engine.plan_with_scratch(report, device, &mut scratch);
                    }
                }
            });
        }

        // The snapshotter races the planners for the whole run.
        let snap_engine = Arc::clone(&engine);
        let snap_done = Arc::clone(&done);
        let snapshotter = scope.spawn(move || {
            let mut taken = 0u64;
            while !snap_done.load(Ordering::Relaxed) {
                let c = snap_engine.snapshot().counters;
                assert!(
                    c.plans_feasible + c.plans_infeasible <= c.plans,
                    "outcome parts exceeded plans: {} + {} > {}",
                    c.plans_feasible,
                    c.plans_infeasible,
                    c.plans
                );
                assert!(
                    c.plan_builds + c.plan_cache_hits <= c.plans,
                    "plan-memo parts exceeded plans: {} + {} > {}",
                    c.plan_builds,
                    c.plan_cache_hits,
                    c.plans
                );
                assert!(
                    c.geometry_builds + c.geometry_cache_hits <= c.plans,
                    "geometry parts exceeded plans: {} + {} > {}",
                    c.geometry_builds,
                    c.geometry_cache_hits,
                    c.plans
                );
                assert!(c.synth_cache_hits <= c.synth_calls + c.synth_cache_hits);
                taken += 1;
            }
            taken
        });

        // `scope` joins the planner threads when this closure returns;
        // signal the snapshotter from a watcher thread that observes the
        // planners' collective completion through the counters instead.
        let watch_engine = Arc::clone(&engine);
        let watch_done = Arc::clone(&done);
        let total = (THREADS * ROUNDS * points.len()) as u64;
        scope.spawn(move || {
            while watch_engine.snapshot().counters.plans < total {
                std::thread::yield_now();
            }
            watch_done.store(true, Ordering::Relaxed);
        });

        let taken = snapshotter.join().expect("snapshotter panicked");
        assert!(taken > 0, "snapshotter never ran");
    });

    // After the race, the exact invariants hold again.
    let c = engine.snapshot().counters;
    assert_eq!(c.plans_feasible + c.plans_infeasible, c.plans);
    assert_eq!(c.plan_builds + c.plan_cache_hits, c.plans);
    assert_eq!(c.geometry_builds + c.geometry_cache_hits, c.plans);
}
