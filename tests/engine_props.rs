//! Property tests for the batch planning engine: planning through the
//! memoized [`Engine`] must be indistinguishable — byte for byte — from
//! synthesizing and planning directly, for any subset of generators and
//! devices in any order, and the engine's metrics must stay consistent
//! when it is driven from many threads at once.

use prfpga::prelude::*;
use proptest::prelude::*;
use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};

fn generator(index: usize) -> Box<dyn PrmGenerator + Sync> {
    match index % 6 {
        0 => Box::new(FirFilter::paper()),
        1 => Box::new(MipsCore::paper()),
        2 => Box::new(SdramController::paper()),
        3 => Box::new(Uart::standard()),
        4 => Box::new(AesEngine::standard()),
        _ => Box::new(FftCore::standard()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For a random sequence of (generator, device) evaluations, the
    /// engine's answer equals the direct `synthesize` + `plan_prr` answer
    /// on every point — plans compare equal in full, including windows
    /// and search traces, and errors agree on feasibility.
    #[test]
    fn engine_equals_direct_planning(
        picks in proptest::collection::vec((0usize..6, 0usize..13), 1..24)
    ) {
        let devices = fabric::all_devices();
        let engine = Engine::new();
        for (g, d) in picks {
            let gen = generator(g);
            let device = &devices[d % devices.len()];
            let direct_report = gen.synthesize(device.family());
            let engine_report = {
                // Engine-memoized synthesis must return the same report.
                let r = prcost::Engine::synthesize(&engine, gen.as_ref(), device.family());
                prop_assert_eq!(&r, &direct_report);
                r
            };
            let direct = plan_prr(&direct_report, device);
            let via_engine = engine.plan(&engine_report, device);
            match (direct, via_engine) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(
                    false,
                    "feasibility mismatch: direct={:?} engine={:?}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }

    /// Scratch reuse must not leak state between plans: planning the same
    /// points with one long-lived scratch equals planning each with a
    /// fresh one.
    #[test]
    fn scratch_reuse_is_stateless(
        picks in proptest::collection::vec((0usize..6, 0usize..13), 1..16)
    ) {
        let devices = fabric::all_devices();
        let engine = Engine::new();
        let mut shared = PlanScratch::default();
        for (g, d) in picks {
            let gen = generator(g);
            let device = &devices[d % devices.len()];
            let report = gen.synthesize(device.family());
            let geometry = engine.geometry(device);
            let reused = prcost::plan_prr_cached(&report, device, &geometry, &mut shared);
            let fresh = prcost::plan_prr_cached(
                &report,
                device,
                &geometry,
                &mut PlanScratch::default(),
            );
            prop_assert_eq!(reused.is_ok(), fresh.is_ok());
            if let (Ok(a), Ok(b)) = (reused, fresh) {
                prop_assert_eq!(a, b);
            }
        }
    }
}

/// Counters bumped concurrently from many threads must sum exactly: the
/// engine's snapshot accounts for every synthesis request, every plan,
/// and every window query, with hits + misses adding up.
#[test]
fn metrics_are_consistent_across_threads() {
    let devices = fabric::all_devices();
    let engine = Engine::new();
    let threads = 8;
    let per_thread = 20;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            let devices = &devices;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let gen = generator(t + i);
                    let device = &devices[(t * per_thread + i) % devices.len()];
                    let report = engine.synthesize(gen.as_ref(), device.family());
                    let _ = engine.plan(&report, device);
                }
            });
        }
    });

    let c = engine.snapshot().counters;
    let total = (threads * per_thread) as u64;
    assert_eq!(
        c.synth_calls + c.synth_cache_hits,
        total,
        "every synth request accounted"
    );
    assert_eq!(c.plans, total);
    assert_eq!(c.plans_feasible + c.plans_infeasible, c.plans);
    assert_eq!(
        c.plan_builds + c.plan_cache_hits,
        c.plans,
        "every plan either built its memo entry or hit one"
    );
    // Every plan resolves its device through the interner exactly once.
    assert_eq!(c.geometry_builds + c.geometry_cache_hits, c.plans);
    assert!(c.geometry_builds <= devices.len() as u64);
    // Each distinct (generator, family) synthesizes at most once.
    assert!(
        c.synth_calls <= 6 * 5,
        "synth calls bounded by generators x families"
    );
    assert!(c.window_probes > 0);
    // Every interned geometry carries a fixed, non-empty composition index.
    assert!(c.distinct_compositions > 0);
    assert!(c.geometry_builds <= c.distinct_compositions);
}
