//! Property tests for the async planning service and engine snapshot
//! persistence: plans served through [`PlanService`] under concurrent
//! mixed-tenant load must be byte-identical to direct `plan_prr` —
//! including memoized `Err` plans — and an engine's exported memo state
//! must survive a JSON persist → reload round trip unchanged.

use prcost::{PlanService, ServiceConfig};
use prfpga::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};
use synth::GenericPrm;

/// Generator mix: six feasible PRM architectures plus two oversized
/// generics whose requirements exceed every device (their plans memoize
/// as `Err` and must round-trip and replay exactly like `Ok` plans).
fn generator(index: usize) -> Box<dyn PrmGenerator> {
    match index % 8 {
        0 => Box::new(FirFilter::paper()),
        1 => Box::new(MipsCore::paper()),
        2 => Box::new(SdramController::paper()),
        3 => Box::new(Uart::standard()),
        4 => Box::new(AesEngine::standard()),
        5 => Box::new(FftCore::standard()),
        6 => Box::new(GenericPrm::random(997, 400_000)),
        _ => Box::new(GenericPrm::random(499, 900_000)),
    }
}

const TENANTS: [&str; 3] = ["alice", "bob", "carol"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Submissions from interleaved tenants, answered by concurrent
    /// service workers, resolve to exactly the plan `plan_prr` computes
    /// serially for the same (report, device) point — full structural
    /// equality on `Ok` (organization, window, bitstream size, trace)
    /// and on the `Err` value for infeasible points — and the service
    /// accounts every submission per tenant and in total.
    #[test]
    fn service_results_are_byte_identical_to_direct_planning(
        picks in proptest::collection::vec((0usize..8, 0usize..13), 1..32),
        workers in 1usize..5,
    ) {
        let devices = fabric::all_devices();
        let engine = Arc::new(Engine::new());
        let mut service = PlanService::with_engine(
            Arc::clone(&engine),
            ServiceConfig { workers, queue_capacity: 64, batch_size: 8 },
        );

        let mut expected = Vec::new();
        let mut tickets = Vec::new();
        for (n, &(g, d)) in picks.iter().enumerate() {
            let device = &devices[d % devices.len()];
            let report = generator(g).synthesize(device.family());
            let tenant = TENANTS[n % TENANTS.len()];
            let ticket = service
                .submit(tenant, PrrRequirements::from_report(&report), device)
                .expect("service accepts before shutdown");
            tickets.push(ticket);
            expected.push(plan_prr(&report, device));
        }

        for (ticket, expect) in tickets.iter().zip(&expected) {
            let got = ticket.wait();
            prop_assert_eq!(&*got, expect);
        }
        service.shutdown();

        let snapshot = engine.snapshot();
        let total: u64 = TENANTS
            .iter()
            .map(|t| snapshot.labeled_value(&format!("tenant:{t}")))
            .sum();
        prop_assert_eq!(total, picks.len() as u64);
        prop_assert_eq!(
            snapshot.labeled_value("service:completed"),
            picks.len() as u64
        );
        prop_assert_eq!(
            snapshot.labeled_value("service:submitted"),
            picks.len() as u64
        );
    }

    /// Persist → reload round trip: an engine's exported memo state —
    /// devices, synthesis reports, and whole plans, `Ok` and `Err` alike —
    /// survives JSON serialization exactly; the restored engine re-exports
    /// the identical snapshot, answers every original point from its memo
    /// without a single rebuild, and its answers equal the originals.
    #[test]
    fn snapshot_persist_reload_round_trips(
        picks in proptest::collection::vec((0usize..8, 0usize..13), 1..20),
    ) {
        let devices = fabric::all_devices();
        let engine = Engine::new();
        let mut points = Vec::new();
        for &(g, d) in &picks {
            let device = &devices[d % devices.len()];
            let gen = generator(g);
            let report = engine.synthesize(gen.as_ref(), device.family());
            let result = engine.plan(&report, device);
            points.push((report, device.clone(), result));
        }

        let exported = engine.export_state();
        let json = serde_json::to_string(&exported).expect("snapshot serializes");
        let decoded: prcost::EngineSnapshot =
            serde_json::from_str(&json).expect("snapshot deserializes");
        let restored = Engine::import_state(&decoded).expect("snapshot imports");

        // Byte-identical re-export (same devices, same sorted records).
        let reexported = restored.export_state();
        let rejson = serde_json::to_string(&reexported).expect("re-export serializes");
        prop_assert_eq!(&json, &rejson);

        // Every original point replays from the restored memo.
        for (report, device, expect) in &points {
            let got = restored.plan(report, device);
            prop_assert_eq!(&got, expect);
        }
        let c = restored.snapshot().counters;
        prop_assert_eq!(c.plan_builds, 0, "restored engine never re-plans");
        prop_assert_eq!(c.plan_cache_hits, points.len() as u64);
    }
}
