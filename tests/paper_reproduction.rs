//! Integration oracle: the paper's evaluation (Tables V-VII) as regression
//! tests over the whole workspace.

use prfpga::prelude::*;

fn devices() -> (Device, Device) {
    (
        fabric::device_by_name("xc5vlx110t").unwrap(),
        fabric::device_by_name("xc6vlx75t").unwrap(),
    )
}

/// Table V: the search selects the paper's PRR for all six PRM/device
/// pairs, and every surviving utilization cell matches (modulo the one
/// documented rounding difference).
#[test]
fn table5_end_to_end() {
    let (v5, v6) = devices();
    let expect = [
        (PaperPrm::Fir, &v5, (5, 2, 1, 0), 83_040u64),
        (PaperPrm::Mips, &v5, (1, 17, 1, 2), 157_272),
        (PaperPrm::Sdram, &v5, (1, 3, 0, 0), 18_016),
        (PaperPrm::Fir, &v6, (1, 5, 2, 0), 76_928),
        (PaperPrm::Mips, &v6, (1, 11, 1, 1), 188_728),
        (PaperPrm::Sdram, &v6, (1, 2, 0, 0), 23_792),
    ];
    for (prm, device, (h, wc, wd, wb), bytes) in expect {
        let plan = plan_prr(&prm.synth_report(device.family()), device).unwrap();
        let o = &plan.organization;
        assert_eq!(
            (o.height, o.clb_cols, o.dsp_cols, o.bram_cols),
            (h, wc, wd, wb),
            "{prm:?}"
        );
        assert_eq!(plan.bitstream_bytes, bytes, "{prm:?} bitstream");
    }
}

/// Table VI: the simulated flow reproduces the published post-PAR counts
/// and savings percentages, and every paper PRM places and routes inside
/// its model-predicted PRR (the paper's AREA_GROUP validation).
#[test]
fn table6_end_to_end() {
    let (v5, v6) = devices();
    for device in [&v5, &v6] {
        for prm in PaperPrm::ALL {
            let (rep, _) = run_paper_flow(prm, device, &FlowOptions::fast(11)).unwrap();
            let expected = prm.post_par_report(device.family()).unwrap();
            assert_eq!(
                rep.post_report.lut_ff_pairs, expected.lut_ff_pairs,
                "{prm:?}"
            );
            assert_eq!(rep.post_report.luts, expected.luts, "{prm:?}");
            assert_eq!(rep.post_report.ffs, expected.ffs, "{prm:?}");
            assert!(rep.route.routed, "{prm:?} must route in the model PRR");
        }
    }
}

/// Table VII: the Eq. 18 model equals the generated bitstream length for
/// every PRM/device pair — and the generated stream parses back with a
/// valid CRC and the right row structure.
#[test]
fn table7_end_to_end() {
    let (v5, v6) = devices();
    for device in [&v5, &v6] {
        for prm in PaperPrm::ALL {
            let report = prm.synth_report(device.family());
            let eval = prfpga::evaluate_prm(&report, device).unwrap();
            assert_eq!(eval.bitstream.len_bytes(), eval.plan.bitstream_bytes);
            let parsed = bitstream::parse(&eval.bitstream.to_bytes(), true).unwrap();
            assert!(parsed.crc_ok);
            assert_eq!(parsed.rows_configured(), eval.plan.organization.height);
        }
    }
}

/// Post-PAR re-planning (paper §IV, penultimate paragraph): feeding the
/// Table VI numbers back through the model shrinks the PRR's CLB area —
/// "we saved two/one CLB column(s) for the Virtex-5/Virtex-6 for FIR" and
/// the SDRAM PRR "did not change for both device targets". Savings are in
/// per-row CLB column segments (H x W_CLB): FIR/V5 goes from 5x2 = 10 to
/// 4x2 = 8 segments (two saved), FIR/V6 from 1x5 to 1x4 (one saved).
#[test]
fn post_par_replanning_savings() {
    let (v5, v6) = devices();
    let seg = |p: &PrrPlan| p.organization.height * p.organization.clb_cols;
    let cases = [
        (PaperPrm::Fir, &v5, 2u32),
        (PaperPrm::Sdram, &v5, 0),
        (PaperPrm::Fir, &v6, 1),
        (PaperPrm::Sdram, &v6, 0),
    ];
    for (prm, device, saved_segments) in cases {
        let before = plan_prr(&prm.synth_report(device.family()), device).unwrap();
        let after = plan_prr(&prm.post_par_report(device.family()).unwrap(), device).unwrap();
        assert_eq!(
            seg(&before) - seg(&after),
            saved_segments,
            "{prm:?} on {}",
            device.name()
        );
    }
    // MIPS/V5: the paper reports two CLB columns saved; our model (with
    // its synthetic LX110T layout) finds three (17 -> 14 at H=1). The
    // direction and scale agree; the exact count depends on the real
    // part's window availability, which we cannot observe.
    let before = plan_prr(&PaperPrm::Mips.synth_report(v5.family()), &v5).unwrap();
    let after = plan_prr(&PaperPrm::Mips.post_par_report(v5.family()).unwrap(), &v5).unwrap();
    let saved = seg(&before) - seg(&after);
    assert!(
        (2..=3).contains(&saved),
        "MIPS/V5 saved {saved} CLB column segments"
    );
}

/// The model plan dominates every naive sizing strategy on predicted
/// bitstream size (it minimizes Eq. 18 over all feasible heights).
#[test]
fn model_dominates_naive_everywhere() {
    let (v5, v6) = devices();
    for device in [&v5, &v6] {
        for prm in PaperPrm::ALL {
            let req = PrrRequirements::from_report(&prm.synth_report(device.family()));
            let model = prcost::search::plan_prr_from_requirements(&req, device).unwrap();
            for strat in NaiveStrategy::ALL {
                if let Ok(naive) = baselines::naive_plan(strat, &req, device) {
                    assert!(model.bitstream_bytes <= naive.bitstream_bytes);
                }
            }
        }
    }
}
