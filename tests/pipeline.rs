//! Cross-crate pipeline test: synthesis text round-trip -> cost models ->
//! simulated flow -> bitstream generation/parsing -> multitasking, all on
//! a non-paper PRM and a non-paper device (the portability claim).

use multitask::ReuseAware;
use prfpga::prelude::*;
use synth::prm::{AesEngine, FftCore};

#[test]
fn aes_on_kintex7_full_pipeline() {
    let device = fabric::device_by_name("xc7k325t").unwrap();

    // Synthesize and push through the XST text form (designer interface).
    let aes = AesEngine::standard();
    let report = aes.synthesize(device.family());
    let text = synth::xst::write_report(&report, device.name());
    let parsed = synth::xst::parse_report(&text).unwrap();
    assert_eq!(parsed, report);

    // Cost models.
    let eval = prfpga::evaluate_prm(&parsed, &device).unwrap();
    assert_eq!(eval.bitstream.len_bytes(), eval.plan.bitstream_bytes);
    assert!(
        eval.plan.organization.bram_cols > 0,
        "AES S-boxes land in BRAM"
    );

    // Full simulated flow in the model-predicted PRR.
    let (rep, bs) = run_flow(&aes, &device, &FlowOptions::fast(23)).unwrap();
    assert!(rep.route.routed);
    assert_eq!(bs.len_bytes(), rep.plan.bitstream_bytes);

    // The generated stream parses and carries one config write per row.
    let parsed_bs = bitstream::parse(&bs.to_bytes(), true).unwrap();
    assert!(parsed_bs.crc_ok);
    assert_eq!(parsed_bs.rows_configured(), rep.plan.organization.height);
}

#[test]
fn fft_sweep_is_monotone_in_cost() {
    let device = fabric::device_by_name("xc5vsx95t").unwrap();
    let mut last_bytes = 0u64;
    for points in [256u32, 1024, 4096] {
        let fft = FftCore::new(points, 16);
        let plan = plan_prr(&fft.synthesize(device.family()), &device).unwrap();
        assert!(
            plan.bitstream_bytes >= last_bytes,
            "{points}-point FFT bitstream shrank: {} < {last_bytes}",
            plan.bitstream_bytes
        );
        last_bytes = plan.bitstream_bytes;
    }
}

#[test]
fn multitask_uses_model_planned_prrs() {
    let device = fabric::device_by_name("xc5vsx95t").unwrap();

    // Plan a PRR for the largest of a set of modules, then build a system
    // of those PRRs and run a workload of the same modules.
    let reports: Vec<SynthReport> = (0..6)
        .map(|i| synth::prm::GenericPrm::random(i, 400).synthesize(device.family()))
        .collect();
    let shared = plan_shared_prr(&reports, &device).unwrap();
    let sys =
        PrSystem::homogeneous(&device, shared.plan.organization, 2, IcapModel::V5_DMA).unwrap();

    // Alternate between two modules so a 2-PRR system can actually hit
    // bitstream reuse (cycling more modules than PRRs never re-matches).
    let tasks: Vec<multitask::HwTask> = (0..60)
        .map(|i| {
            multitask::HwTask::from_report(
                i,
                &reports[(i % 2) as usize],
                u64::from(i) * 1_000,
                50_000,
            )
        })
        .collect();
    let wl = Workload::new(tasks);
    let r = simulate(&sys, &wl, &ReuseAware);
    assert_eq!(
        r.completed, 60,
        "every task fits a PRR planned for the set's maximum"
    );
    assert!(r.reuse_hits > 0, "cycling modules should hit reuse");
}

#[test]
fn family_portability_all_database_devices() {
    // A modest mixed requirement (fits one DSP and one BRAM column on any
    // family) must plan on every database part — the models are
    // family-agnostic given the Table II/IV constants.
    for device in fabric::all_devices() {
        let req = PrrRequirements::new(device.family(), 200, 180, 90, 2, 2);
        let plan = prcost::search::plan_prr_from_requirements(&req, &device)
            .unwrap_or_else(|e| panic!("{}: {e}", device.name()));
        assert_eq!(plan.organization.dsp_cols, 1, "{}", device.name());
        assert_eq!(plan.organization.bram_cols, 1, "{}", device.name());
        assert_eq!(
            plan.bitstream_bytes % u64::from(device.params().frames.bytes_word),
            0
        );
    }
}
