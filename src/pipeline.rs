//! End-to-end streaming pipeline: the "how fast is the whole system"
//! harness.
//!
//! Drives the full stack — synthesis (warm [`prcost::Engine`] memo) →
//! PRR planning (Fig. 1 search, memo-hit steady state) → placement
//! ([`bitstream::BitstreamSpec`] from the planned window) → arena
//! bitstream emission ([`bitstream::generate_with`]) → hardware
//! multitasking simulation ([`multitask::simulate_with_scratch`]) — at
//! millions of tasks under **bounded memory**: one producer thread
//! generates fixed-size task chunks into a bounded channel, worker
//! threads own all per-chunk scratch (plan scratch, emission arena,
//! simulator scratch), and no buffer anywhere grows with the total task
//! count. Per-stage wall-clock histograms are recorded into the engine's
//! [`prcost::Metrics`] registry under `pipeline:*` labels; the report
//! carries them alongside tasks/sec and a peak-RSS proxy so
//! `results/BENCH_pipeline.json` captures one regression-guarding
//! whole-system number.

use bitstream::{BitstreamSpec, EmitScratch, IcapModel};
use multitask::{simulate_with_scratch, HwTask, PrSystem, ReuseAware, SimScratch, Workload};
use prcost::metrics::StageSnapshot;
use prcost::{Engine, PlanScratch};
use serde::Serialize;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use synth::prm::GenericPrm;
use synth::SynthReport;

/// Configuration for one [`run_pipeline`] call.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target device name (see `fabric::device_by_name`).
    pub device: String,
    /// Total hardware tasks to stream end to end.
    pub tasks: u64,
    /// Tasks per chunk (the streaming granule; memory is proportional to
    /// `chunk * (queue_depth + workers)`, never to `tasks`).
    pub chunk: u32,
    /// Distinct synthetic PRMs in the module pool.
    pub modules: u32,
    /// Module footprint scale passed to the PRM generator.
    pub scale: u32,
    /// PRRs in the homogeneous multitasking system.
    pub prrs: u32,
    /// Worker threads (0 = derive from available parallelism).
    pub workers: usize,
    /// Bounded-channel capacity in chunks.
    pub queue_depth: usize,
    /// Workload seed (the run is fully deterministic in it).
    pub seed: u64,
    /// Mean task inter-arrival time, nanoseconds.
    pub mean_interarrival_ns: u64,
    /// Mean task execution time, nanoseconds.
    pub mean_exec_ns: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            // The DSP-rich SX part: the default pool's DSP-heavy modules
            // still leave room for several homogeneous PRRs.
            device: "xc5vsx95t".to_string(),
            tasks: 1_000_000,
            chunk: 4096,
            modules: 6,
            scale: 300,
            prrs: 4,
            workers: 0,
            queue_depth: 4,
            seed: 0x5eed_1e55,
            mean_interarrival_ns: 5_000,
            mean_exec_ns: 100_000,
        }
    }
}

/// Outcome of one [`run_pipeline`] call.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Device the pipeline ran against.
    pub device: String,
    /// Tasks streamed end to end.
    pub tasks: u64,
    /// Tasks per chunk.
    pub chunk: u32,
    /// Distinct modules in the pool.
    pub modules: u32,
    /// Worker threads used.
    pub workers: usize,
    /// Bounded-channel capacity in chunks.
    pub queue_depth: usize,
    /// Wall-clock time for the whole run, milliseconds.
    pub elapsed_ms: f64,
    /// The headline number: tasks through all five stages per second.
    pub tasks_per_sec: f64,
    /// Partial bitstreams emitted (one per task).
    pub bitstreams_emitted: u64,
    /// Total emitted bitstream bytes.
    pub bitstream_bytes: u64,
    /// Summed simulated makespan over all chunks, nanoseconds.
    pub simulated_makespan_ns: u64,
    /// Reconfigurations performed by the simulated scheduler.
    pub reconfigurations: u64,
    /// Dispatches that reused an already-loaded module.
    pub reuse_hits: u64,
    /// Summed simulated task waiting time, nanoseconds.
    pub total_wait_ns: u64,
    /// Engine plan-memo hit rate over the run (None if no plans).
    pub plan_hit_rate: Option<f64>,
    /// Peak resident set size in bytes — **best effort**: `VmHWM` from
    /// `/proc/self/status` on Linux, `getrusage(RUSAGE_SELF)` on other
    /// 64-bit unix targets, and 0 where neither source exists. The value
    /// is process-wide high water (it includes setup and any earlier
    /// runs in the process), so treat it as an upper-bound guard, not a
    /// per-run measurement.
    pub peak_rss_bytes: u64,
    /// Active CRC kernel path chosen by `bitstream::arch` runtime
    /// dispatch (e.g. `clmul-fold`, `hw-crc32c`, `portable-folded`).
    pub crc_dispatch: String,
    /// Active payload-fill kernel path (e.g. `avx2-splitmix`).
    pub fill_dispatch: String,
    /// Logical CPUs available to the process — context for reading the
    /// worker-scaling rows (a 1-CPU host cannot scale past 1×).
    pub host_cpus: usize,
    /// Worker-scaling sweep: one row per worker count when run through
    /// [`run_pipeline_sweep`]; empty for a single [`run_pipeline`] call.
    pub worker_sweep: Vec<WorkerScalingRow>,
    /// Per-stage wall-clock histograms (`pipeline:*` labels).
    pub stages: Vec<StageSnapshot>,
}

/// One worker count's result inside a [`run_pipeline_sweep`] scaling
/// table.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerScalingRow {
    /// Worker threads for this run (after resolving `workers == 0`).
    pub workers: usize,
    /// Wall-clock time, milliseconds.
    pub elapsed_ms: f64,
    /// End-to-end throughput for this run.
    pub tasks_per_sec: f64,
    /// Throughput relative to the 1-worker row (or the first row if the
    /// sweep does not include 1).
    pub speedup_vs_one: f64,
}

/// Per-worker accumulator; merged after the scope joins.
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    tasks: u64,
    bitstreams: u64,
    bitstream_bytes: u64,
    makespan_ns: u64,
    reconfigurations: u64,
    reuse_hits: u64,
    total_wait_ns: u64,
}

impl Totals {
    fn merge(&mut self, other: &Totals) {
        self.tasks += other.tasks;
        self.bitstreams += other.bitstreams;
        self.bitstream_bytes += other.bitstream_bytes;
        self.makespan_ns += other.makespan_ns;
        self.reconfigurations += other.reconfigurations;
        self.reuse_hits += other.reuse_hits;
        self.total_wait_ns += other.total_wait_ns;
    }
}

/// splitmix64 step for the producer's arrival/choice stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential variate with the given mean (inverse transform).
fn exp_ns(state: &mut u64, mean: u64) -> u64 {
    let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    ((-(1.0 - u).ln()) * mean as f64) as u64
}

/// Peak resident set size in bytes, best effort: `VmHWM` where procfs
/// exists (Linux), `getrusage(2)` on other unix targets, 0 elsewhere.
fn peak_rss_bytes() -> u64 {
    let hwm = proc_vmhwm_bytes();
    if hwm > 0 {
        return hwm;
    }
    rusage_maxrss_bytes()
}

/// `VmHWM` from `/proc/self/status` in bytes, 0 if unavailable.
fn proc_vmhwm_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(all(unix, target_pointer_width = "64"))]
fn rusage_maxrss_bytes() -> u64 {
    rusage::peak_rss_bytes()
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
fn rusage_maxrss_bytes() -> u64 {
    0
}

/// Minimal `getrusage(2)` FFI for the off-Linux peak-RSS fallback. The
/// workspace vendors no `libc` crate, but std already links the system
/// C library on unix targets, so a one-function `extern "C"` import is
/// enough. Gated to 64-bit unix so the `long`-based layout below is
/// correct.
#[cfg(all(unix, target_pointer_width = "64"))]
mod rusage {
    #![allow(unsafe_code)] // SAFETY: one zero-initialized out-struct passed to getrusage(2).

    /// `struct timeval` on 64-bit unix: 16 bytes on Linux/BSD
    /// (`i64`+`i64`) and on macOS (`i64`+`i32`+padding), so
    /// `ru_maxrss`'s offset below is right on all of them.
    #[repr(C)]
    struct Timeval {
        sec: i64,
        usec: i64,
    }

    /// Prefix of `struct rusage` through `ru_maxrss`, plus generous
    /// padding covering the 14 remaining `long` fields every unix
    /// `rusage` layout ends with.
    #[repr(C)]
    struct Rusage {
        ru_utime: Timeval,
        ru_stime: Timeval,
        ru_maxrss: i64,
        pad: [i64; 16],
    }

    extern "C" {
        fn getrusage(who: i32, usage: *mut Rusage) -> i32;
    }

    const RUSAGE_SELF: i32 = 0;

    /// `ru_maxrss` normalized to bytes (the BSDs and Linux report
    /// kilobytes; macOS reports bytes), 0 on failure.
    pub(super) fn peak_rss_bytes() -> u64 {
        let mut ru = Rusage {
            ru_utime: Timeval { sec: 0, usec: 0 },
            ru_stime: Timeval { sec: 0, usec: 0 },
            ru_maxrss: 0,
            pad: [0; 16],
        };
        // SAFETY: `ru` outlives the call and is large enough for every
        // 64-bit unix `struct rusage` (prefix above + padding beyond
        // the 14 trailing `long`s); getrusage only writes within it.
        let rc = unsafe { getrusage(RUSAGE_SELF, &mut ru) };
        if rc != 0 || ru.ru_maxrss <= 0 {
            return 0;
        }
        let maxrss = ru.ru_maxrss as u64;
        if cfg!(target_os = "macos") {
            maxrss
        } else {
            maxrss.saturating_mul(1024)
        }
    }
}

/// Run the end-to-end streaming pipeline described in the module docs.
///
/// Deterministic in `cfg.seed` (modulo wall-clock measurements). Errors
/// if the device is unknown, a pool module cannot be planned, or the
/// homogeneous system does not fit the device.
pub fn run_pipeline(
    cfg: &PipelineConfig,
) -> Result<PipelineReport, Box<dyn std::error::Error + Send + Sync>> {
    let device = fabric::device_by_name(&cfg.device)?;
    let family = device.family();
    let engine = Engine::new();
    let metrics = engine.metrics();

    // Setup (not part of the streamed stages): synthesize the module
    // pool, plan every module and a covering organization, and build the
    // homogeneous PR system all chunks simulate against.
    let generators: Vec<GenericPrm> = (0..cfg.modules.max(1))
        .map(|m| GenericPrm::random(cfg.seed.wrapping_add(u64::from(m) * 7919), cfg.scale))
        .collect();
    let pool: Vec<SynthReport> = generators
        .iter()
        .map(|g| engine.synthesize(g, family))
        .collect();
    let cover = SynthReport::new(
        "pipeline_cover",
        family,
        pool.iter().map(|r| r.lut_ff_pairs).max().unwrap_or(1),
        pool.iter().map(|r| r.luts).max().unwrap_or(1),
        pool.iter().map(|r| r.ffs).max().unwrap_or(1),
        pool.iter().map(|r| r.dsps).max().unwrap_or(0),
        pool.iter().map(|r| r.brams).max().unwrap_or(0),
    );
    let cover_plan = engine.plan(&cover, &device)?;
    let system = PrSystem::homogeneous(
        &device,
        cover_plan.organization,
        cfg.prrs,
        IcapModel::V5_DMA,
    )?;
    let specs: Vec<Arc<BitstreamSpec>> = pool
        .iter()
        .map(|r| {
            let plan = engine.plan(r, &device)?;
            Ok(Arc::new(BitstreamSpec::from_plan(
                device.name(),
                &r.module,
                plan.organization,
                &plan.window,
            )))
        })
        .collect::<Result<_, prcost::CostError>>()?;

    let workers = if cfg.workers > 0 {
        cfg.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(1)
            .clamp(1, 16)
    };
    let chunk = cfg.chunk.max(1);

    let start = Instant::now();
    let (tx, rx) = sync_channel::<Workload>(cfg.queue_depth.max(1));
    let rx = Mutex::new(rx);

    let totals = std::thread::scope(|scope| {
        // Producer: builds one chunk at a time; the bounded channel is
        // the only inter-stage buffer, so memory never scales with
        // `cfg.tasks`.
        let pool_ref = &pool;
        let metrics_ref = metrics;
        let producer = scope.spawn(move || {
            let mut rng = cfg.seed | 1;
            let mut remaining = cfg.tasks;
            while remaining > 0 {
                let n = remaining.min(u64::from(chunk)) as u32;
                remaining -= u64::from(n);
                let t0 = Instant::now();
                let mut tasks = Vec::with_capacity(n as usize);
                let mut t = 0u64;
                for id in 0..n {
                    let ix = (splitmix64(&mut rng) % pool_ref.len() as u64) as usize;
                    t += exp_ns(&mut rng, cfg.mean_interarrival_ns);
                    let exec = exp_ns(&mut rng, cfg.mean_exec_ns).max(1);
                    tasks.push(HwTask::from_report(id, &pool_ref[ix], t, exec));
                }
                let wl = Workload::new(tasks);
                metrics_ref.record_stage("pipeline:gen", t0.elapsed());
                if tx.send(wl).is_err() {
                    break; // workers gone (only on panic)
                }
            }
            drop(tx);
        });

        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = &rx;
            let engine = &engine;
            let device = &device;
            let system = &system;
            let specs = &specs;
            let generators = &generators;
            let pool = pool_ref;
            handles.push(scope.spawn(move || {
                let mut plan_scratch = PlanScratch::default();
                let mut emit_scratch = EmitScratch::new();
                let mut emit_buf: Vec<u32> = Vec::new();
                let mut sim_scratch = SimScratch::new();
                let mut pool_ix: Vec<usize> = Vec::new();
                let mut acc = Totals::default();
                let bytes_word = u64::from(family.params().frames.bytes_word);
                loop {
                    let wl = match rx.lock().unwrap().recv() {
                        Ok(wl) => wl,
                        Err(_) => break,
                    };
                    let n = wl.tasks.len() as u64;

                    // Map this chunk's interned module ids back to pool
                    // indices (names are unique per generator seed).
                    pool_ix.clear();
                    for id in 0..wl.modules().len() {
                        let name = wl.modules().name(multitask::ModuleId(id as u32));
                        pool_ix.push(
                            pool.iter()
                                .position(|r| r.module == name)
                                .expect("chunk modules come from the pool"),
                        );
                    }

                    // Synthesis at memo-hit speed: every distinct module
                    // in the chunk re-resolves through the engine's
                    // synthesis memo.
                    let t0 = Instant::now();
                    for &ix in &pool_ix {
                        let _ = engine.synthesize(&generators[ix], family);
                    }
                    engine
                        .metrics()
                        .record_stage("pipeline:synth", t0.elapsed());

                    // Planning at task rate: one warm `plan_arc` hit per
                    // task (the engine's zero-allocation hot path).
                    let t0 = Instant::now();
                    for &id in wl.module_ids() {
                        let plan = engine.plan_arc(
                            &pool[pool_ix[id.0 as usize]],
                            device,
                            &mut plan_scratch,
                        );
                        debug_assert!(plan.is_ok());
                    }
                    engine.metrics().record_stage("pipeline:plan", t0.elapsed());

                    // Placement + arena emission at task rate: each
                    // dispatch renders its module's partial bitstream
                    // through the per-worker emission arena (rendered-
                    // stream cache hits in steady state) into one reused
                    // buffer — zero allocations per task once warm.
                    let t0 = Instant::now();
                    for &id in wl.module_ids() {
                        bitstream::emit_arc_into(
                            &mut emit_scratch,
                            &specs[pool_ix[id.0 as usize]],
                            &mut emit_buf,
                        )
                        .expect("pool specs are valid");
                        acc.bitstreams += 1;
                        acc.bitstream_bytes += emit_buf.len() as u64 * bytes_word;
                    }
                    engine
                        .metrics()
                        .record_stage("pipeline:bitstream", t0.elapsed());

                    // Discrete-event simulation of the chunk on the
                    // shared PR system (reuse-aware scheduling).
                    let t0 = Instant::now();
                    let report = simulate_with_scratch(system, &wl, &ReuseAware, &mut sim_scratch);
                    engine
                        .metrics()
                        .record_stage("pipeline:simulate", t0.elapsed());

                    acc.tasks += n;
                    acc.makespan_ns += report.makespan_ns;
                    acc.reconfigurations += u64::from(report.reconfigurations);
                    acc.reuse_hits += u64::from(report.reuse_hits);
                    acc.total_wait_ns += report.total_wait_ns;
                }
                acc
            }));
        }

        producer.join().expect("producer thread panicked");
        let mut totals = Totals::default();
        for h in handles {
            totals.merge(&h.join().expect("worker thread panicked"));
        }
        totals
    });

    let elapsed = start.elapsed();
    let snapshot = engine.snapshot();
    let stages: Vec<StageSnapshot> = snapshot
        .stages
        .iter()
        .filter(|s| s.name.starts_with("pipeline:"))
        .cloned()
        .collect();

    Ok(PipelineReport {
        device: cfg.device.clone(),
        tasks: totals.tasks,
        chunk,
        modules: cfg.modules.max(1),
        workers,
        queue_depth: cfg.queue_depth.max(1),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        tasks_per_sec: totals.tasks as f64 / elapsed.as_secs_f64(),
        bitstreams_emitted: totals.bitstreams,
        bitstream_bytes: totals.bitstream_bytes,
        simulated_makespan_ns: totals.makespan_ns,
        reconfigurations: totals.reconfigurations,
        reuse_hits: totals.reuse_hits,
        total_wait_ns: totals.total_wait_ns,
        plan_hit_rate: snapshot.counters.plan_hit_rate(),
        peak_rss_bytes: peak_rss_bytes(),
        crc_dispatch: bitstream::arch::active().crc.name().to_string(),
        fill_dispatch: bitstream::arch::active().fill.name().to_string(),
        host_cpus: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        worker_sweep: Vec::new(),
        stages,
    })
}

/// Run the pipeline once per worker count and assemble the scaling
/// table.
///
/// The returned report is the full report of the **highest-throughput**
/// run, with [`PipelineReport::worker_sweep`] holding one row per worker
/// count (speedups normalized to the 1-worker row, or the first row if
/// the sweep omits 1). Read the rows against
/// [`PipelineReport::host_cpus`]: worker counts beyond the host's CPUs
/// measure oversubscription, not scaling.
pub fn run_pipeline_sweep(
    cfg: &PipelineConfig,
    worker_counts: &[usize],
) -> Result<PipelineReport, Box<dyn std::error::Error + Send + Sync>> {
    if worker_counts.is_empty() {
        return run_pipeline(cfg);
    }
    let mut rows: Vec<WorkerScalingRow> = Vec::with_capacity(worker_counts.len());
    let mut best: Option<PipelineReport> = None;
    for &w in worker_counts {
        let run_cfg = PipelineConfig {
            workers: w,
            ..cfg.clone()
        };
        let report = run_pipeline(&run_cfg)?;
        rows.push(WorkerScalingRow {
            workers: report.workers,
            elapsed_ms: report.elapsed_ms,
            tasks_per_sec: report.tasks_per_sec,
            speedup_vs_one: 0.0,
        });
        if best
            .as_ref()
            .is_none_or(|b| report.tasks_per_sec > b.tasks_per_sec)
        {
            best = Some(report);
        }
    }
    let base = rows
        .iter()
        .find(|r| r.workers == 1)
        .map(|r| r.tasks_per_sec)
        .unwrap_or(rows[0].tasks_per_sec);
    for row in &mut rows {
        row.speedup_vs_one = if base > 0.0 {
            row.tasks_per_sec / base
        } else {
            0.0
        };
    }
    let mut report = best.expect("worker_counts is non-empty");
    report.worker_sweep = rows;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pipeline_runs_end_to_end() {
        let cfg = PipelineConfig {
            tasks: 2_000,
            chunk: 512,
            workers: 2,
            ..PipelineConfig::default()
        };
        let report = run_pipeline(&cfg).unwrap();
        assert_eq!(report.tasks, 2_000);
        assert_eq!(report.bitstreams_emitted, 2_000);
        assert!(report.bitstream_bytes > 0);
        assert!(report.tasks_per_sec > 0.0);
        assert!(report.simulated_makespan_ns > 0);
        // All five streamed stages reported histograms.
        for stage in [
            "pipeline:gen",
            "pipeline:synth",
            "pipeline:plan",
            "pipeline:bitstream",
            "pipeline:simulate",
        ] {
            let s = report
                .stages
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("missing stage {stage}"));
            assert!(s.count > 0, "{stage} recorded no samples");
        }
        // Warm engine: the plan stage runs at memo-hit speed.
        assert!(report.plan_hit_rate.unwrap() > 0.9);
    }

    #[test]
    fn sweep_builds_scaling_table_and_reports_dispatch() {
        let cfg = PipelineConfig {
            tasks: 600,
            chunk: 128,
            ..PipelineConfig::default()
        };
        let report = run_pipeline_sweep(&cfg, &[1, 2]).unwrap();
        assert_eq!(report.worker_sweep.len(), 2);
        assert_eq!(report.worker_sweep[0].workers, 1);
        assert_eq!(report.worker_sweep[1].workers, 2);
        assert!((report.worker_sweep[0].speedup_vs_one - 1.0).abs() < 1e-9);
        assert!(report.worker_sweep.iter().all(|r| r.tasks_per_sec > 0.0));
        // Dispatch paths are always reported and consistent with arch.
        assert_eq!(report.crc_dispatch, bitstream::arch::active().crc.name(),);
        assert_eq!(report.fill_dispatch, bitstream::arch::active().fill.name(),);
        assert!(report.host_cpus >= 1);
        #[cfg(target_os = "linux")]
        assert!(report.peak_rss_bytes > 0);
    }

    #[test]
    fn pipeline_is_deterministic_in_seed_for_sim_outcomes() {
        let cfg = PipelineConfig {
            tasks: 1_024,
            chunk: 256,
            workers: 1,
            ..PipelineConfig::default()
        };
        let a = run_pipeline(&cfg).unwrap();
        let b = run_pipeline(&cfg).unwrap();
        assert_eq!(a.simulated_makespan_ns, b.simulated_makespan_ns);
        assert_eq!(a.reconfigurations, b.reconfigurations);
        assert_eq!(a.bitstream_bytes, b.bitstream_bytes);
    }
}
