//! # `prfpga` — PR cost models for hardware multitasking, end to end
//!
//! Umbrella crate for the reproduction of Morales-Villanueva &
//! Gordon-Ross, *"Partial Region and Bitstream Cost Models for Hardware
//! Multitasking on Partially Reconfigurable FPGAs"* (IPPS 2015). It
//! re-exports the workspace crates and provides a one-call convenience
//! API, [`evaluate_prm`], covering the paper's whole pipeline: synthesis
//! report → PRR size/organization (Eqs. 1–17, Fig. 1) → partial bitstream
//! size (Eqs. 18–23) → reconfiguration time.
//!
//! ```
//! use prfpga::prelude::*;
//! use prfpga::reference;
//!
//! let device = fabric::device_by_name("xc5vlx110t")?;
//! let report = synth::PaperPrm::Fir.synth_report(device.family());
//! let eval = prfpga::evaluate_prm(&report, &device)?;
//! assert_eq!(eval.plan.organization.height, reference::FIR_V5_HEIGHT);
//! assert_eq!(eval.plan.bitstream_bytes, reference::FIR_V5_BITSTREAM_BYTES);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! * [`fabric`] — Virtex-style device fabric substrate.
//! * [`synth`] — synthesis reports, XST-style text I/O, netlists, PRM
//!   generators.
//! * [`prcost`] — **the paper's contribution**: both cost models and the
//!   Fig. 1 search.
//! * [`bitstream`] — partial bitstream writer/parser and the ICAP model.
//! * [`parflow`] — the simulated PR design flow the models replace.
//! * [`multitask`] — hardware-multitasking discrete-event simulation.
//! * [`layout`] — online layout manager: free-space tracking,
//!   fragmentation metrics, ICAP-costed defragmentation.
//! * [`sched`] — real-time scheduling layer: periodic task sets
//!   (UUniFast), reconfiguration-aware admission tests, a learned
//!   placement policy, and the scheduler-zoo ablation harness.
//! * [`baselines`] — prior-work cost models and naive sizing strategies.

// `deny` rather than `forbid`: `pipeline`'s off-Linux peak-RSS fallback
// carries one narrowly-scoped `#[allow(unsafe_code)]` (a getrusage(2)
// FFI call with a SAFETY comment); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use bitstream;
pub use fabric;
pub use layout;
pub use multitask;
pub use parflow;
pub use prcost;
pub use sched;
pub use synth;

pub mod pipeline;
pub mod sweep;

use std::time::Duration;

/// Convenient glob imports for downstream users.
pub mod prelude {
    pub use baselines::{ClausModel, FarmModel, NaiveStrategy, PapadimitriouModel};
    pub use bitstream::{IcapModel, PartialBitstream};
    pub use fabric::{self, Device, DeviceGeometry, Family, ResourceKind, Resources};
    pub use layout::{simulate_layout, DefragPolicy, LayoutConfig, LayoutManager};
    pub use multitask::{simulate, PrSystem, Workload};
    pub use parflow::flow::{run_flow, run_paper_flow, FlowOptions};
    pub use prcost::{
        plan_prr, plan_shared_prr, Engine, MetricsSnapshot, PlanScratch, PrrOrganization, PrrPlan,
        PrrRequirements,
    };
    pub use sched::{
        response_time_admit, run_ablation, utilization_bound_admit, AblationConfig, FrozenPolicy,
        TaskSet, TaskSetConfig,
    };
    pub use synth::{self, PaperPrm, PrmGenerator, SynthReport};
}

/// Headline reference values from the paper's Table V, kept in one place
/// so the crate's doc examples and tests assert the same constants.
pub mod reference {
    /// FIR on the Virtex-5 LX110T: selected PRR height.
    pub const FIR_V5_HEIGHT: u32 = 5;
    /// FIR on the Virtex-5 LX110T: predicted partial bitstream bytes.
    pub const FIR_V5_BITSTREAM_BYTES: u64 = 83_040;
    /// SDRAM on the Virtex-6 LX75T: selected PRR height.
    pub const SDRAM_V6_HEIGHT: u32 = 1;
    /// SDRAM on the Virtex-6 LX75T: predicted partial bitstream bytes.
    pub const SDRAM_V6_BITSTREAM_BYTES: u64 = 23_792;
}

/// One PRM's full cost-model evaluation.
#[derive(Debug, Clone)]
pub struct PrmEvaluation {
    /// The Fig. 1 plan: organization, placement, bitstream size, RU.
    pub plan: prcost::PrrPlan,
    /// Reconfiguration time through a DMA-fed ICAP.
    pub reconfig_time: Duration,
    /// Generated partial bitstream (byte length equals
    /// `plan.bitstream_bytes` by construction).
    pub bitstream: bitstream::PartialBitstream,
}

/// Run the whole paper pipeline for one synthesis report on one device.
pub fn evaluate_prm(
    report: &synth::SynthReport,
    device: &fabric::Device,
) -> Result<PrmEvaluation, Box<dyn std::error::Error>> {
    let plan = prcost::plan_prr(report, device)?;
    let spec = bitstream::BitstreamSpec::from_plan(
        device.name(),
        &report.module,
        plan.organization,
        &plan.window,
    );
    let bs = bitstream::generate(&spec)?;
    debug_assert_eq!(bs.len_bytes(), plan.bitstream_bytes);
    let reconfig_time = bitstream::IcapModel::V5_DMA.transfer_time(plan.bitstream_bytes);
    Ok(PrmEvaluation {
        plan,
        reconfig_time,
        bitstream: bs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_prm_runs_the_whole_pipeline() {
        let device = fabric::device_by_name("xc6vlx75t").unwrap();
        let report = synth::PaperPrm::Mips.synth_report(device.family());
        let eval = evaluate_prm(&report, &device).unwrap();
        assert_eq!(eval.bitstream.len_bytes(), eval.plan.bitstream_bytes);
        assert!(eval.reconfig_time > Duration::ZERO);
        assert_eq!(eval.plan.organization.height, 1);
    }

    /// The doc-example constants in [`crate::reference`] must be the
    /// values the pipeline actually produces.
    #[test]
    fn reference_constants_match_the_pipeline() {
        let v5 = fabric::device_by_name("xc5vlx110t").unwrap();
        let fir = evaluate_prm(&synth::PaperPrm::Fir.synth_report(v5.family()), &v5).unwrap();
        assert_eq!(fir.plan.organization.height, reference::FIR_V5_HEIGHT);
        assert_eq!(fir.plan.bitstream_bytes, reference::FIR_V5_BITSTREAM_BYTES);

        let v6 = fabric::device_by_name("xc6vlx75t").unwrap();
        let sdram = evaluate_prm(&synth::PaperPrm::Sdram.synth_report(v6.family()), &v6).unwrap();
        assert_eq!(sdram.plan.organization.height, reference::SDRAM_V6_HEIGHT);
        assert_eq!(
            sdram.plan.bitstream_bytes,
            reference::SDRAM_V6_BITSTREAM_BYTES
        );
    }

    #[test]
    fn evaluate_prm_propagates_planning_errors() {
        let device = fabric::device_by_name("xc5vlx110t").unwrap();
        let report =
            synth::SynthReport::new("huge", fabric::Family::Virtex5, 1_000_000, 1, 1, 0, 0);
        assert!(evaluate_prm(&report, &device).is_err());
    }
}
