//! Parallel design-space sweeps — the paper's productivity use case at
//! fleet scale.
//!
//! The models exist so a designer can evaluate *many* PR partitionings
//! quickly ("the PR partitioning design space is exponentially large and
//! designers can only feasibly evaluate a subset"). This module evaluates
//! a whole grid of (PRM, device) design points in parallel with rayon and
//! returns structured results ready for ranking or export.

use rayon::prelude::*;
use serde::Serialize;
use std::time::Duration;

/// One evaluated design point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Module name.
    pub module: String,
    /// Device part name.
    pub device: String,
    /// Planning outcome: the PRR summary, or the failure reason.
    pub outcome: Result<SweepPlan, String>,
}

/// Summary of a successful plan.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPlan {
    /// PRR height.
    pub height: u32,
    /// PRR width (columns).
    pub width: u32,
    /// Predicted bitstream bytes (Eq. 18).
    pub bitstream_bytes: u64,
    /// DMA-ICAP reconfiguration time.
    pub reconfig: Duration,
    /// CLB utilization percent (Eq. 13).
    pub ru_clb: f64,
}

/// Evaluate every (generator, device) pair in parallel.
///
/// Generators are re-synthesized per device family, so a single sweep
/// covers cross-family portability exactly the way the paper's "portable
/// across different Xilinx FPGA families" claim intends.
pub fn sweep(
    generators: &[Box<dyn synth::PrmGenerator + Sync>],
    devices: &[fabric::Device],
) -> Vec<SweepPoint> {
    let points: Vec<(usize, usize)> = (0..generators.len())
        .flat_map(|g| (0..devices.len()).map(move |d| (g, d)))
        .collect();
    points
        .into_par_iter()
        .map(|(g, d)| {
            let device = &devices[d];
            let report = generators[g].synthesize(device.family());
            let outcome = match prcost::plan_prr(&report, device) {
                Ok(plan) => Ok(SweepPlan {
                    height: plan.organization.height,
                    width: plan.organization.width(),
                    bitstream_bytes: plan.bitstream_bytes,
                    reconfig: bitstream::IcapModel::V5_DMA
                        .transfer_time(plan.bitstream_bytes),
                    ru_clb: plan.utilization.clb,
                }),
                Err(e) => Err(e.to_string()),
            };
            SweepPoint { module: report.module, device: device.name().to_string(), outcome }
        })
        .collect()
}

/// Rank the feasible points of a sweep by predicted bitstream size
/// (ascending) — the paper's minimization objective.
pub fn rank_by_bitstream(points: &[SweepPoint]) -> Vec<&SweepPoint> {
    let mut feasible: Vec<&SweepPoint> =
        points.iter().filter(|p| p.outcome.is_ok()).collect();
    feasible.sort_by_key(|p| match &p.outcome {
        Ok(plan) => plan.bitstream_bytes,
        Err(_) => u64::MAX,
    });
    feasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::prm::{FirFilter, SdramController, Uart};
    use synth::PrmGenerator;

    fn generators() -> Vec<Box<dyn PrmGenerator + Sync>> {
        vec![
            Box::new(FirFilter::paper()),
            Box::new(SdramController::paper()),
            Box::new(Uart::standard()),
        ]
    }

    #[test]
    fn sweep_covers_the_whole_grid() {
        let devices = fabric::all_devices();
        let points = sweep(&generators(), &devices);
        assert_eq!(points.len(), 3 * devices.len());
        let feasible = points.iter().filter(|p| p.outcome.is_ok()).count();
        assert!(feasible > points.len() / 2, "{feasible}/{} feasible", points.len());
        // Every point carries a device from the input set.
        assert!(points.iter().all(|p| devices.iter().any(|d| d.name() == p.device)));
    }

    #[test]
    fn sweep_is_deterministic_despite_parallelism() {
        let devices = fabric::all_devices();
        let a = sweep(&generators(), &devices);
        let b = sweep(&generators(), &devices);
        let key = |pts: &[SweepPoint]| -> Vec<(String, String, Option<u64>)> {
            pts.iter()
                .map(|p| {
                    (
                        p.module.clone(),
                        p.device.clone(),
                        p.outcome.as_ref().ok().map(|o| o.bitstream_bytes),
                    )
                })
                .collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn ranking_is_sorted_and_feasible_only() {
        let devices = fabric::all_devices();
        let points = sweep(&generators(), &devices);
        let ranked = rank_by_bitstream(&points);
        assert!(!ranked.is_empty());
        let sizes: Vec<u64> = ranked
            .iter()
            .map(|p| p.outcome.as_ref().unwrap().bitstream_bytes)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        // The UART on a Spartan-6 (2-byte words, tiny PRR) should be near
        // the cheap end.
        let cheapest = ranked.first().unwrap();
        assert!(cheapest.outcome.as_ref().unwrap().bitstream_bytes < 20_000);
    }
}
