//! Parallel design-space sweeps — the paper's productivity use case at
//! fleet scale.
//!
//! The models exist so a designer can evaluate *many* PR partitionings
//! quickly ("the PR partitioning design space is exponentially large and
//! designers can only feasibly evaluate a subset"). This module evaluates
//! a whole grid of (PRM, device) design points in parallel with rayon and
//! returns structured results ready for ranking or export.
//!
//! Sweeps are driven through a [`prcost::Engine`]: synthesis reports are
//! memoized per `(generator, family)`, window-search geometry is interned
//! per device, and each rayon worker reuses one [`prcost::PlanScratch`]
//! across all the points in its chunk. [`sweep_uncached`] keeps the
//! original one-shot path as the equivalence/throughput baseline — the
//! two produce byte-identical points.

use prcost::{Engine, MetricsSnapshot, PlanScratch};
use rayon::prelude::*;
use serde::Serialize;
use std::time::{Duration, Instant};

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepPoint {
    /// Module name.
    pub module: String,
    /// Device part name.
    pub device: String,
    /// Planning outcome: the PRR summary, or the failure reason.
    pub outcome: Result<SweepPlan, String>,
}

/// Summary of a successful plan.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepPlan {
    /// PRR height.
    pub height: u32,
    /// PRR width (columns).
    pub width: u32,
    /// Predicted bitstream bytes (Eq. 18).
    pub bitstream_bytes: u64,
    /// DMA-ICAP reconfiguration time.
    pub reconfig: Duration,
    /// CLB utilization percent (Eq. 13).
    pub ru_clb: f64,
}

/// A completed sweep: the evaluated grid plus run instrumentation.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRun {
    /// One point per (generator, device) pair, in grid order.
    pub points: Vec<SweepPoint>,
    /// Wall-clock time of the grid evaluation.
    pub elapsed: Duration,
    /// Points evaluated per second of wall-clock time.
    pub points_per_sec: f64,
    /// Engine metrics accumulated during this run (counters include any
    /// earlier activity on the same engine).
    pub metrics: MetricsSnapshot,
}

/// Evaluate every (generator, device) pair in parallel.
///
/// Generators are re-synthesized per device family, so a single sweep
/// covers cross-family portability exactly the way the paper's "portable
/// across different Xilinx FPGA families" claim intends. Uses a private
/// [`Engine`]; call [`sweep_with_engine`] to share caches across sweeps
/// or to keep the run's metrics.
pub fn sweep(
    generators: &[Box<dyn synth::PrmGenerator + Sync>],
    devices: &[fabric::Device],
) -> Vec<SweepPoint> {
    sweep_with_engine(&Engine::new(), generators, devices).points
}

/// [`sweep`] on a caller-owned engine, returning the instrumented run.
pub fn sweep_with_engine(
    engine: &Engine,
    generators: &[Box<dyn synth::PrmGenerator + Sync>],
    devices: &[fabric::Device],
) -> SweepRun {
    let start = Instant::now();
    // Warm the per-family synthesis memo and prefetch one shared
    // composition index per device: workers receive the Arc directly and
    // never touch the geometry map during the grid evaluation.
    let geometries: Vec<std::sync::Arc<fabric::DeviceGeometry>> =
        devices.iter().map(|d| engine.geometry(d)).collect();
    let reports: Vec<Vec<synth::SynthReport>> = generators
        .iter()
        .map(|g| {
            devices
                .iter()
                .map(|d| engine.synthesize(g.as_ref(), d.family()))
                .collect()
        })
        .collect();

    let grid: Vec<(usize, usize)> = (0..generators.len())
        .flat_map(|g| (0..devices.len()).map(move |d| (g, d)))
        .collect();
    let points: Vec<SweepPoint> = grid
        .into_par_iter()
        .map_with(PlanScratch::default(), |scratch, (g, d)| {
            let device = &devices[d];
            let report = &reports[g][d];
            let outcome = match engine.plan_with_geometry(report, device, &geometries[d], scratch) {
                Ok(plan) => Ok(SweepPlan {
                    height: plan.organization.height,
                    width: plan.organization.width(),
                    bitstream_bytes: plan.bitstream_bytes,
                    reconfig: bitstream::IcapModel::V5_DMA.transfer_time(plan.bitstream_bytes),
                    ru_clb: plan.utilization.clb,
                }),
                Err(e) => Err(e.to_string()),
            };
            SweepPoint {
                module: report.module.clone(),
                device: device.name().to_string(),
                outcome,
            }
        })
        .collect();

    let elapsed = start.elapsed();
    let secs = elapsed.as_secs_f64();
    SweepRun {
        points_per_sec: if secs > 0.0 {
            points.len() as f64 / secs
        } else {
            0.0
        },
        metrics: engine.snapshot(),
        points,
        elapsed,
    }
}

/// The pre-engine sweep: synthesize and plan each grid point from
/// scratch. Kept as the baseline that [`sweep`] is property-tested and
/// benchmarked against.
pub fn sweep_uncached(
    generators: &[Box<dyn synth::PrmGenerator + Sync>],
    devices: &[fabric::Device],
) -> Vec<SweepPoint> {
    let grid: Vec<(usize, usize)> = (0..generators.len())
        .flat_map(|g| (0..devices.len()).map(move |d| (g, d)))
        .collect();
    grid.into_par_iter()
        .map(|(g, d)| {
            let device = &devices[d];
            let report = generators[g].synthesize(device.family());
            let outcome = match prcost::plan_prr(&report, device) {
                Ok(plan) => Ok(SweepPlan {
                    height: plan.organization.height,
                    width: plan.organization.width(),
                    bitstream_bytes: plan.bitstream_bytes,
                    reconfig: bitstream::IcapModel::V5_DMA.transfer_time(plan.bitstream_bytes),
                    ru_clb: plan.utilization.clb,
                }),
                Err(e) => Err(e.to_string()),
            };
            SweepPoint {
                module: report.module,
                device: device.name().to_string(),
                outcome,
            }
        })
        .collect()
}

/// Rank the feasible points of a sweep by predicted bitstream size
/// (ascending) — the paper's minimization objective. Equal sizes are
/// tie-broken on `(module, device)` so the ranking is a total order
/// independent of input order.
pub fn rank_by_bitstream(points: &[SweepPoint]) -> Vec<&SweepPoint> {
    let mut feasible: Vec<(&SweepPoint, u64)> = points
        .iter()
        .filter_map(|p| {
            p.outcome
                .as_ref()
                .ok()
                .map(|plan| (p, plan.bitstream_bytes))
        })
        .collect();
    feasible
        .sort_by(|(a, ab), (b, bb)| (ab, &a.module, &a.device).cmp(&(bb, &b.module, &b.device)));
    feasible.into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::prm::{FirFilter, SdramController, Uart};
    use synth::PrmGenerator;

    fn generators() -> Vec<Box<dyn PrmGenerator + Sync>> {
        vec![
            Box::new(FirFilter::paper()),
            Box::new(SdramController::paper()),
            Box::new(Uart::standard()),
        ]
    }

    #[test]
    fn sweep_covers_the_whole_grid() {
        let devices = fabric::all_devices();
        let points = sweep(&generators(), &devices);
        assert_eq!(points.len(), 3 * devices.len());
        let feasible = points.iter().filter(|p| p.outcome.is_ok()).count();
        assert!(
            feasible > points.len() / 2,
            "{feasible}/{} feasible",
            points.len()
        );
        // Every point carries a device from the input set.
        assert!(points
            .iter()
            .all(|p| devices.iter().any(|d| d.name() == p.device)));
    }

    #[test]
    fn sweep_is_deterministic_despite_parallelism() {
        let devices = fabric::all_devices();
        let a = sweep(&generators(), &devices);
        let b = sweep(&generators(), &devices);
        let key = |pts: &[SweepPoint]| -> Vec<(String, String, Option<u64>)> {
            pts.iter()
                .map(|p| {
                    (
                        p.module.clone(),
                        p.device.clone(),
                        p.outcome.as_ref().ok().map(|o| o.bitstream_bytes),
                    )
                })
                .collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn engine_sweep_matches_uncached_sweep() {
        let devices = fabric::all_devices();
        let gens = generators();
        let cached = sweep(&gens, &devices);
        let uncached = sweep_uncached(&gens, &devices);
        assert_eq!(cached, uncached);
    }

    #[test]
    fn sweep_run_reports_cache_effectiveness() {
        let devices = fabric::all_devices();
        let engine = Engine::new();
        let run = sweep_with_engine(&engine, &generators(), &devices);
        assert_eq!(run.points.len(), 3 * devices.len());
        let c = &run.metrics.counters;
        // One synthesis per (generator, family), the rest memo hits.
        let families = devices
            .iter()
            .map(|d| d.family())
            .fold(Vec::new(), |mut acc, f| {
                if !acc.contains(&f) {
                    acc.push(f);
                }
                acc
            });
        assert_eq!(c.synth_calls, 3 * families.len() as u64);
        assert_eq!(c.synth_calls + c.synth_cache_hits, 3 * devices.len() as u64);
        assert_eq!(c.geometry_builds, devices.len() as u64);
        assert_eq!(c.plans, run.points.len() as u64);
        assert!(c.window_probes > 0);
        assert!(c.distinct_compositions > 0);
        assert!(run.points_per_sec > 0.0);
    }

    #[test]
    fn ranking_is_sorted_and_feasible_only() {
        let devices = fabric::all_devices();
        let points = sweep(&generators(), &devices);
        let ranked = rank_by_bitstream(&points);
        assert!(!ranked.is_empty());
        let sizes: Vec<u64> = ranked
            .iter()
            .map(|p| p.outcome.as_ref().unwrap().bitstream_bytes)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        // The UART on a Spartan-6 (2-byte words, tiny PRR) should be near
        // the cheap end.
        let cheapest = ranked.first().unwrap();
        assert!(cheapest.outcome.as_ref().unwrap().bitstream_bytes < 20_000);
    }

    #[test]
    fn ranking_ties_break_on_module_then_device() {
        let mk = |module: &str, device: &str, bytes: u64| SweepPoint {
            module: module.to_string(),
            device: device.to_string(),
            outcome: Ok(SweepPlan {
                height: 1,
                width: 1,
                bitstream_bytes: bytes,
                reconfig: Duration::ZERO,
                ru_clb: 50.0,
            }),
        };
        let points = vec![
            mk("zeta", "dev_b", 100),
            mk("alpha", "dev_b", 100),
            mk("alpha", "dev_a", 100),
            mk("mid", "dev_a", 50),
        ];
        let ranked = rank_by_bitstream(&points);
        let order: Vec<(&str, &str)> = ranked
            .iter()
            .map(|p| (p.module.as_str(), p.device.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("mid", "dev_a"),
                ("alpha", "dev_a"),
                ("alpha", "dev_b"),
                ("zeta", "dev_b"),
            ]
        );
    }
}
