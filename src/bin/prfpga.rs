//! `prfpga` — command-line front end for the cost models.
//!
//! ```text
//! prfpga devices
//! prfpga plan <device> (--syr <file> | --prm fir|mips|sdram)
//! prfpga bitstream <device> (--syr <file> | --prm <name>) [-o <out.bin>]
//! prfpga dump <bitstream.bin>
//! prfpga floorplan <device> --prms fir,mips,sdram
//! prfpga sweep [--json <file>] [--metrics <file>]
//! prfpga defrag [--device <name>] [--seed S] [--tasks N] [--policy <p>] [--depth N] [--proactive] [--json <file>]
//! prfpga bench-pipeline [--tasks N] [--device <name>] [--workers W|W1,W2,...] [--json <file>] [--metrics <file>]
//! prfpga sched-ablate [--seed S] [--tasks N] [--horizon-ms H] [--episodes E] [--admission-sets K] [--slack F] [--json <file>]
//! ```

use parflow::autofloorplan::{auto_floorplan, PrrSpec};
use prfpga::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("devices") => cmd_devices(),
        Some("plan") => cmd_plan(&args[1..], false),
        Some("bitstream") => cmd_plan(&args[1..], true),
        Some("dump") => cmd_dump(&args[1..]),
        Some("floorplan") => cmd_floorplan(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("defrag") => cmd_defrag(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-service") => cmd_bench_service(&args[1..]),
        Some("bench-pipeline") => cmd_bench_pipeline(&args[1..]),
        Some("sched-ablate") => cmd_sched_ablate(&args[1..]),
        _ => {
            eprintln!(
                "usage: prfpga <devices|plan|bitstream|dump|floorplan|sweep|defrag> ...\n\
                 \n\
                 devices                                    list the device database\n\
                 plan <device> --syr <file>                 plan a PRR from an XST report\n\
                 plan <device> --prm <fir|mips|sdram>       plan for a paper PRM\n\
                 bitstream <device> --prm <name> [-o FILE]  also generate the partial bitstream\n\
                 dump <file>                                parse + summarize a bitstream file\n\
                 floorplan <device> --prms a,b,c            jointly place one PRR per PRM\n\
                 simulate <device> --trace FILE [--prrs N]  replay a task trace\n\
                          [--clb C --dsp D --bram B --height H] [--preemptive]\n\
                 sweep [--json FILE] [--metrics FILE]       evaluate every PRM on every device\n\
                 defrag [--device NAME] [--seed S] [--tasks N] [--modules M] [--scale K]\n\
                        [--policy never|threshold|always] [--threshold R] [--depth 0..4]\n\
                        [--proactive] [--json FILE]\n\
                                                            dynamic layout sim, defrag vs baseline;\n\
                                                            --depth N plans multi-move sequences,\n\
                                                            --proactive repairs in ICAP idle windows\n\
                 serve [--workers N] [--requests R] [--tenants T] [--modules M] [--seed S]\n\
                       [--scale K] [--state FILE] [--metrics FILE]\n\
                                                            run a request stream through the async\n\
                                                            planning service (snapshot warm starts)\n\
                 bench-service [--requests R]               warm-memo replay: sharded engine vs the\n\
                                                            frozen RwLock baseline\n\
                 bench-pipeline [--tasks N] [--device NAME] [--chunk C] [--modules M]\n\
                                [--workers W|W1,W2,...] [--queue-depth Q] [--seed S]\n\
                                [--json FILE] [--metrics FILE]\n\
                                                            stream N tasks through synth -> plan ->\n\
                                                            place -> bitstream -> simulate; a comma\n\
                                                            list of workers sweeps the scaling table;\n\
                                                            writes results/BENCH_pipeline.json\n\
                 sched-ablate [--seed S] [--tasks N] [--horizon-ms H] [--episodes E]\n\
                              [--admission-sets K] [--slack F] [--json FILE]\n\
                                                            scheduler zoo x workload classes x defrag\n\
                                                            policies + admission tests on a mixed PRR\n\
                                                            pool; writes results/BENCH_sched.json"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn cmd_devices() -> Result<(), AnyError> {
    println!(
        "{:<12} {:<10} {:>5} {:>6} {:>6} {:>6} {:>6}",
        "part", "family", "rows", "CLBs", "DSPs", "BRAMs", "full-bitstream B"
    );
    for d in fabric::all_devices() {
        let t = d.total_resources();
        println!(
            "{:<12} {:<10} {:>5} {:>6} {:>6} {:>6} {:>10}",
            d.name(),
            d.family().name(),
            d.rows(),
            t.clb(),
            t.dsp(),
            t.bram(),
            prcost::full_bitstream_size_bytes(&d),
        );
    }
    Ok(())
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load_report(args: &[String], family: Family) -> Result<SynthReport, AnyError> {
    if let Some(path) = flag(args, "--syr") {
        let text = std::fs::read_to_string(path)?;
        return Ok(synth::xst::parse_report(&text)?);
    }
    if let Some(name) = flag(args, "--prm") {
        let prm = match name.to_ascii_lowercase().as_str() {
            "fir" => PaperPrm::Fir,
            "mips" => PaperPrm::Mips,
            "sdram" => PaperPrm::Sdram,
            other => return Err(format!("unknown PRM `{other}` (fir|mips|sdram)").into()),
        };
        return Ok(prm.synth_report(family));
    }
    Err("need --syr <file> or --prm <name>".into())
}

fn cmd_plan(args: &[String], with_bitstream: bool) -> Result<(), AnyError> {
    let device_name = args.first().ok_or("missing <device>")?;
    let device = fabric::device_by_name(device_name)?;
    let report = load_report(args, device.family())?;
    let eval = prfpga::evaluate_prm(&report, &device)?;
    let o = &eval.plan.organization;
    println!(
        "module {} on {} ({})",
        report.module,
        device.name(),
        device.family()
    );
    println!(
        "PRR: H={} W={} ({} CLB + {} DSP + {} BRAM) at columns {}..{}, rows {}..{}",
        o.height,
        o.width(),
        o.clb_cols,
        o.dsp_cols,
        o.bram_cols,
        eval.plan.window.start_col,
        eval.plan.window.end_col() - 1,
        eval.plan.window.row,
        eval.plan.window.top_row(),
    );
    print!("{}", prcost::datasheet(&eval.plan));
    println!("DMA-ICAP reconfiguration: {:?}", eval.reconfig_time);
    if with_bitstream {
        let out = flag(args, "-o").unwrap_or("partial.bin");
        std::fs::write(out, eval.bitstream.to_bytes())?;
        println!("wrote {out} ({} bytes)", eval.bitstream.len_bytes());
    }
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), AnyError> {
    let path = args.first().ok_or("missing <file>")?;
    let bytes = std::fs::read(path)?;
    let words = bitstream::PartialBitstream::words_from_bytes(&bytes);
    let parsed = bitstream::parser::parse_words(&words, false)?;
    println!(
        "{} words, sync at word {}",
        parsed.total_words, parsed.sync_offset_words
    );
    if let Some(id) = parsed.idcode {
        println!("IDCODE {id:#010x}");
    }
    println!("CRC: {}", if parsed.crc_ok { "OK" } else { "MISMATCH" });
    println!("commands: {:?}", parsed.commands);
    for w in &parsed.frame_writes {
        println!(
            "  {:?} write: row {}, column {}, {} payload words",
            w.far.block, w.far.row, w.far.column, w.words
        );
    }
    Ok(())
}

fn cmd_floorplan(args: &[String]) -> Result<(), AnyError> {
    let device_name = args.first().ok_or("missing <device>")?;
    let device = fabric::device_by_name(device_name)?;
    let names = flag(args, "--prms").ok_or("need --prms a,b,c")?;
    let mut specs = Vec::new();
    for (i, n) in names.split(',').enumerate() {
        let prm = match n.trim().to_ascii_lowercase().as_str() {
            "fir" => PaperPrm::Fir,
            "mips" => PaperPrm::Mips,
            "sdram" => PaperPrm::Sdram,
            other => return Err(format!("unknown PRM `{other}`").into()),
        };
        specs.push(PrrSpec::single(
            format!("prr{i}_{}", prm.module_name()),
            prm.synth_report(device.family()),
        ));
    }
    let plan = auto_floorplan(&specs, &device, 10_000)?;
    println!(
        "{} PRRs placed, total bitstream {} bytes ({} nodes explored)",
        plan.prrs.len(),
        plan.total_bitstream_bytes,
        plan.nodes_explored
    );
    print!("{}", plan.to_floorplan(&device).to_ucf());
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), AnyError> {
    use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};

    let generators: Vec<Box<dyn PrmGenerator + Sync>> = vec![
        Box::new(FirFilter::paper()),
        Box::new(MipsCore::paper()),
        Box::new(SdramController::paper()),
        Box::new(Uart::standard()),
        Box::new(AesEngine::standard()),
        Box::new(FftCore::standard()),
    ];
    let devices = fabric::all_devices();
    let engine = Engine::new();
    let run = prfpga::sweep::sweep_with_engine(&engine, &generators, &devices);

    println!(
        "{:<14} {:<12} {:>3} {:>3} {:>12} {:>12} {:>7}",
        "module", "device", "H", "W", "bitstream B", "reconfig", "RU_CLB"
    );
    for p in &run.points {
        match &p.outcome {
            Ok(plan) => println!(
                "{:<14} {:<12} {:>3} {:>3} {:>12} {:>12} {:>6.1}%",
                p.module,
                p.device,
                plan.height,
                plan.width,
                plan.bitstream_bytes,
                format!("{:.1?}", plan.reconfig),
                plan.ru_clb,
            ),
            Err(e) => println!("{:<14} {:<12} infeasible: {e}", p.module, p.device),
        }
    }

    let feasible = run.points.iter().filter(|p| p.outcome.is_ok()).count();
    let c = &run.metrics.counters;
    println!();
    println!(
        "{} points ({} feasible) in {:.1?} — {:.0} points/s",
        run.points.len(),
        feasible,
        run.elapsed,
        run.points_per_sec
    );
    println!(
        "stage time: synth {:.1?}, geometry {:.1?}, plan {:.1?}",
        run.metrics.stage_total("synth"),
        run.metrics.stage_total("geometry"),
        run.metrics.stage_total("plan"),
    );
    let pct =
        |r: Option<f64>| r.map_or_else(|| "n/a".to_string(), |v| format!("{:.0}%", v * 100.0));
    println!(
        "cache hit rates: synth {} ({} runs), geometry {} ({} builds), \
         plan memo {} ({} plans)",
        pct(c.synth_hit_rate()),
        c.synth_calls,
        pct(c.geometry_hit_rate()),
        c.geometry_builds,
        pct(c.plan_hit_rate()),
        c.plans,
    );
    println!(
        "window index: {} probes over {} interned compositions, \
         {} padded fallbacks",
        c.window_probes, c.distinct_compositions, c.padded_fallbacks,
    );

    if let Some(path) = flag(args, "--json") {
        std::fs::write(path, serde_json::to_string_pretty(&run.points)?)?;
        println!("wrote sweep points to {path}");
    }
    if let Some(path) = flag(args, "--metrics") {
        std::fs::write(path, serde_json::to_string_pretty(&run.metrics)?)?;
        println!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

fn cmd_defrag(args: &[String]) -> Result<(), AnyError> {
    use prfpga::layout::{simulate_layout, DefragPolicy, LayoutConfig, LayoutReport};

    let device = fabric::device_by_name(flag(args, "--device").unwrap_or("xc5vlx110t"))?;
    let num = |name: &str, default: u64| -> u64 {
        flag(args, name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let seed = num("--seed", 12);
    let tasks = num("--tasks", 200) as u32;
    let modules = num("--modules", 16) as u32;
    let scale = num("--scale", 1500) as u32;
    let ratio: f64 = flag(args, "--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let policy = match flag(args, "--policy").unwrap_or("always") {
        "never" => DefragPolicy::Never,
        "threshold" => DefragPolicy::Threshold(ratio),
        "always" => DefragPolicy::Always,
        other => return Err(format!("unknown policy `{other}` (never|threshold|always)").into()),
    };
    let depth = num("--depth", 0) as u32;
    if depth > 4 {
        return Err("--depth must be 0 (single-step) to 4".into());
    }
    let proactive = args.iter().any(|a| a == "--proactive");

    let workload = Workload::generate_heavy_tailed(
        seed,
        device.family(),
        tasks,
        modules,
        scale,
        num("--interarrival", 40_000),
        num("--exec", 400_000),
    );
    let run = |policy, depth, proactive| {
        simulate_layout(
            &device,
            &workload,
            &LayoutConfig {
                policy,
                depth,
                proactive,
                ..LayoutConfig::default()
            },
        )
    };
    let baseline = run(DefragPolicy::Never, 0, false);
    let report = run(policy, depth, proactive);

    println!(
        "{} tasks (heavy-tailed, seed {seed}) on {}: {policy:?} depth {depth}{} vs Never",
        workload.tasks.len(),
        device.name(),
        if proactive { " proactive" } else { "" },
    );
    let row = |label: &str, r: &LayoutReport| {
        println!(
            "{label:<10} admitted {:>4}  rej(frag) {:>4}  rej(cap) {:>4}  \
             relocations {:>3} ({:.3} ms, {} B)  makespan {:.3} ms  frag peak {:.2}",
            r.admitted,
            r.rejected_fragmentation,
            r.rejected_capacity,
            r.relocations,
            r.relocation_ns as f64 / 1e6,
            r.relocated_bytes,
            r.makespan_ns as f64 / 1e6,
            r.peak_fragmentation,
        );
    };
    row("never", &baseline);
    row("chosen", &report);
    let gained = report.admitted as i64 - baseline.admitted as i64;
    println!(
        "defrag admitted {gained:+} tasks for {} relocations ({} defrag-enabled admissions, \
         {} proactive repairs, {} context bytes)",
        report.relocations,
        report.defrag_admissions,
        report.proactive_defrags,
        report.context_bytes,
    );

    if let Some(path) = flag(args, "--json") {
        #[derive(serde::Serialize)]
        struct DefragRun {
            device: String,
            seed: u64,
            tasks: u32,
            baseline: LayoutReport,
            report: LayoutReport,
        }
        let out = DefragRun {
            device: device.name().to_string(),
            seed,
            tasks,
            baseline,
            report,
        };
        std::fs::write(path, serde_json::to_string_pretty(&out)?)?;
        println!("wrote defrag comparison to {path}");
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), AnyError> {
    let device_name = args.first().ok_or("missing <device>")?;
    let device = fabric::device_by_name(device_name)?;
    let trace_path = flag(args, "--trace").ok_or("need --trace <file>")?;
    let text = std::fs::read_to_string(trace_path)?;
    let tasks = multitask::parse_trace(&text)?;

    let num = |name: &str, default: u32| -> u32 {
        flag(args, name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let org = PrrOrganization {
        family: device.family(),
        height: num("--height", 1),
        clb_cols: num("--clb", 4),
        dsp_cols: num("--dsp", 0),
        bram_cols: num("--bram", 0),
    };
    let system = PrSystem::homogeneous(&device, org, num("--prrs", 2), IcapModel::V5_DMA)?;
    println!(
        "{} tasks on {} PRRs (H={} W={}, {} B bitstream each)",
        tasks.len(),
        system.prrs.len(),
        org.height,
        org.width(),
        system.prrs[0].bitstream_bytes
    );

    if args.iter().any(|a| a == "--preemptive") {
        let r = multitask::simulate_preemptive(&system, &tasks);
        println!(
            "preemptive: {} completed, makespan {:.3} ms, {} preemptions, \
             {} reconfigs, context overhead {:.3} ms, urgent response {:.1} us",
            r.completed,
            r.makespan_ns as f64 / 1e6,
            r.preemptions,
            r.reconfigurations,
            r.context_switch_ns as f64 / 1e6,
            r.urgent_mean_response_ns as f64 / 1e3,
        );
    } else {
        let wl = multitask::Workload::new(
            tasks
                .into_iter()
                .map(|t| multitask::HwTask {
                    id: t.id,
                    module: t.module,
                    needs: t.needs,
                    arrival_ns: t.arrival_ns,
                    exec_ns: t.exec_ns,
                    deadline_ns: None,
                })
                .collect(),
        );
        let r = simulate(&system, &wl, &multitask::ReuseAware);
        println!(
            "{}: {} completed, makespan {:.3} ms, {} reconfigs ({} reused), \
             ICAP busy {:.3} ms, mean wait {:.1} us",
            r.scheduler,
            r.completed,
            r.makespan_ns as f64 / 1e6,
            r.reconfigurations,
            r.reuse_hits,
            r.icap_busy_ns as f64 / 1e6,
            r.mean_wait_ns() as f64 / 1e3,
        );
    }
    Ok(())
}

/// Run a synthetic multi-tenant request stream through the async
/// planning service. With `--state FILE`, the engine warm-starts from a
/// persisted memo snapshot (if the file exists) and persists its final
/// state back — a second run answers everything from the reloaded memo.
fn cmd_serve(args: &[String]) -> Result<(), AnyError> {
    use prcost::{PlanService, ServiceConfig};
    use std::sync::Arc;
    use synth::GenericPrm;

    let num = |name: &str, default: u64| -> Result<u64, AnyError> {
        flag(args, name)
            .map(str::parse::<u64>)
            .transpose()
            .map_err(|e| format!("bad {name}: {e}").into())
            .map(|v| v.unwrap_or(default))
    };
    let workers = num("--workers", 4)? as usize;
    let requests = num("--requests", 5_000)? as usize;
    let tenants = num("--tenants", 3)?.max(1) as usize;
    let modules = num("--modules", 12)?.max(1);
    let seed = num("--seed", 7)?;
    let scale = num("--scale", 1_200)? as u32;
    let state_path = flag(args, "--state");

    let engine = match state_path {
        Some(path) if std::path::Path::new(path).exists() => {
            let text = std::fs::read_to_string(path)?;
            let snapshot: prcost::EngineSnapshot = serde_json::from_str(&text)?;
            let engine = Engine::import_state(&snapshot)?;
            println!(
                "warm start: restored {} memoized plans from {path}",
                engine.plan_memo_len()
            );
            engine
        }
        _ => Engine::new(),
    };
    let engine = Arc::new(engine);
    let mut service = PlanService::with_engine(
        Arc::clone(&engine),
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        },
    );

    let devices = fabric::all_devices();
    let tenant_names: Vec<String> = (0..tenants).map(|t| format!("tenant{t}")).collect();
    let start = std::time::Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    for i in 0..requests {
        let device = &devices[i % devices.len()];
        let module = seed + (i as u64 % modules);
        let report = GenericPrm::random(module, scale).synthesize(device.family());
        let ticket = service.submit(
            &tenant_names[i % tenants],
            PrrRequirements::from_report(&report),
            device,
        )?;
        tickets.push(ticket);
    }
    let mut feasible = 0usize;
    for ticket in &tickets {
        if ticket.wait().is_ok() {
            feasible += 1;
        }
    }
    let elapsed = start.elapsed();
    service.shutdown();

    let snapshot = engine.snapshot();
    let c = &snapshot.counters;
    println!(
        "{requests} requests ({feasible} feasible) through {workers} workers in {elapsed:.1?} \
         — {:.0} plans/s",
        requests as f64 / elapsed.as_secs_f64()
    );
    let pct =
        |r: Option<f64>| r.map_or_else(|| "n/a".to_string(), |v| format!("{:.0}%", v * 100.0));
    println!(
        "plan memo: {} hit rate over {} plans ({} built); geometry {} over {} devices",
        pct(c.plan_hit_rate()),
        c.plans,
        c.plan_builds,
        pct(c.geometry_hit_rate()),
        c.geometry_builds,
    );
    if let Some(stage) = snapshot.stages.iter().find(|s| s.name == "service") {
        println!(
            "service latency (submit -> resolved): p50 {:.1} us, p90 {:.1} us, p99 {:.1} us",
            stage.p50_ns as f64 / 1e3,
            stage.p90_ns as f64 / 1e3,
            stage.p99_ns as f64 / 1e3,
        );
    }
    for tenant in &tenant_names {
        println!(
            "  {tenant}: {} plans",
            snapshot.labeled_value(&format!("tenant:{tenant}"))
        );
    }

    if let Some(path) = state_path {
        let exported = engine.export_state();
        std::fs::write(path, serde_json::to_string_pretty(&exported)?)?;
        println!(
            "persisted {} memoized plans to {path}",
            engine.plan_memo_len()
        );
    }
    if let Some(path) = flag(args, "--metrics") {
        std::fs::write(path, serde_json::to_string_pretty(&snapshot)?)?;
        println!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

/// Quick in-process check of the warm-memo replay speedup: the sharded
/// engine against the frozen seed `engine::reference` baseline, on the
/// paper PRM x device grid. The full table (worker scaling, p99,
/// zero-alloc assertion) lives in `benches/service_mt.rs`.
fn cmd_bench_service(args: &[String]) -> Result<(), AnyError> {
    use prcost::engine::reference::ReferenceEngine;

    let requests: usize = flag(args, "--requests")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --requests: {e}"))?
        .unwrap_or(200_000);

    use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};
    let generators: Vec<Box<dyn PrmGenerator>> = vec![
        Box::new(FirFilter::paper()),
        Box::new(MipsCore::paper()),
        Box::new(SdramController::paper()),
        Box::new(Uart::standard()),
        Box::new(AesEngine::standard()),
        Box::new(FftCore::standard()),
    ];
    let devices = fabric::all_devices();
    let points: Vec<(SynthReport, Device)> = devices
        .iter()
        .flat_map(|d| {
            generators
                .iter()
                .map(|g| (g.synthesize(d.family()), d.clone()))
        })
        .collect();

    let sharded = Engine::new();
    let reference = ReferenceEngine::new();
    let mut scratch = PlanScratch::default();
    for (report, device) in &points {
        let _ = sharded.plan_with_scratch(report, device, &mut scratch);
        let _ = reference.plan(report, device);
    }

    let time = |f: &mut dyn FnMut()| -> f64 {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    let reference_s = time(&mut || {
        for i in 0..requests {
            let (report, device) = &points[i % points.len()];
            let _ = std::hint::black_box(reference.plan(report, device));
        }
    });
    let sharded_s = time(&mut || {
        for i in 0..requests {
            let (report, device) = &points[i % points.len()];
            std::hint::black_box(sharded.plan_arc(report, device, &mut scratch));
        }
    });
    println!(
        "warm replay, {} hits over {} points:",
        requests,
        points.len()
    );
    println!(
        "  reference (RwLock + owned keys): {:>10.0} plans/s",
        requests as f64 / reference_s
    );
    println!(
        "  sharded (interned + packed key): {:>10.0} plans/s  ({:.1}x)",
        requests as f64 / sharded_s,
        reference_s / sharded_s
    );
    Ok(())
}

/// Stream a synthetic task mix through the whole system — synthesis,
/// planning, placement, arena bitstream emission, multitasking
/// simulation — under bounded memory, and record the run as
/// `results/BENCH_pipeline.json` (the regression-guarding whole-system
/// number; see `prfpga::pipeline`).
fn cmd_bench_pipeline(args: &[String]) -> Result<(), AnyError> {
    use prfpga::pipeline::{run_pipeline, run_pipeline_sweep, PipelineConfig};

    let num = |name: &str, default: u64| -> Result<u64, AnyError> {
        flag(args, name)
            .map(str::parse::<u64>)
            .transpose()
            .map_err(|e| format!("bad {name}: {e}").into())
            .map(|v| v.unwrap_or(default))
    };
    let defaults = PipelineConfig::default();

    // `--workers` accepts either a single count ("4") or a comma list
    // ("1,2,4,8,16"); the list form reruns the whole pipeline once per
    // count and records the scaling table in the report.
    let worker_sweep: Vec<usize> = match flag(args, "--workers") {
        None => vec![defaults.workers],
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("bad --workers entry {s:?}: {e}"))
            })
            .collect::<Result<_, _>>()?,
    };
    if worker_sweep.is_empty() || worker_sweep.contains(&0) {
        return Err("--workers needs one or more nonzero counts".into());
    }

    let cfg = PipelineConfig {
        device: flag(args, "--device")
            .unwrap_or(&defaults.device)
            .to_string(),
        tasks: num("--tasks", defaults.tasks)?,
        chunk: num("--chunk", u64::from(defaults.chunk))? as u32,
        modules: num("--modules", u64::from(defaults.modules))? as u32,
        scale: num("--scale", u64::from(defaults.scale))? as u32,
        prrs: num("--prrs", u64::from(defaults.prrs))? as u32,
        workers: worker_sweep[0],
        queue_depth: num("--queue-depth", defaults.queue_depth as u64)? as usize,
        seed: num("--seed", defaults.seed)?,
        mean_interarrival_ns: num("--interarrival", defaults.mean_interarrival_ns)?,
        mean_exec_ns: num("--exec", defaults.mean_exec_ns)?,
    };

    let report = if worker_sweep.len() > 1 {
        run_pipeline_sweep(&cfg, &worker_sweep).map_err(|e| e.to_string())?
    } else {
        run_pipeline(&cfg).map_err(|e| e.to_string())?
    };
    println!(
        "{} tasks on {} ({} workers, chunk {}, queue {}): {:.1} ms — {:.0} tasks/s",
        report.tasks,
        report.device,
        report.workers,
        report.chunk,
        report.queue_depth,
        report.elapsed_ms,
        report.tasks_per_sec,
    );
    println!(
        "emitted {} bitstreams ({:.1} MiB), simulated makespan {:.1} ms, \
         {} reconfigs ({} reused), total wait {:.1} ms",
        report.bitstreams_emitted,
        report.bitstream_bytes as f64 / (1024.0 * 1024.0),
        report.simulated_makespan_ns as f64 / 1e6,
        report.reconfigurations,
        report.reuse_hits,
        report.total_wait_ns as f64 / 1e6,
    );
    let pct =
        |r: Option<f64>| r.map_or_else(|| "n/a".to_string(), |v| format!("{:.0}%", v * 100.0));
    println!(
        "plan memo hit rate {}, peak RSS {:.1} MiB",
        pct(report.plan_hit_rate),
        report.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );
    println!(
        "kernels: crc {} / fill {} ({} host cpus)",
        report.crc_dispatch, report.fill_dispatch, report.host_cpus,
    );
    if !report.worker_sweep.is_empty() {
        println!(
            "{:<8} {:>10} {:>12} {:>12}",
            "workers", "total ms", "tasks/s", "speedup"
        );
        for row in &report.worker_sweep {
            println!(
                "{:<8} {:>10.1} {:>12.0} {:>11.2}x",
                row.workers, row.elapsed_ms, row.tasks_per_sec, row.speedup_vs_one,
            );
        }
    }
    println!(
        "{:<20} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "stage", "chunks", "total ms", "p50 us", "p90 us", "p99 us"
    );
    for s in &report.stages {
        println!(
            "{:<20} {:>9} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.p50_ns as f64 / 1e3,
            s.p90_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
        );
    }

    // Same artifact convention as `bench::write_json` (the prfpga crate
    // does not depend on `bench`): `results/` at the workspace root,
    // overridable with PRFPGA_RESULTS_DIR or an explicit --json path.
    let path = match flag(args, "--json") {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let dir = std::env::var("PRFPGA_RESULTS_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|_| {
                    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
                });
            std::fs::create_dir_all(&dir)?;
            dir.join("BENCH_pipeline.json")
        }
    };
    std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
    println!("wrote {}", path.display());

    // `--metrics FILE`: a compact operational snapshot (dispatch paths,
    // throughput, scaling rows) for dashboards that don't want the full
    // per-stage report written by `--json`.
    if let Some(mpath) = flag(args, "--metrics") {
        // Owned fields: the vendored serde derive does not support
        // generic (lifetime-parameterized) types.
        #[derive(serde::Serialize)]
        struct PipelineMetrics {
            crc_dispatch: String,
            fill_dispatch: String,
            host_cpus: usize,
            workers: usize,
            tasks_per_sec: f64,
            elapsed_ms: f64,
            peak_rss_bytes: u64,
            worker_sweep: Vec<prfpga::pipeline::WorkerScalingRow>,
        }
        let metrics = PipelineMetrics {
            crc_dispatch: report.crc_dispatch.clone(),
            fill_dispatch: report.fill_dispatch.clone(),
            host_cpus: report.host_cpus,
            workers: report.workers,
            tasks_per_sec: report.tasks_per_sec,
            elapsed_ms: report.elapsed_ms,
            peak_rss_bytes: report.peak_rss_bytes,
            worker_sweep: report.worker_sweep.clone(),
        };
        std::fs::write(mpath, serde_json::to_string_pretty(&metrics)?)?;
        println!("wrote metrics snapshot to {mpath}");
    }
    Ok(())
}

fn cmd_sched_ablate(args: &[String]) -> Result<(), AnyError> {
    use prfpga::sched::{run_ablation, AblationConfig};

    let num = |name: &str, default: u64| -> u64 {
        flag(args, name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let defaults = AblationConfig::default();
    let cfg = AblationConfig {
        seed: num("--seed", defaults.seed),
        tasks: num("--tasks", u64::from(defaults.tasks)) as u32,
        horizon_ms: num("--horizon-ms", defaults.horizon_ms),
        train_episodes: num("--episodes", u64::from(defaults.train_episodes)) as u32,
        deadline_slack: flag(args, "--slack")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.deadline_slack),
        admission_sets: num("--admission-sets", u64::from(defaults.admission_sets)) as u32,
    };
    let report = run_ablation(&cfg);

    println!(
        "scheduler zoo on {} ({} PRRs: {}), seed {}",
        report.device,
        report.prrs.len(),
        report.prrs.join(" "),
        cfg.seed,
    );
    println!(
        "{:<14} {:<16} {:>8} {:>9} {:>8} {:>11} {:>7} {:>6}",
        "class", "scheduler", "admitted", "completed", "miss", "resp ms", "reuse", "icap"
    );
    for r in &report.rows {
        println!(
            "{:<14} {:<16} {:>8} {:>9} {:>8.3} {:>11.3} {:>7.3} {:>6.3}",
            r.class,
            r.scheduler,
            r.admitted,
            r.completed,
            r.deadline_miss_ratio,
            r.mean_response_ms,
            r.reuse_rate,
            r.icap_utilization,
        );
    }
    println!(
        "\nadmission ({} sets/level, worst reconfig {:.1} us):",
        cfg.admission_sets,
        report.worst_reconfig_ns as f64 / 1e3,
    );
    println!(
        "{:<10} {:>12} {:>12} {:>16}",
        "target U", "LL bound", "RTA", "mean inflated U"
    );
    for a in &report.admission {
        println!(
            "{:<10} {:>9}/{:<2} {:>9}/{:<2} {:>16.3}",
            a.target_utilization,
            a.ub_admitted,
            a.tasksets,
            a.rta_admitted,
            a.tasksets,
            a.mean_inflated_utilization,
        );
    }
    println!("\ndefrag (layout loss-system):");
    println!(
        "{:<14} {:<14} {:>8} {:>10} {:>7} {:>9}",
        "class", "policy", "admitted", "rej(frag)", "relocs", "reloc ms"
    );
    for d in &report.defrag {
        println!(
            "{:<14} {:<14} {:>8} {:>10} {:>7} {:>9.3}",
            d.class, d.policy, d.admitted, d.rejected_fragmentation, d.relocations, d.relocation_ms,
        );
    }
    println!(
        "\nlearned beats first-fit on: {}",
        if report.learned_beats_firstfit.is_empty() {
            "none".to_string()
        } else {
            report.learned_beats_firstfit.join(", ")
        }
    );

    // Same artifact convention as bench-pipeline above.
    let path = match flag(args, "--json") {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let dir = std::env::var("PRFPGA_RESULTS_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|_| {
                    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
                });
            std::fs::create_dir_all(&dir)?;
            dir.join("BENCH_sched.json")
        }
    };
    std::fs::write(&path, serde_json::to_string_pretty(&report)?)?;
    println!("wrote {}", path.display());
    Ok(())
}
