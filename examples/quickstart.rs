//! Quickstart: from an XST-style synthesis report to a planned PRR and its
//! partial bitstream size, without touching any design flow.
//!
//! Run with: `cargo run --example quickstart`

use prfpga::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A designer's starting point: the synthesis report text. Here we
    // render the paper's FIR report; in practice you would read a `.syr`
    // file produced by your synthesis tool.
    let device = fabric::device_by_name("xc5vlx110t")?;
    let report = PaperPrm::Fir.synth_report(device.family());
    let syr_text = synth::xst::write_report(&report, device.name());
    println!("--- synthesis report ---\n{syr_text}");

    // Parse it back (the designer-facing entry point)...
    let parsed = synth::xst::parse_report(&syr_text)?;

    // ...and evaluate both cost models in one call.
    let eval = prfpga::evaluate_prm(&parsed, &device)?;
    let org = &eval.plan.organization;
    println!("--- PRR plan (Fig. 1 flow) ---");
    println!(
        "H = {} rows, W = {} columns ({} CLB + {} DSP + {} BRAM)",
        org.height,
        org.width(),
        org.clb_cols,
        org.dsp_cols,
        org.bram_cols
    );
    println!(
        "placed at columns {}..{}, rows {}..{}",
        eval.plan.window.start_col,
        eval.plan.window.end_col() - 1,
        eval.plan.window.row,
        eval.plan.window.top_row()
    );
    let ru = eval.plan.utilization.rounded();
    println!(
        "utilization: CLB {}%  FF {}%  LUT {}%  DSP {}%  BRAM {}%",
        ru[0], ru[1], ru[2], ru[3], ru[4]
    );
    println!("--- bitstream model (Eq. 18) ---");
    println!(
        "predicted partial bitstream: {} bytes",
        eval.plan.bitstream_bytes
    );
    println!(
        "generated partial bitstream: {} bytes (must match)",
        eval.bitstream.len_bytes()
    );
    println!("reconfiguration via DMA-fed ICAP: {:?}", eval.reconfig_time);
    assert_eq!(eval.plan.bitstream_bytes, eval.bitstream.len_bytes());
    Ok(())
}
