//! Hardware multitasking: PRRs time-multiplexing a stream of hardware
//! tasks, with reconfiguration times derived from the model-predicted
//! bitstream sizes — the system-level payoff of sizing PRRs well.
//!
//! Run with: `cargo run --release --example hardware_multitasking`

use multitask::{BestFit, FirstFit, ReuseAware, Scheduler};
use prfpga::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = fabric::device_by_name("xc5vsx95t")?;

    // Right-sized PRRs: enough for the workload's biggest task.
    let org = PrrOrganization {
        family: device.family(),
        height: 1,
        clb_cols: 6,
        dsp_cols: 1,
        bram_cols: 1,
    };
    let system = PrSystem::homogeneous(&device, org, 4, IcapModel::V5_DMA)?;
    println!(
        "system: 4 PRRs of H={} W={} on {}, {} B bitstream each, {:?} reconfig",
        org.height,
        org.width(),
        device.name(),
        system.prrs[0].bitstream_bytes,
        IcapModel::V5_DMA.transfer_time(system.prrs[0].bitstream_bytes),
    );

    let workload = system.filter_workload(&Workload::generate(
        42,
        device.family(),
        300,     // tasks
        8,       // distinct modules
        300,     // resource scale
        8_000,   // mean interarrival (ns)
        120_000, // mean execution (ns)
    ));
    println!(
        "workload: {} servable tasks over {} modules\n",
        workload.tasks.len(),
        workload.module_count()
    );

    println!(
        "{:>12} {:>12} {:>12} {:>10} {:>8} {:>12}",
        "scheduler", "makespan ms", "ICAP busy ms", "reconfigs", "reuse", "mean wait us"
    );
    let schedulers: [&dyn Scheduler; 3] = [&FirstFit, &BestFit, &ReuseAware];
    for sched in schedulers {
        let r = simulate(&system, &workload, sched);
        println!(
            "{:>12} {:>12.3} {:>12.3} {:>10} {:>8} {:>12.1}",
            r.scheduler,
            r.makespan_ns as f64 / 1e6,
            r.icap_busy_ns as f64 / 1e6,
            r.reconfigurations,
            r.reuse_hits,
            r.mean_wait_ns() as f64 / 1e3,
        );
    }

    // The cautionary tale: oversize the PRRs 4x and watch the same
    // workload slow down purely from longer reconfigurations.
    let oversized = PrrOrganization { height: 4, ..org };
    let slow_system = PrSystem::homogeneous(&device, oversized, 4, IcapModel::V5_DMA)?;
    let r_right = simulate(&system, &workload, &ReuseAware);
    let r_slow = simulate(&slow_system, &workload, &ReuseAware);
    println!(
        "\noversizing PRRs 4x: makespan {:.3} ms -> {:.3} ms ({:+.1}%), ICAP busy {:.3} -> {:.3} ms",
        r_right.makespan_ns as f64 / 1e6,
        r_slow.makespan_ns as f64 / 1e6,
        (r_slow.makespan_ns as f64 / r_right.makespan_ns as f64 - 1.0) * 100.0,
        r_right.icap_busy_ns as f64 / 1e6,
        r_slow.icap_busy_ns as f64 / 1e6,
    );
    Ok(())
}
