//! Family portability, including the paper's 16-bit-word case: the same
//! PRM planned across Virtex-4/-5/-6, 7-series and Spartan-6 ("in other
//! devices, such as Spartan-3/6 devices, words are 16-bit, therefore
//! Bytes_word must be adjusted").
//!
//! Run with: `cargo run --release --example spartan6_portability`

use prfpga::prelude::*;
use synth::prm::FirFilter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fir = FirFilter::new(16, 16, 16, true);
    println!(
        "{:<12} {:<10} {:>5} {:>7} {:>11} {:>12} {:>10}",
        "device", "family", "H", "W", "words/frame", "bytes/word", "bitstream B"
    );
    for name in [
        "xc4vlx60",
        "xc5vlx110t",
        "xc6vlx75t",
        "xc7a100t",
        "xc6slx45",
        "xc6slx16",
    ] {
        let device = fabric::device_by_name(name)?;
        let report = fir.synthesize(device.family());
        let g = &device.params().frames;
        match plan_prr(&report, &device) {
            Ok(plan) => println!(
                "{:<12} {:<10} {:>5} {:>7} {:>11} {:>12} {:>10}",
                device.name(),
                device.family().name(),
                plan.organization.height,
                plan.organization.width(),
                g.fr_size,
                g.bytes_word,
                plan.bitstream_bytes,
            ),
            Err(e) => println!("{:<12} {:<10}  {e}", device.name(), device.family().name()),
        }
    }
    println!(
        "\nSame formulas, different Table II/IV constants per family — the paper's \
         portability claim. Note the Spartan-6 rows: 65-word frames x 2 bytes/word."
    );
    Ok(())
}
