//! Automatic multi-PRR floorplanning — the paper's stated future work:
//! use the cost models *inside* the floorplanning stage. Three PRRs (one
//! per paper PRM) are placed jointly on the LX110T; FIR and MIPS both need
//! the device's single DSP column, so the planner stacks them vertically.
//!
//! Run with: `cargo run --release --example auto_floorplan`

use parflow::autofloorplan::{auto_floorplan, PrrSpec};
use prfpga::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = fabric::device_by_name("xc5vlx110t")?;
    let specs: Vec<PrrSpec> = PaperPrm::ALL
        .iter()
        .map(|p| {
            PrrSpec::single(
                format!("prr_{}", p.module_name()),
                p.synth_report(device.family()),
            )
        })
        .collect();

    let plan = auto_floorplan(&specs, &device, 10_000)?;
    println!(
        "placed {} PRRs on {} ({} search nodes), total bitstream {} bytes:\n",
        plan.prrs.len(),
        plan.device,
        plan.nodes_explored,
        plan.total_bitstream_bytes
    );
    for p in &plan.prrs {
        println!(
            "  {:>16}: H={} W=({} CLB + {} DSP + {} BRAM) at cols {}..{}, rows {}..{}  ({} B)",
            p.name,
            p.organization.height,
            p.organization.clb_cols,
            p.organization.dsp_cols,
            p.organization.bram_cols,
            p.window.start_col,
            p.window.end_col() - 1,
            p.window.row,
            p.window.top_row(),
            p.bitstream_bytes,
        );
    }

    let floorplan = plan.to_floorplan(&device);
    floorplan.validate(&device)?;
    println!("\nUCF constraints:\n{}", floorplan.to_ucf());

    // A two-PRR variant where FIR and MIPS time-share one bigger PRR.
    let shared_specs = vec![
        PrrSpec {
            name: "compute".into(),
            reports: vec![
                PaperPrm::Fir.synth_report(device.family()),
                PaperPrm::Mips.synth_report(device.family()),
            ],
        },
        PrrSpec::single("io", PaperPrm::Sdram.synth_report(device.family())),
    ];
    match auto_floorplan(&shared_specs, &device, 10_000) {
        Ok(shared) => println!(
            "time-shared variant: {} PRRs, total bitstream {} bytes (vs {} separate)",
            shared.prrs.len(),
            shared.total_bitstream_bytes,
            plan.total_bitstream_bytes
        ),
        Err(e) => println!("time-shared variant infeasible on this layout: {e}"),
    }
    Ok(())
}
