//! Preemptive hardware RTOS demo: urgent hardware tasks preempt long
//! background accelerators via configuration-plane context save/restore
//! (the authors' companion FCCM'13/ARC'13 machinery).
//!
//! Run with: `cargo run --release --example preemptive_rtos`

use bitstream::readback::context_cost;
use multitask::{simulate_preemptive, PreemptiveTask};
use prfpga::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = fabric::device_by_name("xc5vsx95t")?;
    let org = PrrOrganization {
        family: device.family(),
        height: 1,
        clb_cols: 8,
        dsp_cols: 1,
        bram_cols: 1,
    };
    let system = PrSystem::homogeneous(&device, org, 2, IcapModel::V5_DMA)?;
    let ctx = context_cost(&org);
    println!(
        "2 PRRs of H={} W={}; bitstream write {:?}, context save {:?}, restore {:?}\n",
        org.height,
        org.width(),
        IcapModel::V5_DMA.transfer_time(system.prrs[0].bitstream_bytes),
        ctx.save_time(&IcapModel::V5_DMA),
        ctx.restore_time(&IcapModel::V5_DMA),
    );

    // Two long background FFT batches + sporadic urgent crypto requests.
    let mut tasks: Vec<PreemptiveTask> = (0..6)
        .map(|i| PreemptiveTask {
            id: i,
            module: format!("fft_batch_{}", i % 2),
            needs: Resources::new(120, 6, 2),
            arrival_ns: u64::from(i) * 200_000,
            exec_ns: 3_000_000,
            priority: 0,
        })
        .collect();
    for j in 0..5 {
        tasks.push(PreemptiveTask {
            id: 100 + j,
            module: "aes_urgent".into(),
            needs: Resources::new(60, 0, 2),
            arrival_ns: 700_000 + u64::from(j) * 2_500_000,
            exec_ns: 90_000,
            priority: 3,
        });
    }

    let r = simulate_preemptive(&system, &tasks);
    println!(
        "completed {} of {} tasks in {:.3} ms",
        r.completed,
        tasks.len(),
        r.makespan_ns as f64 / 1e6
    );
    println!(
        "preemptions: {}  (context transfers: {}, overhead {:.3} ms)",
        r.preemptions,
        r.context_transfers,
        r.context_switch_ns as f64 / 1e6
    );
    println!(
        "reconfigurations: {}  ICAP busy {:.3} ms",
        r.reconfigurations,
        r.icap_busy_ns as f64 / 1e6
    );
    println!(
        "urgent mean response: {:.1} us (vs {:.1} ms if urgent tasks had to wait out a batch)",
        r.urgent_mean_response_ns as f64 / 1e3,
        3_000_000f64 / 1e6
    );
    Ok(())
}
