//! Design-space exploration: the paper's productivity use case.
//!
//! A designer varies a PRM parameter (FIR tap count) and a target device,
//! and wants PRR footprints and bitstream/reconfiguration costs for every
//! point — minutes-to-hours per point with the real flow, microseconds
//! with the cost models. Also demonstrates multi-PRM shared-PRR planning.
//!
//! Run with: `cargo run --example design_space_exploration`

use prfpga::prelude::*;
use synth::prm::FirFilter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = ["xc5vlx110t", "xc5vsx95t", "xc6vlx75t", "xc7a100t"]
        .map(|n| fabric::device_by_name(n).unwrap());

    println!("FIR tap-count sweep (model-planned PRR per design point):\n");
    println!(
        "{:>5} {:>12} {:>4} {:>16} {:>14} {:>12}",
        "taps", "device", "H", "W(C+D+B)", "bitstream B", "reconfig"
    );
    for device in &devices {
        for taps in [8u32, 16, 32, 64, 128] {
            let fir = FirFilter::new(taps, 16, 16, true);
            let report = fir.synthesize(device.family());
            match plan_prr(&report, device) {
                Ok(plan) => {
                    let o = &plan.organization;
                    let t = IcapModel::V5_DMA.transfer_time(plan.bitstream_bytes);
                    println!(
                        "{:>5} {:>12} {:>4} {:>16} {:>14} {:>11.1?}",
                        taps,
                        device.name(),
                        o.height,
                        format!("{}+{}+{}", o.clb_cols, o.dsp_cols, o.bram_cols),
                        plan.bitstream_bytes,
                        t
                    );
                }
                Err(e) => println!("{:>5} {:>12}  -- {e}", taps, device.name()),
            }
        }
    }

    // Multi-PRM sharing: one PRR hosting all three paper PRMs on the V6.
    let device = fabric::device_by_name("xc6vlx75t")?;
    let reports: Vec<SynthReport> = PaperPrm::ALL
        .iter()
        .map(|p| p.synth_report(device.family()))
        .collect();
    let shared = plan_shared_prr(&reports, &device)?;
    let o = &shared.plan.organization;
    println!(
        "\nShared PRR for {{FIR, MIPS, SDRAM}} on {}:",
        device.name()
    );
    println!(
        "  H={} W={} ({} CLB + {} DSP + {} BRAM), bitstream {} bytes",
        o.height,
        o.width(),
        o.clb_cols,
        o.dsp_cols,
        o.bram_cols,
        shared.plan.bitstream_bytes
    );
    for (r, ru) in reports.iter().zip(&shared.per_prm_utilization) {
        let v = ru.rounded();
        println!(
            "  {:>12}: RU_CLB {:>3}%  RU_DSP {:>3}%  RU_BRAM {:>3}%",
            r.module, v[0], v[3], v[4]
        );
    }
    Ok(())
}
