//! The full (simulated) PR design flow the cost models replace: synthesis,
//! model-driven floorplanning, implementation-time optimization, placement,
//! routing and bitstream generation — with stage times, so the
//! model-vs-flow contrast of Table VIII is visible.
//!
//! Run with: `cargo run --release --example full_flow`

use prfpga::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for device_name in ["xc5vlx110t", "xc6vlx75t"] {
        let device = fabric::device_by_name(device_name)?;
        println!("=== {} ({}) ===", device.name(), device.family());
        for prm in PaperPrm::ALL {
            let (rep, bs) = run_paper_flow(prm, &device, &FlowOptions::default())?;
            println!("\n{} — flow report:", rep.module);
            println!("  floorplan: {}", rep.ucf.lines().nth(1).unwrap_or(""));
            println!(
                "  synthesis {} LUT-FF pairs -> post-PAR {} ({:+.1}%)",
                rep.synth_report.lut_ff_pairs,
                rep.post_report.lut_ff_pairs,
                rep.post_report
                    .saving_pct(&rep.synth_report, |r| r.lut_ff_pairs)
            );
            println!(
                "  optimizer: packed {} pairs, trimmed {} LUTs, replicated {} FFs, \
                 {} route-throughs",
                rep.optimizer.packed,
                rep.optimizer.luts_trimmed,
                rep.optimizer.ffs_replicated,
                rep.optimizer.route_throughs
            );
            println!(
                "  placement HPWL {} | routing max utilization {:.2} | bitstream {} B",
                rep.placement_hpwl,
                rep.route.max_utilization,
                bs.len_bytes()
            );
            print!("  stage times:");
            for (stage, t) in &rep.stage_times {
                print!(" {stage:?} {:.2?}", t);
            }
            println!();
            println!(
                "  total flow {:.2?} vs cost model: same PRR and bitstream size in ~us \
                 (see `cargo run -p bench --bin table8`)",
                rep.total_time()
            );
        }
        println!();
    }
    Ok(())
}
