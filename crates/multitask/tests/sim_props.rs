//! Property tests for the multitasking simulators: conservation laws that
//! must hold for any workload and any scheduler.

use bitstream::IcapModel;
use fabric::{device_by_name, Family, Resources};
use multitask::sim::reference::{simulate_seed, SeedPolicy};
use multitask::{
    simulate, simulate_batch, simulate_full_reconfig, simulate_preemptive, simulate_static,
    simulate_with_scratch, BestFit, FirstFit, HwTask, PrSystem, PreemptiveTask, ReuseAware,
    Scenario, Scheduler, SimScratch, Workload,
};
use prcost::PrrOrganization;
use proptest::prelude::*;

fn system(prrs: u32, h: u32) -> PrSystem {
    let device = device_by_name("xc5vsx95t").unwrap();
    let org = PrrOrganization {
        family: Family::Virtex5,
        height: h,
        clb_cols: 6,
        dsp_cols: 1,
        bram_cols: 1,
    };
    PrSystem::homogeneous(&device, org, prrs, IcapModel::V5_DMA).unwrap()
}

fn arb_tasks() -> impl Strategy<Value = Vec<HwTask>> {
    proptest::collection::vec(
        (
            0u64..1_000_000,
            1u64..500_000,
            0u64..130,
            0u64..10,
            0u64..5,
            0u8..4,
        ),
        1..60,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (arrival, exec, clb, dsp, bram, module))| HwTask {
                id: i as u32,
                module: format!("m{module}"),
                needs: Resources::new(clb, dsp, bram),
                arrival_ns: arrival,
                exec_ns: exec,
                deadline_ns: None,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: completed counts and executed time equal the servable
    /// subset, independent of scheduler; makespan bounds hold.
    #[test]
    fn conservation_laws(tasks in arb_tasks(), prrs in 1u32..5) {
        let sys = system(prrs, 1);
        let wl = Workload::new(tasks);
        let servable: Vec<&HwTask> = wl
            .tasks
            .iter()
            .filter(|t| sys.prrs.iter().any(|p| p.fits(&t.needs)))
            .collect();
        let servable_exec: u64 = servable.iter().map(|t| t.exec_ns).sum();

        let schedulers: [&dyn Scheduler; 3] = [&FirstFit, &BestFit, &ReuseAware];
        for sched in schedulers {
            let r = simulate(&sys, &wl, sched);
            prop_assert_eq!(r.completed as usize, servable.len(), "{}", sched.name());
            prop_assert_eq!(r.total_exec_ns, servable_exec);
            // Makespan is at least the longest servable execution and at
            // least the reconfiguration of anything that ran.
            if let Some(max_exec) = servable.iter().map(|t| t.exec_ns).max() {
                prop_assert!(r.makespan_ns >= max_exec);
            }
            prop_assert!(r.reconfigurations + r.reuse_hits == r.completed);
        }
    }

    /// Equivalence oracle: the event-heap, interned, bitmask simulator
    /// produces a report *identical* to the frozen seed implementation for
    /// random workloads, system shapes and schedulers — including
    /// workloads with unservable tasks.
    #[test]
    fn heap_simulator_equals_seed(tasks in arb_tasks(), prrs in 1u32..5, h in 1u32..3) {
        let sys = system(prrs, h);
        let wl = Workload::new(tasks);
        let pairs: [(&dyn Scheduler, SeedPolicy); 3] = [
            (&FirstFit, SeedPolicy::FirstFit),
            (&BestFit, SeedPolicy::BestFit),
            (&ReuseAware, SeedPolicy::ReuseAware),
        ];
        let mut scratch = SimScratch::new();
        for (sched, policy) in pairs {
            let new = simulate(&sys, &wl, sched);
            let seed = simulate_seed(&sys, &wl, policy);
            prop_assert_eq!(&new, &seed, "{}", sched.name());
            // Scratch reuse across schedulers must not leak state.
            let reused = simulate_with_scratch(&sys, &wl, sched, &mut scratch);
            prop_assert_eq!(&reused, &seed);
        }
    }

    /// `simulate_batch` is scenario-wise identical to sequential
    /// `simulate`, regardless of how scenarios share systems/workloads.
    #[test]
    fn batch_equals_sequential(tasks in arb_tasks(), prrs_a in 1u32..4, prrs_b in 1u32..4) {
        let sys_a = system(prrs_a, 1);
        let sys_b = system(prrs_b, 2);
        let wl = Workload::new(tasks);
        let scheds: [&dyn Scheduler; 3] = [&FirstFit, &BestFit, &ReuseAware];
        let wl_ref = &wl;
        let scenarios: Vec<Scenario> = [&sys_a, &sys_b]
            .into_iter()
            .flat_map(|sys| {
                scheds.iter().map(move |&scheduler| Scenario {
                    system: sys,
                    workload: wl_ref,
                    scheduler,
                })
            })
            .collect();
        let batch = simulate_batch(&scenarios);
        prop_assert_eq!(batch.len(), scenarios.len());
        for (got, sc) in batch.iter().zip(&scenarios) {
            prop_assert_eq!(got, &simulate(sc.system, sc.workload, sc.scheduler));
        }
    }

    /// The full-reconfiguration baseline completes everything (the whole
    /// device hosts any module) and never beats a single-PRR PR system's
    /// reconfiguration bill per switch.
    #[test]
    fn full_reconfig_baseline_invariants(tasks in arb_tasks()) {
        let device = device_by_name("xc5vsx95t").unwrap();
        let wl = Workload::new(tasks);
        let r = simulate_full_reconfig(&device, &wl, &IcapModel::V5_DMA);
        prop_assert_eq!(r.completed as usize, wl.tasks.len());
        prop_assert_eq!(r.reconfigurations + r.reuse_hits, r.completed);
        let full = prcost::full_bitstream_size_bytes(&device);
        let per_switch = IcapModel::V5_DMA.transfer_time(full).as_nanos() as u64;
        prop_assert_eq!(r.icap_busy_ns, u64::from(r.reconfigurations) * per_switch);
    }

    /// The static baseline, when it exists, completes everything with zero
    /// configuration traffic and a makespan no smaller than the busiest
    /// module's total work.
    #[test]
    fn static_baseline_invariants(tasks in arb_tasks()) {
        let device = device_by_name("xc5vsx95t").unwrap();
        let wl = Workload::new(tasks);
        if let Some(r) = simulate_static(&device, &wl) {
            prop_assert_eq!(r.completed as usize, wl.tasks.len());
            prop_assert_eq!(r.icap_busy_ns, 0);
            let mut per_module: std::collections::BTreeMap<&str, u64> = Default::default();
            for t in &wl.tasks {
                *per_module.entry(t.module.as_str()).or_default() += t.exec_ns;
            }
            let busiest = per_module.values().copied().max().unwrap_or(0);
            prop_assert!(r.makespan_ns >= busiest);
        }
    }

    /// Preemptive simulation completes every servable task exactly once,
    /// and context transfers come in save/restore pairs bounded by
    /// preemption count.
    #[test]
    fn preemptive_invariants(tasks in arb_tasks(), prrs in 1u32..4) {
        let sys = system(prrs, 1);
        let ptasks: Vec<PreemptiveTask> = tasks
            .iter()
            .map(|t| PreemptiveTask {
                id: t.id,
                module: t.module.clone(),
                needs: t.needs,
                arrival_ns: t.arrival_ns,
                exec_ns: t.exec_ns,
                priority: (t.id % 4) as u8,
            })
            .collect();
        let servable = ptasks
            .iter()
            .filter(|t| sys.prrs.iter().any(|p| p.fits(&t.needs)))
            .count();
        let r = simulate_preemptive(&sys, &ptasks);
        prop_assert_eq!(r.completed as usize, servable);
        prop_assert_eq!(r.context_transfers, 2 * r.preemptions);
        prop_assert!(r.icap_busy_ns >= r.context_switch_ns);
    }
}
