//! Module-name interning for the simulator hot path.
//!
//! The seed simulator compared and cloned `String` module names on every
//! dispatch (per slot, per dispatch). Interning maps each distinct module
//! name to a dense [`ModuleId`] once, at workload-compile time, so the
//! inner loop works on `Copy` `u32` ids: equality is one integer compare
//! and per-slot state snapshots are plain memcpys.

use crate::task::Workload;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher for short module-name keys.
///
/// Interning hashes one name per task per simulation, so the default
/// SipHash (DoS-hardened, ~an order of magnitude slower on short keys)
/// shows up in the simulator's setup profile. Module names are internal
/// identifiers, not attacker-controlled input, so the fast non-keyed
/// hash is appropriate here.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Dense id of an interned module name (bitstream identity).
///
/// Tasks whose names intern to the same `ModuleId` share partial
/// bitstreams, so a PRR already holding the module needs no
/// reconfiguration — the integer analogue of the seed's string equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u32);

/// Bidirectional map between module names and dense [`ModuleId`]s.
#[derive(Debug, Clone, Default)]
pub struct ModuleTable {
    names: Vec<String>,
    /// Names of ≤ 7 bytes, packed losslessly into a u64 (bytes
    /// little-endian, length in the top byte). The first
    /// [`SHORT_LIST_MAX`] distinct ones live in this L1-resident list —
    /// for the handful of distinct modules real workloads have, a
    /// linear integer scan beats any hash map.
    short_list: Vec<(u64, ModuleId)>,
    /// Spill for short names once the list is full.
    short_spill: HashMap<u64, ModuleId, FxBuildHasher>,
    /// Fallback for names of 8 bytes or longer.
    ids: HashMap<String, ModuleId, FxBuildHasher>,
}

/// Distinct short names kept in the scan list before spilling to a map.
const SHORT_LIST_MAX: usize = 32;

/// Lossless u64 key for names of at most 7 bytes.
#[inline]
fn inline_key(name: &str) -> Option<u64> {
    let bytes = name.as_bytes();
    if bytes.len() > 7 {
        return None;
    }
    // Byte shifts instead of a buffer + copy_from_slice: a
    // dynamic-length memcpy call costs more than the whole lookup.
    let mut packed = (bytes.len() as u64) << 56;
    for (i, &b) in bytes.iter().enumerate() {
        packed |= u64::from(b) << (8 * i);
    }
    Some(packed)
}

impl ModuleTable {
    /// Empty table.
    pub fn new() -> Self {
        ModuleTable::default()
    }

    /// Intern every task's module, in task order, returning one id per
    /// task. Ids are dense: `0..self.len()`.
    pub fn from_workload(workload: &Workload) -> (Self, Vec<ModuleId>) {
        let mut table = ModuleTable::new();
        let ids = workload
            .tasks
            .iter()
            .map(|t| table.intern(&t.module))
            .collect();
        (table, ids)
    }

    /// Drop all interned names, keeping allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.names.clear();
        self.short_list.clear();
        self.short_spill.clear();
        self.ids.clear();
    }

    /// Id of `name`, interning it if unseen.
    pub fn intern(&mut self, name: &str) -> ModuleId {
        if let Some(key) = inline_key(name) {
            if let Some(id) = self.find_short(key) {
                return id;
            }
            let id = ModuleId(self.names.len() as u32);
            self.names.push(name.to_string());
            if self.short_list.len() < SHORT_LIST_MAX {
                self.short_list.push((key, id));
            } else {
                self.short_spill.insert(key, id);
            }
            return id;
        }
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = ModuleId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    #[inline]
    fn find_short(&self, key: u64) -> Option<ModuleId> {
        for &(k, id) in &self.short_list {
            if k == key {
                return Some(id);
            }
        }
        if self.short_spill.is_empty() {
            None
        } else {
            self.short_spill.get(&key).copied()
        }
    }

    /// Id of `name` if already interned.
    pub fn get(&self, name: &str) -> Option<ModuleId> {
        match inline_key(name) {
            Some(key) => self.find_short(key),
            None => self.ids.get(name).copied(),
        }
    }

    /// Name behind `id`.
    pub fn name(&self, id: ModuleId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct interned modules.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no module has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::HwTask;
    use fabric::Resources;

    fn task(id: u32, module: &str) -> HwTask {
        HwTask {
            id,
            module: module.into(),
            needs: Resources::new(1, 0, 0),
            arrival_ns: u64::from(id),
            exec_ns: 1,
            deadline_ns: None,
        }
    }

    #[test]
    fn interning_is_dense_and_stable() {
        let mut t = ModuleTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(t.intern("a"), a);
        assert_ne!(a, b);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(t.name(b), "b");
        assert_eq!(t.get("b"), Some(b));
        assert_eq!(t.get("c"), None);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    /// The inline-key fast path must distinguish every name the slow
    /// path would: length-7 boundary, NUL-padded prefixes, and long
    /// names sharing a 7-byte prefix.
    #[test]
    fn short_and_long_names_never_alias() {
        let mut t = ModuleTable::new();
        let names = ["a", "a\0", "a\0\0", "abcdefg", "abcdefgh", "abcdefgz", ""];
        let ids: Vec<ModuleId> = names.iter().map(|n| t.intern(n)).collect();
        assert_eq!(t.len(), names.len());
        for (n, &id) in names.iter().zip(&ids) {
            assert_eq!(t.intern(n), id, "{n:?} re-interned differently");
            assert_eq!(t.get(n), Some(id));
            assert_eq!(t.name(id), *n);
        }
    }

    /// More distinct short names than the scan list holds: the spill map
    /// must keep every id stable and distinct.
    #[test]
    fn short_name_spill_stays_consistent() {
        let mut t = ModuleTable::new();
        let names: Vec<String> = (0..100).map(|i| format!("m{i}")).collect();
        let ids: Vec<ModuleId> = names.iter().map(|n| t.intern(n)).collect();
        assert_eq!(t.len(), 100);
        for (n, &id) in names.iter().zip(&ids) {
            assert_eq!(t.intern(n), id);
            assert_eq!(t.get(n), Some(id));
            assert_eq!(t.name(id), *n);
        }
    }

    #[test]
    fn from_workload_maps_every_task() {
        let wl = Workload::new(vec![task(0, "x"), task(1, "y"), task(2, "x")]);
        let (table, ids) = ModuleTable::from_workload(&wl);
        assert_eq!(table.len(), 2);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(table.name(ids[1]), "y");
    }
}
