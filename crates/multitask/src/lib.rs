//! # `multitask` — hardware multitasking on a PR FPGA
//!
//! The paper's motivation: PRRs time-multiplex hardware tasks (PRMs), and
//! the PRR size/organization chosen at design time determines partial
//! bitstream sizes, hence reconfiguration times, hence overall system
//! performance — a badly sized PRR can make the PR system *slower than a
//! non-PR design*. This crate makes that end-to-end story executable:
//!
//! * [`task`] — hardware tasks with resource requirements, execution times
//!   and arrivals (plus a deterministic workload generator).
//! * [`system`] — a PR system: one device, a static region, and a set of
//!   placed PRRs (planned by `prcost` or supplied explicitly), with the
//!   single shared ICAP the paper describes ("desynchronization releases
//!   the ICAP, which allows other PRRs to be reconfigured").
//! * [`sched`] — PRR selection policies: first-fit, best-fit (least
//!   overprovisioned PRR), reuse-aware (prefer a PRR that already holds
//!   the task's module, skipping reconfiguration entirely), and
//!   deadline-aware (minimize predicted completion using the
//!   [`SchedContext`] dispatch snapshot).
//! * [`sim`] — a discrete-event simulator producing makespan, waiting
//!   times, reconfiguration counts/time and per-PRR utilization. The core
//!   is allocation-free after setup: interned module ids ([`intern`]),
//!   per-task fits bitmasks, a binary-heap event queue and a reusable
//!   [`SimScratch`], with [`simulate_batch`] fanning scenarios across
//!   rayon workers (one scratch per worker).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod intern;
pub mod preempt;
pub mod sched;
pub mod sim;
pub mod system;
pub mod task;
pub mod trace;

pub use intern::{ModuleId, ModuleTable};
pub use preempt::{simulate_preemptive, PreemptReport, PreemptiveTask};
pub use sched::{BestFit, DeadlineAware, FirstFit, PrrState, ReuseAware, SchedContext, Scheduler};
pub use sim::{
    simulate, simulate_batch, simulate_full_reconfig, simulate_static, simulate_with_scratch,
    Scenario, SimReport, SimScratch,
};
pub use system::{PrSystem, PrrSlot, SystemError};
pub use task::{HwTask, Workload};
pub use trace::{parse_trace, parse_workload, write_trace, write_workload};
