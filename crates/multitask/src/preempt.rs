//! Preemptive hardware multitasking with context save/restore.
//!
//! The authors' companion work (\[5\] FCCM'13, \[6\] ARC'13) makes hardware
//! tasks preemptible: a running PRM's state is read back through the
//! configuration plane, the PRR is given to a more urgent task, and the
//! victim later resumes (bitstream write + context restore) on a
//! compatible PRR. This module simulates that discipline on top of the
//! cost models: every configuration-plane operation — context save,
//! bitstream write, context restore — serializes through the single ICAP
//! and is costed from the PRR organization via `prcost` Eq. 18 and
//! `bitstream::context_cost`.

use crate::intern::{ModuleId, ModuleTable};
use crate::system::PrSystem;
use bitstream::readback::context_cost;
use fabric::Resources;
use serde::{Deserialize, Serialize};

/// A prioritized hardware task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptiveTask {
    /// Task id.
    pub id: u32,
    /// Module name (bitstream identity).
    pub module: String,
    /// Resources needed inside the PRR.
    pub needs: Resources,
    /// Arrival time (ns).
    pub arrival_ns: u64,
    /// Total execution time (ns).
    pub exec_ns: u64,
    /// Priority; higher preempts lower.
    pub priority: u8,
}

/// Outcome metrics of a preemptive simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PreemptReport {
    /// Tasks completed.
    pub completed: u32,
    /// Completion time of the last task.
    pub makespan_ns: u64,
    /// Preemptions performed.
    pub preemptions: u32,
    /// Plain reconfigurations (bitstream writes).
    pub reconfigurations: u32,
    /// Context saves + restores.
    pub context_transfers: u32,
    /// Total ICAP time spent on context save/restore.
    pub context_switch_ns: u64,
    /// Total ICAP busy time (writes + saves + restores).
    pub icap_busy_ns: u64,
    /// Mean response time (first dispatch - arrival) of priority >= 2
    /// tasks ("urgent"), ns.
    pub urgent_mean_response_ns: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    task: PreemptiveTask,
    remaining_ns: u64,
    /// True if the task ran before and must restore its context.
    saved: bool,
    /// First-dispatch response recorded?
    responded: bool,
}

#[derive(Debug, Clone)]
struct Running {
    pending_idx: usize,
    exec_start: u64,
    done_at: u64,
    priority: u8,
}

/// Simulate `tasks` on `system` under preemptive priority scheduling.
///
/// Configuration-plane costs: a dispatch onto a PRR holding a different
/// module pays the PRR's bitstream write; resuming a preempted task
/// additionally pays its context restore; preempting pays the victim's
/// context save. All serialize on the ICAP.
pub fn simulate_preemptive(system: &PrSystem, tasks: &[PreemptiveTask]) -> PreemptReport {
    let n_slots = system.prrs.len();
    let mut slot_free_at = vec![0u64; n_slots];
    let mut slot_running: Vec<Option<Running>> = vec![None; n_slots];
    let mut slot_module: Vec<Option<ModuleId>> = vec![None; n_slots];
    let mut icap_free_at = 0u64;

    let mut pending: Vec<Pending> = tasks
        .iter()
        .cloned()
        .map(|task| Pending {
            remaining_ns: task.exec_ns,
            task,
            saved: false,
            responded: false,
        })
        .collect();
    pending.sort_by_key(|p| (p.task.arrival_ns, p.task.id));

    // Hot-path precomputation (mirrors `sim`): intern module names once so
    // reconfiguration checks are integer compares, and freeze each task's
    // per-slot fits bitmask so dispatch never rescans `fits` per slot.
    let mut modules = ModuleTable::new();
    let module_ids: Vec<ModuleId> = pending
        .iter()
        .map(|p| modules.intern(&p.task.module))
        .collect();
    let avail: Vec<Resources> = system.prrs.iter().map(|p| p.available()).collect();
    let words_per_task = n_slots.div_ceil(64).max(1);
    let mut fits_bits = vec![0u64; pending.len() * words_per_task];
    for (ti, p) in pending.iter().enumerate() {
        for (si, a) in avail.iter().enumerate() {
            if a.covers(&p.task.needs) {
                fits_bits[ti * words_per_task + si / 64] |= 1u64 << (si % 64);
            }
        }
    }
    let fits_any = |ti: usize| {
        fits_bits[ti * words_per_task..(ti + 1) * words_per_task]
            .iter()
            .any(|&w| w != 0)
    };
    let fits_slot =
        |ti: usize, si: usize| fits_bits[ti * words_per_task + si / 64] >> (si % 64) & 1 == 1;

    let mut waiting: Vec<usize> = Vec::new(); // indices into pending
    let mut next_arrival = 0usize;
    let mut report = PreemptReport {
        completed: 0,
        makespan_ns: 0,
        preemptions: 0,
        reconfigurations: 0,
        context_transfers: 0,
        context_switch_ns: 0,
        icap_busy_ns: 0,
        urgent_mean_response_ns: 0,
    };
    let mut urgent_responses: Vec<u64> = Vec::new();
    let mut now = 0u64;

    loop {
        // Admit arrivals.
        while next_arrival < pending.len() && pending[next_arrival].task.arrival_ns <= now {
            waiting.push(next_arrival);
            next_arrival += 1;
        }
        // Retire completed tasks.
        for slot in slot_running.iter_mut() {
            if let Some(run) = slot {
                if run.done_at <= now {
                    report.completed += 1;
                    report.makespan_ns = report.makespan_ns.max(run.done_at);
                    *slot = None;
                }
            }
        }

        // Dispatch: highest priority first, FIFO within priority.
        waiting.sort_by_key(|&i| {
            (
                std::cmp::Reverse(pending[i].task.priority),
                pending[i].task.arrival_ns,
                pending[i].task.id,
            )
        });
        loop {
            let Some(pos) = waiting.iter().position(|&i| fits_any(i)) else {
                // Drop unservable tasks.
                if !waiting.is_empty() && waiting.iter().all(|&i| !fits_any(i)) {
                    waiting.clear();
                }
                break;
            };
            let pi = waiting[pos];
            let prio = pending[pi].task.priority;

            // Free fitting PRR?
            let free = (0..n_slots)
                .find(|&s| slot_free_at[s] <= now && slot_running[s].is_none() && fits_slot(pi, s));
            let slot = match free {
                Some(s) => Some(s),
                None => {
                    // Preempt the lowest-priority strictly-lower victim.
                    (0..n_slots)
                        .filter(|&s| {
                            fits_slot(pi, s)
                                && slot_running[s]
                                    .as_ref()
                                    .is_some_and(|r| r.priority < prio && r.done_at > now)
                        })
                        .min_by_key(|&s| slot_running[s].as_ref().map(|r| r.priority))
                }
            };
            let Some(s) = slot else { break };

            // If preempting, save the victim's context first.
            let mut t = now.max(icap_free_at);
            if let Some(victim) = slot_running[s].take() {
                let ctx = context_cost(&system.prrs[s].organization);
                let save_ns = ctx.save_time(&system.icap).as_nanos() as u64;
                let ran = t.saturating_sub(victim.exec_start);
                let vi = victim.pending_idx;
                pending[vi].remaining_ns = pending[vi].remaining_ns.saturating_sub(ran);
                pending[vi].saved = true;
                waiting.push(vi);
                t += save_ns;
                report.preemptions += 1;
                report.context_transfers += 1;
                report.context_switch_ns += save_ns;
                report.icap_busy_ns += save_ns;
            }

            // Bitstream write if the module differs, restore if resuming.
            let needs_write = slot_module[s] != Some(module_ids[pi]);
            if needs_write {
                let w = system.reconfig_ns(&system.prrs[s]);
                t += w;
                report.reconfigurations += 1;
                report.icap_busy_ns += w;
                slot_module[s] = Some(module_ids[pi]);
            }
            if pending[pi].saved {
                let ctx = context_cost(&system.prrs[s].organization);
                let r = ctx.restore_time(&system.icap).as_nanos() as u64;
                t += r;
                report.context_transfers += 1;
                report.context_switch_ns += r;
                report.icap_busy_ns += r;
            }
            icap_free_at = t;

            if !pending[pi].responded {
                pending[pi].responded = true;
                if pending[pi].task.priority >= 2 {
                    urgent_responses.push(t - pending[pi].task.arrival_ns);
                }
            }
            let done = t + pending[pi].remaining_ns;
            slot_running[s] = Some(Running {
                pending_idx: pi,
                exec_start: t,
                done_at: done,
                priority: prio,
            });
            slot_free_at[s] = done;
            waiting.remove(
                waiting
                    .iter()
                    .position(|&i| i == pi)
                    .expect("pi is waiting"),
            );
        }

        // Advance the clock.
        let mut next = u64::MAX;
        if next_arrival < pending.len() {
            next = next.min(pending[next_arrival].task.arrival_ns);
        }
        for run in slot_running.iter().flatten() {
            if run.done_at > now {
                next = next.min(run.done_at);
            }
        }
        if !waiting.is_empty() && icap_free_at > now {
            next = next.min(icap_free_at);
        }
        if next == u64::MAX {
            break;
        }
        now = next;
    }

    if !urgent_responses.is_empty() {
        report.urgent_mean_response_ns =
            urgent_responses.iter().sum::<u64>() / urgent_responses.len() as u64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::PrSystem;
    use bitstream::IcapModel;
    use fabric::{database::xc5vlx110t, Family};
    use prcost::PrrOrganization;

    fn system(prrs: u32) -> PrSystem {
        let org = PrrOrganization {
            family: Family::Virtex5,
            height: 1,
            clb_cols: 4,
            dsp_cols: 0,
            bram_cols: 0,
        };
        PrSystem::homogeneous(&xc5vlx110t(), org, prrs, IcapModel::V5_DMA).unwrap()
    }

    fn task(id: u32, module: &str, arrival: u64, exec: u64, priority: u8) -> PreemptiveTask {
        PreemptiveTask {
            id,
            module: module.into(),
            needs: Resources::new(40, 0, 0),
            arrival_ns: arrival,
            exec_ns: exec,
            priority,
        }
    }

    #[test]
    fn no_preemption_without_priority_inversion() {
        let sys = system(1);
        let r = simulate_preemptive(
            &sys,
            &[task(0, "a", 0, 1_000, 1), task(1, "b", 10, 1_000, 1)],
        );
        assert_eq!(r.completed, 2);
        assert_eq!(r.preemptions, 0, "equal priority never preempts");
        assert_eq!(r.reconfigurations, 2);
    }

    #[test]
    fn urgent_task_preempts_and_victim_resumes() {
        let sys = system(1);
        // Long low-priority task; urgent task arrives mid-flight.
        let r = simulate_preemptive(
            &sys,
            &[
                task(0, "bg", 0, 10_000_000, 0),
                task(1, "rt", 1_000_000, 50_000, 3),
            ],
        );
        assert_eq!(r.completed, 2);
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.context_transfers, 2, "one save + one restore");
        // The victim resumed: total work conserved, makespan covers both.
        assert!(r.makespan_ns > 10_000_000);
        // Urgent response is bounded by save + write, far below waiting
        // out the 10 ms background task.
        assert!(
            r.urgent_mean_response_ns < 1_000_000,
            "{}",
            r.urgent_mean_response_ns
        );
    }

    #[test]
    fn preemption_work_is_conserved() {
        let sys = system(1);
        let r = simulate_preemptive(
            &sys,
            &[
                task(0, "bg", 0, 5_000_000, 0),
                task(1, "rt1", 500_000, 100_000, 2),
                task(2, "rt2", 2_000_000, 100_000, 3),
            ],
        );
        assert_eq!(r.completed, 3);
        assert!(r.preemptions >= 2);
        // Makespan >= sum of exec (single PRR) — nothing vanishes.
        assert!(r.makespan_ns >= 5_200_000);
    }

    #[test]
    fn two_prrs_avoid_preemption_when_possible() {
        let sys = system(2);
        let r = simulate_preemptive(
            &sys,
            &[
                task(0, "bg", 0, 10_000_000, 0),
                task(1, "rt", 1_000_000, 50_000, 3),
            ],
        );
        assert_eq!(r.preemptions, 0, "free PRR available, no need to preempt");
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn unservable_tasks_are_dropped() {
        let sys = system(1);
        let mut big = task(0, "huge", 0, 1_000, 3);
        big.needs = Resources::new(100_000, 0, 0);
        let r = simulate_preemptive(&sys, &[big, task(1, "a", 0, 1_000, 0)]);
        assert_eq!(r.completed, 1);
    }

    /// Context-switch overhead scales with the PRR organization — the
    /// paper's size/bitstream trade shows up in preemption latency too.
    #[test]
    fn bigger_prrs_pay_bigger_context_switches() {
        let small_sys = system(1);
        let big_org = PrrOrganization {
            family: Family::Virtex5,
            height: 4,
            clb_cols: 8,
            dsp_cols: 0,
            bram_cols: 0,
        };
        let big_sys = PrSystem::homogeneous(&xc5vlx110t(), big_org, 1, IcapModel::V5_DMA).unwrap();
        let tasks = [
            task(0, "bg", 0, 10_000_000, 0),
            task(1, "rt", 1_000_000, 50_000, 3),
        ];
        let small = simulate_preemptive(&small_sys, &tasks);
        let big = simulate_preemptive(&big_sys, &tasks);
        assert!(big.context_switch_ns > small.context_switch_ns);
    }
}
