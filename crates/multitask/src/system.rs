//! PR system model: a device partitioned into a static region and PRRs.

use bitstream::IcapModel;
use core::fmt;
use fabric::{Device, Resources, Window};
use prcost::{bitstream_size_bytes, PrrOrganization};
use serde::{Deserialize, Serialize};

/// One placed PRR available for time-multiplexing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrrSlot {
    /// Slot id.
    pub id: u32,
    /// Organization (determines available resources and bitstream size).
    pub organization: PrrOrganization,
    /// Physical placement.
    pub window: Window,
    /// Partial bitstream size for this PRR, bytes (Eq. 18) — identical for
    /// every PRM loaded into it, since the bitstream covers the whole PRR.
    pub bitstream_bytes: u64,
}

impl PrrSlot {
    /// Build a slot, deriving the bitstream size from the organization.
    pub fn new(id: u32, organization: PrrOrganization, window: Window) -> Self {
        let bitstream_bytes = bitstream_size_bytes(&organization);
        PrrSlot {
            id,
            organization,
            window,
            bitstream_bytes,
        }
    }

    /// Resources this PRR offers.
    pub fn available(&self) -> Resources {
        self.organization.available()
    }

    /// Whether a task needing `needs` fits.
    pub fn fits(&self, needs: &Resources) -> bool {
        self.available().covers(needs)
    }
}

/// System construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// Two PRRs overlap on the fabric.
    Overlap {
        /// First slot id.
        a: u32,
        /// Second slot id.
        b: u32,
    },
    /// A PRR does not fit the device.
    OutOfBounds {
        /// Offending slot id.
        id: u32,
    },
    /// A PRR's window composition disagrees with its organization.
    Composition {
        /// Offending slot id.
        id: u32,
    },
    /// No PRR in the system fits a required footprint.
    NoFit,
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Overlap { a, b } => write!(f, "PRR {a} overlaps PRR {b}"),
            SystemError::OutOfBounds { id } => write!(f, "PRR {id} exceeds device bounds"),
            SystemError::Composition { id } => {
                write!(f, "PRR {id}'s window does not match its organization")
            }
            SystemError::NoFit => write!(f, "no PRR fits the requested footprint"),
        }
    }
}

impl std::error::Error for SystemError {}

/// A PR system: device + PRR pool + the single shared ICAP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrSystem {
    /// Device name.
    pub device: String,
    /// All PRRs.
    pub prrs: Vec<PrrSlot>,
    /// Configuration port model (shared: one reconfiguration at a time).
    pub icap: IcapModel,
}

impl PrSystem {
    /// Validate and build a system.
    pub fn new(device: &Device, prrs: Vec<PrrSlot>, icap: IcapModel) -> Result<Self, SystemError> {
        for slot in &prrs {
            let w = &slot.window;
            if w.end_col() > device.width() || device.check_row_span(w.row, w.height).is_err() {
                return Err(SystemError::OutOfBounds { id: slot.id });
            }
            let counts = w.column_counts();
            if counts.clb() != u64::from(slot.organization.clb_cols)
                || counts.dsp() != u64::from(slot.organization.dsp_cols)
                || counts.bram() != u64::from(slot.organization.bram_cols)
                || w.height != slot.organization.height
            {
                return Err(SystemError::Composition { id: slot.id });
            }
        }
        for (i, a) in prrs.iter().enumerate() {
            for b in &prrs[i + 1..] {
                if a.window.overlaps(&b.window) {
                    return Err(SystemError::Overlap { a: a.id, b: b.id });
                }
            }
        }
        Ok(PrSystem {
            device: device.name().to_string(),
            prrs,
            icap,
        })
    }

    /// Build a homogeneous system: `count` identical PRRs of `organization`
    /// placed left to right on non-overlapping windows.
    pub fn homogeneous(
        device: &Device,
        organization: PrrOrganization,
        count: u32,
        icap: IcapModel,
    ) -> Result<Self, SystemError> {
        let req = organization.window_request();
        let mut slots = Vec::new();
        let mut taken: Vec<Window> = Vec::new();
        for w in device.windows(&req) {
            if slots.len() as u32 == count {
                break;
            }
            if taken.iter().any(|t| t.overlaps(&w)) {
                continue;
            }
            taken.push(w.clone());
            slots.push(PrrSlot::new(slots.len() as u32, organization, w));
        }
        // Stack vertically too if the columns allow more rows.
        if (slots.len() as u32) < count && organization.height < device.rows() {
            let mut extra = Vec::new();
            for base in &slots {
                let mut row = base.window.row + organization.height;
                while row + organization.height - 1 <= device.rows()
                    && (slots.len() + extra.len()) < count as usize
                {
                    let mut w = base.window.clone();
                    w.row = row;
                    extra.push(PrrSlot::new(
                        (slots.len() + extra.len()) as u32,
                        organization,
                        w,
                    ));
                    row += organization.height;
                }
            }
            slots.extend(extra);
        }
        if (slots.len() as u32) < count {
            return Err(SystemError::NoFit);
        }
        PrSystem::new(device, slots, icap)
    }

    /// Reconfiguration time for one PRR through the shared ICAP.
    pub fn reconfig_ns(&self, slot: &PrrSlot) -> u64 {
        self.icap.transfer_time(slot.bitstream_bytes).as_nanos() as u64
    }

    /// Restrict a workload to the tasks some PRR of this system can host.
    /// Useful for comparing systems on a common servable task set.
    pub fn filter_workload(&self, workload: &crate::task::Workload) -> crate::task::Workload {
        crate::task::Workload::new(
            workload
                .tasks
                .iter()
                .filter(|t| self.prrs.iter().any(|p| p.fits(&t.needs)))
                .cloned()
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::xc5vlx110t;
    use fabric::Family;

    fn org(h: u32, clb: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: h,
            clb_cols: clb,
            dsp_cols: 0,
            bram_cols: 0,
        }
    }

    #[test]
    fn homogeneous_builds_disjoint_prrs() {
        let device = xc5vlx110t();
        let sys = PrSystem::homogeneous(&device, org(1, 4), 6, IcapModel::V5_DMA).unwrap();
        assert_eq!(sys.prrs.len(), 6);
        for (i, a) in sys.prrs.iter().enumerate() {
            for b in &sys.prrs[i + 1..] {
                assert!(!a.window.overlaps(&b.window));
            }
        }
    }

    #[test]
    fn vertical_stacking_multiplies_capacity() {
        let device = xc5vlx110t();
        // 4 contiguous CLB columns exist in a handful of places; stacking
        // 8 rows high gives many more slots.
        let sys = PrSystem::homogeneous(&device, org(1, 4), 20, IcapModel::V5_DMA).unwrap();
        assert_eq!(sys.prrs.len(), 20);
    }

    #[test]
    fn impossible_count_is_rejected() {
        let device = xc5vlx110t();
        assert_eq!(
            PrSystem::homogeneous(&device, org(8, 20), 9, IcapModel::V5_DMA),
            Err(SystemError::NoFit)
        );
    }

    #[test]
    fn overlap_detection() {
        let device = xc5vlx110t();
        let w = device.find_window(&org(2, 3).window_request()).unwrap();
        let a = PrrSlot::new(0, org(2, 3), w.clone());
        let b = PrrSlot::new(1, org(2, 3), w);
        assert_eq!(
            PrSystem::new(&device, vec![a, b], IcapModel::V5_DMA),
            Err(SystemError::Overlap { a: 0, b: 1 })
        );
    }

    #[test]
    fn composition_mismatch_is_rejected() {
        let device = xc5vlx110t();
        let w = device.find_window(&org(1, 3).window_request()).unwrap();
        let slot = PrrSlot::new(0, org(1, 2), w); // org says 2 cols, window has 3
        assert_eq!(
            PrSystem::new(&device, vec![slot], IcapModel::V5_DMA),
            Err(SystemError::Composition { id: 0 })
        );
    }

    #[test]
    fn bigger_prrs_reconfigure_slower() {
        let device = xc5vlx110t();
        let small = PrrSlot::new(
            0,
            org(1, 2),
            device.find_window(&org(1, 2).window_request()).unwrap(),
        );
        let big = PrrSlot::new(
            1,
            org(2, 8),
            device.find_window(&org(2, 8).window_request()).unwrap(),
        );
        let sys = PrSystem::new(&device, vec![small.clone()], IcapModel::V5_DMA).unwrap();
        assert!(sys.reconfig_ns(&big) > sys.reconfig_ns(&small));
    }
}
