//! PRR selection policies.
//!
//! The scheduler API is built for the allocation-free simulator core:
//! per-slot state is a `Copy` snapshot holding an interned [`ModuleId`]
//! (no `String` clones per dispatch), and the task's own module id is
//! passed alongside the task so reuse checks are integer compares.

use crate::intern::ModuleId;
use fabric::Resources;

/// Runtime state of one PRR the scheduler can inspect.
///
/// `Copy`: the simulator refreshes a reusable snapshot buffer with these
/// per dispatch instead of allocating and cloning module names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrrState {
    /// Whether a task is currently executing (or the slot is mid-reconfig).
    pub busy: bool,
    /// Module currently configured into the PRR, if any (interned).
    pub loaded_module: Option<ModuleId>,
}

/// A PRR selection policy: pick a free PRR for `task`, or `None` to wait.
///
/// `Send + Sync` so trait objects can be shared across the workers of
/// [`crate::simulate_batch`].
pub trait Scheduler: Send + Sync {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Choose among the indices of free, fitting PRRs. `candidates` is
    /// never empty. `needs` is the task's resource demand and `module`
    /// its interned module id — the only task attributes a policy may
    /// use, passed directly so the simulator's dispatch loop never has
    /// to touch the (cache-cold) task array. `avail` is each slot's
    /// available resources, hoisted once per simulation so policies
    /// don't recompute column products per dispatch.
    fn choose(
        &self,
        needs: &Resources,
        module: ModuleId,
        candidates: &[usize],
        avail: &[Resources],
        states: &[PrrState],
    ) -> usize;
}

/// First fit: lowest-id free PRR that fits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl Scheduler for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn choose(
        &self,
        _needs: &Resources,
        _module: ModuleId,
        candidates: &[usize],
        _avail: &[Resources],
        _states: &[PrrState],
    ) -> usize {
        candidates[0]
    }
}

/// Best fit: the fitting PRR with the fewest spare resources (least
/// internal fragmentation), measured in CLB-equivalents.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

fn spare_cost(needs: &Resources, avail: &Resources) -> u64 {
    let spare = avail.saturating_sub(needs);
    // Weight DSP/BRAM columns by their CLB-equivalent area.
    spare.clb() + spare.dsp() * 3 + spare.bram() * 5
}

impl Scheduler for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn choose(
        &self,
        needs: &Resources,
        _module: ModuleId,
        candidates: &[usize],
        avail: &[Resources],
        _states: &[PrrState],
    ) -> usize {
        *candidates
            .iter()
            .min_by_key(|&&i| (spare_cost(needs, &avail[i]), i))
            .expect("candidates is non-empty")
    }
}

/// Reuse aware: prefer a free PRR that already holds this task's module
/// (skipping reconfiguration entirely); fall back to best fit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReuseAware;

impl Scheduler for ReuseAware {
    fn name(&self) -> &'static str {
        "reuse-aware"
    }

    fn choose(
        &self,
        needs: &Resources,
        module: ModuleId,
        candidates: &[usize],
        avail: &[Resources],
        states: &[PrrState],
    ) -> usize {
        if let Some(&hit) = candidates
            .iter()
            .find(|&&i| states[i].loaded_module == Some(module))
        {
            return hit;
        }
        BestFit.choose(needs, module, candidates, avail, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Family;
    use prcost::PrrOrganization;

    /// Available resources of a 1-row, `clb_cols`-column CLB-only PRR.
    fn avail(clb_cols: u32) -> Resources {
        PrrOrganization {
            family: Family::Virtex5,
            height: 1,
            clb_cols,
            dsp_cols: 0,
            bram_cols: 0,
        }
        .available()
    }

    const M: ModuleId = ModuleId(0);
    const OTHER: ModuleId = ModuleId(1);

    fn free(loaded_module: Option<ModuleId>) -> PrrState {
        PrrState {
            busy: false,
            loaded_module,
        }
    }

    #[test]
    fn first_fit_takes_lowest_index() {
        let av = vec![avail(8), avail(2)];
        let states = vec![free(None), free(None)];
        let needs = Resources::new(10, 0, 0);
        assert_eq!(FirstFit.choose(&needs, M, &[0, 1], &av, &states), 0);
    }

    #[test]
    fn best_fit_minimizes_spare() {
        let av = vec![avail(8), avail(2)];
        let states = vec![free(None), free(None)];
        // Task needs 30 CLBs: slot 1 (2 cols = 40 CLBs) is tighter than
        // slot 0 (8 cols = 160 CLBs).
        let needs = Resources::new(30, 0, 0);
        assert_eq!(BestFit.choose(&needs, M, &[0, 1], &av, &states), 1);
    }

    #[test]
    fn reuse_beats_best_fit() {
        let av = vec![avail(8), avail(2)];
        let states = vec![free(Some(M)), free(None)];
        let needs = Resources::new(30, 0, 0);
        // Best fit would pick 1; reuse-aware picks 0 (already loaded).
        assert_eq!(ReuseAware.choose(&needs, M, &[0, 1], &av, &states), 0);
        // Different module: falls back to best fit.
        assert_eq!(ReuseAware.choose(&needs, OTHER, &[0, 1], &av, &states), 1);
    }
}
