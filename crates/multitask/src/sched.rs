//! PRR selection policies.

use crate::system::PrrSlot;
use crate::task::HwTask;

/// Runtime state of one PRR the scheduler can inspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrrState {
    /// Whether a task is currently executing (or the slot is mid-reconfig).
    pub busy: bool,
    /// Module currently configured into the PRR, if any.
    pub loaded_module: Option<String>,
}

/// A PRR selection policy: pick a free PRR for `task`, or `None` to wait.
pub trait Scheduler {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Choose among the indices of free, fitting PRRs. `candidates` is
    /// never empty.
    fn choose(
        &self,
        task: &HwTask,
        candidates: &[usize],
        slots: &[PrrSlot],
        states: &[PrrState],
    ) -> usize;
}

/// First fit: lowest-id free PRR that fits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl Scheduler for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn choose(
        &self,
        _task: &HwTask,
        candidates: &[usize],
        _slots: &[PrrSlot],
        _states: &[PrrState],
    ) -> usize {
        candidates[0]
    }
}

/// Best fit: the fitting PRR with the fewest spare resources (least
/// internal fragmentation), measured in CLB-equivalents.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

fn spare_cost(task: &HwTask, slot: &PrrSlot) -> u64 {
    let avail = slot.available();
    let spare = avail.saturating_sub(&task.needs);
    // Weight DSP/BRAM columns by their CLB-equivalent area.
    spare.clb() + spare.dsp() * 3 + spare.bram() * 5
}

impl Scheduler for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn choose(
        &self,
        task: &HwTask,
        candidates: &[usize],
        slots: &[PrrSlot],
        _states: &[PrrState],
    ) -> usize {
        *candidates
            .iter()
            .min_by_key(|&&i| (spare_cost(task, &slots[i]), i))
            .expect("candidates is non-empty")
    }
}

/// Reuse aware: prefer a free PRR that already holds this task's module
/// (skipping reconfiguration entirely); fall back to best fit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReuseAware;

impl Scheduler for ReuseAware {
    fn name(&self) -> &'static str {
        "reuse-aware"
    }

    fn choose(
        &self,
        task: &HwTask,
        candidates: &[usize],
        slots: &[PrrSlot],
        states: &[PrrState],
    ) -> usize {
        if let Some(&hit) = candidates
            .iter()
            .find(|&&i| states[i].loaded_module.as_deref() == Some(task.module.as_str()))
        {
            return hit;
        }
        BestFit.choose(task, candidates, slots, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{Family, Resources};
    use prcost::PrrOrganization;

    fn slot(id: u32, clb_cols: u32) -> PrrSlot {
        let org = PrrOrganization {
            family: Family::Virtex5,
            height: 1,
            clb_cols,
            dsp_cols: 0,
            bram_cols: 0,
        };
        PrrSlot {
            id,
            organization: org,
            window: fabric::Window {
                start_col: id as usize * 10,
                width: clb_cols,
                row: 1,
                height: 1,
                columns: vec![fabric::ResourceKind::Clb; clb_cols as usize],
            },
            bitstream_bytes: prcost::bitstream_size_bytes(&org),
        }
    }

    fn task(module: &str, clbs: u64) -> HwTask {
        HwTask {
            id: 0,
            module: module.into(),
            needs: Resources::new(clbs, 0, 0),
            arrival_ns: 0,
            exec_ns: 100,
        }
    }

    #[test]
    fn first_fit_takes_lowest_index() {
        let slots = vec![slot(0, 8), slot(1, 2)];
        let states = vec![
            PrrState {
                busy: false,
                loaded_module: None,
            },
            PrrState {
                busy: false,
                loaded_module: None,
            },
        ];
        let t = task("m", 10);
        assert_eq!(FirstFit.choose(&t, &[0, 1], &slots, &states), 0);
    }

    #[test]
    fn best_fit_minimizes_spare() {
        let slots = vec![slot(0, 8), slot(1, 2)];
        let states = vec![
            PrrState {
                busy: false,
                loaded_module: None,
            },
            PrrState {
                busy: false,
                loaded_module: None,
            },
        ];
        // Task needs 30 CLBs: slot 1 (2 cols = 40 CLBs) is tighter than
        // slot 0 (8 cols = 160 CLBs).
        let t = task("m", 30);
        assert_eq!(BestFit.choose(&t, &[0, 1], &slots, &states), 1);
    }

    #[test]
    fn reuse_beats_best_fit() {
        let slots = vec![slot(0, 8), slot(1, 2)];
        let states = vec![
            PrrState {
                busy: false,
                loaded_module: Some("m".into()),
            },
            PrrState {
                busy: false,
                loaded_module: None,
            },
        ];
        let t = task("m", 30);
        // Best fit would pick 1; reuse-aware picks 0 (already loaded).
        assert_eq!(ReuseAware.choose(&t, &[0, 1], &slots, &states), 0);
        // Different module: falls back to best fit.
        let other = task("x", 30);
        assert_eq!(ReuseAware.choose(&other, &[0, 1], &slots, &states), 1);
    }
}
