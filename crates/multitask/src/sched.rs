//! PRR selection policies.
//!
//! The scheduler API is built for the allocation-free simulator core:
//! per-slot state is a `Copy` snapshot holding an interned [`ModuleId`]
//! (no `String` clones per dispatch), and the task's own module id is
//! passed alongside the task so reuse checks are integer compares. The
//! [`SchedContext`] argument carries the dispatch instant's global
//! state — clock, queue depth, deadline, ICAP availability and hoisted
//! per-slot reconfiguration times — so policies (the deadline-aware and
//! learned ones in particular) can price a choice without touching the
//! simulator's internals.

use crate::intern::ModuleId;
use fabric::Resources;

/// Runtime state of one PRR the scheduler can inspect.
///
/// `Copy`: the simulator refreshes a reusable snapshot buffer with these
/// per dispatch instead of allocating and cloning module names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrrState {
    /// Whether a task is currently executing (or the slot is mid-reconfig).
    pub busy: bool,
    /// Module currently configured into the PRR, if any (interned).
    pub loaded_module: Option<ModuleId>,
}

/// Read-only dispatch context passed to [`Scheduler::choose`]: everything
/// about the dispatch instant that is not a per-slot attribute.
///
/// Built fresh by the simulator for every dispatch; the slice borrows the
/// simulator's hoisted per-slot reconfiguration times, so constructing a
/// context allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct SchedContext<'a> {
    /// Current simulation time (ns).
    pub now: u64,
    /// Tasks queued *behind* the one being dispatched.
    pub queue_len: usize,
    /// The dispatching task's arrival time (ns).
    pub arrival_ns: u64,
    /// The dispatching task's execution time (ns).
    pub exec_ns: u64,
    /// The dispatching task's absolute deadline, if it has one.
    pub deadline_ns: Option<u64>,
    /// Instant the shared ICAP becomes free (≤ `now` means idle).
    pub icap_free_at: u64,
    /// Per-slot reconfiguration time through the ICAP (ns), indexed like
    /// `avail`/`states`.
    pub reconfig_ns: &'a [u64],
}

impl SchedContext<'_> {
    /// Completion time if the task is dispatched to slot `i` now: start
    /// immediately on a reuse hit, else wait for the ICAP and pay the
    /// slot's reconfiguration before executing.
    pub fn completion_on(&self, i: usize, module: ModuleId, states: &[PrrState]) -> u64 {
        let start = if states[i].loaded_module == Some(module) {
            self.now
        } else {
            self.now.max(self.icap_free_at) + self.reconfig_ns[i]
        };
        start + self.exec_ns
    }
}

/// A PRR selection policy: pick a free PRR for `task`, or `None` to wait.
///
/// `Send + Sync` so trait objects can be shared across the workers of
/// [`crate::simulate_batch`].
pub trait Scheduler: Send + Sync {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Choose among the indices of free, fitting PRRs. `candidates` is
    /// never empty. `needs` is the task's resource demand and `module`
    /// its interned module id — passed directly so the simulator's
    /// dispatch loop never has to touch the (cache-cold) task array.
    /// `ctx` carries the dispatch instant (clock, queue depth, deadline,
    /// ICAP state, per-slot reconfiguration times); `avail` is each
    /// slot's available resources, hoisted once per simulation so
    /// policies don't recompute column products per dispatch.
    fn choose(
        &self,
        ctx: &SchedContext<'_>,
        needs: &Resources,
        module: ModuleId,
        candidates: &[usize],
        avail: &[Resources],
        states: &[PrrState],
    ) -> usize;
}

/// First fit: lowest-id free PRR that fits.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl Scheduler for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn choose(
        &self,
        _ctx: &SchedContext<'_>,
        _needs: &Resources,
        _module: ModuleId,
        candidates: &[usize],
        _avail: &[Resources],
        _states: &[PrrState],
    ) -> usize {
        candidates[0]
    }
}

/// Best fit: the fitting PRR with the fewest spare resources (least
/// internal fragmentation), measured in CLB-equivalents.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

fn spare_cost(needs: &Resources, avail: &Resources) -> u64 {
    let spare = avail.saturating_sub(needs);
    // Weight DSP/BRAM columns by their CLB-equivalent area.
    spare.clb() + spare.dsp() * 3 + spare.bram() * 5
}

impl Scheduler for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn choose(
        &self,
        _ctx: &SchedContext<'_>,
        needs: &Resources,
        _module: ModuleId,
        candidates: &[usize],
        avail: &[Resources],
        _states: &[PrrState],
    ) -> usize {
        *candidates
            .iter()
            .min_by_key(|&&i| (spare_cost(needs, &avail[i]), i))
            .expect("candidates is non-empty")
    }
}

/// Reuse aware: prefer a free PRR that already holds this task's module
/// (skipping reconfiguration entirely); fall back to best fit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReuseAware;

impl Scheduler for ReuseAware {
    fn name(&self) -> &'static str {
        "reuse-aware"
    }

    fn choose(
        &self,
        ctx: &SchedContext<'_>,
        needs: &Resources,
        module: ModuleId,
        candidates: &[usize],
        avail: &[Resources],
        states: &[PrrState],
    ) -> usize {
        if let Some(&hit) = candidates
            .iter()
            .find(|&&i| states[i].loaded_module == Some(module))
        {
            return hit;
        }
        BestFit.choose(ctx, needs, module, candidates, avail, states)
    }
}

/// Deadline aware: minimize the task's predicted completion time
/// ([`SchedContext::completion_on`] — reuse beats reconfiguration, a
/// cheap slot beats an oversized one, and a queued ICAP is priced in);
/// among equal completions, tightest fit. Tasks without deadlines are
/// scheduled the same way — earliest completion is simply the greedy
/// response-time policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineAware;

impl Scheduler for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline-aware"
    }

    fn choose(
        &self,
        ctx: &SchedContext<'_>,
        needs: &Resources,
        module: ModuleId,
        candidates: &[usize],
        avail: &[Resources],
        states: &[PrrState],
    ) -> usize {
        *candidates
            .iter()
            .min_by_key(|&&i| {
                (
                    ctx.completion_on(i, module, states),
                    spare_cost(needs, &avail[i]),
                    i,
                )
            })
            .expect("candidates is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Family;
    use prcost::PrrOrganization;

    /// Available resources of a 1-row, `clb_cols`-column CLB-only PRR.
    fn avail(clb_cols: u32) -> Resources {
        PrrOrganization {
            family: Family::Virtex5,
            height: 1,
            clb_cols,
            dsp_cols: 0,
            bram_cols: 0,
        }
        .available()
    }

    const M: ModuleId = ModuleId(0);
    const OTHER: ModuleId = ModuleId(1);

    fn free(loaded_module: Option<ModuleId>) -> PrrState {
        PrrState {
            busy: false,
            loaded_module,
        }
    }

    fn ctx<'a>(reconfig_ns: &'a [u64]) -> SchedContext<'a> {
        SchedContext {
            now: 0,
            queue_len: 0,
            arrival_ns: 0,
            exec_ns: 100,
            deadline_ns: None,
            icap_free_at: 0,
            reconfig_ns,
        }
    }

    #[test]
    fn first_fit_takes_lowest_index() {
        let av = vec![avail(8), avail(2)];
        let states = vec![free(None), free(None)];
        let rc = [800, 200];
        let needs = Resources::new(10, 0, 0);
        assert_eq!(
            FirstFit.choose(&ctx(&rc), &needs, M, &[0, 1], &av, &states),
            0
        );
    }

    #[test]
    fn best_fit_minimizes_spare() {
        let av = vec![avail(8), avail(2)];
        let states = vec![free(None), free(None)];
        let rc = [800, 200];
        // Task needs 30 CLBs: slot 1 (2 cols = 40 CLBs) is tighter than
        // slot 0 (8 cols = 160 CLBs).
        let needs = Resources::new(30, 0, 0);
        assert_eq!(
            BestFit.choose(&ctx(&rc), &needs, M, &[0, 1], &av, &states),
            1
        );
    }

    #[test]
    fn reuse_beats_best_fit() {
        let av = vec![avail(8), avail(2)];
        let states = vec![free(Some(M)), free(None)];
        let rc = [800, 200];
        let needs = Resources::new(30, 0, 0);
        // Best fit would pick 1; reuse-aware picks 0 (already loaded).
        assert_eq!(
            ReuseAware.choose(&ctx(&rc), &needs, M, &[0, 1], &av, &states),
            0
        );
        // Different module: falls back to best fit.
        assert_eq!(
            ReuseAware.choose(&ctx(&rc), &needs, OTHER, &[0, 1], &av, &states),
            1
        );
    }

    #[test]
    fn deadline_aware_minimizes_completion() {
        let av = vec![avail(8), avail(2)];
        let rc = [800, 200];
        // Reuse on the big slot: completes at exec (100) vs 200 + 100.
        let states = vec![free(Some(M)), free(None)];
        assert_eq!(
            DeadlineAware.choose(
                &ctx(&rc),
                &Resources::new(10, 0, 0),
                M,
                &[0, 1],
                &av,
                &states
            ),
            0
        );
        // No reuse anywhere: the cheap-to-reconfigure slot wins.
        let states = vec![free(None), free(None)];
        assert_eq!(
            DeadlineAware.choose(
                &ctx(&rc),
                &Resources::new(10, 0, 0),
                M,
                &[0, 1],
                &av,
                &states
            ),
            1
        );
        // A busy ICAP delays both equally; the cheaper slot still wins.
        let mut c = ctx(&rc);
        c.icap_free_at = 10_000;
        assert_eq!(
            DeadlineAware.choose(&c, &Resources::new(10, 0, 0), M, &[0, 1], &av, &states),
            1
        );
    }

    #[test]
    fn completion_on_prices_reuse_and_icap_wait() {
        let rc = [800, 200];
        let states = vec![free(Some(M)), free(None)];
        let mut c = ctx(&rc);
        c.now = 50;
        c.icap_free_at = 400;
        // Reuse: starts now.
        assert_eq!(c.completion_on(0, M, &states), 150);
        // Reconfig: waits for the ICAP, then pays the slot's transfer.
        assert_eq!(c.completion_on(1, M, &states), 400 + 200 + 100);
    }
}
