//! Discrete-event simulation of hardware multitasking.
//!
//! Semantics:
//!
//! * Tasks arrive at fixed times and queue FIFO.
//! * Dispatch: when a task is at the head of the queue and a free PRR fits
//!   it, the scheduler picks one. If the PRR already holds the task's
//!   module, execution starts immediately (bitstream reuse); otherwise the
//!   PRR must be reconfigured first.
//! * Reconfigurations serialize through the single ICAP (the paper: only
//!   desynchronization "releases the ICAP, which allows other PRRs to be
//!   reconfigured"); each takes `bitstream_bytes / effective ICAP rate`.
//!   Crucially the bitstream covers the *whole PRR*, so oversized PRRs pay
//!   proportionally longer reconfiguration — the paper's core motivation.
//! * Execution inside one PRR does not block other PRRs (isolated
//!   reconfiguration).

use crate::sched::{PrrState, Scheduler};
use crate::system::PrSystem;
use crate::task::Workload;
use serde::Serialize;
use std::collections::VecDeque;

/// Simulation outcome metrics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimReport {
    /// Scheduler used.
    pub scheduler: &'static str,
    /// Tasks completed.
    pub completed: u32,
    /// Completion time of the last task (ns from start).
    pub makespan_ns: u64,
    /// Reconfigurations performed.
    pub reconfigurations: u32,
    /// Dispatches that reused an already-loaded module (no reconfig).
    pub reuse_hits: u32,
    /// Total time the ICAP spent transferring bitstreams (ns).
    pub icap_busy_ns: u64,
    /// Sum of task waiting times: dispatch start - arrival (ns).
    pub total_wait_ns: u64,
    /// Sum of task execution times (ns) — invariant under scheduling.
    pub total_exec_ns: u64,
}

impl SimReport {
    /// Mean waiting time per completed task.
    pub fn mean_wait_ns(&self) -> u64 {
        if self.completed == 0 {
            0
        } else {
            self.total_wait_ns / u64::from(self.completed)
        }
    }

    /// Fraction of dispatches that skipped reconfiguration.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reconfigurations + self.reuse_hits;
        if total == 0 {
            0.0
        } else {
            f64::from(self.reuse_hits) / f64::from(total)
        }
    }
}

/// Per-PRR runtime bookkeeping.
struct SlotRt {
    free_at: u64,
    loaded: Option<String>,
}

/// Simulate `workload` on `system` under `scheduler`.
///
/// Tasks that fit no PRR at all are dropped (counted out of `completed`).
///
/// ```
/// use multitask::{simulate, PrSystem, ReuseAware, Workload};
/// use bitstream::IcapModel;
/// use fabric::{device_by_name, Family};
/// use prcost::PrrOrganization;
///
/// let device = device_by_name("xc5vsx95t").unwrap();
/// let org = PrrOrganization {
///     family: Family::Virtex5, height: 1, clb_cols: 6, dsp_cols: 1, bram_cols: 1,
/// };
/// let system = PrSystem::homogeneous(&device, org, 4, IcapModel::V5_DMA).unwrap();
/// let workload = system.filter_workload(
///     &Workload::generate(7, Family::Virtex5, 100, 8, 300, 5_000, 100_000),
/// );
/// let report = simulate(&system, &workload, &ReuseAware);
/// assert_eq!(report.completed as usize, workload.tasks.len());
/// ```
pub fn simulate(system: &PrSystem, workload: &Workload, scheduler: &dyn Scheduler) -> SimReport {
    let n_slots = system.prrs.len();
    let mut rt: Vec<SlotRt> = (0..n_slots)
        .map(|_| SlotRt {
            free_at: 0,
            loaded: None,
        })
        .collect();
    let mut icap_free_at = 0u64;

    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut next_arrival = 0usize;
    let tasks = &workload.tasks;

    let mut report = SimReport {
        scheduler: scheduler.name(),
        completed: 0,
        makespan_ns: 0,
        reconfigurations: 0,
        reuse_hits: 0,
        icap_busy_ns: 0,
        total_wait_ns: 0,
        total_exec_ns: 0,
    };

    // Event-driven loop over "interesting" times: arrivals and slot/icap
    // frees. We advance a virtual clock to the earliest time progress can
    // happen, then dispatch greedily.
    let mut now = 0u64;
    loop {
        // Admit arrivals up to `now`.
        while next_arrival < tasks.len() && tasks[next_arrival].arrival_ns <= now {
            queue.push_back(next_arrival);
            next_arrival += 1;
        }

        // Dispatch FIFO head(s) while possible.
        let mut dispatched_any = true;
        while dispatched_any {
            dispatched_any = false;
            if let Some(&ti) = queue.front() {
                let task = &tasks[ti];
                let candidates: Vec<usize> = (0..n_slots)
                    .filter(|&i| rt[i].free_at <= now && system.prrs[i].fits(&task.needs))
                    .collect();
                let fits_ever = (0..n_slots).any(|i| system.prrs[i].fits(&task.needs));
                if !fits_ever {
                    // Unservable task: drop it.
                    queue.pop_front();
                    dispatched_any = true;
                    continue;
                }
                if !candidates.is_empty() {
                    let states: Vec<PrrState> = rt
                        .iter()
                        .map(|s| PrrState {
                            busy: s.free_at > now,
                            loaded_module: s.loaded.clone(),
                        })
                        .collect();
                    let chosen = scheduler.choose(task, &candidates, &system.prrs, &states);
                    debug_assert!(candidates.contains(&chosen));
                    queue.pop_front();

                    let reuse = rt[chosen].loaded.as_deref() == Some(task.module.as_str());
                    let exec_start = if reuse {
                        report.reuse_hits += 1;
                        now
                    } else {
                        let reconfig = system.reconfig_ns(&system.prrs[chosen]);
                        let start = now.max(icap_free_at);
                        icap_free_at = start + reconfig;
                        report.reconfigurations += 1;
                        report.icap_busy_ns += reconfig;
                        rt[chosen].loaded = Some(task.module.clone());
                        icap_free_at
                    };
                    let done = exec_start + task.exec_ns;
                    rt[chosen].free_at = done;
                    report.total_wait_ns += exec_start - task.arrival_ns;
                    report.total_exec_ns += task.exec_ns;
                    report.completed += 1;
                    report.makespan_ns = report.makespan_ns.max(done);
                    dispatched_any = true;
                }
            }
        }

        // Advance the clock to the next event.
        let mut next = u64::MAX;
        if next_arrival < tasks.len() {
            next = next.min(tasks[next_arrival].arrival_ns);
        }
        if !queue.is_empty() {
            for s in &rt {
                if s.free_at > now {
                    next = next.min(s.free_at);
                }
            }
            if icap_free_at > now {
                next = next.min(icap_free_at);
            }
        }
        if next == u64::MAX {
            break;
        }
        now = next;
    }

    report
}

/// Simulate the **full-reconfiguration** baseline the paper's introduction
/// contrasts PR against: the whole device holds one module at a time, a
/// module switch transfers the *full* bitstream, and — unlike isolated PRR
/// reconfiguration — nothing executes during the transfer.
pub fn simulate_full_reconfig(
    device: &fabric::Device,
    workload: &Workload,
    icap: &bitstream::IcapModel,
) -> SimReport {
    let full_bytes = prcost::full_bitstream_size_bytes(device);
    let reconfig = icap.transfer_time(full_bytes).as_nanos() as u64;

    let mut report = SimReport {
        scheduler: "full-reconfig",
        completed: 0,
        makespan_ns: 0,
        reconfigurations: 0,
        reuse_hits: 0,
        icap_busy_ns: 0,
        total_wait_ns: 0,
        total_exec_ns: 0,
    };
    let mut now = 0u64;
    let mut loaded: Option<&str> = None;
    for task in &workload.tasks {
        now = now.max(task.arrival_ns);
        if loaded != Some(task.module.as_str()) {
            now += reconfig;
            report.reconfigurations += 1;
            report.icap_busy_ns += reconfig;
            loaded = Some(task.module.as_str());
        } else {
            report.reuse_hits += 1;
        }
        report.total_wait_ns += now - task.arrival_ns;
        now += task.exec_ns;
        report.total_exec_ns += task.exec_ns;
        report.completed += 1;
        report.makespan_ns = report.makespan_ns.max(now);
    }
    report
}

/// Simulate the **static (non-PR)** baseline: every distinct module is
/// permanently resident side by side, so there is no reconfiguration at
/// all — but tasks of the same module serialize on its single instance,
/// and the design only exists if all modules fit the device together.
/// Returns `None` when the combined resources exceed the device.
pub fn simulate_static(device: &fabric::Device, workload: &Workload) -> Option<SimReport> {
    // Capacity check: sum of per-module needs against the whole device.
    let mut modules: Vec<(&str, fabric::Resources)> = Vec::new();
    for t in &workload.tasks {
        if !modules.iter().any(|(m, _)| *m == t.module.as_str()) {
            modules.push((t.module.as_str(), t.needs));
        }
    }
    let total: fabric::Resources = modules.iter().map(|(_, r)| *r).sum();
    if !device.total_resources().covers(&total) {
        return None;
    }

    let mut report = SimReport {
        scheduler: "static",
        completed: 0,
        makespan_ns: 0,
        reconfigurations: 0,
        reuse_hits: 0,
        icap_busy_ns: 0,
        total_wait_ns: 0,
        total_exec_ns: 0,
    };
    let mut free_at: Vec<(&str, u64)> = modules.iter().map(|(m, _)| (*m, 0u64)).collect();
    for task in &workload.tasks {
        let slot = free_at
            .iter_mut()
            .find(|(m, _)| *m == task.module.as_str())
            .expect("module registered above");
        let start = task.arrival_ns.max(slot.1);
        let done = start + task.exec_ns;
        slot.1 = done;
        report.total_wait_ns += start - task.arrival_ns;
        report.total_exec_ns += task.exec_ns;
        report.completed += 1;
        report.makespan_ns = report.makespan_ns.max(done);
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{BestFit, FirstFit, ReuseAware};
    use crate::system::PrSystem;
    use crate::task::HwTask;
    use bitstream::IcapModel;
    use fabric::database::xc5vlx110t;
    use fabric::{Family, Resources};
    use prcost::PrrOrganization;

    fn org(h: u32, clb: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: h,
            clb_cols: clb,
            dsp_cols: 0,
            bram_cols: 0,
        }
    }

    fn mixed_org(h: u32, clb: u32, dsp: u32, bram: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: h,
            clb_cols: clb,
            dsp_cols: dsp,
            bram_cols: bram,
        }
    }

    fn simple_system(prrs: u32) -> PrSystem {
        PrSystem::homogeneous(&xc5vlx110t(), org(1, 4), prrs, IcapModel::V5_DMA).unwrap()
    }

    /// PRRs with CLB+DSP+BRAM columns on the DSP-rich SX95T, so the random
    /// workload generator's mixed-resource tasks are servable.
    fn mixed_system(prrs: u32, h: u32, clb: u32, dsp: u32, bram: u32) -> PrSystem {
        let device = fabric::device_by_name("xc5vsx95t").unwrap();
        PrSystem::homogeneous(
            &device,
            mixed_org(h, clb, dsp, bram),
            prrs,
            IcapModel::V5_DMA,
        )
        .unwrap()
    }

    fn task(id: u32, module: &str, arrival: u64, exec: u64) -> HwTask {
        HwTask {
            id,
            module: module.into(),
            needs: Resources::new(40, 0, 0),
            arrival_ns: arrival,
            exec_ns: exec,
        }
    }

    #[test]
    fn single_task_timeline() {
        let sys = simple_system(1);
        let w = Workload::new(vec![task(0, "a", 0, 1000)]);
        let r = simulate(&sys, &w, &FirstFit);
        let reconfig = sys.reconfig_ns(&sys.prrs[0]);
        assert_eq!(r.completed, 1);
        assert_eq!(r.reconfigurations, 1);
        assert_eq!(r.makespan_ns, reconfig + 1000);
        assert_eq!(r.total_wait_ns, reconfig);
    }

    #[test]
    fn reuse_skips_reconfiguration() {
        let sys = simple_system(1);
        let w = Workload::new(vec![task(0, "a", 0, 100), task(1, "a", 0, 100)]);
        let r = simulate(&sys, &w, &ReuseAware);
        assert_eq!(r.completed, 2);
        assert_eq!(r.reconfigurations, 1);
        assert_eq!(r.reuse_hits, 1);
        assert!(r.reuse_rate() > 0.49);
    }

    #[test]
    fn different_modules_force_reconfiguration() {
        let sys = simple_system(1);
        let w = Workload::new(vec![task(0, "a", 0, 100), task(1, "b", 0, 100)]);
        let r = simulate(&sys, &w, &ReuseAware);
        assert_eq!(r.reconfigurations, 2);
        assert_eq!(r.reuse_hits, 0);
    }

    #[test]
    fn icap_serializes_reconfigurations() {
        let sys = simple_system(2);
        // Two tasks, two PRRs: both need reconfig; the second must wait for
        // the ICAP even though its PRR is free.
        let w = Workload::new(vec![task(0, "a", 0, 10), task(1, "b", 0, 10)]);
        let r = simulate(&sys, &w, &FirstFit);
        let reconfig = sys.reconfig_ns(&sys.prrs[0]);
        assert_eq!(r.reconfigurations, 2);
        assert_eq!(r.makespan_ns, 2 * reconfig + 10);
        assert_eq!(r.icap_busy_ns, 2 * reconfig);
    }

    #[test]
    fn unservable_tasks_are_dropped() {
        let sys = simple_system(1);
        let mut t = task(0, "huge", 0, 10);
        t.needs = Resources::new(10_000, 0, 0);
        let w = Workload::new(vec![t, task(1, "a", 0, 10)]);
        let r = simulate(&sys, &w, &FirstFit);
        assert_eq!(r.completed, 1);
    }

    /// For an execution-bound workload (execution time >> reconfiguration
    /// time) more PRRs increase parallelism and shrink makespan. Note this
    /// is NOT true for ICAP-bound workloads, where extra PRRs just cause
    /// extra serialized reconfigurations — exactly the paper's warning
    /// that bad PR sizing decisions can underperform.
    #[test]
    fn more_prrs_help_execution_bound_workloads() {
        let sys2 = mixed_system(2, 1, 6, 1, 1);
        let sys6 = mixed_system(6, 1, 6, 1, 1);
        let wl = sys2.filter_workload(&Workload::generate(
            5,
            Family::Virtex5,
            60,
            6,
            250,
            1_000,
            3_000_000,
        ));
        assert!(wl.tasks.len() >= 10, "servable tasks: {}", wl.tasks.len());
        let r1 = simulate(&sys2, &wl, &BestFit);
        let r2 = simulate(&sys6, &wl, &BestFit);
        assert_eq!(r1.completed as usize, wl.tasks.len());
        assert!(
            r2.makespan_ns <= r1.makespan_ns,
            "6 PRRs {} vs 2 PRRs {}",
            r2.makespan_ns,
            r1.makespan_ns
        );
    }

    /// The paper's core motivation: oversizing the PRR inflates the
    /// bitstream and reconfiguration time, degrading makespan for the same
    /// workload.
    #[test]
    fn oversized_prrs_degrade_makespan() {
        let right = mixed_system(4, 1, 6, 1, 1);
        let oversized = mixed_system(4, 2, 12, 2, 2);
        let wl = right.filter_workload(&Workload::generate(
            7,
            Family::Virtex5,
            80,
            8,
            250,
            1_000,
            5_000,
        ));
        assert!(wl.tasks.len() >= 10, "servable tasks: {}", wl.tasks.len());
        let r1 = simulate(&right, &wl, &BestFit);
        let r2 = simulate(&oversized, &wl, &BestFit);
        assert!(
            r2.makespan_ns > r1.makespan_ns,
            "oversized {} vs right-sized {}",
            r2.makespan_ns,
            r1.makespan_ns
        );
        assert!(r2.icap_busy_ns > r1.icap_busy_ns);
    }

    #[test]
    fn exec_time_is_conserved_across_schedulers() {
        let sys = mixed_system(4, 1, 6, 1, 1);
        let wl = sys.filter_workload(&Workload::generate(
            13,
            Family::Virtex5,
            100,
            8,
            250,
            1_000,
            10_000,
        ));
        assert!(wl.tasks.len() >= 10);
        let a = simulate(&sys, &wl, &FirstFit);
        let b = simulate(&sys, &wl, &BestFit);
        let c = simulate(&sys, &wl, &ReuseAware);
        assert_eq!(a.total_exec_ns, b.total_exec_ns);
        assert_eq!(b.total_exec_ns, c.total_exec_ns);
        assert_eq!(a.completed, c.completed);
    }

    #[test]
    fn reuse_aware_beats_first_fit_on_repetitive_workloads() {
        let sys = mixed_system(4, 1, 6, 1, 1);
        // Heavily repetitive: few modules, many tasks.
        let wl = sys.filter_workload(&Workload::generate(
            21,
            Family::Virtex5,
            120,
            3,
            250,
            500,
            2_000,
        ));
        assert!(wl.tasks.len() >= 10, "servable tasks: {}", wl.tasks.len());
        let ff = simulate(&sys, &wl, &FirstFit);
        let ra = simulate(&sys, &wl, &ReuseAware);
        assert!(ra.reuse_hits >= ff.reuse_hits);
        assert!(ra.makespan_ns <= ff.makespan_ns);
    }

    #[test]
    fn full_reconfig_pays_per_module_switch() {
        let device = xc5vlx110t();
        let w = Workload::new(vec![
            task(0, "a", 0, 100),
            task(1, "a", 0, 100),
            task(2, "b", 0, 100),
        ]);
        let r = simulate_full_reconfig(&device, &w, &IcapModel::V5_DMA);
        assert_eq!(r.completed, 3);
        assert_eq!(r.reconfigurations, 2, "a then b");
        assert_eq!(r.reuse_hits, 1);
        let full = prcost::full_bitstream_size_bytes(&device);
        let t_full = IcapModel::V5_DMA.transfer_time(full).as_nanos() as u64;
        assert_eq!(r.makespan_ns, 2 * t_full + 300);
    }

    #[test]
    fn static_system_has_zero_reconfig_but_serializes_per_module() {
        let device = xc5vlx110t();
        let w = Workload::new(vec![
            task(0, "a", 0, 100),
            task(1, "a", 0, 100),
            task(2, "b", 0, 100),
        ]);
        let r = simulate_static(&device, &w).expect("3 small modules fit");
        assert_eq!(r.reconfigurations, 0);
        assert_eq!(r.icap_busy_ns, 0);
        // Two "a" tasks serialize; "b" runs in parallel.
        assert_eq!(r.makespan_ns, 200);
    }

    #[test]
    fn static_system_rejects_oversubscribed_module_sets() {
        let device = xc5vlx110t();
        // 200 distinct modules of 100 CLBs each = 20,000 CLBs > 8640.
        let tasks: Vec<HwTask> = (0..200)
            .map(|i| HwTask {
                id: i,
                module: format!("m{i}"),
                needs: Resources::new(100, 0, 0),
                arrival_ns: 0,
                exec_ns: 10,
            })
            .collect();
        assert!(simulate_static(&device, &Workload::new(tasks)).is_none());
    }

    /// The paper's headline warning, inverted: with partial bitstreams the
    /// PR system beats full reconfiguration by roughly the full/partial
    /// bitstream ratio on reconfiguration-bound workloads.
    #[test]
    fn pr_beats_full_reconfiguration() {
        let device = xc5vlx110t();
        let sys = PrSystem::homogeneous(&device, org(1, 4), 4, IcapModel::V5_DMA).unwrap();
        let w = Workload::new(
            (0..40)
                .map(|i| task(i, ["a", "b", "c", "d"][(i % 4) as usize], 0, 1_000))
                .collect(),
        );
        let pr = simulate(&sys, &w, &ReuseAware);
        let full = simulate_full_reconfig(&device, &w, &IcapModel::V5_DMA);
        assert_eq!(pr.completed, full.completed);
        assert!(
            pr.makespan_ns * 5 < full.makespan_ns,
            "PR {} vs full {}",
            pr.makespan_ns,
            full.makespan_ns
        );
    }
}
