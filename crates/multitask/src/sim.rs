//! Discrete-event simulation of hardware multitasking.
//!
//! Semantics:
//!
//! * Tasks arrive at fixed times and queue FIFO.
//! * Dispatch: when a task is at the head of the queue and a free PRR fits
//!   it, the scheduler picks one. If the PRR already holds the task's
//!   module, execution starts immediately (bitstream reuse); otherwise the
//!   PRR must be reconfigured first.
//! * Reconfigurations serialize through the single ICAP (the paper: only
//!   desynchronization "releases the ICAP, which allows other PRRs to be
//!   reconfigured"); each takes `bitstream_bytes / effective ICAP rate`.
//!   Crucially the bitstream covers the *whole PRR*, so oversized PRRs pay
//!   proportionally longer reconfiguration — the paper's core motivation.
//! * Execution inside one PRR does not block other PRRs (isolated
//!   reconfiguration).
//!
//! # Performance architecture
//!
//! The evaluation loop is allocation-free after setup:
//!
//! * Module names are interned to [`ModuleId`]s once per simulation, so
//!   reuse checks are integer compares and per-slot state snapshots are
//!   `Copy` (`PrrState`), not `Option<String>` clones.
//! * Each task's "which PRRs fit me" set is computed once, at admission,
//!   into a bitmask carried in its queue entry, so dispatch feasibility
//!   is a mask-and-free test and the unservable-task check (`fits_ever`)
//!   is `mask != 0` — the seed re-scanned every PRR each time a task
//!   reached the queue head.
//! * Clock advance pops a [`BinaryHeap`] of pending slot/ICAP free times
//!   instead of scanning all slots per step.
//! * All working memory lives in a reusable [`SimScratch`];
//!   [`simulate_batch`] fans scenarios out over rayon workers with one
//!   scratch per worker and records per-scenario wall time into the
//!   `prcost::metrics` stage histograms.
//!
//! The seed implementation is frozen in [`reference`] as the equivalence
//! oracle: property tests assert the heap simulator produces an identical
//! [`SimReport`] for random workloads, systems and schedulers.

use crate::intern::{ModuleId, ModuleTable};
use crate::sched::{PrrState, SchedContext, Scheduler};
use crate::system::PrSystem;
use crate::task::Workload;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

/// Simulation outcome metrics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimReport {
    /// Scheduler used.
    pub scheduler: &'static str,
    /// Tasks completed.
    pub completed: u32,
    /// Completion time of the last task (ns from start).
    pub makespan_ns: u64,
    /// Reconfigurations performed.
    pub reconfigurations: u32,
    /// Dispatches that reused an already-loaded module (no reconfig).
    pub reuse_hits: u32,
    /// Total time the ICAP spent transferring bitstreams (ns).
    pub icap_busy_ns: u64,
    /// Sum of task waiting times: dispatch start - arrival (ns).
    pub total_wait_ns: u64,
    /// Sum of task execution times (ns) — invariant under scheduling.
    pub total_exec_ns: u64,
    /// Completed tasks that finished after their absolute deadline.
    /// Always 0 for loss-system workloads (no [`HwTask::deadline_ns`]).
    pub deadline_misses: u32,
    /// Sum of task response times: completion - arrival (ns).
    pub total_response_ns: u64,
}

impl SimReport {
    /// Mean waiting time per completed task.
    pub fn mean_wait_ns(&self) -> u64 {
        if self.completed == 0 {
            0
        } else {
            self.total_wait_ns / u64::from(self.completed)
        }
    }

    /// Mean response time (completion - arrival) per completed task.
    pub fn mean_response_ns(&self) -> u64 {
        if self.completed == 0 {
            0
        } else {
            self.total_response_ns / u64::from(self.completed)
        }
    }

    /// Fraction of completed tasks that missed their deadline.
    pub fn deadline_miss_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            f64::from(self.deadline_misses) / f64::from(self.completed)
        }
    }

    /// Fraction of the makespan the ICAP spent busy.
    pub fn icap_utilization(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.icap_busy_ns as f64 / self.makespan_ns as f64
        }
    }

    /// Fraction of dispatches that skipped reconfiguration.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reconfigurations + self.reuse_hits;
        if total == 0 {
            0.0
        } else {
            f64::from(self.reuse_hits) / f64::from(total)
        }
    }
}

/// Per-PRR runtime bookkeeping (interned module identity).
#[derive(Debug, Clone, Copy)]
struct SlotRt {
    free_at: u64,
    loaded: Option<ModuleId>,
}

/// Task attributes copied into the FIFO at admission, while the task's
/// cache lines are warm from the sequential arrival scan. On large
/// workloads the head of a backed-up queue was admitted tens of
/// thousands of tasks earlier, so dispatching off the original task /
/// fits arrays costs cold misses per dispatch; the queue itself is read
/// sequentially and stays prefetcher-friendly.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    module: ModuleId,
    /// Fits bitmask over the first 64 slots (the whole mask for systems
    /// with ≤ 64 PRRs; wider systems re-test the tail against `avail`).
    fits: u64,
    needs: fabric::Resources,
    arrival_ns: u64,
    exec_ns: u64,
    /// Absolute deadline (`u64::MAX` = none): kept as a plain integer so
    /// the entry stays a branchless `Copy` and the miss check is a
    /// single compare at completion accounting.
    deadline_ns: u64,
}

/// Reusable working memory for [`simulate_with_scratch`].
///
/// Holds every buffer the simulator needs — hoisted per-slot data, slot
/// runtime state, the scheduler's state snapshot, the FIFO queue and the
/// event heap — so repeated simulations (sweeps,
/// batches) allocate nothing after the first run reaches steady-state
/// capacity. `Default`-construct once and pass to every call.
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    modules: ModuleTable,
    /// Fallback intern buffer for workloads without a pre-interned cache.
    module_ids: Vec<ModuleId>,
    /// Hoisted per-slot available resources.
    avail: Vec<fabric::Resources>,
    /// Hoisted per-slot reconfiguration time (ns): the float ICAP
    /// transfer-time math runs once per slot, not once per dispatch.
    reconfig_ns: Vec<u64>,
    rt: Vec<SlotRt>,
    states: Vec<PrrState>,
    candidates: Vec<usize>,
    queue: VecDeque<QueueEntry>,
    /// Min-heap of pending `(free_time, slot)` events.
    events: BinaryHeap<Reverse<(u64, u32)>>,
}

impl SimScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Reset and precompute per-run state: module ids (interned here only
    /// when the workload lacks its construction-time cache), hoisted
    /// per-slot availability and reconfiguration times.
    fn prepare(&mut self, system: &PrSystem, workload: &Workload) {
        self.modules.clear();
        self.module_ids.clear();
        if workload.module_ids().len() != workload.tasks.len() {
            self.module_ids.extend(
                workload
                    .tasks
                    .iter()
                    .map(|t| self.modules.intern(&t.module)),
            );
        }

        let n_slots = system.prrs.len();
        self.avail.clear();
        self.avail.extend(system.prrs.iter().map(|p| p.available()));
        self.reconfig_ns.clear();
        self.reconfig_ns
            .extend(system.prrs.iter().map(|p| system.reconfig_ns(p)));

        self.rt.clear();
        self.rt.resize(
            n_slots,
            SlotRt {
                free_at: 0,
                loaded: None,
            },
        );
        self.states.clear();
        self.states.resize(
            n_slots,
            PrrState {
                busy: false,
                loaded_module: None,
            },
        );
        self.candidates.clear();
        self.queue.clear();
        self.events.clear();
    }
}

/// Simulate `workload` on `system` under `scheduler`.
///
/// Tasks that fit no PRR at all are dropped (counted out of `completed`).
/// Allocates a fresh [`SimScratch`] per call; use
/// [`simulate_with_scratch`] or [`simulate_batch`] to amortize buffers
/// across many runs.
///
/// ```
/// use multitask::{simulate, PrSystem, ReuseAware, Workload};
/// use bitstream::IcapModel;
/// use fabric::{device_by_name, Family};
/// use prcost::PrrOrganization;
///
/// let device = device_by_name("xc5vsx95t").unwrap();
/// let org = PrrOrganization {
///     family: Family::Virtex5, height: 1, clb_cols: 6, dsp_cols: 1, bram_cols: 1,
/// };
/// let system = PrSystem::homogeneous(&device, org, 4, IcapModel::V5_DMA).unwrap();
/// let workload = system.filter_workload(
///     &Workload::generate(7, Family::Virtex5, 100, 8, 300, 5_000, 100_000),
/// );
/// let report = simulate(&system, &workload, &ReuseAware);
/// assert_eq!(report.completed as usize, workload.tasks.len());
/// ```
pub fn simulate<S: Scheduler + ?Sized>(
    system: &PrSystem,
    workload: &Workload,
    scheduler: &S,
) -> SimReport {
    simulate_with_scratch(system, workload, scheduler, &mut SimScratch::new())
}

/// [`simulate`] with caller-provided working memory.
///
/// Behaviourally identical to [`simulate`] (and to the frozen seed
/// implementation in [`reference`]); reuses `scratch`'s buffers so
/// steady-state simulation performs no heap allocation.
pub fn simulate_with_scratch<S: Scheduler + ?Sized>(
    system: &PrSystem,
    workload: &Workload,
    scheduler: &S,
    scratch: &mut SimScratch,
) -> SimReport {
    scratch.prepare(system, workload);
    let tasks = &workload.tasks;
    // Split the scratch into disjoint field borrows so the pre-interned
    // id slice can come straight from the workload (no copy) while the
    // queue/heap fields stay mutable.
    let SimScratch {
        module_ids: ids_buf,
        avail,
        reconfig_ns,
        rt,
        states,
        candidates,
        queue,
        events,
        ..
    } = scratch;
    let module_ids: &[ModuleId] = if workload.module_ids().len() == tasks.len() {
        workload.module_ids()
    } else {
        ids_buf
    };
    let mut icap_free_at = 0u64;
    let mut next_arrival = 0usize;
    // Free-slot bitmask over the first 64 slots, kept in sync with the
    // event heap: a dispatch clears the chosen bit, popping the slot's
    // free event sets it back. Candidate discovery for a queue head is
    // then `entry.fits & free_mask` — no per-dispatch slot scan.
    let mut free_mask: u64 = if rt.len() >= 64 {
        u64::MAX
    } else {
        (1u64 << rt.len()) - 1
    };

    let mut report = SimReport {
        scheduler: scheduler.name(),
        completed: 0,
        makespan_ns: 0,
        reconfigurations: 0,
        reuse_hits: 0,
        icap_busy_ns: 0,
        total_wait_ns: 0,
        total_exec_ns: 0,
        deadline_misses: 0,
        total_response_ns: 0,
    };

    // Event-driven loop over "interesting" times: arrivals and slot/ICAP
    // frees. The clock jumps to the earliest pending event (heap pop);
    // dispatch then proceeds greedily at that instant.
    let mut now = 0u64;
    loop {
        // Admit arrivals up to `now`. The fits mask is computed here from
        // the L1-resident `avail` (strictly cheaper than a precompute
        // pass plus a re-read); unservable tasks (empty mask) are dropped
        // here, once per task — the seed re-scanned every PRR each time
        // such a task reached the queue head. Everything the dispatch
        // path needs rides in the queue entry.
        while next_arrival < tasks.len() && tasks[next_arrival].arrival_ns <= now {
            let task = &tasks[next_arrival];
            let mut mask = 0u64;
            for (si, av) in avail.iter().take(64).enumerate() {
                if av.covers(&task.needs) {
                    mask |= 1u64 << si;
                }
            }
            let servable = mask != 0
                || avail.len() > 64 && avail[64..].iter().any(|av| av.covers(&task.needs));
            if servable {
                queue.push_back(QueueEntry {
                    module: module_ids[next_arrival],
                    fits: mask,
                    needs: task.needs,
                    arrival_ns: task.arrival_ns,
                    exec_ns: task.exec_ns,
                    deadline_ns: task.deadline_ns.unwrap_or(u64::MAX),
                });
            }
            next_arrival += 1;
        }

        // Dispatch FIFO head(s) while possible. Candidates come from the
        // fits-and-free mask (ascending slot order, matching the seed's
        // scan); `states` is maintained incrementally — `loaded_module`
        // changes only here, `busy` flips here and at event pops — so no
        // per-dispatch rebuild.
        while let Some(entry) = queue.front().copied() {
            candidates.clear();
            if rt.len() <= 64 {
                let mut m = entry.fits & free_mask;
                while m != 0 {
                    candidates.push(m.trailing_zeros() as usize);
                    m &= m - 1;
                }
            } else {
                for (si, slot) in rt.iter().enumerate() {
                    let fits = if si < 64 {
                        entry.fits >> si & 1 == 1
                    } else {
                        avail[si].covers(&entry.needs)
                    };
                    if fits && slot.free_at <= now {
                        candidates.push(si);
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            let module = entry.module;
            let ctx = SchedContext {
                now,
                // Tasks waiting *behind* the one being dispatched.
                queue_len: queue.len() - 1,
                arrival_ns: entry.arrival_ns,
                exec_ns: entry.exec_ns,
                deadline_ns: (entry.deadline_ns != u64::MAX).then_some(entry.deadline_ns),
                icap_free_at,
                reconfig_ns,
            };
            let chosen = scheduler.choose(&ctx, &entry.needs, module, candidates, avail, states);
            debug_assert!(candidates.contains(&chosen));
            queue.pop_front();

            let reuse = rt[chosen].loaded == Some(module);
            let exec_start = if reuse {
                report.reuse_hits += 1;
                now
            } else {
                let reconfig = reconfig_ns[chosen];
                let start = now.max(icap_free_at);
                icap_free_at = start + reconfig;
                report.reconfigurations += 1;
                report.icap_busy_ns += reconfig;
                rt[chosen].loaded = Some(module);
                states[chosen].loaded_module = Some(module);
                // Note: no event for `icap_free_at`. An ICAP free can
                // never enable a dispatch (dispatch is gated on arrivals
                // and slot frees only; reconfigurations serialize through
                // `max(now, icap_free_at)` whatever `now` is), so waking
                // then — as the seed does — is a provable no-op.
                icap_free_at
            };
            let done = exec_start + entry.exec_ns;
            rt[chosen].free_at = done;
            if done > now {
                if chosen < 64 {
                    free_mask &= !(1u64 << chosen);
                }
                states[chosen].busy = true;
                events.push(Reverse((done, chosen as u32)));
            }
            // done == now (zero-length execution on a reuse hit): the
            // slot is immediately free again — keep its bit, no event.
            report.total_wait_ns += exec_start - entry.arrival_ns;
            report.total_exec_ns += entry.exec_ns;
            report.total_response_ns += done - entry.arrival_ns;
            report.deadline_misses += u32::from(done > entry.deadline_ns);
            report.completed += 1;
            report.makespan_ns = report.makespan_ns.max(done);
        }

        // Advance the clock. While the FIFO is backed up, arrivals can
        // never overtake the blocked head, so the only interesting time
        // is the next slot-free event; the intervening arrivals are
        // admitted in one batch when it fires (dispatch order and times
        // are identical — the seed woke at every arrival instead). With
        // an empty queue the next arrival is the only interesting time.
        if queue.is_empty() {
            match tasks.get(next_arrival) {
                Some(t) => now = t.arrival_ns,
                None => break,
            }
        } else {
            // A blocked head means some fitting slot is busy, hence a
            // pending event; jump straight to the earliest one.
            let Reverse((t, _)) = *events.peek().expect("blocked head implies pending event");
            now = t;
        }
        // Free every slot whose event is due at (or before) `now`.
        while let Some(&Reverse((t, si))) = events.peek() {
            if t > now {
                break;
            }
            events.pop();
            let si = si as usize;
            states[si].busy = false;
            if si < 64 {
                free_mask |= 1u64 << si;
            }
        }
    }

    report
}

/// One (system, workload, scheduler) combination for [`simulate_batch`].
#[derive(Clone, Copy)]
pub struct Scenario<'a> {
    /// PR system to simulate on.
    pub system: &'a PrSystem,
    /// Task stream.
    pub workload: &'a Workload,
    /// PRR selection policy.
    pub scheduler: &'a dyn Scheduler,
}

/// Simulate many scenarios across rayon workers.
///
/// Each worker owns one [`SimScratch`] reused across every scenario it
/// processes, so the fleet performs no per-scenario allocation beyond
/// first-touch growth. Per-scenario wall time is recorded under the
/// `"simulate"` stage of [`prcost::Metrics::global`], joining the
/// planning-engine histograms. Output order matches input order.
pub fn simulate_batch(scenarios: &[Scenario<'_>]) -> Vec<SimReport> {
    use rayon::prelude::*;
    scenarios
        .par_iter()
        .map_with(SimScratch::new(), |scratch, sc| {
            let start = Instant::now();
            let report = simulate_with_scratch(sc.system, sc.workload, sc.scheduler, scratch);
            prcost::Metrics::global().record_stage("simulate", start.elapsed());
            report
        })
        .collect()
}

/// Simulate the **full-reconfiguration** baseline the paper's introduction
/// contrasts PR against: the whole device holds one module at a time, a
/// module switch transfers the *full* bitstream, and — unlike isolated PRR
/// reconfiguration — nothing executes during the transfer.
pub fn simulate_full_reconfig(
    device: &fabric::Device,
    workload: &Workload,
    icap: &bitstream::IcapModel,
) -> SimReport {
    let full_bytes = prcost::full_bitstream_size_bytes(device);
    let reconfig = icap.transfer_time(full_bytes).as_nanos() as u64;

    let mut report = SimReport {
        scheduler: "full-reconfig",
        completed: 0,
        makespan_ns: 0,
        reconfigurations: 0,
        reuse_hits: 0,
        icap_busy_ns: 0,
        total_wait_ns: 0,
        total_exec_ns: 0,
        deadline_misses: 0,
        total_response_ns: 0,
    };
    let mut now = 0u64;
    let mut loaded: Option<&str> = None;
    for task in &workload.tasks {
        now = now.max(task.arrival_ns);
        if loaded != Some(task.module.as_str()) {
            now += reconfig;
            report.reconfigurations += 1;
            report.icap_busy_ns += reconfig;
            loaded = Some(task.module.as_str());
        } else {
            report.reuse_hits += 1;
        }
        report.total_wait_ns += now - task.arrival_ns;
        now += task.exec_ns;
        report.total_exec_ns += task.exec_ns;
        report.total_response_ns += now - task.arrival_ns;
        report.deadline_misses += u32::from(task.deadline_ns.is_some_and(|d| now > d));
        report.completed += 1;
        report.makespan_ns = report.makespan_ns.max(now);
    }
    report
}

/// Simulate the **static (non-PR)** baseline: every distinct module is
/// permanently resident side by side, so there is no reconfiguration at
/// all — but tasks of the same module serialize on its single instance,
/// and the design only exists if all modules fit the device together.
/// Returns `None` when the combined resources exceed the device.
pub fn simulate_static(device: &fabric::Device, workload: &Workload) -> Option<SimReport> {
    // Capacity check: sum of per-module needs against the whole device.
    let mut modules: Vec<(&str, fabric::Resources)> = Vec::new();
    for t in &workload.tasks {
        if !modules.iter().any(|(m, _)| *m == t.module.as_str()) {
            modules.push((t.module.as_str(), t.needs));
        }
    }
    let total: fabric::Resources = modules.iter().map(|(_, r)| *r).sum();
    if !device.total_resources().covers(&total) {
        return None;
    }

    let mut report = SimReport {
        scheduler: "static",
        completed: 0,
        makespan_ns: 0,
        reconfigurations: 0,
        reuse_hits: 0,
        icap_busy_ns: 0,
        total_wait_ns: 0,
        total_exec_ns: 0,
        deadline_misses: 0,
        total_response_ns: 0,
    };
    let mut free_at: Vec<(&str, u64)> = modules.iter().map(|(m, _)| (*m, 0u64)).collect();
    for task in &workload.tasks {
        let slot = free_at
            .iter_mut()
            .find(|(m, _)| *m == task.module.as_str())
            .expect("module registered above");
        let start = task.arrival_ns.max(slot.1);
        let done = start + task.exec_ns;
        slot.1 = done;
        report.total_wait_ns += start - task.arrival_ns;
        report.total_exec_ns += task.exec_ns;
        report.total_response_ns += done - task.arrival_ns;
        report.deadline_misses += u32::from(task.deadline_ns.is_some_and(|d| done > d));
        report.completed += 1;
        report.makespan_ns = report.makespan_ns.max(done);
    }
    Some(report)
}

pub mod reference {
    //! The seed simulator, frozen verbatim as the equivalence oracle and
    //! benchmark baseline.
    //!
    //! This is the exact pre-optimization implementation: per-dispatch
    //! `Vec` allocations for candidates and states, `Option<String>`
    //! module identity with per-slot clones, an O(slots) `fits_ever`
    //! rescan every time a task reaches the queue head, and an O(slots)
    //! clock-advance scan per step. Scheduling policies are inlined (the
    //! live [`Scheduler`](crate::Scheduler) trait now takes interned
    //! ids), replicating the seed's first-fit / best-fit / reuse-aware
    //! behaviour byte for byte so [`super::simulate`] can be
    //! property-tested report-identical against it.

    use super::SimReport;
    use crate::system::{PrSystem, PrrSlot};
    use crate::task::{HwTask, Workload};
    use std::collections::VecDeque;

    /// Seed scheduling policy (mirrors the live unit-struct schedulers).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SeedPolicy {
        /// Lowest-id free PRR that fits.
        FirstFit,
        /// Fewest spare CLB-equivalents.
        BestFit,
        /// Prefer a PRR already holding the module; else best fit.
        ReuseAware,
    }

    impl SeedPolicy {
        /// Report name, identical to the live scheduler's.
        pub fn name(self) -> &'static str {
            match self {
                SeedPolicy::FirstFit => "first-fit",
                SeedPolicy::BestFit => "best-fit",
                SeedPolicy::ReuseAware => "reuse-aware",
            }
        }

        fn spare_cost(task: &HwTask, slot: &PrrSlot) -> u64 {
            let avail = slot.available();
            let spare = avail.saturating_sub(&task.needs);
            spare.clb() + spare.dsp() * 3 + spare.bram() * 5
        }

        fn choose(
            self,
            task: &HwTask,
            candidates: &[usize],
            slots: &[PrrSlot],
            states: &[(bool, Option<String>)],
        ) -> usize {
            match self {
                SeedPolicy::FirstFit => candidates[0],
                SeedPolicy::BestFit => *candidates
                    .iter()
                    .min_by_key(|&&i| (Self::spare_cost(task, &slots[i]), i))
                    .expect("candidates is non-empty"),
                SeedPolicy::ReuseAware => {
                    if let Some(&hit) = candidates
                        .iter()
                        .find(|&&i| states[i].1.as_deref() == Some(task.module.as_str()))
                    {
                        return hit;
                    }
                    SeedPolicy::BestFit.choose(task, candidates, slots, states)
                }
            }
        }
    }

    struct SlotRt {
        free_at: u64,
        loaded: Option<String>,
    }

    /// The seed `simulate`, unchanged except that policies are inlined.
    pub fn simulate_seed(system: &PrSystem, workload: &Workload, policy: SeedPolicy) -> SimReport {
        let n_slots = system.prrs.len();
        let mut rt: Vec<SlotRt> = (0..n_slots)
            .map(|_| SlotRt {
                free_at: 0,
                loaded: None,
            })
            .collect();
        let mut icap_free_at = 0u64;

        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut next_arrival = 0usize;
        let tasks = &workload.tasks;

        let mut report = SimReport {
            scheduler: policy.name(),
            completed: 0,
            makespan_ns: 0,
            reconfigurations: 0,
            reuse_hits: 0,
            icap_busy_ns: 0,
            total_wait_ns: 0,
            total_exec_ns: 0,
            deadline_misses: 0,
            total_response_ns: 0,
        };

        let mut now = 0u64;
        loop {
            while next_arrival < tasks.len() && tasks[next_arrival].arrival_ns <= now {
                queue.push_back(next_arrival);
                next_arrival += 1;
            }

            let mut dispatched_any = true;
            while dispatched_any {
                dispatched_any = false;
                if let Some(&ti) = queue.front() {
                    let task = &tasks[ti];
                    let candidates: Vec<usize> = (0..n_slots)
                        .filter(|&i| rt[i].free_at <= now && system.prrs[i].fits(&task.needs))
                        .collect();
                    let fits_ever = (0..n_slots).any(|i| system.prrs[i].fits(&task.needs));
                    if !fits_ever {
                        queue.pop_front();
                        dispatched_any = true;
                        continue;
                    }
                    if !candidates.is_empty() {
                        let states: Vec<(bool, Option<String>)> = rt
                            .iter()
                            .map(|s| (s.free_at > now, s.loaded.clone()))
                            .collect();
                        let chosen = policy.choose(task, &candidates, &system.prrs, &states);
                        debug_assert!(candidates.contains(&chosen));
                        queue.pop_front();

                        let reuse = rt[chosen].loaded.as_deref() == Some(task.module.as_str());
                        let exec_start = if reuse {
                            report.reuse_hits += 1;
                            now
                        } else {
                            let reconfig = system.reconfig_ns(&system.prrs[chosen]);
                            let start = now.max(icap_free_at);
                            icap_free_at = start + reconfig;
                            report.reconfigurations += 1;
                            report.icap_busy_ns += reconfig;
                            rt[chosen].loaded = Some(task.module.clone());
                            icap_free_at
                        };
                        let done = exec_start + task.exec_ns;
                        rt[chosen].free_at = done;
                        report.total_wait_ns += exec_start - task.arrival_ns;
                        report.total_exec_ns += task.exec_ns;
                        // Deadline/response accounting, added alongside the
                        // live simulator's so the equivalence proptests keep
                        // comparing full reports (0 misses on deadline-free
                        // loss-system workloads, like the live loop).
                        report.total_response_ns += done - task.arrival_ns;
                        report.deadline_misses +=
                            u32::from(task.deadline_ns.is_some_and(|d| done > d));
                        report.completed += 1;
                        report.makespan_ns = report.makespan_ns.max(done);
                        dispatched_any = true;
                    }
                }
            }

            let mut next = u64::MAX;
            if next_arrival < tasks.len() {
                next = next.min(tasks[next_arrival].arrival_ns);
            }
            if !queue.is_empty() {
                for s in &rt {
                    if s.free_at > now {
                        next = next.min(s.free_at);
                    }
                }
                if icap_free_at > now {
                    next = next.min(icap_free_at);
                }
            }
            if next == u64::MAX {
                break;
            }
            now = next;
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{BestFit, FirstFit, ReuseAware};
    use crate::system::PrSystem;
    use crate::task::HwTask;
    use bitstream::IcapModel;
    use fabric::database::xc5vlx110t;
    use fabric::{Family, Resources};
    use prcost::PrrOrganization;

    fn org(h: u32, clb: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: h,
            clb_cols: clb,
            dsp_cols: 0,
            bram_cols: 0,
        }
    }

    fn mixed_org(h: u32, clb: u32, dsp: u32, bram: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: h,
            clb_cols: clb,
            dsp_cols: dsp,
            bram_cols: bram,
        }
    }

    fn simple_system(prrs: u32) -> PrSystem {
        PrSystem::homogeneous(&xc5vlx110t(), org(1, 4), prrs, IcapModel::V5_DMA).unwrap()
    }

    /// PRRs with CLB+DSP+BRAM columns on the DSP-rich SX95T, so the random
    /// workload generator's mixed-resource tasks are servable.
    fn mixed_system(prrs: u32, h: u32, clb: u32, dsp: u32, bram: u32) -> PrSystem {
        let device = fabric::device_by_name("xc5vsx95t").unwrap();
        PrSystem::homogeneous(
            &device,
            mixed_org(h, clb, dsp, bram),
            prrs,
            IcapModel::V5_DMA,
        )
        .unwrap()
    }

    fn task(id: u32, module: &str, arrival: u64, exec: u64) -> HwTask {
        HwTask {
            id,
            module: module.into(),
            needs: Resources::new(40, 0, 0),
            arrival_ns: arrival,
            exec_ns: exec,
            deadline_ns: None,
        }
    }

    #[test]
    fn single_task_timeline() {
        let sys = simple_system(1);
        let w = Workload::new(vec![task(0, "a", 0, 1000)]);
        let r = simulate(&sys, &w, &FirstFit);
        let reconfig = sys.reconfig_ns(&sys.prrs[0]);
        assert_eq!(r.completed, 1);
        assert_eq!(r.reconfigurations, 1);
        assert_eq!(r.makespan_ns, reconfig + 1000);
        assert_eq!(r.total_wait_ns, reconfig);
    }

    #[test]
    fn reuse_skips_reconfiguration() {
        let sys = simple_system(1);
        let w = Workload::new(vec![task(0, "a", 0, 100), task(1, "a", 0, 100)]);
        let r = simulate(&sys, &w, &ReuseAware);
        assert_eq!(r.completed, 2);
        assert_eq!(r.reconfigurations, 1);
        assert_eq!(r.reuse_hits, 1);
        assert!(r.reuse_rate() > 0.49);
    }

    #[test]
    fn different_modules_force_reconfiguration() {
        let sys = simple_system(1);
        let w = Workload::new(vec![task(0, "a", 0, 100), task(1, "b", 0, 100)]);
        let r = simulate(&sys, &w, &ReuseAware);
        assert_eq!(r.reconfigurations, 2);
        assert_eq!(r.reuse_hits, 0);
    }

    #[test]
    fn icap_serializes_reconfigurations() {
        let sys = simple_system(2);
        // Two tasks, two PRRs: both need reconfig; the second must wait for
        // the ICAP even though its PRR is free.
        let w = Workload::new(vec![task(0, "a", 0, 10), task(1, "b", 0, 10)]);
        let r = simulate(&sys, &w, &FirstFit);
        let reconfig = sys.reconfig_ns(&sys.prrs[0]);
        assert_eq!(r.reconfigurations, 2);
        assert_eq!(r.makespan_ns, 2 * reconfig + 10);
        assert_eq!(r.icap_busy_ns, 2 * reconfig);
    }

    #[test]
    fn unservable_tasks_are_dropped() {
        let sys = simple_system(1);
        let mut t = task(0, "huge", 0, 10);
        t.needs = Resources::new(10_000, 0, 0);
        let w = Workload::new(vec![t, task(1, "a", 0, 10)]);
        let r = simulate(&sys, &w, &FirstFit);
        assert_eq!(r.completed, 1);
    }

    /// Regression for the hoisted `fits_ever` check: many unservable tasks
    /// interleaved with servable ones are each dropped exactly once —
    /// completed + dropped covers the whole workload, under every
    /// scheduler, and the report matches the seed oracle.
    #[test]
    fn unservable_tasks_are_dropped_exactly_once() {
        let sys = simple_system(2);
        let mut tasks = Vec::new();
        for i in 0..30u32 {
            let mut t = task(
                i,
                if i % 3 == 0 { "huge" } else { "a" },
                u64::from(i) * 50,
                200,
            );
            if i % 3 == 0 {
                t.needs = Resources::new(10_000, 0, 0);
            }
            tasks.push(t);
        }
        let w = Workload::new(tasks);
        let servable = w
            .tasks
            .iter()
            .filter(|t| sys.prrs.iter().any(|p| p.fits(&t.needs)))
            .count();
        assert!(servable < w.tasks.len());
        for (sched, policy) in [
            (
                &FirstFit as &dyn crate::Scheduler,
                reference::SeedPolicy::FirstFit,
            ),
            (&BestFit, reference::SeedPolicy::BestFit),
            (&ReuseAware, reference::SeedPolicy::ReuseAware),
        ] {
            let r = simulate(&sys, &w, sched);
            assert_eq!(r.completed as usize, servable, "{}", sched.name());
            assert_eq!(r, reference::simulate_seed(&sys, &w, policy));
        }
    }

    #[test]
    fn scratch_reuse_is_report_identical() {
        let sys = mixed_system(4, 1, 6, 1, 1);
        let wl_a = sys.filter_workload(&Workload::generate(
            13,
            Family::Virtex5,
            100,
            8,
            250,
            1_000,
            10_000,
        ));
        let wl_b = sys.filter_workload(&Workload::generate(
            29,
            Family::Virtex5,
            60,
            4,
            250,
            2_000,
            20_000,
        ));
        let mut scratch = SimScratch::new();
        // Reuse the same scratch across differently-shaped runs.
        let a1 = simulate_with_scratch(&sys, &wl_a, &ReuseAware, &mut scratch);
        let b1 = simulate_with_scratch(&sys, &wl_b, &BestFit, &mut scratch);
        let a2 = simulate_with_scratch(&sys, &wl_a, &ReuseAware, &mut scratch);
        assert_eq!(a1, simulate(&sys, &wl_a, &ReuseAware));
        assert_eq!(b1, simulate(&sys, &wl_b, &BestFit));
        assert_eq!(a1, a2);
    }

    #[test]
    fn batch_matches_sequential() {
        let sys4 = mixed_system(4, 1, 6, 1, 1);
        let sys2 = mixed_system(2, 1, 6, 1, 1);
        let wl = sys4.filter_workload(&Workload::generate(
            17,
            Family::Virtex5,
            120,
            8,
            250,
            2_000,
            15_000,
        ));
        let scheds: [&dyn crate::Scheduler; 3] = [&FirstFit, &BestFit, &ReuseAware];
        let mut scenarios = Vec::new();
        for sys in [&sys4, &sys2] {
            for s in scheds {
                scenarios.push(Scenario {
                    system: sys,
                    workload: &wl,
                    scheduler: s,
                });
            }
        }
        let batch = simulate_batch(&scenarios);
        assert_eq!(batch.len(), scenarios.len());
        for (r, sc) in batch.iter().zip(&scenarios) {
            assert_eq!(*r, simulate(sc.system, sc.workload, sc.scheduler));
        }
    }

    /// For an execution-bound workload (execution time >> reconfiguration
    /// time) more PRRs increase parallelism and shrink makespan. Note this
    /// is NOT true for ICAP-bound workloads, where extra PRRs just cause
    /// extra serialized reconfigurations — exactly the paper's warning
    /// that bad PR sizing decisions can underperform.
    #[test]
    fn more_prrs_help_execution_bound_workloads() {
        let sys2 = mixed_system(2, 1, 6, 1, 1);
        let sys6 = mixed_system(6, 1, 6, 1, 1);
        let wl = sys2.filter_workload(&Workload::generate(
            5,
            Family::Virtex5,
            60,
            6,
            250,
            1_000,
            3_000_000,
        ));
        assert!(wl.tasks.len() >= 10, "servable tasks: {}", wl.tasks.len());
        let r1 = simulate(&sys2, &wl, &BestFit);
        let r2 = simulate(&sys6, &wl, &BestFit);
        assert_eq!(r1.completed as usize, wl.tasks.len());
        assert!(
            r2.makespan_ns <= r1.makespan_ns,
            "6 PRRs {} vs 2 PRRs {}",
            r2.makespan_ns,
            r1.makespan_ns
        );
    }

    /// The paper's core motivation: oversizing the PRR inflates the
    /// bitstream and reconfiguration time, degrading makespan for the same
    /// workload.
    #[test]
    fn oversized_prrs_degrade_makespan() {
        let right = mixed_system(4, 1, 6, 1, 1);
        let oversized = mixed_system(4, 2, 12, 2, 2);
        let wl = right.filter_workload(&Workload::generate(
            7,
            Family::Virtex5,
            80,
            8,
            250,
            1_000,
            5_000,
        ));
        assert!(wl.tasks.len() >= 10, "servable tasks: {}", wl.tasks.len());
        let r1 = simulate(&right, &wl, &BestFit);
        let r2 = simulate(&oversized, &wl, &BestFit);
        assert!(
            r2.makespan_ns > r1.makespan_ns,
            "oversized {} vs right-sized {}",
            r2.makespan_ns,
            r1.makespan_ns
        );
        assert!(r2.icap_busy_ns > r1.icap_busy_ns);
    }

    #[test]
    fn exec_time_is_conserved_across_schedulers() {
        let sys = mixed_system(4, 1, 6, 1, 1);
        let wl = sys.filter_workload(&Workload::generate(
            13,
            Family::Virtex5,
            100,
            8,
            250,
            1_000,
            10_000,
        ));
        assert!(wl.tasks.len() >= 10);
        let a = simulate(&sys, &wl, &FirstFit);
        let b = simulate(&sys, &wl, &BestFit);
        let c = simulate(&sys, &wl, &ReuseAware);
        assert_eq!(a.total_exec_ns, b.total_exec_ns);
        assert_eq!(b.total_exec_ns, c.total_exec_ns);
        assert_eq!(a.completed, c.completed);
    }

    #[test]
    fn reuse_aware_beats_first_fit_on_repetitive_workloads() {
        let sys = mixed_system(4, 1, 6, 1, 1);
        // Heavily repetitive: few modules, many tasks.
        let wl = sys.filter_workload(&Workload::generate(
            21,
            Family::Virtex5,
            120,
            3,
            250,
            500,
            2_000,
        ));
        assert!(wl.tasks.len() >= 10, "servable tasks: {}", wl.tasks.len());
        let ff = simulate(&sys, &wl, &FirstFit);
        let ra = simulate(&sys, &wl, &ReuseAware);
        assert!(ra.reuse_hits >= ff.reuse_hits);
        assert!(ra.makespan_ns <= ff.makespan_ns);
    }

    #[test]
    fn full_reconfig_pays_per_module_switch() {
        let device = xc5vlx110t();
        let w = Workload::new(vec![
            task(0, "a", 0, 100),
            task(1, "a", 0, 100),
            task(2, "b", 0, 100),
        ]);
        let r = simulate_full_reconfig(&device, &w, &IcapModel::V5_DMA);
        assert_eq!(r.completed, 3);
        assert_eq!(r.reconfigurations, 2, "a then b");
        assert_eq!(r.reuse_hits, 1);
        let full = prcost::full_bitstream_size_bytes(&device);
        let t_full = IcapModel::V5_DMA.transfer_time(full).as_nanos() as u64;
        assert_eq!(r.makespan_ns, 2 * t_full + 300);
    }

    #[test]
    fn static_system_has_zero_reconfig_but_serializes_per_module() {
        let device = xc5vlx110t();
        let w = Workload::new(vec![
            task(0, "a", 0, 100),
            task(1, "a", 0, 100),
            task(2, "b", 0, 100),
        ]);
        let r = simulate_static(&device, &w).expect("3 small modules fit");
        assert_eq!(r.reconfigurations, 0);
        assert_eq!(r.icap_busy_ns, 0);
        // Two "a" tasks serialize; "b" runs in parallel.
        assert_eq!(r.makespan_ns, 200);
    }

    #[test]
    fn static_system_rejects_oversubscribed_module_sets() {
        let device = xc5vlx110t();
        // 200 distinct modules of 100 CLBs each = 20,000 CLBs > 8640.
        let tasks: Vec<HwTask> = (0..200)
            .map(|i| HwTask {
                id: i,
                module: format!("m{i}"),
                needs: Resources::new(100, 0, 0),
                arrival_ns: 0,
                exec_ns: 10,
                deadline_ns: None,
            })
            .collect();
        assert!(simulate_static(&device, &Workload::new(tasks)).is_none());
    }

    /// The paper's headline warning, inverted: with partial bitstreams the
    /// PR system beats full reconfiguration by roughly the full/partial
    /// bitstream ratio on reconfiguration-bound workloads.
    #[test]
    fn pr_beats_full_reconfiguration() {
        let device = xc5vlx110t();
        let sys = PrSystem::homogeneous(&device, org(1, 4), 4, IcapModel::V5_DMA).unwrap();
        let w = Workload::new(
            (0..40)
                .map(|i| task(i, ["a", "b", "c", "d"][(i % 4) as usize], 0, 1_000))
                .collect(),
        );
        let pr = simulate(&sys, &w, &ReuseAware);
        let full = simulate_full_reconfig(&device, &w, &IcapModel::V5_DMA);
        assert_eq!(pr.completed, full.completed);
        assert!(
            pr.makespan_ns * 5 < full.makespan_ns,
            "PR {} vs full {}",
            pr.makespan_ns,
            full.makespan_ns
        );
    }
}
