//! Hardware tasks and workload generation.

use crate::intern::{ModuleId, ModuleTable};
use fabric::{Family, Resources};
use prcost::rng::Rng;
use serde::{Deserialize, Serialize};
use synth::prm::GenericPrm;
use synth::{PrmGenerator, SynthReport};

/// One hardware task instance: a PRM plus its runtime behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwTask {
    /// Task id (unique within a workload).
    pub id: u32,
    /// Module name — tasks with equal names share partial bitstreams, so a
    /// PRR already holding the module needs no reconfiguration.
    pub module: String,
    /// Fabric resources the task needs inside its PRR.
    pub needs: Resources,
    /// Arrival time, nanoseconds from simulation start.
    pub arrival_ns: u64,
    /// Pure execution time once configured, nanoseconds.
    pub exec_ns: u64,
    /// Absolute deadline (ns from simulation start), if the task is a
    /// real-time job. `None` — the loss-system default — means the task
    /// has no deadline and can never be counted as a miss. Periodic
    /// task-set generators (`sched` crate) set this to
    /// `release + relative deadline`.
    pub deadline_ns: Option<u64>,
}

impl HwTask {
    /// Build a (deadline-free) task from a synthesis report.
    pub fn from_report(id: u32, report: &SynthReport, arrival_ns: u64, exec_ns: u64) -> Self {
        let lut_clb = u64::from(report.family.params().lut_clb);
        HwTask {
            id,
            module: report.module.clone(),
            needs: Resources::new(
                report.lut_ff_pairs.div_ceil(lut_clb),
                report.dsps,
                report.brams,
            ),
            arrival_ns,
            exec_ns,
            deadline_ns: None,
        }
    }
}

/// A deterministic stream of hardware tasks.
#[derive(Debug, Clone)]
pub struct Workload {
    /// All tasks, sorted by arrival time.
    pub tasks: Vec<HwTask>,
    /// Module names interned once at construction so every simulation of
    /// this workload skips the per-task string work.
    modules: ModuleTable,
    /// Interned module id per task (task order).
    module_ids: Vec<ModuleId>,
}

/// Only the task list is serialized; deserialization rebuilds the
/// interned module cache through [`Workload::new`].
impl Serialize for Workload {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("tasks".to_string(), self.tasks.to_value())])
    }
}

impl Deserialize for Workload {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Workload::new(serde::__field(v, "tasks")?))
    }
}

/// Equality is over the task list alone: the interned cache is derived
/// data and is empty on deserialized workloads.
impl PartialEq for Workload {
    fn eq(&self, other: &Self) -> bool {
        self.tasks == other.tasks
    }
}

impl Workload {
    /// Wrap an explicit task list (sorts by arrival, interns modules).
    pub fn new(mut tasks: Vec<HwTask>) -> Self {
        tasks.sort_by_key(|t| (t.arrival_ns, t.id));
        let mut modules = ModuleTable::new();
        let module_ids = tasks.iter().map(|t| modules.intern(&t.module)).collect();
        Workload {
            tasks,
            modules,
            module_ids,
        }
    }

    /// Interned module ids, one per task in task order.
    pub fn module_ids(&self) -> &[ModuleId] {
        &self.module_ids
    }

    /// The interned module table behind [`Workload::module_ids`].
    pub fn modules(&self) -> &ModuleTable {
        &self.modules
    }

    /// Generate `n` task instances drawn from a pool of `modules` distinct
    /// synthetic PRMs (scale controls resource footprints), with Poisson-ish
    /// arrivals of mean `mean_interarrival_ns` and executions of mean
    /// `mean_exec_ns`. Fully deterministic in `seed`.
    ///
    /// Seeding note: the stream is seeded through [`Rng::from_seed`],
    /// which mixes the seed before the nonzero guard — the historical
    /// `Rng(seed | 1)` seeding made seeds `2k` and `2k + 1` produce
    /// identical workloads. Trajectories for a given seed therefore
    /// differ from pre-fix releases (seed-pinned artifacts were
    /// regenerated; see `results/README.md`).
    pub fn generate(
        seed: u64,
        family: Family,
        n: u32,
        modules: u32,
        scale: u32,
        mean_interarrival_ns: u64,
        mean_exec_ns: u64,
    ) -> Self {
        let modules = modules.max(1);
        let pool: Vec<SynthReport> = (0..modules)
            .map(|m| {
                GenericPrm::random(seed.wrapping_add(u64::from(m) * 7919), scale).synthesize(family)
            })
            .collect();

        let mut rng = Rng::from_seed(seed);
        let mut t = 0u64;
        let mut tasks = Vec::with_capacity(n as usize);
        for id in 0..n {
            let report = &pool[rng.below(u64::from(modules)) as usize];
            t += rng.exp(mean_interarrival_ns);
            let exec = rng.exp(mean_exec_ns).max(1);
            tasks.push(HwTask::from_report(id, report, t, exec));
        }
        Workload::new(tasks)
    }

    /// Generate a fragmentation-inducing dynamic workload: like
    /// [`Workload::generate`], but each pool module's scale is drawn from
    /// a Pareto(α = 1.2) distribution anchored at `base_scale` — many
    /// small modules interleaved with a few much larger ones, the mix
    /// that leaves the fabric checkerboarded once mid-sized tenants
    /// depart. Scales are capped at `32 × base_scale` so the tail stays
    /// on-device. Arrivals and lifetimes are exponential with the given
    /// means. Fully deterministic in `seed` (seeded through
    /// [`Rng::from_seed`]; see [`Workload::generate`]'s seeding note).
    pub fn generate_heavy_tailed(
        seed: u64,
        family: Family,
        n: u32,
        modules: u32,
        base_scale: u32,
        mean_interarrival_ns: u64,
        mean_exec_ns: u64,
    ) -> Self {
        let modules = modules.max(1);
        let base = base_scale.max(16);
        // Separate RNG stream for module sizes, so the arrival/lifetime
        // sequence matches `generate` semantics for a given seed count.
        let mut size_rng = Rng::from_seed(seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let pool: Vec<SynthReport> = (0..modules)
            .map(|m| {
                let scale =
                    (size_rng.pareto(f64::from(base), 1.2) as u32).min(base.saturating_mul(32));
                GenericPrm::random(seed.wrapping_add(u64::from(m) * 7919), scale).synthesize(family)
            })
            .collect();

        let mut rng = Rng::from_seed(seed);
        let mut t = 0u64;
        let mut tasks = Vec::with_capacity(n as usize);
        for id in 0..n {
            let report = &pool[rng.below(u64::from(modules)) as usize];
            t += rng.exp(mean_interarrival_ns);
            let exec = rng.exp(mean_exec_ns).max(1);
            tasks.push(HwTask::from_report(id, report, t, exec));
        }
        Workload::new(tasks)
    }

    /// Generate a **bursty** workload: a two-state Markov-modulated
    /// Poisson process. Arrivals alternate between an *on* phase (mean
    /// interarrival `mean_interarrival_ns / burstiness`) and an *off*
    /// phase (mean interarrival `mean_interarrival_ns × burstiness`),
    /// switching phase with probability 1/8 after each arrival. The
    /// long-run rate roughly matches [`Workload::generate`] with the
    /// same mean, but tasks cluster into bursts that overload the PRR
    /// pool and then drain — the arrival pattern that separates
    /// queue-aware schedulers from myopic ones. `burstiness ≤ 1` or
    /// `n == 0` degenerate to the plain Poisson generator's shape.
    /// Fully deterministic in `seed`.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_bursty(
        seed: u64,
        family: Family,
        n: u32,
        modules: u32,
        scale: u32,
        mean_interarrival_ns: u64,
        mean_exec_ns: u64,
        burstiness: u32,
    ) -> Self {
        let modules = modules.max(1);
        let burst = u64::from(burstiness.max(1));
        let pool: Vec<SynthReport> = (0..modules)
            .map(|m| {
                GenericPrm::random(seed.wrapping_add(u64::from(m) * 7919), scale).synthesize(family)
            })
            .collect();

        let mut rng = Rng::from_seed(seed ^ 0x5bf0_3635_dcd1_d867);
        let mut t = 0u64;
        let mut on = true;
        let mut tasks = Vec::with_capacity(n as usize);
        for id in 0..n {
            let report = &pool[rng.below(u64::from(modules)) as usize];
            let mean = if on {
                (mean_interarrival_ns / burst).max(1)
            } else {
                mean_interarrival_ns.saturating_mul(burst)
            };
            t += rng.exp(mean);
            let exec = rng.exp(mean_exec_ns).max(1);
            tasks.push(HwTask::from_report(id, report, t, exec));
            if rng.below(8) == 0 {
                on = !on;
            }
        }
        Workload::new(tasks)
    }

    /// Attach soft deadlines to every task: `deadline = arrival +
    /// slack_factor × exec`. Turns any loss-system workload into one
    /// whose [`SimReport::deadline_misses`](crate::SimReport) accounting
    /// is meaningful — a task completing later than `slack_factor` times
    /// its own execution time after arrival counts as a miss.
    pub fn with_deadlines(&self, slack_factor: f64) -> Workload {
        let slack = slack_factor.max(1.0);
        Workload::new(
            self.tasks
                .iter()
                .map(|t| {
                    let mut t = t.clone();
                    t.deadline_ns = Some(t.arrival_ns + (slack * t.exec_ns as f64) as u64);
                    t
                })
                .collect(),
        )
    }

    /// Largest per-kind requirement over all tasks (what a single shared
    /// PRR must provide).
    pub fn max_needs(&self) -> Resources {
        self.tasks
            .iter()
            .fold(Resources::ZERO, |acc, t| acc.max(&t.needs))
    }

    /// Distinct module names in the workload.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let a = Workload::generate(9, Family::Virtex5, 100, 8, 800, 10_000, 50_000);
        let b = Workload::generate(9, Family::Virtex5, 100, 8, 800, 10_000, 50_000);
        assert_eq!(a, b);
        assert!(a
            .tasks
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert_eq!(a.tasks.len(), 100);
    }

    /// The old `Rng(seed | 1)` seeding produced identical workloads for
    /// seeds `2k` and `2k + 1`; `Rng::from_seed` must not.
    #[test]
    fn adjacent_seeds_produce_distinct_workloads() {
        for k in [0u64, 4, 11] {
            let even = Workload::generate(2 * k, Family::Virtex5, 50, 4, 400, 5_000, 20_000);
            let odd = Workload::generate(2 * k + 1, Family::Virtex5, 50, 4, 400, 5_000, 20_000);
            assert_ne!(even, odd, "seeds {} and {} alias", 2 * k, 2 * k + 1);
        }
    }

    #[test]
    fn module_pool_is_respected() {
        let w = Workload::generate(3, Family::Virtex5, 200, 5, 600, 1000, 1000);
        assert!(w.module_count() <= 5);
        assert!(w.module_count() >= 2, "several modules should appear");
    }

    #[test]
    fn heavy_tailed_generator_is_deterministic_and_sorted() {
        let a = Workload::generate_heavy_tailed(21, Family::Virtex5, 150, 12, 300, 8_000, 40_000);
        let b = Workload::generate_heavy_tailed(21, Family::Virtex5, 150, 12, 300, 8_000, 40_000);
        assert_eq!(a, b);
        assert!(a
            .tasks
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert_eq!(a.tasks.len(), 150);
    }

    #[test]
    fn heavy_tailed_sizes_spread_wider_than_uniform_pool() {
        // The Pareto pool must mix small and large tenants: the largest
        // CLB footprint dwarfs the smallest, unlike `generate`'s
        // fixed-scale pool.
        let w = Workload::generate_heavy_tailed(7, Family::Virtex5, 400, 24, 200, 5_000, 30_000);
        let mut clbs: Vec<u64> = w.tasks.iter().map(|t| t.needs.clb()).collect();
        clbs.sort_unstable();
        clbs.dedup();
        let (min, max) = (clbs[0], *clbs.last().unwrap());
        assert!(clbs.len() >= 4, "distinct footprints: {clbs:?}");
        assert!(max >= 3 * min.max(1), "tail too light: min {min} max {max}");
    }

    #[test]
    fn bursty_generator_is_deterministic_and_clusters_arrivals() {
        let a = Workload::generate_bursty(17, Family::Virtex5, 400, 8, 300, 10_000, 30_000, 8);
        let b = Workload::generate_bursty(17, Family::Virtex5, 400, 8, 300, 10_000, 30_000, 8);
        assert_eq!(a, b);
        assert_eq!(a.tasks.len(), 400);
        // Burstiness shows as dispersion: the squared coefficient of
        // variation of interarrivals is well above the exponential's 1.
        let gaps: Vec<f64> = a
            .tasks
            .windows(2)
            .map(|w| (w[1].arrival_ns - w[0].arrival_ns) as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let scv = var / (mean * mean);
        assert!(scv > 2.0, "interarrival SCV {scv} — not bursty");
    }

    #[test]
    fn with_deadlines_sets_arrival_plus_slack() {
        let w = Workload::generate(5, Family::Virtex5, 30, 4, 300, 2_000, 10_000);
        assert!(w.tasks.iter().all(|t| t.deadline_ns.is_none()));
        let d = w.with_deadlines(2.0);
        for t in &d.tasks {
            assert_eq!(t.deadline_ns, Some(t.arrival_ns + 2 * t.exec_ns));
        }
    }

    #[test]
    fn from_report_derives_clb_need_with_ceiling() {
        let r = SynthReport::new("m", Family::Virtex5, 9, 9, 0, 2, 1);
        let t = HwTask::from_report(0, &r, 0, 100);
        assert_eq!(t.needs.clb(), 2); // ceil(9/8)
        assert_eq!(t.needs.dsp(), 2);
        assert_eq!(t.needs.bram(), 1);
        assert_eq!(t.deadline_ns, None);
    }

    #[test]
    fn max_needs_is_componentwise() {
        let r1 = SynthReport::new("a", Family::Virtex5, 80, 80, 0, 4, 0);
        let r2 = SynthReport::new("b", Family::Virtex5, 16, 16, 0, 0, 3);
        let w = Workload::new(vec![
            HwTask::from_report(0, &r1, 0, 1),
            HwTask::from_report(1, &r2, 0, 1),
        ]);
        let m = w.max_needs();
        assert_eq!((m.clb(), m.dsp(), m.bram()), (10, 4, 3));
    }

    #[test]
    fn mean_interarrival_tracks_parameter() {
        let w = Workload::generate(11, Family::Virtex5, 2000, 4, 500, 10_000, 1);
        let last = w.tasks.last().unwrap().arrival_ns;
        let mean = last as f64 / 2000.0;
        assert!(
            (5_000.0..20_000.0).contains(&mean),
            "mean interarrival {mean}"
        );
    }
}
