//! Task-trace text format: record and replay multitasking workloads.
//!
//! A line-oriented format so workloads can be versioned, shared and edited
//! by hand:
//!
//! ```text
//! # prfpga task trace v1
//! # id  module      clb dsp bram  arrival_ns  exec_ns  priority
//! 0     fir32       163 32  0     0           100000   1
//! 1     sdram_ctrl  42  0   0     5000        25000    0
//! ```
//!
//! Fields are whitespace-separated; `#` starts a comment; priority is
//! optional (default 0).

use crate::preempt::PreemptiveTask;
use crate::task::{HwTask, Workload};
use core::fmt;
use fabric::Resources;

/// Trace parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line had too few fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::TooFewFields { line } => {
                write!(f, "line {line}: expected at least 7 fields")
            }
            TraceError::BadNumber { line, token } => {
                write!(f, "line {line}: cannot parse number from {token:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Render a workload (priorities all zero) as trace text.
pub fn write_trace(tasks: &[PreemptiveTask]) -> String {
    let mut out = String::from(
        "# prfpga task trace v1\n# id module clb dsp bram arrival_ns exec_ns priority\n",
    );
    for t in tasks {
        out.push_str(&format!(
            "{} {} {} {} {} {} {} {}\n",
            t.id,
            t.module,
            t.needs.clb(),
            t.needs.dsp(),
            t.needs.bram(),
            t.arrival_ns,
            t.exec_ns,
            t.priority
        ));
    }
    out
}

/// Render a non-preemptive workload as trace text.
pub fn write_workload(workload: &Workload) -> String {
    let tasks: Vec<PreemptiveTask> = workload
        .tasks
        .iter()
        .map(|t| PreemptiveTask {
            id: t.id,
            module: t.module.clone(),
            needs: t.needs,
            arrival_ns: t.arrival_ns,
            exec_ns: t.exec_ns,
            priority: 0,
        })
        .collect();
    write_trace(&tasks)
}

/// Parse trace text into prioritized tasks.
pub fn parse_trace(text: &str) -> Result<Vec<PreemptiveTask>, TraceError> {
    let mut tasks = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() < 7 {
            return Err(TraceError::TooFewFields { line });
        }
        let num = |token: &str| -> Result<u64, TraceError> {
            token.parse().map_err(|_| TraceError::BadNumber {
                line,
                token: token.to_string(),
            })
        };
        tasks.push(PreemptiveTask {
            id: num(fields[0])? as u32,
            module: fields[1].to_string(),
            needs: Resources::new(num(fields[2])?, num(fields[3])?, num(fields[4])?),
            arrival_ns: num(fields[5])?,
            exec_ns: num(fields[6])?,
            priority: fields.get(7).map(|t| num(t)).transpose()?.unwrap_or(0) as u8,
        });
    }
    Ok(tasks)
}

/// Parse trace text into a non-preemptive [`Workload`] (priorities are
/// dropped).
pub fn parse_workload(text: &str) -> Result<Workload, TraceError> {
    let tasks = parse_trace(text)?
        .into_iter()
        .map(|t| HwTask {
            id: t.id,
            module: t.module,
            needs: t.needs,
            arrival_ns: t.arrival_ns,
            exec_ns: t.exec_ns,
            // The trace text format has no deadline column; parsed
            // workloads are loss-system (no deadline accounting).
            deadline_ns: None,
        })
        .collect();
    Ok(Workload::new(tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Family;

    fn sample() -> Vec<PreemptiveTask> {
        vec![
            PreemptiveTask {
                id: 0,
                module: "fir32".into(),
                needs: Resources::new(163, 32, 0),
                arrival_ns: 0,
                exec_ns: 100_000,
                priority: 1,
            },
            PreemptiveTask {
                id: 1,
                module: "sdram_ctrl".into(),
                needs: Resources::new(42, 0, 0),
                arrival_ns: 5_000,
                exec_ns: 25_000,
                priority: 0,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let tasks = sample();
        let text = write_trace(&tasks);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, tasks);
    }

    #[test]
    fn workload_round_trip() {
        let wl = Workload::generate(3, Family::Virtex5, 40, 5, 300, 1_000, 10_000);
        let text = write_workload(&wl);
        let back = parse_workload(&text).unwrap();
        assert_eq!(back, wl);
    }

    #[test]
    fn comments_blank_lines_and_default_priority() {
        let text = "\n# full comment\n3 uart 5 0 0 10 20  # trailing comment\n";
        let tasks = parse_trace(text).unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].id, 3);
        assert_eq!(tasks[0].priority, 0);
        assert_eq!(tasks[0].needs.clb(), 5);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(
            parse_trace("0 m 1 2\n"),
            Err(TraceError::TooFewFields { line: 1 })
        );
        assert_eq!(
            parse_trace("# ok\n0 m 1 2 x 10 20\n"),
            Err(TraceError::BadNumber {
                line: 2,
                token: "x".into()
            })
        );
    }
}
