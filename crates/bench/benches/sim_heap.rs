//! Criterion bench: event-heap simulator vs the frozen seed simulator.
//!
//! The ISSUE-2 tentpole target: ≥5× simulator tasks/sec on a 10⁵-task
//! workload. The seed implementation (per-dispatch `Vec` allocations,
//! `Option<String>` module identity, O(slots) fits rescans and clock
//! scans) is frozen in `multitask::sim::reference`; the live simulator
//! interns modules, carries fits bitmasks in queue entries, advances the
//! clock off a binary heap of slot-free events and reuses a
//! `SimScratch`. Besides the criterion numbers, a `BENCH_sim.json`
//! artifact with both throughputs per system width, the speedups and the
//! rayon batch throughput is written to `results/`. The artifact uses
//! min-of-samples timing: on a noisy shared box the minimum is the
//! least-biased estimator of the true cost of either simulator.

use bitstream::IcapModel;
use criterion::{criterion_group, Criterion, Throughput};
use fabric::{device_by_name, Family};
use multitask::sim::reference::{simulate_seed, SeedPolicy};
use multitask::{
    simulate_batch, simulate_with_scratch, BestFit, FirstFit, PrSystem, ReuseAware, Scenario,
    Scheduler, SimScratch, Workload,
};
use prcost::PrrOrganization;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const N_TASKS: u32 = 100_000;

fn system(prrs: u32) -> PrSystem {
    let device = device_by_name("xc5vsx95t").unwrap();
    let org = PrrOrganization {
        family: Family::Virtex5,
        height: 1,
        clb_cols: 6,
        dsp_cols: 1,
        bram_cols: 1,
    };
    PrSystem::homogeneous(&device, org, prrs, IcapModel::V5_DMA).unwrap()
}

fn workload(sys: &PrSystem, n: u32) -> Workload {
    sys.filter_workload(&Workload::generate(
        7,
        Family::Virtex5,
        n,
        12,
        300,
        5_000,
        100_000,
    ))
}

fn bench_sim(c: &mut Criterion) {
    let sys = system(4);
    // Criterion side: a smaller workload keeps iteration counts sane.
    let wl = workload(&sys, 10_000);
    let n = wl.tasks.len() as u64;

    let mut g = c.benchmark_group("sim");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n));
    let pairs: [(&dyn Scheduler, SeedPolicy); 3] = [
        (&FirstFit, SeedPolicy::FirstFit),
        (&BestFit, SeedPolicy::BestFit),
        (&ReuseAware, SeedPolicy::ReuseAware),
    ];
    for (sched, policy) in pairs {
        g.bench_function(format!("seed/{}", policy.name()), |b| {
            b.iter(|| simulate_seed(black_box(&sys), black_box(&wl), policy))
        });
        let mut scratch = SimScratch::new();
        g.bench_function(format!("heap/{}", sched.name()), |b| {
            b.iter(|| simulate_with_scratch(black_box(&sys), black_box(&wl), sched, &mut scratch))
        });
    }
    g.finish();
}

#[derive(Serialize)]
struct SimConfigResult {
    prrs: usize,
    tasks: usize,
    seed_min_ms: f64,
    heap_min_ms: f64,
    speedup: f64,
    seed_tasks_per_sec: f64,
    heap_tasks_per_sec: f64,
}

#[derive(Serialize)]
struct SimBenchArtifact {
    samples: u32,
    scheduler: &'static str,
    /// Best seed-vs-heap ratio across the measured system widths.
    speedup: f64,
    configs: Vec<SimConfigResult>,
    batch_scenarios: usize,
    batch_min_ms: f64,
    batch_tasks_per_sec: f64,
}

/// Minimum wall time of `f` over `samples` runs (after one warm-up).
fn min_time(samples: u32, f: &mut dyn FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measure both simulators on the full 10⁵-task workload across several
/// system widths and emit the JSON artifact (the criterion shim's
/// printed numbers are not machine-readable). The seed's per-dispatch
/// costs (string clones, fits rescans, clock scans) grow with the slot
/// count, so the speedup is reported per width.
fn emit_artifact() {
    let samples = 20u32;
    let mut scratch = SimScratch::new();
    let mut configs = Vec::new();
    for prrs in [4u32, 12, 16] {
        let sys = system(prrs);
        let wl = workload(&sys, N_TASKS);
        let n = wl.tasks.len();
        let seed = min_time(samples, &mut || {
            black_box(simulate_seed(&sys, &wl, SeedPolicy::ReuseAware));
        });
        let heap = min_time(samples, &mut || {
            black_box(simulate_with_scratch(&sys, &wl, &ReuseAware, &mut scratch));
        });
        println!(
            "sim {} tasks, {} PRRs: seed {:.2} ms, heap {:.2} ms ({:.2}x, {:.2} Mtasks/s)",
            n,
            prrs,
            seed * 1e3,
            heap * 1e3,
            seed / heap,
            n as f64 / heap / 1e6,
        );
        configs.push(SimConfigResult {
            prrs: sys.prrs.len(),
            tasks: n,
            seed_min_ms: seed * 1e3,
            heap_min_ms: heap * 1e3,
            speedup: seed / heap,
            seed_tasks_per_sec: n as f64 / seed,
            heap_tasks_per_sec: n as f64 / heap,
        });
    }

    // Batch: the 4-PRR scenario replicated across every worker.
    let sys = system(4);
    let wl = workload(&sys, N_TASKS);
    let n = wl.tasks.len();
    let scheds: [&dyn Scheduler; 3] = [&FirstFit, &BestFit, &ReuseAware];
    let scenarios: Vec<Scenario> = (0..12)
        .map(|i| Scenario {
            system: &sys,
            workload: &wl,
            scheduler: scheds[i % scheds.len()],
        })
        .collect();
    let n_scenarios = scenarios.len();
    let batch = min_time(5, &mut || {
        black_box(simulate_batch(&scenarios));
    });
    println!(
        "batch {} scenarios: {:.2} ms ({:.2} Mtasks/s over {} workers)",
        n_scenarios,
        batch * 1e3,
        (n * n_scenarios) as f64 / batch / 1e6,
        rayon::current_num_threads(),
    );

    let artifact = SimBenchArtifact {
        samples,
        scheduler: "reuse-aware",
        speedup: configs.iter().map(|c| c.speedup).fold(0.0, f64::max),
        configs,
        batch_scenarios: n_scenarios,
        batch_min_ms: batch * 1e3,
        batch_tasks_per_sec: (n * n_scenarios) as f64 / batch,
    };
    bench::write_json("BENCH_sim", &artifact);
}

criterion_group!(benches, bench_sim);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
