//! Criterion bench: folded CRC-32C, SIMD kernels, and arena emission.
//!
//! The CRC kernels are measured in the same run on the same buffer — the
//! seed's bitwise loop (frozen in `bitstream::crc::baseline`), the PR-2
//! slice-by-16 chain (`crc_words_slice16`), the PR-7 portable polynomial
//! folding kernel (`crc_words_folded`, four independent lanes per
//! 512-byte super-block), and whichever of the PR-8 SIMD kernels this
//! host compiles and detects (`crc32q` hardware CRC, PCLMULQDQ carryless
//! folding) — so `BENCH_crc.json` carries mutually consistent
//! throughputs. The portable fold's bar is ≥2× over slice-16; the SIMD
//! kernels' bar is ≥2× over the portable fold (on hardware that has
//! them). Payload fill (AVX2 vs portable splitmix) is measured the same
//! way, and the artifact records which dispatch paths are active.
//!
//! The second half measures whole-stream emission: single-spec
//! `generate` vs buffer-reusing `emit_into`, and batch emission through
//! the arena path (`generate_batch` over `Arc` specs with per-worker
//! `EmitScratch` template/stream caches) against the frozen PR-2 push
//! emitter (`writer::reference::generate_batch`); the arena's bar is ≥3×.
//! A counting `#[global_allocator]` asserts the steady-state arena path:
//! a warm repeated-spec `generate_with` call is one rendered-stream cache
//! hit — a single exact-size `Vec` clone, ≤2 allocations.

use bitstream::arch;
use bitstream::crc::baseline::crc_words_bitwise;
use bitstream::crc::{crc_words, crc_words_folded, crc_words_slice16};
use bitstream::{emit_into, generate, generate_batch, generate_with, BitstreamSpec, EmitScratch};
use criterion::{criterion_group, Criterion, Throughput};
use fabric::database::xc5vlx110t;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts every heap allocation so the warm arena path can be asserted
/// (nearly) allocation-free.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Pseudorandom configuration words (splitmix-style).
fn words(n: usize) -> Vec<u32> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u32
        })
        .collect()
}

/// The planned placements of the three paper PRMs on the LX110T — the
/// batch workload cycles through them so template *and* rendered-stream
/// caches see realistic reuse.
fn paper_specs() -> Vec<Arc<BitstreamSpec>> {
    let device = xc5vlx110t();
    synth::PaperPrm::ALL
        .iter()
        .map(|prm| {
            let plan = prcost::plan_prr(&prm.synth_report(device.family()), &device).unwrap();
            Arc::new(BitstreamSpec::from_plan(
                device.name(),
                prm.module_name(),
                plan.organization,
                &plan.window,
            ))
        })
        .collect()
}

fn bench_crc(c: &mut Criterion) {
    let buf = words(1 << 16);
    let mut g = c.benchmark_group("crc");
    g.throughput(Throughput::Bytes((buf.len() * 4) as u64));
    g.bench_function("bitwise_64kw", |b| {
        b.iter(|| crc_words_bitwise(black_box(&buf)))
    });
    g.bench_function("slice16_64kw", |b| {
        b.iter(|| crc_words_slice16(black_box(&buf)))
    });
    g.bench_function("folded_64kw", |b| {
        b.iter(|| crc_words_folded(black_box(&buf)))
    });
    if arch::crc_words_hw(&buf).is_some() {
        g.bench_function("hw_crc32c_64kw", |b| {
            b.iter(|| arch::crc_words_hw(black_box(&buf)))
        });
    }
    if arch::crc_words_clmul(&buf).is_some() {
        g.bench_function("clmul_fold_64kw", |b| {
            b.iter(|| arch::crc_words_clmul(black_box(&buf)))
        });
    }
    g.bench_function("dispatched_64kw", |b| b.iter(|| crc_words(black_box(&buf))));
    g.finish();

    let mut fill_buf = vec![0u32; 1 << 16];
    let mut g = c.benchmark_group("payload_fill");
    g.throughput(Throughput::Bytes((fill_buf.len() * 4) as u64));
    g.bench_function("portable_64kw", |b| {
        b.iter(|| arch::fill_words_portable(black_box(0x5eed), &mut fill_buf))
    });
    if arch::fill_words_simd(0x5eed, &mut fill_buf) {
        g.bench_function("simd_64kw", |b| {
            b.iter(|| arch::fill_words_simd(black_box(0x5eed), &mut fill_buf))
        });
    }
    g.finish();

    let specs = paper_specs();
    let spec = &specs[0];
    let mut g = c.benchmark_group("bitstream_generate");
    g.bench_function("generate_alloc", |b| {
        b.iter(|| generate(black_box(spec)).unwrap())
    });
    let mut out = Vec::new();
    g.bench_function("emit_into_reused", |b| {
        b.iter(|| emit_into(black_box(spec), &mut out).unwrap())
    });
    g.finish();

    // 120-stream batch: 3 distinct specs repeated, the multitasking
    // dispatch pattern the arena caches are shaped for.
    let batch: Vec<Arc<BitstreamSpec>> = (0..120).map(|i| Arc::clone(&specs[i % 3])).collect();
    let batch_owned: Vec<BitstreamSpec> = batch.iter().map(|s| (**s).clone()).collect();
    let mut g = c.benchmark_group("generate_batch_120");
    g.bench_function("reference_push", |b| {
        b.iter(|| bitstream::writer::reference::generate_batch(black_box(&batch_owned)))
    });
    g.bench_function("arena", |b| b.iter(|| generate_batch(black_box(&batch))));
    g.finish();
}

#[derive(Serialize)]
struct CrcBenchArtifact {
    words: usize,
    samples: u32,
    bitwise_min_ms: f64,
    slice16_min_ms: f64,
    folded_min_ms: f64,
    /// slice-16 over bitwise (the PR-2 claim, re-measured).
    slice16_speedup: f64,
    /// folded over slice-16 (the PR-7 acceptance bar: ≥2).
    folded_speedup: f64,
    bitwise_mwords_per_sec: f64,
    slice16_mwords_per_sec: f64,
    folded_mwords_per_sec: f64,
    /// CRC path `Dispatch::detect` picked on this host.
    crc_dispatch: String,
    /// Payload-fill path `Dispatch::detect` picked on this host.
    fill_dispatch: String,
    /// `crc32q` hardware kernel (None when the host lacks SSE4.2/crc).
    hw_crc_min_ms: Option<f64>,
    hw_crc_mwords_per_sec: Option<f64>,
    /// PCLMULQDQ folding kernel (None off x86_64 or without pclmulqdq).
    clmul_min_ms: Option<f64>,
    clmul_mwords_per_sec: Option<f64>,
    /// Best SIMD CRC kernel over the portable fold (the PR-8 acceptance
    /// bar: ≥2 on SSE4.2 hardware). None when no SIMD kernel is present.
    simd_crc_speedup: Option<f64>,
    /// Whatever `crc_words` dispatches to, timed through the public API.
    dispatched_min_ms: f64,
    fill_portable_min_ms: f64,
    fill_simd_min_ms: Option<f64>,
    /// AVX2/NEON fill over portable splitmix (None without a SIMD fill).
    fill_speedup: Option<f64>,
    generate_min_us: f64,
    emit_into_min_us: f64,
    generate_speedup: f64,
    batch_streams: usize,
    batch_reference_min_ms: f64,
    batch_arena_min_ms: f64,
    /// arena `generate_batch` over the frozen PR-2 push emitter (bar: ≥3).
    batch_speedup: f64,
    /// Heap allocations in one warm repeated-spec `generate_with` call.
    warm_emit_allocations: u64,
}

/// Minimum wall time of `f` over `samples` runs (after one warm-up).
fn min_time(samples: u32, f: &mut dyn FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Direct measurement + JSON artifact (the criterion shim's printed
/// numbers are not machine-readable). The CRC buffer is 1 MiB — large
/// enough to amortize setup, small enough to stay cache-resident so the
/// measurement captures compute throughput, not DRAM bandwidth; on a
/// noisy shared box the minimum over samples is the least-biased
/// estimator of any implementation's true cost. All three kernels run in
/// the same process on the same buffer, so the ratios are internally
/// consistent.
fn emit_artifact() {
    let buf = words(1 << 18);
    let samples = 20u32;

    let bitwise = min_time(samples, &mut || {
        black_box(crc_words_bitwise(&buf));
    });
    let slice16 = min_time(samples, &mut || {
        black_box(crc_words_slice16(&buf));
    });
    let folded = min_time(samples, &mut || {
        black_box(crc_words_folded(&buf));
    });
    let hw_crc = arch::crc_words_hw(&buf).map(|_| {
        min_time(samples, &mut || {
            black_box(arch::crc_words_hw(&buf));
        })
    });
    let clmul = arch::crc_words_clmul(&buf).map(|_| {
        min_time(samples, &mut || {
            black_box(arch::crc_words_clmul(&buf));
        })
    });
    let dispatched = min_time(samples, &mut || {
        black_box(crc_words(&buf));
    });
    let best_simd = match (hw_crc, clmul) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };

    let mut fill_buf = vec![0u32; buf.len()];
    let fill_portable = min_time(samples, &mut || {
        arch::fill_words_portable(0x5eed, &mut fill_buf);
        black_box(&fill_buf);
    });
    let fill_simd = arch::fill_words_simd(0x5eed, &mut fill_buf).then(|| {
        min_time(samples, &mut || {
            arch::fill_words_simd(0x5eed, &mut fill_buf);
            black_box(&fill_buf);
        })
    });

    let specs = paper_specs();
    let spec = &specs[0];
    let gen_samples = 200u32;
    let gen_alloc = min_time(gen_samples, &mut || {
        black_box(generate(spec).unwrap());
    });
    let mut out = Vec::new();
    let gen_reused = min_time(gen_samples, &mut || {
        emit_into(spec, &mut out).unwrap();
        black_box(&out);
    });

    let batch: Vec<Arc<BitstreamSpec>> = (0..120).map(|i| Arc::clone(&specs[i % 3])).collect();
    let batch_owned: Vec<BitstreamSpec> = batch.iter().map(|s| (**s).clone()).collect();
    let batch_samples = 50u32;
    let batch_reference = min_time(batch_samples, &mut || {
        black_box(bitstream::writer::reference::generate_batch(&batch_owned));
    });
    let batch_arena = min_time(batch_samples, &mut || {
        black_box(generate_batch(&batch));
    });

    // Steady-state allocation audit: after warm-up, a repeated-spec
    // `generate_with` call is a rendered-stream cache hit — one
    // exact-size Vec clone for the returned words (realloc-free), and
    // nothing else.
    let mut scratch = EmitScratch::new();
    for _ in 0..4 {
        black_box(generate_with(&mut scratch, spec).unwrap());
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let warm = generate_with(&mut scratch, spec).unwrap();
    let warm_emit_allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    drop(warm);
    assert!(
        warm_emit_allocations <= 2,
        "warm arena emission should be a single stream-cache Vec clone, \
         saw {warm_emit_allocations} allocations"
    );

    let artifact = CrcBenchArtifact {
        words: buf.len(),
        samples,
        bitwise_min_ms: bitwise * 1e3,
        slice16_min_ms: slice16 * 1e3,
        folded_min_ms: folded * 1e3,
        slice16_speedup: bitwise / slice16,
        folded_speedup: slice16 / folded,
        bitwise_mwords_per_sec: buf.len() as f64 / bitwise / 1e6,
        slice16_mwords_per_sec: buf.len() as f64 / slice16 / 1e6,
        folded_mwords_per_sec: buf.len() as f64 / folded / 1e6,
        crc_dispatch: arch::active().crc.name().to_string(),
        fill_dispatch: arch::active().fill.name().to_string(),
        hw_crc_min_ms: hw_crc.map(|t| t * 1e3),
        hw_crc_mwords_per_sec: hw_crc.map(|t| buf.len() as f64 / t / 1e6),
        clmul_min_ms: clmul.map(|t| t * 1e3),
        clmul_mwords_per_sec: clmul.map(|t| buf.len() as f64 / t / 1e6),
        simd_crc_speedup: best_simd.map(|t| folded / t),
        dispatched_min_ms: dispatched * 1e3,
        fill_portable_min_ms: fill_portable * 1e3,
        fill_simd_min_ms: fill_simd.map(|t| t * 1e3),
        fill_speedup: fill_simd.map(|t| fill_portable / t),
        generate_min_us: gen_alloc * 1e6,
        emit_into_min_us: gen_reused * 1e6,
        generate_speedup: gen_alloc / gen_reused,
        batch_streams: batch.len(),
        batch_reference_min_ms: batch_reference * 1e3,
        batch_arena_min_ms: batch_arena * 1e3,
        batch_speedup: batch_reference / batch_arena,
        warm_emit_allocations,
    };
    println!(
        "crc {} words: bitwise {:.2} ms, slice16 {:.3} ms ({:.1}x), \
         folded {:.3} ms ({:.1}x over slice16, {:.0} Mwords/s)",
        buf.len(),
        artifact.bitwise_min_ms,
        artifact.slice16_min_ms,
        artifact.slice16_speedup,
        artifact.folded_min_ms,
        artifact.folded_speedup,
        artifact.folded_mwords_per_sec,
    );
    let opt = |ms: Option<f64>| ms.map_or_else(|| "n/a".to_string(), |v| format!("{v:.3} ms"));
    println!(
        "simd crc: hw-crc32c {}, clmul-fold {}, best {} over portable fold; \
         dispatch crc={} fill={}",
        opt(artifact.hw_crc_min_ms),
        opt(artifact.clmul_min_ms),
        artifact
            .simd_crc_speedup
            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.1}x")),
        artifact.crc_dispatch,
        artifact.fill_dispatch,
    );
    println!(
        "payload fill: portable {:.3} ms, simd {} ({})",
        artifact.fill_portable_min_ms,
        opt(artifact.fill_simd_min_ms),
        artifact
            .fill_speedup
            .map_or_else(|| "n/a".to_string(), |v| format!("{v:.1}x")),
    );
    println!(
        "generate {:.1} us -> emit_into {:.1} us ({:.2}x); \
         batch x{}: reference {:.2} ms -> arena {:.2} ms ({:.1}x, \
         {} allocs/warm emit)",
        artifact.generate_min_us,
        artifact.emit_into_min_us,
        artifact.generate_speedup,
        artifact.batch_streams,
        artifact.batch_reference_min_ms,
        artifact.batch_arena_min_ms,
        artifact.batch_speedup,
        artifact.warm_emit_allocations,
    );
    bench::write_json("BENCH_crc", &artifact);
}

criterion_group!(benches, bench_crc);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
