//! Criterion bench: hardware-multitasking simulator throughput
//! (tasks simulated per second across schedulers).

use bitstream::IcapModel;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fabric::{device_by_name, Family};
use multitask::{simulate, BestFit, FirstFit, PrSystem, ReuseAware, Scheduler, Workload};
use prcost::PrrOrganization;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let device = device_by_name("xc5vsx95t").unwrap();
    let org = PrrOrganization {
        family: Family::Virtex5,
        height: 1,
        clb_cols: 6,
        dsp_cols: 1,
        bram_cols: 1,
    };
    let sys = PrSystem::homogeneous(&device, org, 4, IcapModel::V5_DMA).unwrap();
    let wl = sys.filter_workload(&Workload::generate(
        7,
        Family::Virtex5,
        1000,
        12,
        300,
        5_000,
        100_000,
    ));
    let mut g = c.benchmark_group("simulate");
    g.throughput(Throughput::Elements(wl.tasks.len() as u64));
    let schedulers: [&dyn Scheduler; 3] = [&FirstFit, &BestFit, &ReuseAware];
    for s in schedulers {
        g.bench_function(s.name(), |b| {
            b.iter(|| simulate(black_box(&sys), black_box(&wl), s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
