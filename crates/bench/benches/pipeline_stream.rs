//! End-to-end streaming pipeline benchmark.
//!
//! Drives `prfpga::pipeline::run_pipeline` — synthesis (warm engine
//! memo) → PRR planning → placement → arena bitstream emission →
//! hardware-multitasking simulation — at 10⁶ tasks (override with
//! `PRFPGA_PIPELINE_TASKS`) under bounded memory, and writes the
//! whole-system regression artifact `results/BENCH_pipeline.json`:
//! tasks/sec, peak-RSS proxy, and per-stage log₂-ns histograms. The same
//! run is available interactively as `prfpga bench-pipeline`.
//!
//! Not a criterion bench: one pipeline run *is* the measurement (the
//! steady-state throughput of millions of streamed tasks), so repeating
//! it under a sampling harness would only add minutes without adding
//! information.

use prfpga::pipeline::{run_pipeline, PipelineConfig};

fn main() {
    let tasks = std::env::var("PRFPGA_PIPELINE_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000u64);
    let cfg = PipelineConfig {
        tasks,
        ..PipelineConfig::default()
    };
    let report = run_pipeline(&cfg).expect("pipeline run failed");

    println!(
        "{} tasks on {} ({} workers): {:.0} ms — {:.0} tasks/s, \
         peak RSS {:.1} MiB, plan memo {:.0}%",
        report.tasks,
        report.device,
        report.workers,
        report.elapsed_ms,
        report.tasks_per_sec,
        report.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        report.plan_hit_rate.unwrap_or(0.0) * 100.0,
    );
    for s in &report.stages {
        println!(
            "  {:<20} {:>7} chunks, total {:>9.1} ms, p50 {:>8.1} us, p99 {:>8.1} us",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.p50_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
        );
    }
    bench::write_json("BENCH_pipeline", &report);
}
