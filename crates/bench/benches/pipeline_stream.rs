//! End-to-end streaming pipeline benchmark with a worker-scaling sweep.
//!
//! Drives `prfpga::pipeline::run_pipeline_sweep` — synthesis (warm
//! engine memo) → PRR planning → placement → arena bitstream emission →
//! hardware-multitasking simulation — at 10⁶ tasks (override with
//! `PRFPGA_PIPELINE_TASKS`) under bounded memory, once per worker count
//! in {1, 2, 4, 8, 16} (override with `PRFPGA_PIPELINE_WORKERS`, a comma
//! list), and writes the whole-system regression artifact
//! `results/BENCH_pipeline.json`: tasks/sec, the per-worker scaling
//! table, the active SIMD dispatch paths, host CPU count, peak-RSS
//! proxy, and per-stage log₂-ns histograms. The same run is available
//! interactively as `prfpga bench-pipeline --workers 1,2,4,8,16`.
//!
//! Not a criterion bench: one pipeline run *is* the measurement (the
//! steady-state throughput of millions of streamed tasks), so repeating
//! it under a sampling harness would only add minutes without adding
//! information. Scaling rows are honest wall-clock on whatever host runs
//! this — `host_cpus` in the artifact is the context for reading them
//! (oversubscribed counts cannot speed up a CPU-bound pipeline).

use prfpga::pipeline::{run_pipeline_sweep, PipelineConfig};

fn main() {
    let tasks = std::env::var("PRFPGA_PIPELINE_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000u64);
    let workers: Vec<usize> = std::env::var("PRFPGA_PIPELINE_WORKERS")
        .ok()
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("bad PRFPGA_PIPELINE_WORKERS"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);
    let cfg = PipelineConfig {
        tasks,
        ..PipelineConfig::default()
    };
    let report = run_pipeline_sweep(&cfg, &workers).expect("pipeline run failed");

    println!(
        "{} tasks on {} (best: {} workers): {:.0} ms — {:.0} tasks/s, \
         peak RSS {:.1} MiB, plan memo {:.0}%, crc {} / fill {}, {} host cpus",
        report.tasks,
        report.device,
        report.workers,
        report.elapsed_ms,
        report.tasks_per_sec,
        report.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        report.plan_hit_rate.unwrap_or(0.0) * 100.0,
        report.crc_dispatch,
        report.fill_dispatch,
        report.host_cpus,
    );
    for row in &report.worker_sweep {
        println!(
            "  workers {:>2}: {:>9.1} ms, {:>9.0} tasks/s, {:>5.2}x vs 1",
            row.workers, row.elapsed_ms, row.tasks_per_sec, row.speedup_vs_one,
        );
    }
    for s in &report.stages {
        println!(
            "  {:<20} {:>7} chunks, total {:>9.1} ms, p50 {:>8.1} us, p99 {:>8.1} us",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.p50_ns as f64 / 1e3,
            s.p99_ns as f64 / 1e3,
        );
    }
    bench::write_json("BENCH_pipeline", &report);
}
