//! Criterion bench: automatic multi-PRR floorplanning and the
//! configuration-memory load path.

use bitstream::cm::load_bitstream;
use bitstream::writer::{generate, BitstreamSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fabric::database::xc5vlx110t;
use parflow::autofloorplan::{auto_floorplan, PrrSpec};
use std::hint::black_box;
use synth::PaperPrm;

fn bench_autofloorplan(c: &mut Criterion) {
    let device = xc5vlx110t();
    let specs: Vec<PrrSpec> = PaperPrm::ALL
        .iter()
        .map(|p| PrrSpec::single(p.module_name(), p.synth_report(device.family())))
        .collect();
    c.bench_function("auto_floorplan_3prrs_lx110t", |b| {
        b.iter(|| auto_floorplan(black_box(&specs), &device, 10_000).unwrap())
    });
}

fn bench_cm_load(c: &mut Criterion) {
    let device = xc5vlx110t();
    let plan = prcost::plan_prr(&PaperPrm::Mips.synth_report(device.family()), &device).unwrap();
    let spec =
        BitstreamSpec::from_plan(device.name(), "mips_r3000", plan.organization, &plan.window);
    let bs = generate(&spec).unwrap();
    let mut g = c.benchmark_group("config_port");
    g.throughput(Throughput::Bytes(bs.len_bytes()));
    g.bench_function("load_mips_v5", |b| {
        b.iter(|| load_bitstream(device.params().frames, black_box(&bs.words)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_autofloorplan, bench_cm_load);
criterion_main!(benches);
