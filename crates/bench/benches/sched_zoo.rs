//! Criterion bench: the scheduling subsystem — UUniFast task-set
//! generation, reconfiguration-aware admission tests, and one DES pass
//! per scheduler on the mixed PRR pool — plus the full scheduler-zoo
//! ablation artifact.
//!
//! Besides the criterion numbers, `results/BENCH_sched.json` is written
//! by running the default-config ablation ([`sched::run_ablation`]):
//! every scheduler × workload class × defrag policy cell, the admission
//! table, and the frozen learned-policy weights. The same artifact is
//! reachable from the CLI via `prfpga sched-ablate`.

use criterion::{criterion_group, Criterion};
use fabric::Family;
use sched::{
    response_time_admit, run_ablation, utilization_bound_admit, AblationConfig, TaskSet,
    TaskSetConfig,
};
use std::hint::black_box;

fn bench_sched(c: &mut Criterion) {
    let cfg = TaskSetConfig::default();

    c.bench_function("sched/uunifast_taskset", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(TaskSet::uunifast(seed, Family::Virtex5, &cfg))
        })
    });

    let ts = TaskSet::uunifast(7, Family::Virtex5, &cfg);
    c.bench_function("sched/release_jobs_40ms", |b| {
        b.iter(|| black_box(ts.release_jobs(11, 40_000_000)))
    });

    // 390 µs ≈ the worst reconfiguration on the ablation pool.
    c.bench_function("sched/admission_ub+rta", |b| {
        b.iter(|| {
            black_box(utilization_bound_admit(&ts, 6, 390_000));
            black_box(response_time_admit(&ts, 6, 390_000));
        })
    });

    // One small end-to-end ablation (training included) as the
    // macro-benchmark; the artifact below uses the default size.
    let small = AblationConfig {
        tasks: 60,
        horizon_ms: 10,
        train_episodes: 2,
        admission_sets: 4,
        ..AblationConfig::default()
    };
    c.bench_function("sched/ablation_small", |b| {
        b.iter(|| black_box(run_ablation(&small)))
    });
}

fn emit_artifact() {
    let report = run_ablation(&AblationConfig::default());
    println!(
        "sched zoo on {} ({} PRRs): learned beats first-fit on [{}]",
        report.device,
        report.prrs.len(),
        report.learned_beats_firstfit.join(", "),
    );
    for r in &report.rows {
        println!(
            "{:<14} {:<16} miss {:.3} resp {:>8.3} ms reuse {:.3}",
            r.class, r.scheduler, r.deadline_miss_ratio, r.mean_response_ms, r.reuse_rate,
        );
    }
    bench::write_json("BENCH_sched", &report);
}

criterion_group!(benches, bench_sched);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
