//! Criterion bench: incremental annealing placer vs the frozen seed
//! cost path.
//!
//! The ISSUE-3 tentpole target: ≥10× placer move throughput. The seed
//! implementation (f64 HPWL, full recompute of every affected net twice
//! per proposal, two `Vec` allocations and a `seen.contains` net scan per
//! move) is frozen in `parflow::place::reference`; the live placer
//! maintains per-net bounding boxes with per-extreme pin counts in x16
//! fixed point and evaluates each move as an O(pins-of-moved-cells)
//! incremental delta with zero allocations. Both placers run the same
//! proposal count, so moves/sec is directly comparable. Chains are pinned
//! to 1 so the ratio measures the inner loop, not rayon.
//!
//! Two netlist shapes are measured. `flow` netlists come straight from
//! `Netlist::from_report` (2-pin carry chains plus one 16-pin fanout net
//! per 16 cells): with almost every net at 2 pins, an incremental update
//! degenerates to the same work as a recompute, so the gain is just the
//! dropped allocations and f64 walks. `fanout` netlists add a handful of
//! global control nets (reset/enable-style, fanout = cells/3) — the shape
//! that motivates VPR-style incremental bounding boxes, where the seed
//! walks every global pin four times per move and the cached box answers
//! in O(1). That is where the ≥10× headline comes from.
//!
//! Note on trajectories: the live placer also fixes the modulo bias in
//! `Chain::rand_below` (widening multiply), so its random walk — and
//! final placement — legitimately differs from the seed's for the same
//! seed value. Cost *accounting* equality is what the equivalence suite
//! (`parflow/tests/place_props.rs`) proves; this bench only compares
//! throughput on identical move budgets.

use criterion::{criterion_group, Criterion, Throughput};
use fabric::grid::SiteGrid;
use fabric::{device_by_name, Device};
use parflow::place::reference::place_seed;
use parflow::place::{place_with_scratch, PlaceScratch, PlacerConfig};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use synth::{Net, Netlist, PrmGenerator, SynthReport};

/// A synthetic PRM planned onto its model-optimal window.
fn instance(device: &Device, seed: u64, scale: u32) -> (SynthReport, prcost::PrrPlan, Netlist) {
    let report = synth::prm::GenericPrm::random(seed, scale).synthesize(device.family());
    let plan = prcost::plan_prr(&report, device).expect("bench instance is feasible");
    let netlist = Netlist::from_report(&report, seed).expect("bench report is consistent");
    (report, plan, netlist)
}

/// Add `globals` high-fanout control nets (each touching a random third
/// of the cells) to `netlist` — the reset/enable-net shape real designs
/// have and `Netlist::from_report`'s chain-plus-small-fanout connectivity
/// does not model.
fn add_global_nets(netlist: &mut Netlist, globals: u32, seed: u64) {
    let n = netlist.cells.len() as u64;
    let fanout = (n / 3).max(2);
    let mut state = seed | 1;
    for _ in 0..globals {
        let mut pins: Vec<u32> = (0..fanout)
            .map(|_| {
                // splitmix64, as synth's own synthetic connectivity uses.
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((z ^ (z >> 31)) % n) as u32
            })
            .collect();
        pins.sort_unstable();
        pins.dedup();
        netlist.nets.push(Net { pins });
    }
}

fn config() -> PlacerConfig {
    PlacerConfig {
        seed: 11,
        chains: 1,
        moves_per_cell: 24,
        ..PlacerConfig::default()
    }
}

fn bench_place(c: &mut Criterion) {
    let device = device_by_name("xc5vsx95t").unwrap();
    let (_, plan, mut netlist) = instance(&device, 11, 900);
    add_global_nets(&mut netlist, 6, 23);
    let grid = SiteGrid::new(&device);
    let cfg = config();
    let moves = netlist.cells.len() as u64 * u64::from(cfg.moves_per_cell);

    let mut g = c.benchmark_group("place");
    g.sample_size(10);
    g.throughput(Throughput::Elements(moves));
    g.bench_function("seed/fanout", |b| {
        b.iter(|| place_seed(black_box(&netlist), &grid, &plan.window, &cfg).unwrap())
    });
    let mut scratch = PlaceScratch::new();
    g.bench_function("incremental/fanout", |b| {
        b.iter(|| {
            place_with_scratch(black_box(&netlist), &grid, &plan.window, &cfg, &mut scratch)
                .unwrap()
        })
    });
    g.finish();
}

#[derive(Serialize)]
struct PlaceConfigResult {
    /// `flow` = raw `Netlist::from_report` connectivity; `fanout` = flow
    /// plus 6 global control nets.
    netlist: &'static str,
    cells: usize,
    nets: usize,
    moves: u64,
    seed_min_ms: f64,
    incr_min_ms: f64,
    speedup: f64,
    seed_moves_per_sec: f64,
    incr_moves_per_sec: f64,
}

#[derive(Serialize)]
struct PlaceBenchArtifact {
    samples: u32,
    chains: u32,
    moves_per_cell: u32,
    /// Best seed-vs-incremental move-throughput ratio across configs.
    speedup: f64,
    configs: Vec<PlaceConfigResult>,
    note: &'static str,
}

/// Minimum wall time of `f` over `samples` runs (after one warm-up).
fn min_time(samples: u32, f: &mut dyn FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measure both placers across instance sizes and netlist shapes, then
/// emit the JSON artifact (min-of-samples: on a noisy shared box the
/// minimum is the least-biased estimator).
fn emit_artifact() {
    let samples = 10u32;
    let device = device_by_name("xc5vsx95t").unwrap();
    let grid = SiteGrid::new(&device);
    let cfg = config();
    let mut scratch = PlaceScratch::new();
    let mut configs = Vec::new();
    for (scale, globals, label) in [
        (300u32, 0u32, "flow"),
        (900, 0, "flow"),
        (3000, 0, "flow"),
        (300, 6, "fanout"),
        (900, 6, "fanout"),
        (3000, 6, "fanout"),
    ] {
        let (_, plan, mut netlist) = instance(&device, 11, scale);
        if globals > 0 {
            add_global_nets(&mut netlist, globals, 23);
        }
        let moves = netlist.cells.len() as u64 * u64::from(cfg.moves_per_cell);
        let seed_t = min_time(samples, &mut || {
            black_box(place_seed(&netlist, &grid, &plan.window, &cfg).unwrap());
        });
        let incr_t = min_time(samples, &mut || {
            black_box(
                place_with_scratch(&netlist, &grid, &plan.window, &cfg, &mut scratch).unwrap(),
            );
        });
        println!(
            "place {label} {} cells ({} nets): seed {:.2} ms, incremental {:.2} ms ({:.2}x, {:.2} Mmoves/s)",
            netlist.cells.len(),
            netlist.nets.len(),
            seed_t * 1e3,
            incr_t * 1e3,
            seed_t / incr_t,
            moves as f64 / incr_t / 1e6,
        );
        configs.push(PlaceConfigResult {
            netlist: label,
            cells: netlist.cells.len(),
            nets: netlist.nets.len(),
            moves,
            seed_min_ms: seed_t * 1e3,
            incr_min_ms: incr_t * 1e3,
            speedup: seed_t / incr_t,
            seed_moves_per_sec: moves as f64 / seed_t,
            incr_moves_per_sec: moves as f64 / incr_t,
        });
    }

    let artifact = PlaceBenchArtifact {
        samples,
        chains: cfg.chains,
        moves_per_cell: cfg.moves_per_cell,
        speedup: configs.iter().map(|c| c.speedup).fold(0.0, f64::max),
        configs,
        note: "rand_below now uses an unbiased widening multiply, so per-seed \
               trajectories (and final placements) differ from the seed placer; \
               cost accounting equality is proven in parflow/tests/place_props.rs",
    };
    bench::write_json("BENCH_place", &artifact);
}

criterion_group!(benches, bench_place);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
