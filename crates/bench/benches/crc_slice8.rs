//! Criterion bench: slice-by-8 CRC-32C vs the seed's bitwise loop.
//!
//! The ISSUE-2 target: ≥10× CRC word throughput. The seed implementation
//! (one shift/xor step per bit, 32 per word) is frozen in
//! `bitstream::crc::baseline`; the live implementation folds sixteen
//! bytes per step through const-built lookup tables. Besides the criterion
//! numbers, a `BENCH_crc.json` artifact with both throughputs and the
//! measured speedup — plus the downstream effect on whole-bitstream
//! generation via `emit_into` buffer reuse — is written to `results/`.

use bitstream::crc::baseline::crc_words_bitwise;
use bitstream::crc::crc_words;
use bitstream::{emit_into, generate, BitstreamSpec};
use criterion::{criterion_group, Criterion, Throughput};
use fabric::database::xc5vlx110t;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// 256 KiB of pseudorandom configuration words (splitmix-style).
fn words(n: usize) -> Vec<u32> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u32
        })
        .collect()
}

fn paper_spec() -> BitstreamSpec {
    let device = xc5vlx110t();
    let prm = synth::PaperPrm::Fir;
    let plan = prcost::plan_prr(&prm.synth_report(device.family()), &device).unwrap();
    BitstreamSpec::from_plan(
        device.name(),
        prm.module_name(),
        plan.organization,
        &plan.window,
    )
}

fn bench_crc(c: &mut Criterion) {
    let buf = words(1 << 16);
    let mut g = c.benchmark_group("crc");
    g.throughput(Throughput::Bytes((buf.len() * 4) as u64));
    g.bench_function("bitwise_64kw", |b| {
        b.iter(|| crc_words_bitwise(black_box(&buf)))
    });
    g.bench_function("slice16_64kw", |b| b.iter(|| crc_words(black_box(&buf))));
    g.finish();

    let spec = paper_spec();
    let mut g = c.benchmark_group("bitstream_generate");
    g.bench_function("generate_alloc", |b| {
        b.iter(|| generate(black_box(&spec)).unwrap())
    });
    let mut out = Vec::new();
    g.bench_function("emit_into_reused", |b| {
        b.iter(|| emit_into(black_box(&spec), &mut out).unwrap())
    });
    g.finish();
}

#[derive(Serialize)]
struct CrcBenchArtifact {
    words: usize,
    samples: u32,
    bitwise_min_ms: f64,
    slice16_min_ms: f64,
    speedup: f64,
    bitwise_mwords_per_sec: f64,
    slice16_mwords_per_sec: f64,
    generate_min_us: f64,
    emit_into_min_us: f64,
    generate_speedup: f64,
}

/// Minimum wall time of `f` over `samples` runs (after one warm-up).
fn min_time(samples: u32, f: &mut dyn FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Direct measurement + JSON artifact (the criterion shim's printed
/// numbers are not machine-readable). The buffer is 1 MiB — large
/// enough to amortize setup, small enough to stay cache-resident so the
/// measurement captures compute throughput, not DRAM bandwidth; on a
/// noisy shared box the minimum over samples is the least-biased
/// estimator of either implementation's true cost.
fn emit_artifact() {
    let buf = words(1 << 18);
    let samples = 20u32;

    let bitwise = min_time(samples, &mut || {
        black_box(crc_words_bitwise(&buf));
    });
    let slice8 = min_time(samples, &mut || {
        black_box(crc_words(&buf));
    });

    let spec = paper_spec();
    let gen_samples = 200u32;
    let gen_alloc = min_time(gen_samples, &mut || {
        black_box(generate(&spec).unwrap());
    });
    let mut out = Vec::new();
    let gen_reused = min_time(gen_samples, &mut || {
        emit_into(&spec, &mut out).unwrap();
        black_box(&out);
    });

    let artifact = CrcBenchArtifact {
        words: buf.len(),
        samples,
        bitwise_min_ms: bitwise * 1e3,
        slice16_min_ms: slice8 * 1e3,
        speedup: bitwise / slice8,
        bitwise_mwords_per_sec: buf.len() as f64 / bitwise / 1e6,
        slice16_mwords_per_sec: buf.len() as f64 / slice8 / 1e6,
        generate_min_us: gen_alloc * 1e6,
        emit_into_min_us: gen_reused * 1e6,
        generate_speedup: gen_alloc / gen_reused,
    };
    println!(
        "crc {} words: bitwise {:.2} ms, sliced {:.3} ms ({:.1}x, {:.0} Mwords/s); \
         generate {:.1} us -> emit_into {:.1} us ({:.2}x)",
        buf.len(),
        artifact.bitwise_min_ms,
        artifact.slice16_min_ms,
        artifact.speedup,
        artifact.slice16_mwords_per_sec,
        artifact.generate_min_us,
        artifact.emit_into_min_us,
        artifact.generate_speedup,
    );
    bench::write_json("BENCH_crc", &artifact);
}

criterion_group!(benches, bench_crc);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
