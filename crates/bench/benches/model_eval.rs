//! Criterion bench: cost-model evaluation throughput.
//!
//! The paper's productivity claim rests on the models being effectively
//! free compared to the design flow; this bench pins down "free" on this
//! host (full Fig. 1 planning per PRM/device, the Eq. 18 formula alone,
//! and multi-PRM shared planning).

use criterion::{criterion_group, criterion_main, Criterion};
use fabric::database::{xc5vlx110t, xc6vlx75t};
use prcost::search::plan_prr;
use prcost::{bitstream_size_bytes, plan_shared_prr};
use std::hint::black_box;
use synth::PaperPrm;

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_prr");
    for (prm, device) in [
        (PaperPrm::Fir, xc5vlx110t()),
        (PaperPrm::Mips, xc5vlx110t()),
        (PaperPrm::Sdram, xc5vlx110t()),
        (PaperPrm::Mips, xc6vlx75t()),
    ] {
        let report = prm.synth_report(device.family());
        g.bench_function(format!("{prm:?}_{}", device.name()), |b| {
            b.iter(|| plan_prr(black_box(&report), black_box(&device)).unwrap())
        });
    }
    g.finish();
}

fn bench_bitstream_formula(c: &mut Criterion) {
    let device = xc5vlx110t();
    let plan = plan_prr(&PaperPrm::Mips.synth_report(device.family()), &device).unwrap();
    c.bench_function("eq18_bitstream_size", |b| {
        b.iter(|| bitstream_size_bytes(black_box(&plan.organization)))
    });
}

fn bench_shared(c: &mut Criterion) {
    let device = xc6vlx75t();
    let reports: Vec<_> = PaperPrm::ALL
        .iter()
        .map(|p| p.synth_report(device.family()))
        .collect();
    c.bench_function("plan_shared_prr_3prms", |b| {
        b.iter(|| plan_shared_prr(black_box(&reports), black_box(&device)).unwrap())
    });
}

criterion_group!(benches, bench_plan, bench_bitstream_formula, bench_shared);
criterion_main!(benches);
