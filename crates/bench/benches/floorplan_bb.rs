//! Criterion bench: optimized branch-and-bound auto-floorplanner vs the
//! frozen seed tree.
//!
//! The ISSUE-3 tentpole target: ≥4× floorplanner wall-clock on an 8-PRR
//! synthetic instance. The seed implementation (raw `Device::find_window`
//! rescans per candidate, no dominance pruning, per-node O(depth)
//! lower-bound recomputation, serial descent) is frozen in
//! `parflow::autofloorplan::reference`; the live floorplanner probes
//! windows through a cached `DeviceGeometry`, prunes span-dominated
//! candidate organizations before building the tree, precomputes suffix
//! lower bounds and fans the first branching level out over rayon with a
//! shared `AtomicU64` incumbent. Both searches reach the same optimal
//! total (asserted here); the serial-twin identity is property-tested in
//! `parflow/tests/floorplan_props.rs`.

use criterion::{criterion_group, Criterion};
use fabric::device_by_name;
use parflow::autofloorplan::reference::auto_floorplan_seed;
use parflow::autofloorplan::{auto_floorplan, PrrSpec};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use synth::SynthReport;

/// Node budget generous enough for every measured instance to complete
/// (both searches return the proven optimum, not a budget-truncated
/// incumbent — which is what makes the equal-total assertion valid).
const BUDGET: u64 = 50_000_000;

/// `n` DSP/BRAM-hungry synthetic PRRs on the SX95T (10 DSP and 8 BRAM
/// columns over 8 rows). Their combined demand fits, but barely enough
/// row/column freedom remains that the tree must backtrack through the
/// 2-D packing — the regime both floorplanning baselines in PAPERS.md
/// identify as the hard one.
fn specs(n: usize) -> Vec<PrrSpec> {
    (0..n)
        .map(|i| {
            let dsps = 30 + (i as u64 % 4) * 8;
            let brams = (i as u64 % 3) * 4;
            let pairs = 400 + (i as u64) * 60;
            PrrSpec::single(
                format!("p{i}"),
                SynthReport::new(
                    format!("m{i}"),
                    fabric::Family::Virtex5,
                    pairs,
                    pairs * 7 / 10,
                    pairs * 6 / 10,
                    dsps,
                    brams,
                ),
            )
        })
        .collect()
}

fn bench_floorplan(c: &mut Criterion) {
    let device = device_by_name("xc5vsx95t").unwrap();
    let inst = specs(8);

    let mut g = c.benchmark_group("floorplan");
    g.sample_size(10);
    g.bench_function("seed/8prr", |b| {
        b.iter(|| auto_floorplan_seed(black_box(&inst), &device, BUDGET).unwrap())
    });
    g.bench_function("bb/8prr", |b| {
        b.iter(|| auto_floorplan(black_box(&inst), &device, BUDGET).unwrap())
    });
    g.finish();
}

#[derive(Serialize)]
struct FloorplanConfigResult {
    prrs: usize,
    total_bitstream_bytes: u64,
    seed_nodes: u64,
    bb_nodes: u64,
    seed_min_ms: f64,
    bb_min_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct FloorplanBenchArtifact {
    samples: u32,
    node_budget: u64,
    /// Speedup on the marquee 8-PRR instance.
    speedup: f64,
    configs: Vec<FloorplanConfigResult>,
}

/// Minimum wall time of `f` over `samples` runs (after one warm-up).
fn min_time(samples: u32, f: &mut dyn FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measure both floorplanners at increasing PRR counts and emit the JSON
/// artifact (min-of-samples, like `BENCH_sim.json`). Equal optimal totals
/// are asserted on every instance.
fn emit_artifact() {
    let samples = 5u32;
    let device = device_by_name("xc5vsx95t").unwrap();
    let mut configs = Vec::new();
    for n in [4usize, 6, 8] {
        let inst = specs(n);
        let seed_plan = auto_floorplan_seed(&inst, &device, BUDGET).unwrap();
        let bb_plan = auto_floorplan(&inst, &device, BUDGET).unwrap();
        assert_eq!(
            seed_plan.total_bitstream_bytes, bb_plan.total_bitstream_bytes,
            "dominance pruning must be cost-preserving ({n} PRRs)"
        );
        let seed_t = min_time(samples, &mut || {
            black_box(auto_floorplan_seed(&inst, &device, BUDGET).unwrap());
        });
        let bb_t = min_time(samples, &mut || {
            black_box(auto_floorplan(&inst, &device, BUDGET).unwrap());
        });
        println!(
            "floorplan {n} PRRs: seed {:.2} ms ({} nodes), bb {:.2} ms ({} nodes) ({:.2}x)",
            seed_t * 1e3,
            seed_plan.nodes_explored,
            bb_t * 1e3,
            bb_plan.nodes_explored,
            seed_t / bb_t,
        );
        configs.push(FloorplanConfigResult {
            prrs: n,
            total_bitstream_bytes: bb_plan.total_bitstream_bytes,
            seed_nodes: seed_plan.nodes_explored,
            bb_nodes: bb_plan.nodes_explored,
            seed_min_ms: seed_t * 1e3,
            bb_min_ms: bb_t * 1e3,
            speedup: seed_t / bb_t,
        });
    }

    let artifact = FloorplanBenchArtifact {
        samples,
        node_budget: BUDGET,
        speedup: configs.last().map_or(0.0, |c| c.speedup),
        configs,
    };
    bench::write_json("BENCH_floorplan", &artifact);
}

criterion_group!(benches, bench_floorplan);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
