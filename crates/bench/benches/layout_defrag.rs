//! Criterion bench: free-space churn throughput and defragmentation
//! policy comparison for the online layout manager.
//!
//! *Churn*: a fixed, seeded allocate/release sequence (place a random
//! CLB/DSP/BRAM window request, or free a random live window) driven
//! against [`layout::FreeSpace`] (per-row maximal free runs +
//! composition-indexed candidate starts, incremental maintenance) and
//! against the brute-force occupancy grid [`layout::NaiveFreeSpace`]
//! (the test oracle: O(width × rows) scans per query). Both structures
//! see the byte-identical op sequence, so the placements coincide and
//! only the data-structure cost differs.
//!
//! *Defrag policies*: the pinned heavy-tailed workload from the
//! acceptance suite (seed 24, scale 1500, xc5vlx110t) simulated under
//! Never / Threshold(1.0) / Always, reporting admissions, relocations,
//! ICAP relocation time, and simulator wall time per policy.
//!
//! Besides the criterion numbers, a `BENCH_layout.json` artifact with
//! the churn speedup and the policy table is written to `results/`.

use criterion::{criterion_group, Criterion};
use fabric::{Device, Window, WindowRequest};
use layout::{simulate_layout, DefragPolicy, FreeSpace, LayoutConfig, NaiveFreeSpace};
use multitask::Workload;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Deterministic stream for the churn op sequence: the shared
/// [`prcost::rng::Rng`], continued from the raw seed so the pinned op
/// sequence is bit-identical to the private splitmix copy it replaced.
use prcost::rng::Rng;

/// One step of churn: place a window request or free the n-th live
/// window. Pre-generated so the benched loop does no RNG work.
enum Op {
    Place(WindowRequest),
    Free(usize),
}

fn churn_ops(device: &Device, n: usize, seed: u64) -> Vec<Op> {
    let rows = u64::from(device.rows());
    let mut rng = Rng::from_raw(seed);
    (0..n)
        .map(|_| {
            if rng.below(4) == 0 {
                Op::Free(rng.below(64) as usize)
            } else {
                Op::Place(WindowRequest::new(
                    rng.below(6) as u32,
                    rng.below(3) as u32,
                    rng.below(3) as u32,
                    1 + rng.below(rows) as u32,
                ))
            }
        })
        .collect()
}

/// Drive `ops` against the incremental run tracker. Returns placements
/// made (a checksum that also keeps the work from being optimized out).
fn churn_fast(device: &Device, ops: &[Op]) -> usize {
    let mut fs = FreeSpace::new(device);
    let mut live: Vec<Window> = Vec::new();
    let mut placed = 0usize;
    for op in ops {
        match op {
            Op::Place(req) => {
                if let Some(w) = fs.find_window(req) {
                    fs.allocate(&w);
                    live.push(w);
                    placed += 1;
                }
            }
            Op::Free(slot) => {
                if !live.is_empty() {
                    let w = live.swap_remove(slot % live.len());
                    fs.release(&w);
                }
            }
        }
    }
    placed
}

fn churn_naive(device: &Device, ops: &[Op]) -> usize {
    let mut fs = NaiveFreeSpace::new(device);
    let mut live: Vec<Window> = Vec::new();
    let mut placed = 0usize;
    for op in ops {
        match op {
            Op::Place(req) => {
                if let Some(w) = fs.find_window(req) {
                    fs.allocate(&w);
                    live.push(w);
                    placed += 1;
                }
            }
            Op::Free(slot) => {
                if !live.is_empty() {
                    let w = live.swap_remove(slot % live.len());
                    fs.release(&w);
                }
            }
        }
    }
    placed
}

/// The acceptance suite's pinned fragmentation-inducing workload
/// (seed re-pinned 12 → 24 with the `Rng::from_seed` mixing change).
fn pinned_workload(device: &Device) -> Workload {
    Workload::generate_heavy_tailed(24, device.family(), 200, 16, 1500, 40_000, 400_000)
}

fn bench_layout(c: &mut Criterion) {
    let device = fabric::database::xc5vlx110t();
    let ops = churn_ops(&device, 2_000, 42);
    // The sequences must agree for the comparison to be honest.
    assert_eq!(churn_fast(&device, &ops), churn_naive(&device, &ops));

    let mut g = c.benchmark_group("layout");
    g.bench_function("churn_runs_lx110t", |b| {
        b.iter(|| churn_fast(&device, black_box(&ops)))
    });
    g.bench_function("churn_naive_lx110t", |b| {
        b.iter(|| churn_naive(&device, black_box(&ops)))
    });
    let workload = pinned_workload(&device);
    g.bench_function("sim_defrag_always_lx110t", |b| {
        b.iter(|| {
            simulate_layout(
                &device,
                black_box(&workload),
                &LayoutConfig {
                    policy: DefragPolicy::Always,
                    ..LayoutConfig::default()
                },
            )
        })
    });
    g.finish();
}

#[derive(Serialize)]
struct PolicyRow {
    policy: String,
    admitted: u32,
    rejected_fragmentation: u32,
    rejected_capacity: u32,
    defrag_admissions: u32,
    relocations: u32,
    relocation_ms: f64,
    relocated_bytes: u64,
    makespan_ms: f64,
    peak_fragmentation: f64,
    sim_wall_ms: f64,
}

#[derive(Serialize)]
struct LayoutBenchArtifact {
    device: String,
    churn_ops: usize,
    churn_placements: usize,
    samples: u32,
    runs_mean_ms: f64,
    naive_mean_ms: f64,
    /// Headline figure: free-run tracking over the occupancy-grid oracle
    /// on the churn workload.
    churn_speedup: f64,
    workload_tasks: usize,
    policy_table: Vec<PolicyRow>,
}

/// Measure both structures and the policy sweep directly (criterion's
/// printed numbers are not machine-readable in the shim) and emit the
/// JSON artifact.
fn emit_artifact() {
    let device = fabric::database::xc5vlx110t();
    let ops = churn_ops(&device, 2_000, 42);
    let placements = churn_fast(&device, &ops);
    let samples = 30u32;

    let time = |f: &dyn Fn() -> usize| -> f64 {
        f();
        let start = Instant::now();
        for _ in 0..samples {
            black_box(f());
        }
        start.elapsed().as_secs_f64() / f64::from(samples)
    };
    let runs_mean = time(&|| churn_fast(&device, &ops));
    let naive_mean = time(&|| churn_naive(&device, &ops));

    let workload = pinned_workload(&device);
    let policy_table: Vec<PolicyRow> = [
        ("never".to_string(), DefragPolicy::Never),
        ("threshold_1.0".to_string(), DefragPolicy::Threshold(1.0)),
        ("always".to_string(), DefragPolicy::Always),
    ]
    .into_iter()
    .map(|(name, policy)| {
        let config = LayoutConfig {
            policy,
            ..LayoutConfig::default()
        };
        let start = Instant::now();
        let r = simulate_layout(&device, &workload, &config);
        let sim_wall_ms = start.elapsed().as_secs_f64() * 1e3;
        PolicyRow {
            policy: name,
            admitted: r.admitted,
            rejected_fragmentation: r.rejected_fragmentation,
            rejected_capacity: r.rejected_capacity,
            defrag_admissions: r.defrag_admissions,
            relocations: r.relocations,
            relocation_ms: r.relocation_ns as f64 / 1e6,
            relocated_bytes: r.relocated_bytes,
            makespan_ms: r.makespan_ns as f64 / 1e6,
            peak_fragmentation: r.peak_fragmentation,
            sim_wall_ms,
        }
    })
    .collect();

    let artifact = LayoutBenchArtifact {
        device: device.name().to_string(),
        churn_ops: ops.len(),
        churn_placements: placements,
        samples,
        runs_mean_ms: runs_mean * 1e3,
        naive_mean_ms: naive_mean * 1e3,
        churn_speedup: naive_mean / runs_mean,
        workload_tasks: workload.tasks.len(),
        policy_table,
    };
    println!(
        "churn on {}: runs {:.3} ms, naive {:.3} ms ({:.1}x; {} ops, {} placements)",
        artifact.device,
        artifact.runs_mean_ms,
        artifact.naive_mean_ms,
        artifact.churn_speedup,
        artifact.churn_ops,
        artifact.churn_placements,
    );
    for row in &artifact.policy_table {
        println!(
            "{:<14} admitted {:>3}, {} relocations ({:.3} ms ICAP), makespan {:.3} ms, sim {:.1} ms",
            row.policy, row.admitted, row.relocations, row.relocation_ms, row.makespan_ms,
            row.sim_wall_ms,
        );
    }
    bench::write_json("BENCH_layout", &artifact);
}

criterion_group!(benches, bench_layout);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
