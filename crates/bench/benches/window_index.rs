//! Criterion bench: cold-plan latency and sweep thread-scaling for the
//! composition index vs the frozen seed window memo.
//!
//! *Cold plan*: plan each paper PRM on the widest Virtex-5 part
//! (XC5VLX110T, 62 columns) with per-plan-fresh search state — a fresh
//! `fabric::reference::MemoGeometry` (the seed's mutex-guarded memo,
//! every miss an O(width²) column scan) against a fresh
//! `fabric::DeviceGeometry` (the composition index; the build cost is
//! charged to the indexed side). The BRAM-heavy PRMs have no exact
//! window for their composition on this part, so the seed path pays the
//! full padded-fallback enumeration through cold memo misses.
//!
//! *Sweep scaling*: a replicated (PRM × device) grid planned by explicit
//! `std::thread::scope` worker teams (the vendored rayon shim cannot vary
//! its pool size), all workers sharing one prebuilt search structure per
//! device: the seed memo serializes on its internal mutex, the index is
//! lock-free. Throughput is reported per worker count for both.
//!
//! Besides the criterion numbers, a `BENCH_window.json` artifact with the
//! cold-plan speedup and the scaling table is written to `results/`.

use criterion::{criterion_group, Criterion};
use fabric::reference::MemoGeometry;
use fabric::{Device, DeviceGeometry, Window, WindowRequest};
use prcost::search::plan_prr_via_finder;
use prcost::{plan_prr_cached, PlanScratch};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};
use synth::{PrmGenerator, SynthReport};

fn generators() -> Vec<Box<dyn PrmGenerator + Sync>> {
    vec![
        Box::new(FirFilter::paper()),
        Box::new(MipsCore::paper()),
        Box::new(SdramController::paper()),
        Box::new(Uart::standard()),
        Box::new(AesEngine::standard()),
        Box::new(FftCore::standard()),
    ]
}

/// BRAM/DSP-heavy synthetic reports for `family`. Their compositions
/// have no exact window on the paper devices (BRAM columns sit isolated
/// between CLB runs), so every plan goes through the padded-fallback
/// enumeration. Both search paths pay the Eq. 18 option arithmetic; the
/// index path pays it once per distinct composition instead of once per
/// height and answers every option probe in O(1).
fn padded_reports(family: fabric::Family) -> Vec<SynthReport> {
    let mut reports = Vec::new();
    for (dsps, brams) in [
        (0u64, 20u64),
        (0, 40),
        (0, 60),
        (16, 24),
        (32, 16),
        (24, 48),
    ] {
        reports.push(SynthReport {
            module: format!("padded_d{dsps}_b{brams}"),
            family,
            lut_ff_pairs: 64,
            luts: 48,
            ffs: 48,
            dsps,
            brams,
        });
    }
    reports
}

/// Small DSP+BRAM reports for `family`: on the LX110T the single DSP
/// column has CLBs on both sides and no adjacent BRAM, so the base
/// composition (1 CLB, 1 DSP, 1 BRAM) has **no exact window at any
/// height** — the paper's isolated-column motivation. The requirements
/// are small enough that the composition is the same at every height, so
/// the seed path regenerates and re-sorts the full padded-option
/// enumeration once per height (8× on the LX110T, each probe through the
/// mutexed memo, cold scans on the first height) while the
/// height-factored index path resolves the composition exactly once per
/// plan with O(1) probes.
fn isolated_reports(family: fabric::Family) -> Vec<SynthReport> {
    [
        (1u64, 1u64, 8u64),
        (2, 1, 16),
        (3, 2, 24),
        (4, 2, 40),
        (5, 3, 56),
        (6, 3, 72),
        (7, 4, 88),
        (8, 4, 100),
    ]
    .iter()
    .map(|&(dsps, brams, pairs)| SynthReport {
        module: format!("isolated_d{dsps}_b{brams}"),
        family,
        lut_ff_pairs: pairs,
        luts: pairs * 3 / 4,
        ffs: pairs * 3 / 4,
        dsps,
        brams,
    })
    .collect()
}

/// CLB-heavy synthetic reports for `family`: wide exact windows whose
/// composition differs at every height, so a cold seed memo pays a full
/// O(width²) column scan per height while the index answers each from
/// the same O(1) table. This is the search-bound cold-plan workload the
/// composition index targets.
fn scan_reports(family: fabric::Family) -> Vec<SynthReport> {
    [600u64, 1000, 1400, 1800, 2200, 2600, 3000, 3400]
        .iter()
        .map(|&pairs| SynthReport {
            module: format!("scan_{pairs}"),
            family,
            lut_ff_pairs: pairs,
            luts: pairs * 3 / 4,
            ffs: pairs * 3 / 4,
            dsps: 0,
            brams: 0,
        })
        .collect()
}

/// One cold plan per report through the seed memo: fresh `MemoGeometry`
/// per plan (a cold plan starts with an empty memo — the memo is only
/// populated by planning), every miss answered by the mutex-guarded
/// O(width²) scan.
fn cold_plans_memo(reports: &[SynthReport], device: &Device) {
    let mut scratch = PlanScratch::default();
    for report in reports {
        let memo = MemoGeometry::new(device);
        let finder = |req: &WindowRequest| -> Option<Window> { memo.find_window(device, req) };
        black_box(plan_prr_via_finder(report, device, &finder, &mut scratch).ok());
    }
}

/// One cold plan per report through the composition index. The index is
/// a per-device artifact built at engine interning time (there is no
/// warm/cold distinction — construction enumerates every composition),
/// so the one-time build is measured and reported separately.
fn cold_plans_index(reports: &[SynthReport], device: &Device, geometry: &DeviceGeometry) {
    let mut scratch = PlanScratch::default();
    for report in reports {
        black_box(plan_prr_cached(report, device, geometry, &mut scratch).ok());
    }
}

fn bench_cold_plans(c: &mut Criterion) {
    let device = fabric::database::xc5vlx110t();
    let geometry = DeviceGeometry::new(&device);
    let exact = scan_reports(device.family());
    let padded = padded_reports(device.family());

    let isolated = isolated_reports(device.family());

    let mut g = c.benchmark_group("window");
    g.bench_function("cold_isolated_memo_lx110t", |b| {
        b.iter(|| cold_plans_memo(black_box(&isolated), &device))
    });
    g.bench_function("cold_isolated_index_lx110t", |b| {
        b.iter(|| cold_plans_index(black_box(&isolated), &device, &geometry))
    });
    g.bench_function("cold_exact_memo_lx110t", |b| {
        b.iter(|| cold_plans_memo(black_box(&exact), &device))
    });
    g.bench_function("cold_exact_index_lx110t", |b| {
        b.iter(|| cold_plans_index(black_box(&exact), &device, &geometry))
    });
    g.bench_function("cold_padded_memo_lx110t", |b| {
        b.iter(|| cold_plans_memo(black_box(&padded), &device))
    });
    g.bench_function("cold_padded_index_lx110t", |b| {
        b.iter(|| cold_plans_index(black_box(&padded), &device, &geometry))
    });
    g.finish();
}

/// Plan every (report, device) point in `points` with `workers` threads,
/// static block partitioning, sharing the prebuilt per-device search
/// structures in `shared`. Returns points per second.
fn sweep_pps<S: Sync>(
    points: &[(usize, usize)],
    reports: &[Vec<SynthReport>],
    devices: &[Device],
    shared: &[S],
    workers: usize,
    plan: &(dyn Fn(&SynthReport, &Device, &S, &mut PlanScratch) + Sync),
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for chunk in points.chunks(points.len().div_ceil(workers)) {
            scope.spawn(move || {
                let mut scratch = PlanScratch::default();
                for &(g, d) in chunk {
                    plan(&reports[g][d], &devices[d], &shared[d], &mut scratch);
                }
            });
        }
    });
    points.len() as f64 / start.elapsed().as_secs_f64()
}

#[derive(Serialize)]
struct ScalingRow {
    workers: usize,
    memo_points_per_sec: f64,
    index_points_per_sec: f64,
    index_over_memo: f64,
}

#[derive(Serialize)]
struct ColdSuite {
    plans: usize,
    memo_mean_ms: f64,
    index_mean_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct WindowBenchArtifact {
    device: String,
    distinct_compositions: u64,
    index_build_us: f64,
    index_bytes: usize,
    samples: u32,
    /// Isolated-column suite: no exact window at any height and a
    /// height-constant composition, so the seed regenerates the padded
    /// enumeration per height while the index resolves it once per plan.
    cold_plan_isolated: ColdSuite,
    /// Search-bound suite: wide exact windows, one cold scan per height
    /// on the seed memo vs one O(1) probe on the index.
    cold_plan_exact: ColdSuite,
    /// Padded-fallback suite: no exact window, both paths pay the Eq. 18
    /// option enumeration (the index pays it once per composition).
    cold_plan_padded: ColdSuite,
    /// Headline figure: the isolated-column cold-plan speedup.
    cold_plan_speedup: f64,
    sweep_grid_points: usize,
    sweep_scaling: Vec<ScalingRow>,
}

/// Measure both paths directly (criterion's printed numbers are not
/// machine-readable in the shim) and emit the JSON artifact.
fn emit_artifact() {
    let device = fabric::database::xc5vlx110t();
    let samples = 30u32;

    let time = |f: &dyn Fn()| -> f64 {
        f();
        let start = Instant::now();
        for _ in 0..samples {
            f();
        }
        start.elapsed().as_secs_f64() / f64::from(samples)
    };

    let build_start = Instant::now();
    let geometry = DeviceGeometry::new(&device);
    let index_build_us = build_start.elapsed().as_secs_f64() * 1e6;

    let suite = |reports: &[SynthReport]| -> ColdSuite {
        let memo = time(&|| cold_plans_memo(reports, &device));
        let index = time(&|| cold_plans_index(reports, &device, &geometry));
        ColdSuite {
            plans: reports.len(),
            memo_mean_ms: memo * 1e3,
            index_mean_ms: index * 1e3,
            speedup: memo / index,
        }
    };
    let cold_plan_isolated = suite(&isolated_reports(device.family()));
    let cold_plan_exact = suite(&scan_reports(device.family()));
    let cold_plan_padded = suite(&padded_reports(device.family()));

    // Thread-scaling sweep: the (PRM + padded suite) × device grid,
    // replicated so each worker team has real work, shared search state
    // per device.
    let devices = fabric::all_devices();
    let gens = generators();
    let mut grid_reports: Vec<Vec<SynthReport>> = gens
        .iter()
        .map(|g| devices.iter().map(|d| g.synthesize(d.family())).collect())
        .collect();
    let padded_rows = padded_reports(fabric::Family::Virtex5).len();
    for i in 0..padded_rows {
        grid_reports.push(
            devices
                .iter()
                .map(|d| padded_reports(d.family())[i].clone())
                .collect(),
        );
    }
    const REPLICAS: usize = 24;
    let points: Vec<(usize, usize)> = (0..REPLICAS)
        .flat_map(|_| (0..grid_reports.len()).flat_map(|g| (0..devices.len()).map(move |d| (g, d))))
        .collect();
    let memos: Vec<MemoGeometry> = devices.iter().map(MemoGeometry::new).collect();
    let indexes: Vec<DeviceGeometry> = devices.iter().map(DeviceGeometry::new).collect();

    let plan_memo =
        |report: &SynthReport, device: &Device, memo: &MemoGeometry, scratch: &mut PlanScratch| {
            let finder = |req: &WindowRequest| -> Option<Window> { memo.find_window(device, req) };
            black_box(plan_prr_via_finder(report, device, &finder, scratch).ok());
        };
    let plan_index = |report: &SynthReport,
                      device: &Device,
                      geometry: &DeviceGeometry,
                      scratch: &mut PlanScratch| {
        black_box(plan_prr_cached(report, device, geometry, scratch).ok());
    };

    let mut sweep_scaling = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let memo_pps = sweep_pps(
            &points,
            &grid_reports,
            &devices,
            &memos,
            workers,
            &plan_memo,
        );
        let index_pps = sweep_pps(
            &points,
            &grid_reports,
            &devices,
            &indexes,
            workers,
            &plan_index,
        );
        sweep_scaling.push(ScalingRow {
            workers,
            memo_points_per_sec: memo_pps,
            index_points_per_sec: index_pps,
            index_over_memo: index_pps / memo_pps,
        });
    }

    let artifact = WindowBenchArtifact {
        device: device.name().to_string(),
        distinct_compositions: geometry.distinct_compositions(),
        index_build_us,
        index_bytes: geometry.index_bytes(),
        samples,
        cold_plan_speedup: cold_plan_isolated.speedup,
        cold_plan_isolated,
        cold_plan_exact,
        cold_plan_padded,
        sweep_grid_points: points.len(),
        sweep_scaling,
    };
    println!(
        "cold isolated-column plans on {}: memo {:.3} ms, index {:.3} ms ({:.1}x; {} compositions, build {:.0} us)",
        artifact.device,
        artifact.cold_plan_isolated.memo_mean_ms,
        artifact.cold_plan_isolated.index_mean_ms,
        artifact.cold_plan_isolated.speedup,
        artifact.distinct_compositions,
        artifact.index_build_us,
    );
    println!(
        "cold exact plans: memo {:.3} ms, index {:.3} ms ({:.1}x)",
        artifact.cold_plan_exact.memo_mean_ms,
        artifact.cold_plan_exact.index_mean_ms,
        artifact.cold_plan_exact.speedup,
    );
    println!(
        "cold padded plans: memo {:.3} ms, index {:.3} ms ({:.1}x)",
        artifact.cold_plan_padded.memo_mean_ms,
        artifact.cold_plan_padded.index_mean_ms,
        artifact.cold_plan_padded.speedup,
    );
    for row in &artifact.sweep_scaling {
        println!(
            "sweep x{}: memo {:.0} pts/s, index {:.0} pts/s ({:.1}x)",
            row.workers, row.memo_points_per_sec, row.index_points_per_sec, row.index_over_memo
        );
    }
    bench::write_json("BENCH_window", &artifact);
}

criterion_group!(benches, bench_cold_plans);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
