//! Criterion bench: bitstream generation and parsing throughput (the
//! substrate standing in for bitgen; relevant for the multitasking
//! simulator's reconfiguration path).

use bitstream::parser::parse_words;
use bitstream::writer::{generate, BitstreamSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fabric::database::xc5vlx110t;
use std::hint::black_box;
use synth::PaperPrm;

fn spec() -> BitstreamSpec {
    let device = xc5vlx110t();
    let plan = prcost::plan_prr(&PaperPrm::Mips.synth_report(device.family()), &device).unwrap();
    BitstreamSpec::from_plan(device.name(), "mips_r3000", plan.organization, &plan.window)
}

fn bench_generate(c: &mut Criterion) {
    let s = spec();
    let bytes = prcost::bitstream_size_bytes(&s.organization);
    let mut g = c.benchmark_group("bitstream");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("generate_mips_v5", |b| {
        b.iter(|| generate(black_box(&s)).unwrap())
    });
    let bs = generate(&s).unwrap();
    g.bench_function("parse_mips_v5", |b| {
        b.iter(|| parse_words(black_box(&bs.words), true).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
