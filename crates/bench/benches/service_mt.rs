//! Criterion bench: warm-memo plan throughput and latency for the
//! sharded concurrent engine and the async planning service, against the
//! frozen seed engine (`prcost::engine::reference::ReferenceEngine`,
//! three coarse `RwLock<HashMap>`s, a `String`+`Vec` key allocated per
//! lookup, and a full `PrrPlan`+`SearchTrace` clone on every hit).
//!
//! Three measurements:
//!
//! * *Warm hit* (criterion): a single thread replaying memoized points
//!   through both engines — the per-lookup cost the sharding/interning
//!   rework targets.
//! * *Worker scaling* (artifact): 1/4/8/16 `std::thread::scope` workers
//!   replaying a mixed feasible/infeasible warm workload, per-op latency
//!   sampled with `Instant`; throughput plus p50/p99 per engine per
//!   worker count.
//! * *Service end-to-end* (artifact): the same workload submitted through
//!   [`PlanService`] at 1/4/8/16 workers, latency taken from the
//!   engine's own `service` stage histogram (submit → ticket resolved).
//!
//! The bench binary installs a counting `#[global_allocator]` and asserts
//! the engine's documented contract that a warm [`Engine::plan_arc`] hit
//! performs **zero heap allocation** (streamed layout-hash intern lookup,
//! packed-key shard probe, `Arc` clone). The artifact lands in
//! `results/BENCH_service.json`.

use criterion::{criterion_group, Criterion};
use fabric::Device;
use prcost::engine::reference::ReferenceEngine;
use prcost::{Engine, PlanScratch, PlanService, PrrRequirements, ServiceConfig};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};
use synth::{PrmGenerator, SynthReport};

/// Counts every heap allocation made through the global allocator so the
/// warm-hit path can be asserted allocation-free.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The mixed warm workload: the six PRM generators plus synthetic
/// feasible and infeasible reports, on both paper devices. Every point
/// is planned once to warm the memo, then replayed as pure hits.
fn workload() -> Vec<(SynthReport, Device)> {
    let devices = [
        fabric::database::xc5vlx110t(),
        fabric::database::xc6vlx75t(),
    ];
    let generators: Vec<Box<dyn PrmGenerator>> = vec![
        Box::new(FirFilter::paper()),
        Box::new(MipsCore::paper()),
        Box::new(SdramController::paper()),
        Box::new(Uart::standard()),
        Box::new(AesEngine::standard()),
        Box::new(FftCore::standard()),
    ];
    let mut points = Vec::new();
    for device in &devices {
        for generator in &generators {
            points.push((generator.synthesize(device.family()), device.clone()));
        }
        // Padded-fallback points: BRAM/DSP mixes with no exact window.
        for (dsps, brams) in [(0u64, 24u64), (16, 16), (24, 48)] {
            points.push((
                SynthReport {
                    module: format!("padded_d{dsps}_b{brams}"),
                    family: device.family(),
                    lut_ff_pairs: 96,
                    luts: 72,
                    ffs: 72,
                    dsps,
                    brams,
                },
                device.clone(),
            ));
        }
        // Infeasible points: requirements no window on the part satisfies,
        // memoized as `Err` and replayed as hits like any other plan.
        for scale in [1u64, 2] {
            points.push((
                SynthReport {
                    module: format!("oversize_x{scale}"),
                    family: device.family(),
                    lut_ff_pairs: 400_000 * scale,
                    luts: 300_000 * scale,
                    ffs: 300_000 * scale,
                    dsps: 4_000 * scale,
                    brams: 4_000 * scale,
                },
                device.clone(),
            ));
        }
    }
    points
}

fn warm_sharded(points: &[(SynthReport, Device)]) -> Engine {
    let engine = Engine::new();
    let mut scratch = PlanScratch::default();
    for (report, device) in points {
        black_box(engine.plan_arc(report, device, &mut scratch));
    }
    engine
}

fn warm_reference(points: &[(SynthReport, Device)]) -> ReferenceEngine {
    let engine = ReferenceEngine::new();
    for (report, device) in points {
        black_box(engine.plan(report, device).ok());
    }
    engine
}

fn bench_warm_hits(c: &mut Criterion) {
    let points = workload();
    let sharded = warm_sharded(&points);
    let reference = warm_reference(&points);

    let mut g = c.benchmark_group("service");
    g.bench_function("warm_hit_reference", |b| {
        b.iter(|| {
            for (report, device) in &points {
                black_box(reference.plan(report, device).ok());
            }
        })
    });
    g.bench_function("warm_hit_sharded", |b| {
        let mut scratch = PlanScratch::default();
        b.iter(|| {
            for (report, device) in &points {
                black_box(sharded.plan_arc(report, device, &mut scratch));
            }
        })
    });
    g.finish();
}

#[derive(Serialize)]
struct EngineSide {
    plans_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct ScalingRow {
    workers: usize,
    ops: usize,
    reference: EngineSide,
    sharded: EngineSide,
    sharded_over_reference: f64,
}

#[derive(Serialize)]
struct ServiceRow {
    workers: usize,
    ops: usize,
    plans_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

#[derive(Serialize)]
struct ServiceBenchArtifact {
    devices: Vec<String>,
    distinct_points: usize,
    /// Warm `plan_arc` hits replayed under the counting allocator.
    alloc_check_hits: u64,
    /// Heap allocations observed during those hits — asserted zero.
    alloc_check_allocations: u64,
    scaling: Vec<ScalingRow>,
    service: Vec<ServiceRow>,
    /// Headline figure: warm-hit throughput ratio at 16 workers.
    speedup_at_16_workers: f64,
}

fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Every `LATENCY_SAMPLE`-th replay op is individually timed for the
/// percentile figures; the rest run back to back so the throughput number
/// is not dominated by clock reads (`Instant::now` costs a measurable
/// fraction of a warm hit on this scale).
const LATENCY_SAMPLE: usize = 8;

/// Replay `ops` warm points across `workers` threads against one engine.
/// Returns throughput and sampled latency percentiles.
fn replay<E: Sync>(
    points: &[(SynthReport, Device)],
    ops: usize,
    workers: usize,
    plan_one: &(dyn Fn(&E, &SynthReport, &Device, &mut PlanScratch) + Sync),
    engine: &E,
) -> EngineSide {
    let indices: Vec<usize> = (0..ops).map(|i| i % points.len()).collect();
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = indices
            .chunks(ops.div_ceil(workers))
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = PlanScratch::default();
                    let mut lat = Vec::with_capacity(chunk.len() / LATENCY_SAMPLE + 1);
                    for (n, &i) in chunk.iter().enumerate() {
                        let (report, device) = &points[i];
                        if n % LATENCY_SAMPLE == 0 {
                            let t = Instant::now();
                            plan_one(engine, report, device, &mut scratch);
                            lat.push(t.elapsed().as_secs_f64() * 1e6);
                        } else {
                            plan_one(engine, report, device, &mut scratch);
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("replay worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
    EngineSide {
        plans_per_sec: ops as f64 / elapsed,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
    }
}

/// Run `ops` warm submissions through a fresh [`PlanService`] with
/// `workers` planner threads; latency comes from the engine's `service`
/// stage histogram (submit → ticket resolution, recorded by the worker).
fn service_row(points: &[(SynthReport, Device)], ops: usize, workers: usize) -> ServiceRow {
    let engine = Arc::new(warm_sharded(points));
    let mut service = PlanService::with_engine(
        Arc::clone(&engine),
        ServiceConfig {
            workers,
            queue_capacity: 256,
            batch_size: 32,
        },
    );
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(ops);
    for i in 0..ops {
        let (report, device) = &points[i % points.len()];
        let tenant = if i % 3 == 0 { "alice" } else { "bob" };
        tickets.push(
            service
                .submit(tenant, PrrRequirements::from_report(report), device)
                .expect("service accepts before shutdown"),
        );
    }
    for ticket in &tickets {
        black_box(ticket.wait());
    }
    let elapsed = start.elapsed().as_secs_f64();
    service.shutdown();
    let snapshot = engine.snapshot();
    let stage = snapshot
        .stages
        .iter()
        .find(|s| s.name == "service")
        .expect("service stage recorded");
    ServiceRow {
        workers,
        ops,
        plans_per_sec: ops as f64 / elapsed,
        p50_us: stage.p50_ns as f64 / 1e3,
        p99_us: stage.p99_ns as f64 / 1e3,
    }
}

fn emit_artifact() {
    let points = workload();
    let sharded = warm_sharded(&points);
    let reference = warm_reference(&points);

    // Zero-allocation warm-hit check: every point is memoized, so each
    // `plan_arc` is an intern lookup + shard probe + `Arc` clone. The
    // scratch is preallocated and untouched on the hit path.
    let mut scratch = PlanScratch::default();
    let check_rounds = 2_000u64;
    for (report, device) in &points {
        black_box(sharded.plan_arc(report, device, &mut scratch));
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..check_rounds {
        for (report, device) in &points {
            black_box(sharded.plan_arc(report, device, &mut scratch));
        }
    }
    let alloc_check_allocations = ALLOCATIONS.load(Ordering::SeqCst) - before;
    let alloc_check_hits = check_rounds * points.len() as u64;
    assert_eq!(
        alloc_check_allocations, 0,
        "warm plan_arc hits must not allocate ({alloc_check_allocations} allocations \
         over {alloc_check_hits} hits)"
    );

    let ops = 40_000usize;
    let plan_sharded =
        |engine: &Engine, report: &SynthReport, device: &Device, scratch: &mut PlanScratch| {
            black_box(engine.plan_arc(report, device, scratch));
        };
    let plan_reference =
        |engine: &ReferenceEngine, report: &SynthReport, device: &Device, _: &mut PlanScratch| {
            black_box(engine.plan(report, device).ok());
        };

    let mut scaling = Vec::new();
    for workers in [1usize, 4, 8, 16] {
        let reference_side = replay(&points, ops, workers, &plan_reference, &reference);
        let sharded_side = replay(&points, ops, workers, &plan_sharded, &sharded);
        scaling.push(ScalingRow {
            workers,
            ops,
            sharded_over_reference: sharded_side.plans_per_sec / reference_side.plans_per_sec,
            reference: reference_side,
            sharded: sharded_side,
        });
    }

    let service: Vec<ServiceRow> = [1usize, 4, 8, 16]
        .iter()
        .map(|&workers| service_row(&points, 8_000, workers))
        .collect();

    let speedup_at_16_workers = scaling
        .iter()
        .find(|row| row.workers == 16)
        .expect("16-worker row present")
        .sharded_over_reference;

    let artifact = ServiceBenchArtifact {
        devices: vec![
            fabric::database::xc5vlx110t().name().to_string(),
            fabric::database::xc6vlx75t().name().to_string(),
        ],
        distinct_points: points.len(),
        alloc_check_hits,
        alloc_check_allocations,
        scaling,
        service,
        speedup_at_16_workers,
    };

    println!(
        "warm-hit zero-alloc check: {} hits, {} allocations",
        artifact.alloc_check_hits, artifact.alloc_check_allocations
    );
    for row in &artifact.scaling {
        println!(
            "replay x{:2}: reference {:9.0} pps (p99 {:7.2} us) | sharded {:9.0} pps \
             (p99 {:7.2} us) | {:5.1}x",
            row.workers,
            row.reference.plans_per_sec,
            row.reference.p99_us,
            row.sharded.plans_per_sec,
            row.sharded.p99_us,
            row.sharded_over_reference,
        );
    }
    for row in &artifact.service {
        println!(
            "service x{:2}: {:9.0} pps, p50 {:7.2} us, p99 {:7.2} us",
            row.workers, row.plans_per_sec, row.p50_us, row.p99_us
        );
    }
    assert!(
        artifact.speedup_at_16_workers >= 4.0,
        "sharded warm-hit throughput at 16 workers must be >= 4x the RwLock baseline \
         (measured {:.2}x)",
        artifact.speedup_at_16_workers
    );
    bench::write_json("BENCH_service", &artifact);
}

criterion_group!(benches, bench_warm_hits);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
