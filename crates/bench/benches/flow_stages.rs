//! Criterion bench: simulated design-flow stage costs (the thing the cost
//! models let designers skip). Compare against `model_eval` to reproduce
//! the Table VIII contrast on this host.

use criterion::{criterion_group, criterion_main, Criterion};
use fabric::database::xc5vlx110t;
use fabric::grid::SiteGrid;
use parflow::flow::{run_paper_flow, FlowOptions};
use parflow::optimize::{optimize, OptimizeOptions};
use parflow::place::{place, PlacerConfig};
use std::hint::black_box;
use synth::PaperPrm;

fn bench_optimize(c: &mut Criterion) {
    let nl = PaperPrm::Mips.netlist(fabric::Family::Virtex5, 3);
    let target = PaperPrm::Mips
        .post_par_report(fabric::Family::Virtex5)
        .unwrap();
    c.bench_function("optimize_mips_v5", |b| {
        b.iter(|| {
            optimize(
                black_box(&nl),
                &OptimizeOptions::TowardTarget(target.clone()),
            )
            .unwrap()
        })
    });
}

fn bench_place(c: &mut Criterion) {
    let device = xc5vlx110t();
    let grid = SiteGrid::new(&device);
    let plan = prcost::plan_prr(&PaperPrm::Sdram.synth_report(device.family()), &device).unwrap();
    let nl = PaperPrm::Sdram.netlist(device.family(), 3);
    c.bench_function("place_sdram_v5_fast", |b| {
        b.iter(|| place(black_box(&nl), &grid, &plan.window, &PlacerConfig::fast(7)).unwrap())
    });
}

fn bench_full_flow(c: &mut Criterion) {
    let device = xc5vlx110t();
    let mut g = c.benchmark_group("full_flow");
    g.sample_size(10);
    g.bench_function("sdram_v5", |b| {
        b.iter(|| run_paper_flow(PaperPrm::Sdram, &device, &FlowOptions::fast(1)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_optimize, bench_place, bench_full_flow);
criterion_main!(benches);
