//! Criterion bench: batch sweep throughput, engine vs the uncached path.
//!
//! Evaluates the full `fabric::all_devices()` × 6-generator grid both
//! ways. The engine sweep shares one `Engine` across iterations (its
//! caches are exactly what a designer iterating on a sweep would keep
//! warm); the uncached sweep re-synthesizes and re-plans every point
//! from scratch. Besides the criterion numbers, a `BENCH_sweep.json`
//! artifact with both throughputs and the measured speedup is written to
//! `results/`.

use criterion::{criterion_group, Criterion};
use prcost::Engine;
use prfpga::sweep::{sweep_uncached, sweep_with_engine};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use synth::prm::{AesEngine, FftCore, FirFilter, MipsCore, SdramController, Uart};
use synth::PrmGenerator;

fn generators() -> Vec<Box<dyn PrmGenerator + Sync>> {
    vec![
        Box::new(FirFilter::paper()),
        Box::new(MipsCore::paper()),
        Box::new(SdramController::paper()),
        Box::new(Uart::standard()),
        Box::new(AesEngine::standard()),
        Box::new(FftCore::standard()),
    ]
}

fn bench_sweeps(c: &mut Criterion) {
    let gens = generators();
    let devices = fabric::all_devices();
    let points = gens.len() * devices.len();

    let mut g = c.benchmark_group("sweep");

    g.bench_function(format!("uncached_{points}pts"), |b| {
        b.iter(|| sweep_uncached(black_box(&gens), black_box(&devices)))
    });

    let engine = Engine::new();
    g.bench_function(format!("engine_{points}pts"), |b| {
        b.iter(|| sweep_with_engine(black_box(&engine), black_box(&gens), black_box(&devices)))
    });

    g.finish();
}

#[derive(Serialize)]
struct SweepBenchArtifact {
    grid_points: usize,
    samples: u32,
    uncached_mean_ms: f64,
    engine_mean_ms: f64,
    speedup: f64,
    engine_points_per_sec: f64,
}

/// Measure both paths directly (criterion's printed numbers are not
/// machine-readable in the shim) and emit the JSON artifact.
fn emit_artifact() {
    let gens = generators();
    let devices = fabric::all_devices();
    let samples = 20u32;

    let time = |f: &dyn Fn()| -> f64 {
        // One warm-up, then the mean of `samples` runs.
        f();
        let start = Instant::now();
        for _ in 0..samples {
            f();
        }
        start.elapsed().as_secs_f64() / f64::from(samples)
    };

    let uncached = time(&|| {
        black_box(sweep_uncached(&gens, &devices));
    });
    let engine = Engine::new();
    let cached = time(&|| {
        black_box(sweep_with_engine(&engine, &gens, &devices));
    });

    let points = gens.len() * devices.len();
    let artifact = SweepBenchArtifact {
        grid_points: points,
        samples,
        uncached_mean_ms: uncached * 1e3,
        engine_mean_ms: cached * 1e3,
        speedup: uncached / cached,
        engine_points_per_sec: points as f64 / cached,
    };
    println!(
        "sweep {} points: uncached {:.2} ms, engine {:.2} ms ({:.1}x)",
        points, artifact.uncached_mean_ms, artifact.engine_mean_ms, artifact.speedup
    );
    bench::write_json("BENCH_sweep", &artifact);
}

criterion_group!(benches, bench_sweeps);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
