//! Criterion bench: bounded-depth multi-move defrag search throughput
//! and the admissions-vs-policy table for `BENCH_defrag.json`.
//!
//! *Search throughput*: a seeded allocate/release churn drives a
//! [`layout::LayoutManager`] on a small synthetic strip; every few ops
//! the state is snapshotted when the probe organization has no free
//! window (i.e. the fabric is fragmented against it). The depth-3
//! branch-and-bound ([`layout::defrag2::plan`], with its serial driver
//! [`layout::defrag2::plan_serial`]) and the frozen exhaustive oracle
//! ([`layout::defrag2::reference`]) then plan the identical probe set;
//! the headline figure is the searched-states-per-second ratio. The
//! plans themselves are asserted identical first — the speedup is only
//! meaningful if the answers agree.
//!
//! *Policy table*: the acceptance workload (seed 384, moderate load,
//! xc5vlx110t) simulated under Never / single-step / depth 1–4 /
//! Threshold(2.0) / proactive, plus the PR-5 pinned saturated workload
//! for contrast. On the saturated pin, repairs cost more ICAP time than
//! they buy (never admits the most); on the moderate-load acceptance
//! workload the depth-3 sequences admit strictly more than single-step.
//! Both rows are emitted — the honest result is the point.

use bitstream::IcapModel;
use criterion::{criterion_group, Criterion};
use fabric::{Device, Family, ResourceKind};
use layout::defrag2::{plan, plan_serial, reference};
use layout::{simulate_layout, Defrag2Config, DefragPolicy, LayoutConfig, LayoutManager};
use multitask::Workload;
use prcost::PrrOrganization;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Deterministic stream for the churn op sequence: the shared
/// [`prcost::rng::Rng`], continued from the raw seed so the pinned op
/// sequence is bit-identical to the private splitmix copy it replaced.
use prcost::rng::Rng;

/// The synthetic strip the search probes run on: CLB-heavy with two DSP
/// columns, two rows — small enough that the exhaustive oracle finishes,
/// wide enough that blockers have many candidate targets.
fn probe_device() -> Device {
    use ResourceKind::*;
    let mut cols = vec![Clb; 28];
    cols[5] = Dsp;
    cols[13] = Dsp;
    cols[21] = Dsp;
    Device::new("bench-strip", Family::Virtex5, 2, cols).expect("device")
}

fn probe_org() -> PrrOrganization {
    PrrOrganization {
        family: Family::Virtex5,
        height: 2,
        clb_cols: 4,
        dsp_cols: 0,
        bram_cols: 0,
    }
}

/// Replay `n_ops` of the seeded churn against a fresh manager: many
/// small modules, moderate release pressure, so the strip ends up
/// peppered with movable blockers rather than a few immovable slabs.
fn churned(device: &Device, seed: u64, n_ops: usize) -> LayoutManager {
    let mut rng = Rng::from_raw(seed);
    let mut mgr = LayoutManager::new(device, IcapModel::V5_DMA);
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..n_ops {
        if rng.below(3) == 0 && !live.is_empty() {
            let id = live.remove(rng.below(live.len() as u64) as usize);
            mgr.release(id);
        } else {
            let org = PrrOrganization {
                family: Family::Virtex5,
                height: 1,
                clb_cols: 1 + rng.below(2) as u32,
                dsp_cols: u32::from(rng.below(8) == 0),
                bram_cols: 0,
            };
            if let Ok(id) = mgr.allocate("m", &org) {
                live.push(id);
            }
        }
    }
    mgr
}

/// Snapshot churn states that are fragmented against the probe
/// organization — the states the DES would actually search on. Only
/// states where the bounded search expands a non-trivial tree are kept,
/// so the comparison measures search, not snapshot bookkeeping.
fn probe_states(device: &Device, want: usize) -> Vec<LayoutManager> {
    let org = probe_org();
    let cfg = search_cfg();
    let req = fabric::WindowRequest::new(org.clb_cols, org.dsp_cols, org.bram_cols, org.height);
    let mut states = Vec::new();
    // Hard states are rare: bound the scan and require a floor instead of
    // spinning on an exact count.
    for seed in 1u64..6_000 {
        for n_ops in (32..128).step_by(4) {
            let mgr = churned(device, seed, n_ops);
            if mgr.free_space().find_window(&req).is_some() {
                continue;
            }
            let hard = plan_serial(&mgr, &org, &cfg).is_some_and(|p| p.nodes >= 96);
            if hard {
                states.push(mgr);
            }
        }
        if states.len() >= want {
            break;
        }
    }
    assert!(states.len() >= 8, "churn must yield hard probe states");
    states
}

fn search_cfg() -> Defrag2Config {
    Defrag2Config {
        depth: 3,
        context_aware: true,
        node_budget: u64::MAX,
    }
}

fn bench_defrag_search(c: &mut Criterion) {
    let device = probe_device();
    let org = probe_org();
    let cfg = search_cfg();
    let states = probe_states(&device, 16);

    // The comparison is only honest if the answers agree (`nodes` is a
    // per-search diagnostic, not part of the plan).
    for mgr in &states {
        let fast = plan(mgr, &org, &cfg);
        let oracle = reference::plan_exhaustive(mgr, &org, &cfg);
        assert_eq!(
            fast.as_ref().map(|p| (&p.moves, &p.admit, p.total_move_ns)),
            oracle
                .as_ref()
                .map(|p| (&p.moves, &p.admit, p.total_move_ns)),
        );
    }

    let mut g = c.benchmark_group("defrag_search");
    g.bench_function("bb_parallel_d3", |b| {
        b.iter(|| {
            states
                .iter()
                .filter_map(|m| plan(black_box(m), &org, &cfg))
                .count()
        })
    });
    g.bench_function("bb_serial_d3", |b| {
        b.iter(|| {
            states
                .iter()
                .filter_map(|m| plan_serial(black_box(m), &org, &cfg))
                .count()
        })
    });
    g.bench_function("oracle_exhaustive_d3", |b| {
        b.iter(|| {
            states
                .iter()
                .filter_map(|m| reference::plan_exhaustive(black_box(m), &org, &cfg))
                .count()
        })
    });
    g.finish();
}

#[derive(Serialize)]
struct PolicyRow {
    workload: String,
    policy: String,
    depth: u32,
    proactive: bool,
    admitted: u32,
    rejected_fragmentation: u32,
    defrag_admissions: u32,
    proactive_defrags: u32,
    relocations: u32,
    relocation_ms: f64,
    relocated_bytes: u64,
    context_bytes: u64,
    sim_wall_ms: f64,
}

#[derive(Serialize)]
struct DefragBenchArtifact {
    search_device: String,
    search_states: usize,
    search_depth: u32,
    samples: u32,
    bb_parallel_mean_ms: f64,
    bb_serial_mean_ms: f64,
    oracle_mean_ms: f64,
    /// Headline figure: searched-states-per-second of the parallel
    /// branch-and-bound over the exhaustive oracle, same probe set,
    /// plan-identical answers.
    search_speedup: f64,
    serial_speedup: f64,
    sim_device: String,
    policy_table: Vec<PolicyRow>,
}

fn run_policy(
    device: &Device,
    workload: &Workload,
    tag: &str,
    name: &str,
    policy: DefragPolicy,
    depth: u32,
    proactive: bool,
) -> PolicyRow {
    let config = LayoutConfig {
        policy,
        depth,
        proactive,
        ..LayoutConfig::default()
    };
    let start = Instant::now();
    let r = simulate_layout(device, workload, &config);
    PolicyRow {
        workload: tag.to_string(),
        policy: name.to_string(),
        depth,
        proactive,
        admitted: r.admitted,
        rejected_fragmentation: r.rejected_fragmentation,
        defrag_admissions: r.defrag_admissions,
        proactive_defrags: r.proactive_defrags,
        relocations: r.relocations,
        relocation_ms: r.relocation_ns as f64 / 1e6,
        relocated_bytes: r.relocated_bytes,
        context_bytes: r.context_bytes,
        sim_wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn emit_artifact() {
    let device = probe_device();
    let org = probe_org();
    let cfg = search_cfg();
    let states = probe_states(&device, 16);
    let samples = 20u32;

    let time = |f: &dyn Fn() -> usize| -> f64 {
        f();
        let start = Instant::now();
        for _ in 0..samples {
            black_box(f());
        }
        start.elapsed().as_secs_f64() / f64::from(samples)
    };
    let bb_parallel = time(&|| states.iter().filter_map(|m| plan(m, &org, &cfg)).count());
    let bb_serial = time(&|| {
        states
            .iter()
            .filter_map(|m| plan_serial(m, &org, &cfg))
            .count()
    });
    let oracle = time(&|| {
        states
            .iter()
            .filter_map(|m| reference::plan_exhaustive(m, &org, &cfg))
            .count()
    });

    let sim_device = fabric::database::xc5vlx110t();
    // Seeds re-pinned (5 → 384, 12 → 24) with the `Rng::from_seed`
    // mixing change; the workloads match the acceptance-test pins.
    let acceptance =
        Workload::generate_heavy_tailed(384, Family::Virtex5, 400, 24, 400, 100_000, 400_000);
    let pinned =
        Workload::generate_heavy_tailed(24, Family::Virtex5, 200, 16, 1500, 40_000, 400_000);

    let mut policy_table = Vec::new();
    for (name, policy, depth, proactive) in [
        ("never", DefragPolicy::Never, 0u32, false),
        ("single_step", DefragPolicy::Always, 0, false),
        ("depth_1", DefragPolicy::Always, 1, false),
        ("depth_2", DefragPolicy::Always, 2, false),
        ("depth_3", DefragPolicy::Always, 3, false),
        ("depth_4", DefragPolicy::Always, 4, false),
        (
            "depth_3_threshold_2.0",
            DefragPolicy::Threshold(2.0),
            3,
            false,
        ),
        ("depth_3_proactive", DefragPolicy::Always, 3, true),
    ] {
        policy_table.push(run_policy(
            &sim_device,
            &acceptance,
            "acceptance_seed384",
            name,
            policy,
            depth,
            proactive,
        ));
    }
    for (name, policy, depth) in [
        ("never", DefragPolicy::Never, 0u32),
        ("single_step", DefragPolicy::Always, 0),
        ("depth_3", DefragPolicy::Always, 3),
    ] {
        policy_table.push(run_policy(
            &sim_device,
            &pinned,
            "pr5_pinned_seed24",
            name,
            policy,
            depth,
            false,
        ));
    }

    let artifact = DefragBenchArtifact {
        search_device: device.name().to_string(),
        search_states: states.len(),
        search_depth: cfg.depth,
        samples,
        bb_parallel_mean_ms: bb_parallel * 1e3,
        bb_serial_mean_ms: bb_serial * 1e3,
        oracle_mean_ms: oracle * 1e3,
        search_speedup: oracle / bb_parallel,
        serial_speedup: oracle / bb_serial,
        sim_device: sim_device.name().to_string(),
        policy_table,
    };
    println!(
        "search over {} fragmented states at depth {}: b&b {:.3} ms (serial {:.3} ms), oracle {:.3} ms — {:.1}x (serial {:.1}x)",
        artifact.search_states,
        artifact.search_depth,
        artifact.bb_parallel_mean_ms,
        artifact.bb_serial_mean_ms,
        artifact.oracle_mean_ms,
        artifact.search_speedup,
        artifact.serial_speedup,
    );
    for row in &artifact.policy_table {
        println!(
            "{:<18} {:<22} admitted {:>3}, defrag_adm {:>2}, proactive {:>2}, relocs {:>2} ({:.3} ms ICAP, ctx {} B)",
            row.workload,
            row.policy,
            row.admitted,
            row.defrag_admissions,
            row.proactive_defrags,
            row.relocations,
            row.relocation_ms,
            row.context_bytes,
        );
    }
    let d3 = artifact
        .policy_table
        .iter()
        .find(|r| r.workload == "acceptance_seed384" && r.policy == "depth_3")
        .unwrap();
    let single = artifact
        .policy_table
        .iter()
        .find(|r| r.workload == "acceptance_seed384" && r.policy == "single_step")
        .unwrap();
    assert!(
        d3.admitted > single.admitted,
        "acceptance: depth-3 must out-admit single-step"
    );
    assert!(
        artifact.search_speedup >= 5.0,
        "branch-and-bound must be at least 5x the oracle (got {:.1}x)",
        artifact.search_speedup
    );
    bench::write_json("BENCH_defrag", &artifact);
}

criterion_group!(benches, bench_defrag_search);

// A custom main instead of criterion_main! so the artifact emitter runs
// after the criterion group.
fn main() {
    benches();
    emit_artifact();
}
