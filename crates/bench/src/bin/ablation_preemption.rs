//! Ablation: preemptive hardware multitasking with context save/restore
//! (the authors' companion work \[5]\[6]) — how PRR sizing drives not just
//! reconfiguration time but *preemption latency*, and what urgent-task
//! responsiveness costs in total throughput.

use bitstream::readback::context_cost;
use bitstream::IcapModel;
use fabric::{device_by_name, Family, Resources};
use multitask::{simulate_preemptive, PrSystem, PreemptiveTask};
use prcost::PrrOrganization;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    sizing: String,
    save_us: f64,
    restore_us: f64,
    preemptions: u32,
    urgent_response_us: f64,
    makespan_ms: f64,
    context_overhead_ms: f64,
}

fn main() {
    let device = device_by_name("xc5vsx95t").unwrap();

    // Background tasks (priority 0) + sporadic urgent tasks (priority 3).
    let mut tasks: Vec<PreemptiveTask> = Vec::new();
    for i in 0..48u32 {
        tasks.push(PreemptiveTask {
            id: i,
            module: format!("bg{}", i % 3),
            needs: Resources::new(100, 4, 2),
            arrival_ns: u64::from(i) * 150_000,
            exec_ns: 2_000_000,
            priority: 0,
        });
    }
    for j in 0..12u32 {
        tasks.push(PreemptiveTask {
            id: 100 + j,
            module: "urgent".into(),
            needs: Resources::new(60, 2, 1),
            arrival_ns: 400_000 + u64::from(j) * 3_000_000,
            exec_ns: 120_000,
            priority: 3,
        });
    }

    let sizes = [
        ("right-sized H=1", 1u32),
        ("2x H=2", 2),
        ("4x H=4", 4),
        ("8x H=8", 8),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, h) in sizes {
        let org = PrrOrganization {
            family: Family::Virtex5,
            height: h,
            clb_cols: 8,
            dsp_cols: 1,
            bram_cols: 1,
        };
        let Ok(sys) = PrSystem::homogeneous(&device, org, 2, IcapModel::V5_DMA) else {
            continue;
        };
        let ctx = context_cost(&org);
        let r = simulate_preemptive(&sys, &tasks);
        let us = |ns: u64| ns as f64 / 1e3;
        rows.push(vec![
            label.to_string(),
            format!(
                "{:.1}",
                ctx.save_time(&IcapModel::V5_DMA).as_secs_f64() * 1e6
            ),
            format!(
                "{:.1}",
                ctx.restore_time(&IcapModel::V5_DMA).as_secs_f64() * 1e6
            ),
            r.preemptions.to_string(),
            format!("{:.1}", us(r.urgent_mean_response_ns)),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            format!("{:.3}", r.context_switch_ns as f64 / 1e6),
        ]);
        json.push(Row {
            sizing: label.into(),
            save_us: ctx.save_time(&IcapModel::V5_DMA).as_secs_f64() * 1e6,
            restore_us: ctx.restore_time(&IcapModel::V5_DMA).as_secs_f64() * 1e6,
            preemptions: r.preemptions,
            urgent_response_us: us(r.urgent_mean_response_ns),
            makespan_ms: r.makespan_ns as f64 / 1e6,
            context_overhead_ms: r.context_switch_ns as f64 / 1e6,
        });
    }
    print!(
        "{}",
        bench::render_table(
            "Preemptive multitasking: PRR sizing vs context-switch cost (2 PRRs)",
            &[
                "PRR sizing",
                "ctx save us",
                "ctx restore us",
                "preemptions",
                "urgent resp us",
                "makespan ms",
                "ctx overhead ms",
            ],
            &rows,
        )
    );
    println!(
        "\nExpected shape: context save/restore (and hence urgent-task response) scale \
         linearly with PRR area — right-sizing the PRR via the cost models is what keeps \
         preemptive hardware multitasking responsive."
    );
    bench::write_json("ablation_preemption", &json);
}
