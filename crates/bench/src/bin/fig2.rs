//! Regenerate Fig. 2: the partial bitstream structure for a two-row PRR
//! containing CLB, DSP and BRAM columns on a Virtex-5 (the exact scenario
//! the paper's figure depicts), as an annotated structure dump.

use bitstream::dump::dump_structure;
use bitstream::writer::{generate, BitstreamSpec};
use fabric::database::xc5vlx110t;
use fabric::WindowRequest;
use prcost::PrrOrganization;

fn main() {
    let device = xc5vlx110t();
    // A 2-row PRR with 2 CLB, 1 DSP and 1 BRAM column — Fig. 2's example.
    // The LX110T has no contiguous {2 CLB, 1 DSP, 1 BRAM} span, so use the
    // nearest available composition around the DSP column: 8 CLB + 1 DSP +
    // 1 BRAM.
    let org = PrrOrganization {
        family: device.family(),
        height: 2,
        clb_cols: 8,
        dsp_cols: 1,
        bram_cols: 1,
    };
    let window = device
        .find_window(&WindowRequest::new(8, 1, 1, 2))
        .expect("window exists on the LX110T");
    let spec = BitstreamSpec::from_plan(device.name(), "fig2_demo", org, &window);
    let bs = generate(&spec).expect("spec is valid");
    let dump = dump_structure(&bs);
    println!("{dump}");
    println!(
        "model check: Eq. 18 predicts {} bytes; generated {} bytes",
        prcost::bitstream_size_bytes(&org),
        bs.len_bytes()
    );
    assert_eq!(prcost::bitstream_size_bytes(&org), bs.len_bytes());
    bench::write_json("fig2", &dump);
}
