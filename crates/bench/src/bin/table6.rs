//! Regenerate Table VI: post-place-and-route resource counts vs Table V,
//! with savings percentages, by running the simulated implementation flow
//! (optimizer driven toward the published post-PAR profile, then actual
//! placement and routing inside the model-predicted PRR).

use parflow::flow::{run_paper_flow, FlowOptions};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prm: String,
    device: String,
    lut_ff: u64,
    lut_ff_saving_pct: f64,
    luts: u64,
    lut_saving_pct: f64,
    ffs: u64,
    ff_saving_pct: f64,
    clb_req: u64,
    routed: bool,
}

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (prm, device) in bench::evaluation_matrix() {
        let (rep, _bs) =
            run_paper_flow(prm, &device, &FlowOptions::fast(42)).expect("paper PRM flows succeed");
        let synth = &rep.synth_report;
        let post = &rep.post_report;
        let s_pairs = post.saving_pct(synth, |r| r.lut_ff_pairs);
        let s_luts = post.saving_pct(synth, |r| r.luts);
        let s_ffs = post.saving_pct(synth, |r| r.ffs);
        let lut_clb = u64::from(device.family().params().lut_clb);
        let clb_req = post.lut_ff_pairs.div_ceil(lut_clb);
        rows.push(vec![
            format!("{prm:?}/{}", device.family()),
            format!("{} ({:+.1}%)", post.lut_ff_pairs, s_pairs),
            format!("{} ({:+.1}%)", post.dsps, 0.0),
            format!("{} ({:+.1}%)", post.brams, 0.0),
            format!("{} ({:+.1}%)", post.luts, s_luts),
            format!("{} ({:+.1}%)", post.ffs, s_ffs),
            format!("{clb_req}"),
            if rep.route.routed {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        json.push(Row {
            prm: format!("{prm:?}"),
            device: device.name().to_string(),
            lut_ff: post.lut_ff_pairs,
            lut_ff_saving_pct: s_pairs,
            luts: post.luts,
            lut_saving_pct: s_luts,
            ffs: post.ffs,
            ff_saving_pct: s_ffs,
            clb_req,
            routed: rep.route.routed,
        });
    }

    print!(
        "{}",
        bench::render_table(
            "Table VI: post-PAR resources (savings vs Table V in parentheses; \
             positive = fewer resources)",
            &[
                "PRM/family",
                "LUT_FF_req",
                "DSP_req",
                "BRAM_req",
                "LUT_req",
                "FF_req",
                "CLB_req",
                "routed"
            ],
            &rows,
        )
    );
    println!(
        "\nPaper savings for LUT_FF_req: 16.8 16.6 2.4 / 31.9 18.8 3.9 (V5 FIR MIPS SDRAM / V6)."
    );
    bench::write_json("table6", &json);
}
