//! Ablation: predicted bitstream size as a function of the PRR height H,
//! for each paper PRM on both devices. This visualizes the objective the
//! Fig. 1 search minimizes and where the optimum falls (the paper's Table
//! V heights).

use prcost::prr::PrrOrganization;
use prcost::{bitstream_size_bytes, PrrRequirements};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    prm: String,
    device: String,
    h: u32,
    feasible: bool,
    bitstream_bytes: Option<u64>,
    prr_size: Option<u64>,
}

fn main() {
    let mut json = Vec::new();
    for (prm, device) in bench::evaluation_matrix() {
        let req = PrrRequirements::from_report(&prm.synth_report(device.family()));
        let single = device.dsp_column_count() == 1;
        let mut rows = Vec::new();
        for h in 1..=device.rows() {
            let point = match PrrOrganization::for_height(&req, h, single) {
                Ok(org) if device.has_window(&org.window_request()) => {
                    let bytes = bitstream_size_bytes(&org);
                    rows.push(vec![
                        h.to_string(),
                        format!("{}+{}+{}", org.clb_cols, org.dsp_cols, org.bram_cols),
                        org.prr_size().to_string(),
                        bytes.to_string(),
                    ]);
                    Point {
                        prm: format!("{prm:?}"),
                        device: device.name().into(),
                        h,
                        feasible: true,
                        bitstream_bytes: Some(bytes),
                        prr_size: Some(org.prr_size()),
                    }
                }
                _ => {
                    rows.push(vec![
                        h.to_string(),
                        "-".into(),
                        "-".into(),
                        "infeasible".into(),
                    ]);
                    Point {
                        prm: format!("{prm:?}"),
                        device: device.name().into(),
                        h,
                        feasible: false,
                        bitstream_bytes: None,
                        prr_size: None,
                    }
                }
            };
            json.push(point);
        }
        println!(
            "{}",
            bench::render_table(
                &format!("{prm:?} on {} — bitstream vs H", device.name()),
                &["H", "W_CLB+W_DSP+W_BRAM", "PRR_size", "S_bitstream (B)"],
                &rows,
            )
        );
    }
    bench::write_json("ablation_height", &json);
}
