//! Regenerate Table VII: partial bitstream sizes per PRM/device.
//!
//! Two columns per entry: the Eq. 18 model prediction, and the byte length
//! of the bitstream actually emitted by the generator substrate — they
//! must agree exactly (the paper validated against bitgen output; its
//! absolute byte values were lost in the available transcription, so the
//! generator is our ground truth; see DESIGN.md §5).

use bitstream::writer::{generate, BitstreamSpec};
use prcost::search::plan_prr;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prm: String,
    device: String,
    model_bytes: u64,
    generated_bytes: u64,
}

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (prm, device) in bench::evaluation_matrix() {
        let report = prm.synth_report(device.family());
        let plan = plan_prr(&report, &device).unwrap();
        let spec = BitstreamSpec::from_plan(
            device.name(),
            prm.module_name(),
            plan.organization,
            &plan.window,
        );
        let bs = generate(&spec).unwrap();
        assert_eq!(
            bs.len_bytes(),
            plan.bitstream_bytes,
            "model and generator must agree byte-for-byte"
        );
        rows.push(vec![
            format!("{prm:?}"),
            device.name().to_string(),
            plan.bitstream_bytes.to_string(),
            bs.len_bytes().to_string(),
            format!(
                "H={} W=({},{},{})",
                plan.organization.height,
                plan.organization.clb_cols,
                plan.organization.dsp_cols,
                plan.organization.bram_cols
            ),
        ]);
        json.push(Row {
            prm: format!("{prm:?}"),
            device: device.name().to_string(),
            model_bytes: plan.bitstream_bytes,
            generated_bytes: bs.len_bytes(),
        });
    }
    print!(
        "{}",
        bench::render_table(
            "Table VII: partial bitstream sizes (bytes)",
            &["PRM", "Device", "Model (Eq. 18)", "Generated", "PRR"],
            &rows,
        )
    );
    println!("\nModel == generator for all six entries (byte-for-byte).");
    bench::write_json("table7", &json);
}
