//! Ablation: naive PRR sizing strategies vs the paper's model plan.
//!
//! Quantifies what a designer loses by skipping the Fig. 1 search:
//! bitstream inflation (and hence reconfiguration-time inflation) per
//! strategy, plus outright failures (single-row sizing cannot satisfy the
//! Eq. 4 DSP-row constraint for FIR on the LX110T).

use baselines::naive::{naive_plan, NaiveStrategy};
use prcost::search::plan_prr_from_requirements;
use prcost::PrrRequirements;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prm: String,
    device: String,
    strategy: String,
    bitstream_bytes: Option<u64>,
    inflation: Option<f64>,
}

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (prm, device) in bench::evaluation_matrix() {
        let req = PrrRequirements::from_report(&prm.synth_report(device.family()));
        let model = plan_prr_from_requirements(&req, &device).unwrap();
        rows.push(vec![
            format!("{prm:?}/{}", device.family()),
            "model (Fig. 1)".into(),
            model.bitstream_bytes.to_string(),
            "1.00x".into(),
        ]);
        for strat in NaiveStrategy::ALL {
            let (bytes, inflation, text) = match naive_plan(strat, &req, &device) {
                Ok(p) => {
                    let f = p.bitstream_bytes as f64 / model.bitstream_bytes as f64;
                    (Some(p.bitstream_bytes), Some(f), format!("{:.2}x", f))
                }
                Err(_) => (None, None, "INFEASIBLE".into()),
            };
            rows.push(vec![
                String::new(),
                strat.name().into(),
                bytes.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
                text,
            ]);
            json.push(Row {
                prm: format!("{prm:?}"),
                device: device.name().into(),
                strategy: strat.name().into(),
                bitstream_bytes: bytes,
                inflation,
            });
        }
    }
    print!(
        "{}",
        bench::render_table(
            "Naive sizing vs model plan (bitstream bytes; inflation vs model)",
            &["PRM/family", "strategy", "S_bitstream", "inflation"],
            &rows,
        )
    );
    bench::write_json("ablation_naive", &json);
}
