//! Ablation: PR vs non-PR system designs — the paper's framing claim
//! ("inappropriate decisions can result in ... PR system performance that
//! is worse than a non-PR system") and its converse, quantified.
//!
//! Three designs run the same workloads on the Virtex-5 LX110T:
//!
//! * **static** — all modules resident side by side (no reconfiguration;
//!   only exists if they fit the device together);
//! * **full-reconfig** — one module at a time, full-bitstream swaps,
//!   device halted during configuration;
//! * **PR** — 4 model-planned PRRs sharing one ICAP (partial bitstreams).
//!
//! Sweeping the module population shows the crossovers: static wins when
//! everything fits; PR wins once it does not; full reconfiguration loses
//! by the full/partial bitstream ratio; and a deliberately oversized PR
//! system gives back much of PR's advantage.

use bitstream::IcapModel;
use fabric::{device_by_name, Family, Resources};
use multitask::{
    simulate, simulate_full_reconfig, simulate_static, HwTask, PrSystem, ReuseAware, Workload,
};
use prcost::PrrOrganization;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    modules: u32,
    static_ms: Option<f64>,
    full_reconfig_ms: f64,
    pr_ms: f64,
    pr_oversized_ms: f64,
}

fn org(h: u32) -> PrrOrganization {
    PrrOrganization {
        family: Family::Virtex5,
        height: h,
        clb_cols: 8,
        dsp_cols: 1,
        bram_cols: 1,
    }
}

fn main() {
    let device = device_by_name("xc5vsx95t").unwrap();
    let full_bytes = prcost::full_bitstream_size_bytes(&device);
    let pr_sys = PrSystem::homogeneous(&device, org(1), 4, IcapModel::V5_DMA).unwrap();
    let pr_big = PrSystem::homogeneous(&device, org(4), 4, IcapModel::V5_DMA).unwrap();
    println!(
        "device {}: full bitstream {full_bytes} B ({:?}); PRR bitstream {} B ({:?})\n",
        device.name(),
        IcapModel::V5_DMA.transfer_time(full_bytes),
        pr_sys.prrs[0].bitstream_bytes,
        IcapModel::V5_DMA.transfer_time(pr_sys.prrs[0].bitstream_bytes),
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for modules in [2u32, 4, 8, 16, 48, 96] {
        // 240 tasks round-robin over `modules` distinct modules; every
        // module needs 120 CLBs + 4 DSPs + 2 BRAMs (fits the PRR exactly;
        // statically, >61 such modules exceed the device's 7360 CLBs).
        let tasks: Vec<HwTask> = (0..240u32)
            .map(|i| HwTask {
                id: i,
                module: format!("mod{:02}", i % modules),
                needs: Resources::new(120, 4, 2),
                arrival_ns: u64::from(i) * 20_000,
                exec_ns: 300_000,
                deadline_ns: None,
            })
            .collect();
        let wl = Workload::new(tasks);
        let stat = simulate_static(&device, &wl);
        let full = simulate_full_reconfig(&device, &wl, &IcapModel::V5_DMA);
        let pr = simulate(&pr_sys, &wl, &ReuseAware);
        let pr_over = simulate(&pr_big, &wl, &ReuseAware);
        let ms = |ns: u64| ns as f64 / 1e6;
        rows.push(vec![
            modules.to_string(),
            wl.tasks.len().to_string(),
            stat.as_ref()
                .map(|r| format!("{:.2}", ms(r.makespan_ns)))
                .unwrap_or_else(|| "does not fit".into()),
            format!("{:.2}", ms(full.makespan_ns)),
            format!("{:.2}", ms(pr.makespan_ns)),
            format!("{:.2}", ms(pr_over.makespan_ns)),
        ]);
        json.push(Row {
            modules,
            static_ms: stat.as_ref().map(|r| ms(r.makespan_ns)),
            full_reconfig_ms: ms(full.makespan_ns),
            pr_ms: ms(pr.makespan_ns),
            pr_oversized_ms: ms(pr_over.makespan_ns),
        });
    }
    print!(
        "{}",
        bench::render_table(
            "PR vs non-PR makespan (ms), 240-task workloads on xc5vsx95t",
            &[
                "modules",
                "tasks",
                "static",
                "full-reconfig",
                "PR (model PRRs)",
                "PR (4x oversized)"
            ],
            &rows,
        )
    );
    println!(
        "\nExpected shape: static wins while all modules fit the fabric and vanishes after; \
         PR beats full reconfiguration by roughly the full/partial bitstream ratio; \
         oversizing the PRRs surrenders much of that margin — the paper's motivating trade."
    );
    bench::write_json("ablation_pr_vs_nonpr", &json);
}
