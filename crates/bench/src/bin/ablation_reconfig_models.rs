//! Ablation: prior-work reconfiguration-time models (related-work §II)
//! evaluated on the six paper bitstreams.
//!
//! Shows the coverage gap the paper identifies: each prior model answers
//! "how long does a transfer of N bytes take" for one transport, but none
//! predicts N itself — which is exactly what the paper's Eq. 18 adds.

use baselines::claus::{ClausModel, SupplyPath};
use baselines::duhem::FarmModel;
use baselines::papadimitriou::{PapadimitriouModel, StorageMedium};
use prcost::search::plan_prr;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prm: String,
    device: String,
    bytes: u64,
    papadimitriou_cf_us: f64,
    papadimitriou_ddr_us: f64,
    claus_cpu_us: f64,
    claus_dma_us: f64,
    farm_us: f64,
    ideal_icap_us: f64,
}

fn main() {
    let cf = PapadimitriouModel::new(StorageMedium::CompactFlash, false);
    let ddr = PapadimitriouModel::new(StorageMedium::DdrSdram, true);
    let cpu = ClausModel::new(SupplyPath::CpuCopy);
    let dma = ClausModel::new(SupplyPath::BusMasterDma);
    let farm = FarmModel::typical();
    let ideal = bitstream::IcapModel::V5_DMA;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (prm, device) in bench::evaluation_matrix() {
        let plan = plan_prr(&prm.synth_report(device.family()), &device).unwrap();
        let b = plan.bitstream_bytes;
        let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
        rows.push(vec![
            format!("{prm:?}/{}", device.family()),
            b.to_string(),
            format!("{:.0}", us(cf.estimate(b))),
            format!("{:.1}", us(ddr.estimate(b))),
            format!("{:.1}", us(cpu.estimate(b))),
            format!("{:.1}", us(dma.estimate(b))),
            format!("{:.1}", us(farm.estimate(b))),
            format!("{:.1}", us(ideal.transfer_time(b))),
        ]);
        json.push(Row {
            prm: format!("{prm:?}"),
            device: device.name().into(),
            bytes: b,
            papadimitriou_cf_us: us(cf.estimate(b)),
            papadimitriou_ddr_us: us(ddr.estimate(b)),
            claus_cpu_us: us(cpu.estimate(b)),
            claus_dma_us: us(dma.estimate(b)),
            farm_us: us(farm.estimate(b)),
            ideal_icap_us: us(ideal.transfer_time(b)),
        });
    }
    print!(
        "{}",
        bench::render_table(
            "Reconfiguration-time estimates (us) for the model-predicted bitstreams",
            &[
                "PRM/family",
                "bytes",
                "Papad./CF",
                "Papad./DDR",
                "Claus/CPU",
                "Claus/DMA",
                "FaRM",
                "ideal ICAP"
            ],
            &rows,
        )
    );
    println!(
        "\nAll prior models consume the bitstream size as an input; only the paper's Eq. 18 \
         (column 'bytes') predicts it without running the design flow."
    );
    bench::write_json("ablation_reconfig_models", &json);
}
