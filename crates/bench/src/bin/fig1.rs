//! Regenerate Fig. 1: the flow that derives a PRR size/organization from
//! the synthesis report, shown as the candidate-by-candidate search trace
//! for FIR on the Virtex-5 LX110T (the most interesting case: Eq. 4 rules
//! out H=1..3, H=4 and up are feasible, H=5 minimizes the bitstream).

use fabric::database::xc5vlx110t;
use prcost::search::{plan_prr, CandidateOutcome};
use synth::PaperPrm;

fn main() {
    let device = xc5vlx110t();
    let report = PaperPrm::Fir.synth_report(device.family());
    let plan = plan_prr(&report, &device).unwrap();

    println!(
        "Fig. 1 — PRR search flow for {} on {}",
        report.module,
        device.name()
    );
    println!(
        "inputs: LUT_FF_req={} DSP_req={} BRAM_req={} -> CLB_req={}",
        report.lut_ff_pairs, report.dsps, report.brams, plan.requirements.clb_req
    );
    println!(
        "device: R={} rows, {} DSP column(s) (Eq. 4 applies: {})\n",
        device.rows(),
        device.dsp_column_count(),
        device.dsp_column_count() == 1
    );

    let mut rows = Vec::new();
    for c in &plan.trace.candidates {
        let (org, window, bytes, verdict) = match &c.outcome {
            CandidateOutcome::Feasible {
                organization,
                window,
                bitstream_bytes,
                ..
            } => (
                format!(
                    "W_CLB={} W_DSP={} W_BRAM={}",
                    organization.clb_cols, organization.dsp_cols, organization.bram_cols
                ),
                format!("col {}..{}", window.start_col, window.end_col() - 1),
                bitstream_bytes.to_string(),
                if c.height == plan.organization.height {
                    "SELECTED".to_string()
                } else {
                    "feasible".to_string()
                },
            ),
            CandidateOutcome::DspRowsInsufficient { min_height } => (
                "-".into(),
                "-".into(),
                "-".into(),
                format!("infeasible: H_DSP needs H>={min_height}"),
            ),
            CandidateOutcome::NoWindow { organization } => (
                format!(
                    "W_CLB={} W_DSP={} W_BRAM={}",
                    organization.clb_cols, organization.dsp_cols, organization.bram_cols
                ),
                "-".into(),
                "-".into(),
                "infeasible: no contiguous window".to_string(),
            ),
        };
        rows.push(vec![c.height.to_string(), org, window, bytes, verdict]);
    }
    print!(
        "{}",
        bench::render_table(
            "search trace (one row per candidate H)",
            &[
                "H",
                "organization (Eqs. 2-6)",
                "placement",
                "S_bitstream (Eq. 18)",
                "verdict"
            ],
            &rows,
        )
    );
    println!(
        "\nselected: H={} W={} PRR_size={} S_bitstream={} bytes",
        plan.organization.height,
        plan.organization.width(),
        plan.organization.prr_size(),
        plan.bitstream_bytes
    );
    bench::write_json("fig1", &plan.trace);
}
