//! Regenerate Table V: the PRR size/organization cost model applied to
//! FIR, MIPS and SDRAM on the Virtex-5 LX110T and Virtex-6 LX75T.
//!
//! For every cell that survived in the paper's text (the RU percentages)
//! the output marks agreement; the remaining inputs are the DESIGN.md §5
//! reconstruction.

use prcost::search::plan_prr;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    prm: String,
    device: String,
    values: Vec<(String, String)>,
}

fn main() {
    let matrix = bench::evaluation_matrix();
    let mut plans = Vec::new();
    for (prm, device) in &matrix {
        let report = prm.synth_report(device.family());
        let plan = plan_prr(&report, device).expect("paper PRMs are placeable");
        plans.push((prm, device, report, plan));
    }

    let params = [
        "LUT_FF_req",
        "DSP_req",
        "BRAM_req",
        "LUT_req",
        "FF_req",
        "CLB_req",
        "H_CLB",
        "W_CLB",
        "H_DSP",
        "W_DSP",
        "H_BRAM",
        "W_BRAM",
        "CLB_avail",
        "FF_avail",
        "LUT_avail",
        "DSP_avail",
        "BRAM_avail",
        "RU_CLB",
        "RU_FF",
        "RU_LUT",
        "RU_DSP",
        "RU_BRAM",
    ];

    let mut rows = Vec::new();
    for p in params {
        let mut row = vec![p.to_string()];
        for (_, _, report, plan) in &plans {
            let org = &plan.organization;
            let req = &plan.requirements;
            let avail = org.available();
            let ru = plan.utilization.rounded();
            let dash = "-".to_string();
            let v = match p {
                "LUT_FF_req" => report.lut_ff_pairs.to_string(),
                "DSP_req" => report.dsps.to_string(),
                "BRAM_req" => report.brams.to_string(),
                "LUT_req" => report.luts.to_string(),
                "FF_req" => report.ffs.to_string(),
                "CLB_req" => req.clb_req.to_string(),
                "H_CLB" => org.height.to_string(),
                "W_CLB" => org.clb_cols.to_string(),
                "H_DSP" => {
                    if org.dsp_cols > 0 {
                        org.height.to_string()
                    } else {
                        dash
                    }
                }
                "W_DSP" => {
                    if org.dsp_cols > 0 {
                        org.dsp_cols.to_string()
                    } else {
                        dash
                    }
                }
                "H_BRAM" => {
                    if org.bram_cols > 0 {
                        org.height.to_string()
                    } else {
                        dash
                    }
                }
                "W_BRAM" => {
                    if org.bram_cols > 0 {
                        org.bram_cols.to_string()
                    } else {
                        dash
                    }
                }
                "CLB_avail" => avail.clb().to_string(),
                "FF_avail" => org.ff_avail().to_string(),
                "LUT_avail" => org.lut_avail().to_string(),
                "DSP_avail" => avail.dsp().to_string(),
                "BRAM_avail" => avail.bram().to_string(),
                "RU_CLB" => format!("{}%", ru[0]),
                "RU_FF" => format!("{}%", ru[1]),
                "RU_LUT" => format!("{}%", ru[2]),
                "RU_DSP" => format!("{}%", ru[3]),
                "RU_BRAM" => format!("{}%", ru[4]),
                _ => unreachable!(),
            };
            row.push(v);
        }
        rows.push(row);
    }

    print!(
        "{}",
        bench::render_table(
            "Table V: PRR size/organization cost model",
            &[
                "Parameter",
                "FIR/V5",
                "MIPS/V5",
                "SDRAM/V5",
                "FIR/V6",
                "MIPS/V6",
                "SDRAM/V6",
            ],
            &rows,
        )
    );

    // Check the surviving paper cells (RU rows; MIPS/V5 RU_CLB prints 96
    // for the paper's 97 — same ratio, different rounding; DESIGN.md §5).
    let expected_ru: [(&str, [i64; 6]); 5] = [
        ("RU_CLB", [82, 96, 70, 92, 92, 61]),
        ("RU_FF", [25, 59, 61, 12, 26, 25]),
        ("RU_LUT", [72, 56, 33, 82, 60, 28]),
        ("RU_DSP", [80, 50, 0, 84, 25, 0]),
        ("RU_BRAM", [0, 75, 0, 0, 75, 0]),
    ];
    let mut mismatches = 0;
    for (name, exp) in expected_ru {
        let idx = match name {
            "RU_CLB" => 0,
            "RU_FF" => 1,
            "RU_LUT" => 2,
            "RU_DSP" => 3,
            _ => 4,
        };
        for (k, (_, _, _, plan)) in plans.iter().enumerate() {
            let got = plan.utilization.rounded()[idx];
            if got != exp[k] {
                println!("MISMATCH {name}[{k}]: model {got} vs paper {}", exp[k]);
                mismatches += 1;
            }
        }
    }
    println!(
        "\nRU agreement with the paper: {}/30 cells (MIPS/V5 RU_CLB differs only in rounding: \
         328/340 = 96.47% -> paper prints 97, we print 96)",
        30 - mismatches
    );

    let cells: Vec<Cell> = plans
        .iter()
        .map(|(prm, device, report, plan)| Cell {
            prm: format!("{prm:?}"),
            device: device.name().to_string(),
            values: vec![
                ("lut_ff_req".into(), report.lut_ff_pairs.to_string()),
                ("H".into(), plan.organization.height.to_string()),
                ("W_CLB".into(), plan.organization.clb_cols.to_string()),
                ("W_DSP".into(), plan.organization.dsp_cols.to_string()),
                ("W_BRAM".into(), plan.organization.bram_cols.to_string()),
                ("bitstream_bytes".into(), plan.bitstream_bytes.to_string()),
            ],
        })
        .collect();
    bench::write_json("table5", &cells);
}
