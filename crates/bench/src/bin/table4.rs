//! Regenerate Table IV: bitstream-size model constants per family.

use fabric::Family;

fn main() {
    let mut rows = Vec::new();
    for param in [
        "CF_CLB",
        "CF_DSP",
        "CF_BRAM",
        "DF_BRAM",
        "FR_size",
        "IW",
        "FW",
        "FAR_FDRI",
        "Bytes_word",
    ] {
        let mut row = vec![param.to_string()];
        for fam in [
            Family::Virtex4,
            Family::Virtex5,
            Family::Virtex6,
            Family::Series7,
        ] {
            let g = &fam.params().frames;
            let v = match param {
                "CF_CLB" => g.cf_clb,
                "CF_DSP" => g.cf_dsp,
                "CF_BRAM" => g.cf_bram,
                "DF_BRAM" => g.df_bram,
                "FR_size" => g.fr_size,
                "IW" => g.iw,
                "FW" => g.fw,
                "FAR_FDRI" => g.far_fdri,
                "Bytes_word" => g.bytes_word,
                _ => unreachable!(),
            };
            row.push(v.to_string());
        }
        rows.push(row);
    }
    print!(
        "{}",
        bench::render_table(
            "Table IV: bitstream-size model constants (7-series is our extension)",
            &["Parameter", "Virtex-4", "Virtex-5", "Virtex-6", "7-series"],
            &rows,
        )
    );
    bench::write_json("table4", &rows);
}
