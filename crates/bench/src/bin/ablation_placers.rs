//! Ablation: simulated-annealing vs analytic (force-directed) placement —
//! wirelength/runtime trade of the two implementation engines behind
//! Tables VI/VIII.

use fabric::grid::SiteGrid;
use parflow::analytic::place_analytic;
use parflow::place::{place, PlacerConfig};
use parflow::timing::analyze;
use serde::Serialize;
use std::time::Instant;
use synth::PaperPrm;

#[derive(Serialize)]
struct Row {
    prm: String,
    cells: usize,
    sa_hpwl: u64,
    sa_ms: f64,
    sa_fmax_mhz: f64,
    analytic_hpwl: u64,
    analytic_ms: f64,
    analytic_fmax_mhz: f64,
}

fn main() {
    let device = fabric::database::xc5vlx110t();
    let grid = SiteGrid::new(&device);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for prm in PaperPrm::ALL {
        let report = prm.synth_report(device.family());
        let plan = prcost::plan_prr(&report, &device).unwrap();
        let nl = prm.netlist(device.family(), 7);

        let t = Instant::now();
        let sa = place(&nl, &grid, &plan.window, &PlacerConfig::default()).unwrap();
        let sa_ms = t.elapsed().as_secs_f64() * 1e3;
        let sa_t = analyze(&nl, &grid, &plan.window, &sa);

        let t = Instant::now();
        let an = place_analytic(&nl, &grid, &plan.window, 7).unwrap();
        let an_ms = t.elapsed().as_secs_f64() * 1e3;
        let an_t = analyze(&nl, &grid, &plan.window, &an);

        rows.push(vec![
            format!("{prm:?}"),
            nl.cells.len().to_string(),
            sa.hpwl.to_string(),
            format!("{sa_ms:.2}"),
            format!("{:.1}", sa_t.max_frequency_mhz),
            an.hpwl.to_string(),
            format!("{an_ms:.2}"),
            format!("{:.1}", an_t.max_frequency_mhz),
        ]);
        json.push(Row {
            prm: format!("{prm:?}"),
            cells: nl.cells.len(),
            sa_hpwl: sa.hpwl,
            sa_ms,
            sa_fmax_mhz: sa_t.max_frequency_mhz,
            analytic_hpwl: an.hpwl,
            analytic_ms: an_ms,
            analytic_fmax_mhz: an_t.max_frequency_mhz,
        });
    }
    print!(
        "{}",
        bench::render_table(
            "Placer comparison inside the model-predicted PRRs (Virtex-5 LX110T)",
            &[
                "PRM",
                "cells",
                "SA HPWL",
                "SA ms",
                "SA fmax",
                "analytic HPWL",
                "analytic ms",
                "analytic fmax"
            ],
            &rows,
        )
    );
    println!("\nAnalytic placement trades wirelength for an order-of-magnitude runtime win.");
    bench::write_json("ablation_placers", &json);
}
