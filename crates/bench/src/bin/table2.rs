//! Regenerate Table II: fabric constants per device family.

use fabric::Family;

fn main() {
    let mut rows = Vec::new();
    for param in ["CLB_col", "DSP_col", "BRAM_col", "LUT_CLB", "FF_CLB"] {
        let mut row = vec![param.to_string()];
        for fam in [
            Family::Virtex4,
            Family::Virtex5,
            Family::Virtex6,
            Family::Series7,
        ] {
            let p = fam.params();
            let v = match param {
                "CLB_col" => p.clb_col,
                "DSP_col" => p.dsp_col,
                "BRAM_col" => p.bram_col,
                "LUT_CLB" => p.lut_clb,
                "FF_CLB" => p.ff_clb,
                _ => unreachable!(),
            };
            row.push(v.to_string());
        }
        rows.push(row);
    }
    print!(
        "{}",
        bench::render_table(
            "Table II: family fabric constants (7-series is our extension)",
            &["Parameter", "Virtex-4", "Virtex-5", "Virtex-6", "7-series"],
            &rows,
        )
    );
    bench::write_json("table2", &rows);
}
