//! Regenerate Table VIII: design-flow wall times vs cost-model time.
//!
//! The paper reports ISE synthesis (~4-5 min) and implementation
//! (~3-6 min) times per PRM, versus "less than 5 minutes" total for the
//! model-based approach (dominated by synthesis; the formula evaluation
//! itself is negligible). On our simulated substrate absolute times are
//! milliseconds, but the *shape* — model evaluation orders of magnitude
//! below the implementation flow — is the reproduced claim.

use parflow::flow::{run_paper_flow, FlowOptions};
use parflow::place::PlacerConfig;
use prcost::timing::time_model;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    prm: String,
    device: String,
    synthesis_us: u128,
    implementation_us: u128,
    model_eval_us: f64,
    speedup_vs_implementation: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (prm, device) in bench::evaluation_matrix() {
        // Full-effort flow (this is the thing the model replaces).
        let opts = FlowOptions {
            seed: 7,
            placer: PlacerConfig::default(),
            optimize: None,
        };
        let (rep, _) = run_paper_flow(prm, &device, &opts).expect("flow succeeds");
        let synth_t = rep.stage_times[0].1;
        let impl_t = rep.implementation_time();

        // Cost model: average over many evaluations for a stable number.
        let report = prm.synth_report(device.family());
        let (_, timing) = time_model(&report, &device, 200).unwrap();
        let model_us = timing.per_evaluation().as_secs_f64() * 1e6;

        let speedup = impl_t.as_secs_f64() / (model_us / 1e6);
        rows.push(vec![
            format!("{prm:?}/{}", device.family()),
            format!("{:.1} ms", synth_t.as_secs_f64() * 1e3),
            format!("{:.1} ms", impl_t.as_secs_f64() * 1e3),
            format!("{model_us:.1} us"),
            format!("{speedup:.0}x"),
        ]);
        json.push(Row {
            prm: format!("{prm:?}"),
            device: device.name().to_string(),
            synthesis_us: synth_t.as_micros(),
            implementation_us: impl_t.as_micros(),
            model_eval_us: model_us,
            speedup_vs_implementation: speedup,
        });
    }
    print!(
        "{}",
        bench::render_table(
            "Table VIII: flow wall times vs cost-model evaluation (simulated substrate)",
            &[
                "PRM/family",
                "Synthesis",
                "Implementation",
                "Model eval",
                "Model speedup"
            ],
            &rows,
        )
    );
    println!(
        "\nPaper (real ISE 12.4): synthesis 3m20s-4m50s, implementation 2m55s-5m50s per PRM; \
         the model replaces implementation entirely. Shape reproduced: the model is orders of \
         magnitude faster than the (simulated) implementation flow."
    );
    bench::write_json("table8", &json);
}
