//! Ablation: PRR sizing and scheduling impact on hardware-multitasking
//! performance — the paper's motivating claim ("oversized PRRs impose
//! longer ... reconfiguration time ... and thus potentially worse
//! performance than a non-PR system") made quantitative.
//!
//! A fixed task workload runs on (a) right-sized PRRs, (b) progressively
//! oversized PRRs, and (c) different schedulers, reporting makespan, ICAP
//! busy time and reuse rates.

use bitstream::IcapModel;
use fabric::{device_by_name, Family};
use multitask::{simulate, BestFit, FirstFit, PrSystem, ReuseAware, Scheduler, Workload};
use prcost::PrrOrganization;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    label: String,
    scheduler: String,
    makespan_ms: f64,
    icap_busy_ms: f64,
    reconfigs: u32,
    reuse_hits: u32,
    mean_wait_us: f64,
}

fn org(h: u32, clb: u32, dsp: u32, bram: u32) -> PrrOrganization {
    PrrOrganization {
        family: Family::Virtex5,
        height: h,
        clb_cols: clb,
        dsp_cols: dsp,
        bram_cols: bram,
    }
}

fn main() {
    let device = device_by_name("xc5vsx95t").unwrap();
    let sizes = [
        ("right-sized (H=1, 6C+1D+1B)", org(1, 6, 1, 1)),
        ("2x oversized (H=2, 6C+1D+1B)", org(2, 6, 1, 1)),
        ("4x oversized (H=4, 6C+1D+1B)", org(4, 6, 1, 1)),
        ("8x oversized (H=8, 6C+1D+1B)", org(8, 6, 1, 1)),
    ];
    let schedulers: [&dyn Scheduler; 3] = [&FirstFit, &BestFit, &ReuseAware];

    let base = PrSystem::homogeneous(&device, sizes[0].1, 4, IcapModel::V5_DMA).unwrap();
    // Execution-bound enough that several PRRs are often free at once
    // (so scheduler choice matters), yet with enough reconfiguration
    // traffic that PRR oversizing visibly hurts.
    let workload = base.filter_workload(&Workload::generate(
        2026,
        Family::Virtex5,
        400,
        6,
        300,
        180_000,
        600_000,
    ));
    println!(
        "workload: {} servable tasks, {} distinct modules\n",
        workload.tasks.len(),
        workload.module_count()
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, organization) in sizes {
        let Ok(sys) = PrSystem::homogeneous(&device, organization, 4, IcapModel::V5_DMA) else {
            rows.push(vec![
                label.into(),
                "-".into(),
                "does not fit 4x".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            continue;
        };
        for sched in schedulers {
            let r = simulate(&sys, &workload, sched);
            rows.push(vec![
                label.into(),
                r.scheduler.into(),
                format!("{:.3}", r.makespan_ns as f64 / 1e6),
                format!("{:.3}", r.icap_busy_ns as f64 / 1e6),
                r.reconfigurations.to_string(),
                r.reuse_hits.to_string(),
                format!("{:.1}", r.mean_wait_ns() as f64 / 1e3),
            ]);
            json.push(Row {
                label: label.into(),
                scheduler: r.scheduler.into(),
                makespan_ms: r.makespan_ns as f64 / 1e6,
                icap_busy_ms: r.icap_busy_ns as f64 / 1e6,
                reconfigs: r.reconfigurations,
                reuse_hits: r.reuse_hits,
                mean_wait_us: r.mean_wait_ns() as f64 / 1e3,
            });
        }
    }
    print!(
        "{}",
        bench::render_table(
            "Multitasking: PRR sizing x scheduler (4 PRRs, V5 ICAP/DMA)",
            &[
                "PRR sizing",
                "scheduler",
                "makespan ms",
                "ICAP busy ms",
                "reconfigs",
                "reuse",
                "mean wait us"
            ],
            &rows,
        )
    );
    println!(
        "\nExpected shape: makespan and ICAP busy time grow with PRR oversizing \
         (bitstream scales with PRR area); reuse-aware scheduling recovers part of the loss."
    );
    bench::write_json("ablation_multitask", &json);
}
