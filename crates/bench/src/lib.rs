//! # `bench` — experiment harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p bench --bin <name>`):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table2` | Table II — family fabric constants |
//! | `table4` | Table IV — bitstream-model constants |
//! | `table5` | Table V — PRR size/organization model results |
//! | `table6` | Table VI — post-PAR counts and savings vs Table V |
//! | `table7` | Table VII — partial bitstream sizes (model vs generator) |
//! | `table8` | Table VIII — flow wall times vs cost-model time |
//! | `fig1` | Fig. 1 — the PRR search flow trace |
//! | `fig2` | Fig. 2 — partial bitstream structure dump |
//! | `ablation_height` | bitstream size vs PRR height sweep |
//! | `ablation_naive` | naive sizing strategies vs the model plan |
//! | `ablation_multitask` | PRR sizing impact on multitasking makespan |
//! | `ablation_reconfig_models` | prior-work reconfiguration-time models |
//! | `ablation_pr_vs_nonpr` | PR vs static vs full-reconfiguration designs |
//! | `ablation_preemption` | context-switch cost vs PRR sizing |
//! | `ablation_placers` | SA vs analytic placement trade |
//!
//! Each binary prints a formatted table and writes a JSON artifact into
//! `results/` for `EXPERIMENTS.md`. Criterion microbenches live in
//! `benches/`.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Render an ASCII table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{c:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Directory experiment artifacts are written to (`results/` at the
/// workspace root, overridable with `PRFPGA_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("PRFPGA_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // The workspace root is two levels above this crate's manifest.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Serialize `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: cannot create {}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// The paper's evaluation matrix: the three PRMs on the two devices.
pub fn evaluation_matrix() -> Vec<(synth::PaperPrm, fabric::Device)> {
    let v5 = fabric::database::xc5vlx110t();
    let v6 = fabric::database::xc6vlx75t();
    let mut out = Vec::new();
    for device in [v5, v6] {
        for prm in synth::PaperPrm::ALL {
            out.push((prm, device.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render_table(
            "T",
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long_header"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn evaluation_matrix_is_3x2() {
        let m = evaluation_matrix();
        assert_eq!(m.len(), 6);
    }
}
