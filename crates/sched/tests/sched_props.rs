//! Property tests for the scheduling subsystem: the UUniFast sampler's
//! simplex invariant, generator determinism, and frozen-policy replay
//! stability (byte-identical across runs and across batch thread
//! counts).

use bitstream::IcapModel;
use fabric::{device_by_name, Family};
use multitask::{simulate, simulate_batch, PrSystem, Scenario};
use prcost::PrrOrganization;
use proptest::prelude::*;
use sched::{FrozenPolicy, LinearQ, TaskSet, TaskSetConfig, TrainConfig, FEATURES};

fn system(prrs: u32) -> PrSystem {
    let device = device_by_name("xc5vsx95t").unwrap();
    let org = PrrOrganization {
        family: Family::Virtex5,
        height: 1,
        clb_cols: 6,
        dsp_cols: 1,
        bram_cols: 1,
    };
    PrSystem::homogeneous(&device, org, prrs, IcapModel::V5_DMA).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// UUniFast invariant: for any (n, target) the sampled utilizations
    /// sum to the (capped) target with every task inside [0, 1].
    #[test]
    fn uunifast_total_utilization_invariant(
        seed in 0u64..1_000_000,
        n in 1u32..16,
        total in 0.1f64..8.0,
    ) {
        let cfg = TaskSetConfig {
            n,
            total_utilization: total,
            ..TaskSetConfig::default()
        };
        let ts = TaskSet::uunifast(seed, Family::Virtex5, &cfg);
        prop_assert_eq!(ts.tasks.len(), n as usize);
        let expected = total.min(f64::from(n));
        // wcet = u × period is rounded per task: tolerance covers the
        // worst-case rounding of n tasks with the shortest period.
        let tol = f64::from(n) / cfg.min_period_ns as f64 + 1e-9;
        prop_assert!(
            (ts.total_utilization() - expected).abs() <= tol,
            "n={} target={} realized={}",
            n,
            total,
            ts.total_utilization()
        );
        for t in &ts.tasks {
            prop_assert!(t.utilization() <= 1.0 + tol);
            prop_assert!(t.wcet_ns >= 1);
            prop_assert!(t.deadline_ns <= t.period_ns);
            prop_assert!(t.deadline_ns >= t.wcet_ns);
        }
    }

    /// Task-set and job-release generation are pure functions of their
    /// seeds.
    #[test]
    fn generators_are_deterministic_in_seed(
        seed in 0u64..1_000_000,
        release_seed in 0u64..1_000_000,
        n in 1u32..10,
    ) {
        let cfg = TaskSetConfig {
            n,
            total_utilization: 1.5,
            ..TaskSetConfig::default()
        };
        let a = TaskSet::uunifast(seed, Family::Virtex5, &cfg);
        let b = TaskSet::uunifast(seed, Family::Virtex5, &cfg);
        prop_assert_eq!(&a, &b);
        let wa = a.release_jobs(release_seed, 10_000_000);
        let wb = b.release_jobs(release_seed, 10_000_000);
        prop_assert_eq!(wa, wb);
    }

    /// A frozen policy is a pure function of its weights: replaying the
    /// same workload yields byte-identical reports, sequentially and
    /// through the batch runner at any thread count.
    #[test]
    fn frozen_policy_replay_is_stable(
        seed in 0u64..100_000,
        weights in proptest::collection::vec(-10.0f64..10.0, FEATURES..FEATURES + 1),
        prrs in 2u32..5,
    ) {
        let system = system(prrs);
        let cfg = TaskSetConfig {
            n: 6,
            total_utilization: 2.0,
            ..TaskSetConfig::default()
        };
        let workload = system.filter_workload(
            &TaskSet::uunifast(seed, Family::Virtex5, &cfg).release_jobs(seed ^ 0xabcd, 8_000_000),
        );
        let policy = FrozenPolicy::from_weights(weights.clone().try_into().unwrap());
        let direct = simulate(&system, &workload, &policy);
        prop_assert_eq!(&direct, &policy.replay(&system, &workload));
        let scenarios = vec![
            Scenario {
                system: &system,
                workload: &workload,
                scheduler: &policy,
            },
            Scenario {
                system: &system,
                workload: &workload,
                scheduler: &policy,
            },
        ];
        let reports = simulate_batch(&scenarios);
        for r in &reports {
            prop_assert_eq!(&direct, r);
        }
    }
}

/// Trained policies are deterministic end to end: same seed → same
/// weights → same frozen replays (a plain test; training is too slow
/// for a proptest case budget).
#[test]
fn training_pipeline_is_deterministic() {
    let system = system(3);
    let cfg = TaskSetConfig {
        n: 6,
        total_utilization: 2.0,
        ..TaskSetConfig::default()
    };
    let workload = system
        .filter_workload(&TaskSet::uunifast(11, Family::Virtex5, &cfg).release_jobs(13, 8_000_000));
    let train = |seed: u64| {
        let mut q = LinearQ::new();
        q.train(
            &system,
            std::slice::from_ref(&workload),
            &TrainConfig {
                episodes: 3,
                seed,
                ..TrainConfig::default()
            },
        );
        q.freeze()
    };
    let a = train(5);
    let b = train(5);
    assert_eq!(a.weights(), b.weights());
    assert_eq!(a.replay(&system, &workload), b.replay(&system, &workload));
}
