//! # `sched` — real-time scheduling on PRR pools
//!
//! The paper's cost models price a PRR: its organization fixes the
//! partial bitstream size, hence the reconfiguration time every module
//! swap pays through the shared ICAP. This crate closes the loop for
//! *real-time* hardware multitasking — where those reconfiguration
//! costs decide whether deadlines hold — in three layers on top of the
//! `multitask` discrete-event simulator:
//!
//! * [`taskset`] — periodic task sets with releases, relative deadlines
//!   and release jitter. Utilizations are sampled with
//!   UUniFast(-Discard), per-job execution times vary under a truncated
//!   Weibull, and [`TaskSet::release_jobs`] expands a set into a
//!   deadline-carrying [`multitask::Workload`] the simulator runs
//!   unchanged. All generators are deterministic in their seed via the
//!   shared [`prcost::rng::Rng`].
//! * [`admission`] — classical schedulability tests adapted to PRR
//!   pools: a partitioned Liu–Layland utilization bound and a
//!   response-time analysis, both inflating every job's cost with the
//!   worst-case reconfiguration time derived from
//!   [`bitstream::IcapModel::transfer_time`].
//! * [`learned`] — a self-contained learned placement policy: linear
//!   Q-learning over dispatch features (reuse hits, slot
//!   reconfiguration cost, ICAP backlog, queue depth, deadline slack)
//!   with a `train` / `freeze` / `replay` API. A [`FrozenPolicy`] is a
//!   stateless [`multitask::Scheduler`] — deterministic argmax, safe to
//!   share across [`multitask::simulate_batch`] workers.
//!
//! [`ablate`] ties the layers into one harness
//! ([`run_ablation`]) producing the `BENCH_sched.json` artifact:
//! every scheduler × workload class × defragmentation policy, with
//! admissions, deadline-miss ratios and ICAP utilization per cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod admission;
pub mod learned;
pub mod taskset;

pub use ablate::{run_ablation, AblationConfig, AblationReport};
pub use admission::{
    response_time_admit, utilization_bound_admit, worst_reconfig_ns, AdmissionOutcome,
};
pub use learned::{FrozenPolicy, LinearQ, TrainConfig, FEATURES};
pub use taskset::{PeriodicTask, TaskSet, TaskSetConfig};
