//! A learned PRR-placement policy: linear Q-learning, no external ML.
//!
//! The action space at each dispatch is "which free, fitting PRR gets
//! this task"; the value of each action is approximated as `w · φ`
//! over a fixed feature vector ([`FEATURES`] dims) computed from the
//! [`SchedContext`] and per-slot state — reuse hit, slot
//! reconfiguration cost, ICAP backlog, internal fragmentation, queue
//! depth, deadline slack. Training runs ε-greedy episodes through the
//! real `multitask` simulator (an exploring [`Scheduler`] records
//! transitions behind a `Mutex`, keeping the trait's `&self`
//! signature), then replays them with one-step Q-learning updates.
//! Everything is deterministic in the training seed.
//!
//! The product of training is a [`FrozenPolicy`]: a stateless weight
//! vector whose `choose` is a pure argmax (ties to the lowest slot
//! index). Frozen policies are safe to share across
//! [`multitask::simulate_batch`] workers and replay byte-identically.

use multitask::{ModuleId, PrSystem, PrrState, SchedContext, Scheduler, SimReport, Workload};
use prcost::rng::Rng;
use serde::Serialize;
use std::sync::Mutex;

/// Dimensionality of the dispatch feature vector.
pub const FEATURES: usize = 8;

/// Feature vector for placing the dispatching task on slot `i`.
///
/// All components are bounded (roughly `[-1, 1]`-scaled) so fixed
/// learning rates stay stable across devices and workloads.
fn phi(
    ctx: &SchedContext<'_>,
    i: usize,
    needs: &fabric::Resources,
    module: ModuleId,
    avail: &[fabric::Resources],
    states: &[PrrState],
) -> [f64; FEATURES] {
    let ms = 1e6;
    let reuse = states[i].loaded_module == Some(module);
    let spare = avail[i].saturating_sub(needs);
    let spare_cost = (spare.clb() + spare.dsp() * 3 + spare.bram() * 5) as f64;
    let total = (avail[i].clb() + avail[i].dsp() * 3 + avail[i].bram() * 5).max(1) as f64;
    let slack = ctx.deadline_ns.map_or(0.0, |d| {
        ((d.saturating_sub(ctx.now).saturating_sub(ctx.exec_ns)) as f64 / ms).min(10.0)
    });
    [
        1.0,
        if reuse { 1.0 } else { 0.0 },
        spare_cost / total,
        (ctx.reconfig_ns[i] as f64 / ms).min(10.0),
        (ctx.icap_free_at.saturating_sub(ctx.now) as f64 / ms).min(10.0),
        (ctx.queue_len as f64 / 16.0).min(4.0),
        slack,
        (ctx.exec_ns as f64 / ms).min(10.0),
    ]
}

fn dot(w: &[f64; FEATURES], f: &[f64; FEATURES]) -> f64 {
    w.iter().zip(f).map(|(a, b)| a * b).sum()
}

/// One recorded dispatch: candidate features, the action taken, and its
/// immediate reward.
struct Step {
    feats: Vec<[f64; FEATURES]>,
    chosen: usize,
    reward: f64,
}

/// Immediate reward for dispatching to `slot`: negative predicted
/// response time (ms), with a flat penalty when the predicted
/// completion overshoots the deadline. Computable at dispatch time from
/// the context alone — the simulator's completion model is exact for
/// the chosen slot.
fn reward(ctx: &SchedContext<'_>, slot: usize, module: ModuleId, states: &[PrrState]) -> f64 {
    let done = ctx.completion_on(slot, module, states);
    let response_ms = done.saturating_sub(ctx.arrival_ns) as f64 / 1e6;
    let miss = ctx.deadline_ns.is_some_and(|d| done > d);
    -response_ms - if miss { 10.0 } else { 0.0 }
}

/// ε-greedy exploring policy used only during training. Interior
/// mutability keeps the [`Scheduler`] trait's `&self` signature;
/// training episodes run serially, so the lock is uncontended.
struct Explorer {
    weights: [f64; FEATURES],
    state: Mutex<ExplorerState>,
}

struct ExplorerState {
    rng: Rng,
    epsilon: f64,
    log: Vec<Step>,
}

impl Scheduler for Explorer {
    fn name(&self) -> &'static str {
        "explore"
    }

    fn choose(
        &self,
        ctx: &SchedContext<'_>,
        needs: &fabric::Resources,
        module: ModuleId,
        candidates: &[usize],
        avail: &[fabric::Resources],
        states: &[PrrState],
    ) -> usize {
        let feats: Vec<[f64; FEATURES]> = candidates
            .iter()
            .map(|&i| phi(ctx, i, needs, module, avail, states))
            .collect();
        let mut st = self.state.lock().expect("explorer lock");
        let chosen = if st.rng.unit() < st.epsilon {
            st.rng.rand_below(candidates.len())
        } else {
            greedy(&self.weights, &feats)
        };
        let slot = candidates[chosen];
        let r = reward(ctx, slot, module, states);
        st.log.push(Step {
            feats,
            chosen,
            reward: r,
        });
        slot
    }
}

/// Index of the argmax action (ties to the lowest index, so frozen
/// replays are order-deterministic).
fn greedy(w: &[f64; FEATURES], feats: &[[f64; FEATURES]]) -> usize {
    let mut best = 0usize;
    let mut best_q = f64::NEG_INFINITY;
    for (k, f) in feats.iter().enumerate() {
        let q = dot(w, f);
        if q > best_q {
            best_q = q;
            best = k;
        }
    }
    best
}

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainConfig {
    /// ε-greedy episodes per training workload.
    pub episodes: u32,
    /// Q-learning sweeps over each episode's transition log.
    pub replay_epochs: u32,
    /// Initial exploration rate (decays linearly to 0 across episodes).
    pub epsilon: f64,
    /// Learning rate (normalized per-update by the feature norm).
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Training seed: exploration randomness is deterministic in it.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            episodes: 6,
            replay_epochs: 3,
            epsilon: 0.25,
            alpha: 0.05,
            gamma: 0.9,
            seed: 1,
        }
    }
}

/// A linear action-value function under training: `Q(s, a) = w · φ`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearQ {
    weights: [f64; FEATURES],
}

impl LinearQ {
    /// Zero-initialized value function.
    pub fn new() -> Self {
        LinearQ::default()
    }

    /// Current weights.
    pub fn weights(&self) -> &[f64; FEATURES] {
        &self.weights
    }

    /// Train on `workloads` over `system`: for each episode, run every
    /// workload through the simulator under an ε-greedy exploring
    /// policy (ε decaying to zero), then replay the recorded
    /// transitions with one-step Q-learning updates,
    /// `w += α (r + γ max_a' Q(s', a') − Q(s, a)) φ`. Deterministic in
    /// `cfg.seed`: episodes run serially and all randomness flows
    /// through one seeded [`Rng`].
    pub fn train(&mut self, system: &PrSystem, workloads: &[Workload], cfg: &TrainConfig) {
        let episodes = cfg.episodes.max(1);
        for ep in 0..episodes {
            // Linear ε decay; the final episode is pure exploitation, so
            // late updates refine the greedy trajectory itself.
            let epsilon =
                cfg.epsilon * f64::from(episodes - 1 - ep) / f64::from(episodes.max(2) - 1);
            for (wi, workload) in workloads.iter().enumerate() {
                let explorer = Explorer {
                    weights: self.weights,
                    state: Mutex::new(ExplorerState {
                        rng: Rng::from_seed(
                            cfg.seed ^ (u64::from(ep) << 32) ^ (wi as u64).wrapping_mul(0x9e37),
                        ),
                        epsilon,
                        log: Vec::new(),
                    }),
                };
                multitask::simulate(system, workload, &explorer);
                let log = explorer.state.into_inner().expect("explorer lock").log;
                self.replay_updates(&log, cfg);
            }
        }
    }

    /// One-step Q-learning over a recorded trajectory. Successive
    /// dispatches form the state chain; the terminal dispatch
    /// bootstraps from 0.
    fn replay_updates(&mut self, log: &[Step], cfg: &TrainConfig) {
        for _ in 0..cfg.replay_epochs.max(1) {
            for t in 0..log.len() {
                let step = &log[t];
                let f = &step.feats[step.chosen];
                let q = dot(&self.weights, f);
                let next_max = log.get(t + 1).map_or(0.0, |n| {
                    n.feats
                        .iter()
                        .map(|nf| dot(&self.weights, nf))
                        .fold(f64::NEG_INFINITY, f64::max)
                });
                let target = step.reward + cfg.gamma * next_max;
                // Normalized gradient step keeps the update stable for
                // any feature magnitude.
                let norm = 1.0 + f.iter().map(|x| x * x).sum::<f64>();
                let delta = cfg.alpha * (target - q) / norm;
                for (w, x) in self.weights.iter_mut().zip(f) {
                    *w += delta * x;
                }
            }
        }
    }

    /// Freeze the current weights into a stateless, shareable policy.
    pub fn freeze(&self) -> FrozenPolicy {
        FrozenPolicy {
            weights: self.weights,
        }
    }
}

/// A frozen learned policy: pure `argmax w · φ` over the candidates.
///
/// Stateless and `Send + Sync` — replays are byte-identical across
/// runs and across [`multitask::simulate_batch`] thread counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FrozenPolicy {
    weights: [f64; FEATURES],
}

impl FrozenPolicy {
    /// The frozen weights.
    pub fn weights(&self) -> &[f64; FEATURES] {
        &self.weights
    }

    /// Build a policy directly from weights (for tests and replays of
    /// externally stored policies).
    pub fn from_weights(weights: [f64; FEATURES]) -> Self {
        FrozenPolicy { weights }
    }

    /// Evaluate the frozen policy on a workload — a deterministic
    /// replay through the real simulator.
    pub fn replay(&self, system: &PrSystem, workload: &Workload) -> SimReport {
        multitask::simulate(system, workload, self)
    }
}

impl Scheduler for FrozenPolicy {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn choose(
        &self,
        ctx: &SchedContext<'_>,
        needs: &fabric::Resources,
        module: ModuleId,
        candidates: &[usize],
        avail: &[fabric::Resources],
        states: &[PrrState],
    ) -> usize {
        let mut best = candidates[0];
        let mut best_q = f64::NEG_INFINITY;
        for &i in candidates {
            let q = dot(&self.weights, &phi(ctx, i, needs, module, avail, states));
            if q > best_q {
                best_q = q;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::IcapModel;
    use fabric::Family;

    fn small_system() -> PrSystem {
        let device = fabric::database::xc5vlx110t();
        let org = prcost::PrrOrganization {
            family: Family::Virtex5,
            height: 1,
            clb_cols: 4,
            dsp_cols: 1,
            bram_cols: 1,
        };
        PrSystem::homogeneous(&device, org, 3, IcapModel::V5_DMA).unwrap()
    }

    /// Moderately loaded (ρ ≈ 0.5 on 3 PRRs) so dispatches usually see
    /// several free candidates — the regime where exploration and the
    /// learned choice actually matter. A saturated queue dispatches one
    /// task per slot-free event with exactly one candidate, and every
    /// policy (and every seed) degenerates to the same trajectory.
    fn small_workload(seed: u64) -> Workload {
        Workload::generate(seed, Family::Virtex5, 60, 6, 250, 100_000, 150_000).with_deadlines(3.0)
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let sys = small_system();
        let w = [small_workload(1), small_workload(2)];
        let cfg = TrainConfig::default();
        let mut a = LinearQ::new();
        a.train(&sys, &w, &cfg);
        let mut b = LinearQ::new();
        b.train(&sys, &w, &cfg);
        assert_eq!(a.weights(), b.weights());
        let mut c = LinearQ::new();
        c.train(
            &sys,
            &w,
            &TrainConfig {
                seed: 2,
                ..cfg.clone()
            },
        );
        assert_ne!(a.weights(), c.weights(), "seed must matter");
    }

    #[test]
    fn training_moves_weights_and_freezes() {
        let sys = small_system();
        let w = [small_workload(3)];
        let mut q = LinearQ::new();
        q.train(&sys, &w, &TrainConfig::default());
        assert!(
            q.weights().iter().any(|&x| x != 0.0),
            "training must update weights"
        );
        let frozen = q.freeze();
        assert_eq!(frozen.weights(), q.weights());
    }

    #[test]
    fn frozen_replay_is_reproducible() {
        let sys = small_system();
        let train = [small_workload(4)];
        let eval = small_workload(5);
        let mut q = LinearQ::new();
        q.train(&sys, &train, &TrainConfig::default());
        let frozen = q.freeze();
        let a = frozen.replay(&sys, &eval);
        let b = frozen.replay(&sys, &eval);
        assert_eq!(a, b);
        assert_eq!(a.scheduler, "learned");
    }

    #[test]
    fn reuse_weighted_policy_prefers_loaded_slot() {
        // A hand-built policy that values only reuse must behave like
        // ReuseAware's hit path.
        let mut w = [0.0; FEATURES];
        w[1] = 1.0;
        let policy = FrozenPolicy::from_weights(w);
        let avail = vec![fabric::Resources::new(100, 4, 2); 2];
        let states = vec![
            PrrState {
                busy: false,
                loaded_module: None,
            },
            PrrState {
                busy: false,
                loaded_module: Some(ModuleId(7)),
            },
        ];
        let rc = [500, 500];
        let ctx = SchedContext {
            now: 0,
            queue_len: 0,
            arrival_ns: 0,
            exec_ns: 100,
            deadline_ns: None,
            icap_free_at: 0,
            reconfig_ns: &rc,
        };
        let needs = fabric::Resources::new(10, 0, 0);
        assert_eq!(
            policy.choose(&ctx, &needs, ModuleId(7), &[0, 1], &avail, &states),
            1
        );
        assert_eq!(
            policy.choose(&ctx, &needs, ModuleId(8), &[0, 1], &avail, &states),
            0
        );
    }
}
