//! Scheduler-zoo ablation harness behind `prfpga sched-ablate` and the
//! `sched_zoo` bench — one deterministic run producing every scheduler
//! × workload class × defragmentation policy cell of
//! `results/BENCH_sched.json`.
//!
//! Three tables:
//!
//! * `rows` — each scheduler (classical + learned) on each workload
//!   class through the fixed-PRR `multitask` DES: completions,
//!   deadline-miss ratio, mean response, reuse rate, ICAP utilization.
//! * `admission` — the classical admission tests
//!   ([`crate::admission`]) over UUniFast task sets at rising target
//!   utilization: how many sets each test admits on this PRR pool once
//!   reconfiguration inflation is priced in.
//! * `defrag` — each workload class through the `layout` loss-system
//!   DES under Never / Threshold / Always defragmentation: admissions
//!   and relocation cost (the defrag axis is carried by the layout
//!   manager, which owns placement geometry; the PRR-pool DES has no
//!   fragmentation to repair).

use crate::admission::{response_time_admit, utilization_bound_admit, worst_reconfig_ns};
use crate::learned::{LinearQ, TrainConfig};
use crate::taskset::{TaskSet, TaskSetConfig};
use bitstream::IcapModel;
use fabric::{Device, Window};
use layout::{simulate_layout, DefragPolicy, LayoutConfig};
use multitask::{
    BestFit, DeadlineAware, FirstFit, PrSystem, PrrSlot, ReuseAware, Scheduler, Workload,
};
use prcost::PrrOrganization;
use serde::Serialize;

/// Harness parameters. `Default` is the smoke-sized run used by CI and
/// the bench artifact; the CLI exposes the knobs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AblationConfig {
    /// Master seed: every generator and the learned policy's training
    /// derive from it, so the whole report is deterministic in it.
    pub seed: u64,
    /// Jobs per aperiodic workload class.
    pub tasks: u32,
    /// Release horizon for the periodic class (ms).
    pub horizon_ms: u64,
    /// ε-greedy training episodes for the learned policy.
    pub train_episodes: u32,
    /// Deadline slack factor attached to aperiodic classes
    /// (`deadline = arrival + slack × exec`).
    pub deadline_slack: f64,
    /// UUniFast task sets per utilization level in the admission table.
    pub admission_sets: u32,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            seed: 7,
            tasks: 240,
            horizon_ms: 40,
            train_episodes: 6,
            deadline_slack: 3.0,
            admission_sets: 20,
        }
    }
}

/// One scheduler × workload-class cell of the DES table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SchedRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Workload class name.
    pub class: String,
    /// Tasks offered before servability filtering.
    pub offered: u32,
    /// Tasks some PRR can host (= admissions in the loss-free DES).
    pub admitted: u32,
    /// Tasks completed.
    pub completed: u32,
    /// Fraction of completed tasks missing their deadline.
    pub deadline_miss_ratio: f64,
    /// Mean response time (ms).
    pub mean_response_ms: f64,
    /// Fraction of dispatches that reused a loaded module.
    pub reuse_rate: f64,
    /// Fraction of the makespan the ICAP spent transferring.
    pub icap_utilization: f64,
    /// Makespan (ms).
    pub makespan_ms: f64,
}

/// One utilization level of the admission table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdmissionRow {
    /// Target total utilization handed to UUniFast.
    pub target_utilization: f64,
    /// Task sets sampled at this level.
    pub tasksets: u32,
    /// Sets the partitioned Liu–Layland bound admits.
    pub ub_admitted: u32,
    /// Sets the partitioned response-time analysis admits.
    pub rta_admitted: u32,
    /// Mean reconfiguration-inflated utilization across the sets.
    pub mean_inflated_utilization: f64,
}

/// One workload-class × defrag-policy cell of the layout table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DefragRow {
    /// Workload class name.
    pub class: String,
    /// Defragmentation policy name.
    pub policy: String,
    /// Tasks admitted by the layout manager.
    pub admitted: u32,
    /// Rejections attributable to fragmentation.
    pub rejected_fragmentation: u32,
    /// Relocations performed.
    pub relocations: u32,
    /// ICAP time spent relocating (ms).
    pub relocation_ms: f64,
}

/// The full ablation artifact (`results/BENCH_sched.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AblationReport {
    /// Device the PRR pool lives on.
    pub device: String,
    /// PRR pool summary, one string per slot: `h×clb+dsp+bram@reconfig_us`.
    pub prrs: Vec<String>,
    /// Configuration the run used.
    pub config: AblationConfig,
    /// Worst-case single reconfiguration on the pool (ns), as used by
    /// the admission tests.
    pub worst_reconfig_ns: u64,
    /// Scheduler × class DES table.
    pub rows: Vec<SchedRow>,
    /// Admission-test table.
    pub admission: Vec<AdmissionRow>,
    /// Class × defrag-policy layout table.
    pub defrag: Vec<DefragRow>,
    /// Frozen learned-policy weights (reproducibility record).
    pub learned_weights: Vec<f64>,
    /// Classes where the learned policy strictly beats first-fit on
    /// (deadline-miss ratio, then mean response).
    pub learned_beats_firstfit: Vec<String>,
}

/// A heterogeneous PRR pool on `device`: two small/cheap, two medium,
/// and two tall/expensive PRRs (the reconfiguration-cost spread that
/// separates placement policies; a homogeneous pool makes every choice
/// cost the same). Every organization carries DSP and BRAM columns so
/// generated PRMs with mixed footprints stay servable — which is why
/// the harness runs on the DSP-rich xc5vsx95t, where composite
/// CLB+DSP+BRAM windows are plentiful.
fn mixed_system(device: &Device) -> PrSystem {
    let org = |height: u32, clb_cols: u32| PrrOrganization {
        family: device.family(),
        height,
        clb_cols,
        dsp_cols: 1,
        bram_cols: 1,
    };
    let specs = [(org(1, 4), 2u32), (org(1, 8), 2), (org(2, 8), 2)];
    // `Device::windows` enumerates column spans anchored at row 1, so
    // each spec gets its own row band: windows chosen column-disjoint
    // within the band, bands stacked vertically (the same trick
    // `PrSystem::homogeneous` uses).
    let mut slots: Vec<PrrSlot> = Vec::new();
    let mut row = 1u32;
    for (organization, count) in specs {
        let mut taken: Vec<Window> = Vec::new();
        let mut placed = 0;
        for mut w in device.windows(&organization.window_request()) {
            if placed == count {
                break;
            }
            if taken.iter().any(|t| t.overlaps(&w)) {
                continue;
            }
            taken.push(w.clone());
            w.row = row;
            slots.push(PrrSlot::new(slots.len() as u32, organization, w));
            placed += 1;
        }
        row += organization.height;
    }
    PrSystem::new(device, slots, IcapModel::V5_DMA).expect("mixed PRR pool must validate")
}

/// The workload classes, name → deadline-carrying workload. All derive
/// from `seed`; `salt` separates training from evaluation streams.
fn workload_classes(cfg: &AblationConfig, device: &Device, salt: u64) -> Vec<(String, Workload)> {
    let family = device.family();
    let seed = cfg.seed ^ salt;
    let horizon_ns = cfg.horizon_ms * 1_000_000;
    let ts_cfg = TaskSetConfig {
        n: 8,
        total_utilization: 2.5,
        scale: 250,
        ..TaskSetConfig::default()
    };
    // Interarrival 50 µs × 6 PRRs against 150 µs mean execution puts the
    // pool near ρ ≈ 0.5 before reconfiguration overhead: loaded enough
    // that deadline misses happen, idle enough that dispatches see
    // multiple candidate PRRs (a saturated queue collapses every policy
    // onto the same single-candidate trajectory).
    let periodic = TaskSet::uunifast(seed, family, &ts_cfg).release_jobs(seed ^ 0x51ed, horizon_ns);
    let poisson = Workload::generate(seed, family, cfg.tasks, 12, 250, 50_000, 150_000)
        .with_deadlines(cfg.deadline_slack);
    let bursty = Workload::generate_bursty(seed, family, cfg.tasks, 12, 250, 50_000, 150_000, 8)
        .with_deadlines(cfg.deadline_slack);
    let heavy = Workload::generate_heavy_tailed(seed, family, cfg.tasks, 12, 150, 50_000, 150_000)
        .with_deadlines(cfg.deadline_slack);
    vec![
        ("periodic".to_string(), periodic),
        ("poisson".to_string(), poisson),
        ("bursty".to_string(), bursty),
        ("heavy_tailed".to_string(), heavy),
    ]
}

/// Lexicographic "learned strictly beats first-fit" on (miss ratio,
/// mean response), with a small epsilon so float noise can't flip it.
fn beats(learned: &SchedRow, firstfit: &SchedRow) -> bool {
    const EPS: f64 = 1e-9;
    if learned.deadline_miss_ratio + EPS < firstfit.deadline_miss_ratio {
        return true;
    }
    (learned.deadline_miss_ratio - firstfit.deadline_miss_ratio).abs() <= EPS
        && learned.mean_response_ms + EPS < firstfit.mean_response_ms
}

/// Run the whole ablation. Deterministic in `cfg` (single-threaded DES
/// runs, seeded generators, serial training).
pub fn run_ablation(cfg: &AblationConfig) -> AblationReport {
    let device = fabric::database::device_by_name("xc5vsx95t").expect("device in database");
    let system = mixed_system(&device);
    let reconfig_ns = worst_reconfig_ns(&system);

    // Train the learned policy on a disjoint stream of the same classes.
    let train: Vec<Workload> = workload_classes(cfg, &device, train_salt())
        .into_iter()
        .map(|(_, w)| system.filter_workload(&w))
        .collect();
    let mut q = LinearQ::new();
    q.train(
        &system,
        &train,
        &TrainConfig {
            episodes: cfg.train_episodes,
            seed: cfg.seed,
            ..TrainConfig::default()
        },
    );
    let learned = q.freeze();

    let classes = workload_classes(cfg, &device, 0);
    let schedulers: [&dyn Scheduler; 5] =
        [&FirstFit, &BestFit, &ReuseAware, &DeadlineAware, &learned];

    let mut rows = Vec::new();
    for (class, workload) in &classes {
        let offered = workload.tasks.len() as u32;
        let servable = system.filter_workload(workload);
        let admitted = servable.tasks.len() as u32;
        for scheduler in schedulers {
            let r = multitask::simulate(&system, &servable, scheduler);
            rows.push(SchedRow {
                scheduler: r.scheduler.to_string(),
                class: class.clone(),
                offered,
                admitted,
                completed: r.completed,
                deadline_miss_ratio: r.deadline_miss_ratio(),
                mean_response_ms: r.mean_response_ns() as f64 / 1e6,
                reuse_rate: r.reuse_rate(),
                icap_utilization: r.icap_utilization(),
                makespan_ms: r.makespan_ns as f64 / 1e6,
            });
        }
    }

    let mut admission = Vec::new();
    for target in [1.0f64, 2.0, 3.0, 4.0] {
        let mut ub = 0u32;
        let mut rta = 0u32;
        let mut inflated = 0.0f64;
        for k in 0..cfg.admission_sets {
            // Periods well above the worst reconfiguration (≈0.4 ms)
            // keep the inflation meaningful without making it fatal:
            // admission rates fall with the target instead of pinning
            // at zero.
            let ts_cfg = TaskSetConfig {
                total_utilization: target,
                scale: 250,
                min_period_ns: 4_000_000,
                max_period_ns: 40_000_000,
                ..TaskSetConfig::default()
            };
            let ts = TaskSet::uunifast(
                cfg.seed ^ (u64::from(k) << 16) ^ target.to_bits(),
                device.family(),
                &ts_cfg,
            );
            let u = utilization_bound_admit(&ts, system.prrs.len(), reconfig_ns);
            let r = response_time_admit(&ts, system.prrs.len(), reconfig_ns);
            ub += u32::from(u.admitted);
            rta += u32::from(r.admitted);
            inflated += r.inflated_utilization;
        }
        admission.push(AdmissionRow {
            target_utilization: target,
            tasksets: cfg.admission_sets,
            ub_admitted: ub,
            rta_admitted: rta,
            mean_inflated_utilization: inflated / f64::from(cfg.admission_sets.max(1)),
        });
    }

    let mut defrag = Vec::new();
    for (class, workload) in &classes {
        for (name, policy) in [
            ("never", DefragPolicy::Never),
            ("threshold_1.0", DefragPolicy::Threshold(1.0)),
            ("always", DefragPolicy::Always),
        ] {
            let r = simulate_layout(
                &device,
                workload,
                &LayoutConfig {
                    policy,
                    ..LayoutConfig::default()
                },
            );
            defrag.push(DefragRow {
                class: class.clone(),
                policy: name.to_string(),
                admitted: r.admitted,
                rejected_fragmentation: r.rejected_fragmentation,
                relocations: r.relocations,
                relocation_ms: r.relocation_ns as f64 / 1e6,
            });
        }
    }

    let learned_beats_firstfit = classes
        .iter()
        .filter_map(|(class, _)| {
            let find = |sched: &str| {
                rows.iter()
                    .find(|r| r.class == *class && r.scheduler == sched)
            };
            match (find("learned"), find("first-fit")) {
                (Some(l), Some(f)) if beats(l, f) => Some(class.clone()),
                _ => None,
            }
        })
        .collect();

    AblationReport {
        device: device.name().to_string(),
        prrs: system
            .prrs
            .iter()
            .map(|p| {
                format!(
                    "{}x{}+{}+{}@{}us",
                    p.organization.height,
                    p.organization.clb_cols,
                    p.organization.dsp_cols,
                    p.organization.bram_cols,
                    system.reconfig_ns(p) / 1_000
                )
            })
            .collect(),
        config: cfg.clone(),
        worst_reconfig_ns: reconfig_ns,
        rows,
        admission,
        defrag,
        learned_weights: learned.weights().to_vec(),
        learned_beats_firstfit,
    }
}

/// Salt separating training workload streams from evaluation streams.
fn train_salt() -> u64 {
    0x7_4a17_5a17
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_pool_is_heterogeneous() {
        let device = fabric::database::device_by_name("xc5vsx95t").unwrap();
        let sys = mixed_system(&device);
        assert_eq!(sys.prrs.len(), 6);
        let mut costs: Vec<u64> = sys.prrs.iter().map(|p| sys.reconfig_ns(p)).collect();
        costs.sort_unstable();
        costs.dedup();
        assert!(costs.len() >= 2, "reconfiguration costs must differ");
    }

    #[test]
    fn ablation_is_deterministic_and_covers_the_grid() {
        let cfg = AblationConfig {
            tasks: 60,
            horizon_ms: 10,
            train_episodes: 2,
            admission_sets: 4,
            ..AblationConfig::default()
        };
        let a = run_ablation(&cfg);
        let b = run_ablation(&cfg);
        assert_eq!(a, b, "the whole report must be deterministic in seed");
        // ≥3 schedulers (incl. learned) × ≥3 classes.
        assert_eq!(a.rows.len(), 5 * 4);
        assert!(a.rows.iter().any(|r| r.scheduler == "learned"));
        assert_eq!(a.defrag.len(), 3 * 4);
        assert_eq!(a.admission.len(), 4);
        // Deadlines are live: someone misses somewhere at these loads.
        assert!(a.rows.iter().any(|r| r.deadline_miss_ratio > 0.0));
    }
}
