//! Periodic real-time task sets and deterministic generators.
//!
//! A [`TaskSet`] is the design-time object — `n` periodic tasks with
//! utilizations sampled by UUniFast(-Discard) — and
//! [`TaskSet::release_jobs`] is the bridge to the runtime world: it
//! expands the set over a horizon into a deadline-carrying
//! [`Workload`] (release jitter applied per job, execution times drawn
//! from a truncated Weibull below the WCET) that the `multitask`
//! simulator runs unchanged.

use fabric::{Family, Resources};
use multitask::{HwTask, Workload};
use prcost::rng::Rng;
use synth::prm::GenericPrm;
use synth::PrmGenerator;

/// One periodic hardware task: a PRM released every `period_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicTask {
    /// Module name; jobs of the same task share partial bitstreams.
    pub module: String,
    /// Fabric resources each job needs inside its PRR.
    pub needs: Resources,
    /// Release period (ns).
    pub period_ns: u64,
    /// Worst-case execution time per job (ns); actual job execution
    /// times vary below this bound.
    pub wcet_ns: u64,
    /// Relative deadline (ns from release). Constrained:
    /// `deadline_ns <= period_ns` for generated sets.
    pub deadline_ns: u64,
    /// Maximum release jitter (ns): each job is released up to this much
    /// after its nominal period boundary (deadline still counted from
    /// the nominal release, so jitter eats slack).
    pub jitter_ns: u64,
}

impl PeriodicTask {
    /// WCET utilization `wcet / period`.
    pub fn utilization(&self) -> f64 {
        self.wcet_ns as f64 / self.period_ns as f64
    }
}

/// Parameters for [`TaskSet::uunifast`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSetConfig {
    /// Number of tasks.
    pub n: u32,
    /// Target total WCET utilization (sum over tasks; may exceed 1 on
    /// multi-PRR systems). Capped at `n` — one full processor per task.
    pub total_utilization: f64,
    /// Shortest period (ns).
    pub min_period_ns: u64,
    /// Longest period (ns); periods are log-uniform in
    /// `[min_period_ns, max_period_ns]`.
    pub max_period_ns: u64,
    /// Resource-footprint scale handed to the synthetic PRM generator.
    pub scale: u32,
    /// Relative deadline as a fraction of the period, clamped to
    /// `(0, 1]` (constrained deadlines).
    pub deadline_factor: f64,
    /// Release jitter as a fraction of the period, clamped to `[0, 0.5]`.
    pub jitter_factor: f64,
    /// Weibull shape for per-job execution-time variation (larger =
    /// executions concentrate near the WCET-anchored scale).
    pub exec_shape: f64,
}

impl Default for TaskSetConfig {
    fn default() -> Self {
        TaskSetConfig {
            n: 8,
            total_utilization: 2.0,
            min_period_ns: 400_000,
            max_period_ns: 8_000_000,
            scale: 300,
            deadline_factor: 1.0,
            jitter_factor: 0.05,
            exec_shape: 3.0,
        }
    }
}

/// A set of periodic tasks (the schedulability-analysis object).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    /// The tasks, in generation order.
    pub tasks: Vec<PeriodicTask>,
}

/// UUniFast-Discard: `n` utilizations summing to `total`, uniform over
/// the valid simplex, redrawn while any single task exceeds 1.
///
/// Heavy targets (`total > n/2`) go through the complement symmetry
/// `u_i = 1 − u'_i` with `u'` drawn at total `n − total` — the discard
/// acceptance rate collapses near `total = n`, while the complement
/// stays exact. Bounded retries below the midpoint; the final clamp
/// fallback is unreachable in practice but guarantees termination.
fn uunifast_discard(rng: &mut Rng, n: u32, total: f64) -> Vec<f64> {
    let n = n.max(1);
    let total = total.clamp(1e-6, f64::from(n));
    if total > f64::from(n) / 2.0 {
        let mut us = uunifast_discard(rng, n, f64::from(n) - total);
        for u in &mut us {
            *u = 1.0 - *u;
        }
        return us;
    }
    for _ in 0..64 {
        let mut us = Vec::with_capacity(n as usize);
        let mut sum = total;
        for i in 1..n {
            let next = sum * rng.unit().powf(1.0 / f64::from(n - i));
            us.push(sum - next);
            sum = next;
        }
        us.push(sum);
        if us.iter().all(|&u| u <= 1.0) {
            return us;
        }
    }
    // Fallback: clamp (slightly lowers the realized total).
    let mut us = Vec::with_capacity(n as usize);
    let mut sum = total;
    for i in 1..n {
        let next = sum * rng.unit().powf(1.0 / f64::from(n - i));
        us.push((sum - next).min(1.0));
        sum = next;
    }
    us.push(sum.min(1.0));
    us
}

impl TaskSet {
    /// Generate a periodic task set with UUniFast(-Discard) utilizations.
    ///
    /// Per task: a synthetic PRM footprint (deterministic in
    /// `seed + index`), a log-uniform period, `wcet = utilization ×
    /// period`, a constrained relative deadline and a jitter bound.
    /// Fully deterministic in `seed`.
    pub fn uunifast(seed: u64, family: Family, cfg: &TaskSetConfig) -> TaskSet {
        let mut rng = Rng::from_seed(seed ^ 0x7c15_9e37_79b9_7f4a);
        let utils = uunifast_discard(&mut rng, cfg.n, cfg.total_utilization);
        let min_p = cfg.min_period_ns.max(1);
        let max_p = cfg.max_period_ns.max(min_p);
        let ratio = max_p as f64 / min_p as f64;
        let dl = cfg.deadline_factor.clamp(1e-3, 1.0);
        let jit = cfg.jitter_factor.clamp(0.0, 0.5);

        let tasks = utils
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                let report = GenericPrm::random(seed.wrapping_add(i as u64 * 7919), cfg.scale)
                    .synthesize(family);
                let period_ns = (min_p as f64 * ratio.powf(rng.unit())) as u64;
                let wcet_ns = ((u * period_ns as f64) as u64).max(1);
                // Footprint via the same report→needs mapping as HwTask.
                let probe = HwTask::from_report(0, &report, 0, 1);
                PeriodicTask {
                    module: format!("rt{i:02}_{}", report.module),
                    needs: probe.needs,
                    period_ns,
                    wcet_ns,
                    deadline_ns: ((dl * period_ns as f64) as u64).max(wcet_ns),
                    jitter_ns: (jit * period_ns as f64) as u64,
                }
            })
            .collect();
        TaskSet { tasks }
    }

    /// Sum of WCET utilizations.
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(PeriodicTask::utilization).sum()
    }

    /// Expand the periodic set over `[0, horizon_ns)` into a
    /// deadline-carrying [`Workload`].
    ///
    /// Per job: release = nominal period boundary + a uniform jitter in
    /// `[0, jitter_ns]`, absolute deadline = *nominal* release +
    /// relative deadline (jitter eats slack), execution time = a
    /// truncated-Weibull draw `min(wcet, weibull(shape, 0.8 × wcet))` —
    /// most jobs run below their WCET, none above. Deterministic in
    /// `seed`; independent of the seed that built the set.
    pub fn release_jobs(&self, seed: u64, horizon_ns: u64) -> Workload {
        let mut rng = Rng::from_seed(seed ^ 0x94d0_49bb_1331_11eb);
        let mut jobs = Vec::new();
        let mut id = 0u32;
        for task in &self.tasks {
            let mut nominal = 0u64;
            while nominal < horizon_ns {
                let jitter = if task.jitter_ns == 0 {
                    0
                } else {
                    rng.below(task.jitter_ns + 1)
                };
                let exec = (rng.weibull(self.exec_shape_for(task), 0.8 * task.wcet_ns as f64)
                    as u64)
                    .clamp(1, task.wcet_ns);
                jobs.push(HwTask {
                    id,
                    module: task.module.clone(),
                    needs: task.needs,
                    arrival_ns: nominal + jitter,
                    exec_ns: exec,
                    deadline_ns: Some(nominal + task.deadline_ns),
                });
                id += 1;
                nominal += task.period_ns;
            }
        }
        Workload::new(jobs)
    }

    /// Weibull shape used for a task's execution variation. Uniform for
    /// now; a hook so heterogeneous variation models stay local.
    fn exec_shape_for(&self, _task: &PeriodicTask) -> f64 {
        3.0
    }

    /// Largest per-kind requirement over the set.
    pub fn max_needs(&self) -> Resources {
        self.tasks
            .iter()
            .fold(Resources::ZERO, |acc, t| acc.max(&t.needs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_hits_requested_total() {
        let mut rng = Rng::from_seed(1);
        for &(n, total) in &[(4u32, 1.5f64), (8, 2.0), (12, 0.8), (3, 2.9)] {
            let us = uunifast_discard(&mut rng, n, total);
            assert_eq!(us.len(), n as usize);
            let sum: f64 = us.iter().sum();
            assert!((sum - total).abs() < 1e-9, "n={n} total={total} sum={sum}");
            assert!(us.iter().all(|&u| (0.0..=1.0).contains(&u)), "{us:?}");
        }
    }

    #[test]
    fn taskset_is_deterministic_and_matches_utilization() {
        let cfg = TaskSetConfig::default();
        let a = TaskSet::uunifast(42, Family::Virtex5, &cfg);
        let b = TaskSet::uunifast(42, Family::Virtex5, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.tasks.len(), cfg.n as usize);
        // wcet = u × period is rounded per task; the realized total must
        // still track the target closely.
        assert!(
            (a.total_utilization() - cfg.total_utilization).abs() < 0.01,
            "realized {}",
            a.total_utilization()
        );
        let c = TaskSet::uunifast(43, Family::Virtex5, &cfg);
        assert_ne!(a, c, "adjacent seeds must differ");
    }

    #[test]
    fn release_jobs_carry_deadlines_and_respect_wcet() {
        let cfg = TaskSetConfig {
            n: 4,
            total_utilization: 1.2,
            ..TaskSetConfig::default()
        };
        let ts = TaskSet::uunifast(7, Family::Virtex5, &cfg);
        let w = ts.release_jobs(3, 20_000_000);
        assert!(!w.tasks.is_empty());
        let wcet: std::collections::HashMap<&str, u64> = ts
            .tasks
            .iter()
            .map(|t| (t.module.as_str(), t.wcet_ns))
            .collect();
        for job in &w.tasks {
            // Implicit deadlines (factor 1.0) dominate the 5% jitter, so
            // every job's absolute deadline lies at or after its release.
            let d = job.deadline_ns.expect("periodic jobs carry deadlines");
            assert!(d >= job.arrival_ns);
            assert!(job.exec_ns <= wcet[job.module.as_str()]);
            assert!(job.exec_ns >= 1);
        }
        // Deterministic in seed, sensitive to it.
        assert_eq!(w, ts.release_jobs(3, 20_000_000));
        assert_ne!(w, ts.release_jobs(4, 20_000_000));
    }

    #[test]
    fn job_count_scales_with_horizon() {
        let ts = TaskSet::uunifast(9, Family::Virtex5, &TaskSetConfig::default());
        let short = ts.release_jobs(1, 8_000_000).tasks.len();
        let long = ts.release_jobs(1, 32_000_000).tasks.len();
        assert!(long > 2 * short, "{short} vs {long}");
    }
}
