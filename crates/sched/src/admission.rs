//! Classical admission tests adapted to PRR pools.
//!
//! Both tests treat the PRR pool as `m` partitioned processors (a job
//! executes inside one PRR; there is no migration mid-job) and inflate
//! every job's cost with the worst-case reconfiguration time: in the
//! worst case every release finds its module evicted and pays a full
//! partial-bitstream transfer through the shared ICAP before executing.
//! That transfer time comes straight from the paper's cost chain —
//! organization → bitstream bytes (Eqs. 18–23) →
//! [`bitstream::IcapModel::transfer_time`] — which is exactly what
//! makes PRR sizing a schedulability question and not just a throughput
//! one.
//!
//! * [`utilization_bound_admit`] — worst-fit-decreasing partition onto
//!   the `m` PRRs, each bin checked against its Liu–Layland bound
//!   `n_b (2^{1/n_b} − 1)` over *inflated* utilizations.
//! * [`response_time_admit`] — the same partition, then an exact
//!   rate-monotonic response-time analysis per PRR with release jitter:
//!   `R = C + Σ_hp ⌈(R + J_j)/T_j⌉ C_j`, admitted iff `R + J ≤ D`
//!   for every task. On jitter-free implicit-deadline sets it strictly
//!   dominates the bound (admits harmonic sets the bound rejects, never
//!   the converse on the same partition); with jitter or constrained
//!   deadlines the bound — which ignores both — can optimistically
//!   admit sets the RTA correctly rejects.

use crate::taskset::{PeriodicTask, TaskSet};
use multitask::PrSystem;
use serde::Serialize;

/// Result of an admission test.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AdmissionOutcome {
    /// Whether the whole set was admitted.
    pub admitted: bool,
    /// Total utilization after reconfiguration inflation.
    pub inflated_utilization: f64,
    /// Tasks per PRR in the partition (empty if partitioning itself
    /// failed — some task's inflated utilization exceeds 1).
    pub tasks_per_prr: Vec<u32>,
}

/// Worst-case single reconfiguration in `system`: the slowest PRR's
/// partial-bitstream transfer through the shared ICAP.
pub fn worst_reconfig_ns(system: &PrSystem) -> u64 {
    system
        .prrs
        .iter()
        .map(|p| system.reconfig_ns(p))
        .max()
        .unwrap_or(0)
}

/// Utilization with every job paying a full reconfiguration.
fn inflated_util(task: &PeriodicTask, reconfig_ns: u64) -> f64 {
    (task.wcet_ns + reconfig_ns) as f64 / task.period_ns as f64
}

/// Worst-fit-decreasing partition of task indices onto `m` bins by
/// inflated utilization, bin capacity 1.0: each task goes to the
/// least-loaded bin that still fits it, which balances utilization
/// across the PRRs (first-fit would pack one bin to ~1.0 and doom its
/// per-bin test no matter how light the total load is). Returns
/// per-bin task-index lists, or `None` if some task fits no bin.
fn partition_wfd(ts: &TaskSet, m: usize, reconfig_ns: u64) -> Option<Vec<Vec<usize>>> {
    let mut order: Vec<usize> = (0..ts.tasks.len()).collect();
    order.sort_by(|&a, &b| {
        inflated_util(&ts.tasks[b], reconfig_ns)
            .partial_cmp(&inflated_util(&ts.tasks[a], reconfig_ns))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut load = vec![0.0f64; m];
    for i in order {
        let u = inflated_util(&ts.tasks[i], reconfig_ns);
        let slot = (0..m).filter(|&b| load[b] + u <= 1.0).min_by(|&a, &b| {
            load[a]
                .partial_cmp(&load[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        load[slot] += u;
        bins[slot].push(i);
    }
    Some(bins)
}

fn outcome(
    ts: &TaskSet,
    reconfig_ns: u64,
    bins: Option<&[Vec<usize>]>,
    admitted: bool,
) -> AdmissionOutcome {
    AdmissionOutcome {
        admitted,
        inflated_utilization: ts.tasks.iter().map(|t| inflated_util(t, reconfig_ns)).sum(),
        tasks_per_prr: bins
            .map(|b| b.iter().map(|bin| bin.len() as u32).collect())
            .unwrap_or_default(),
    }
}

/// Partitioned Liu–Layland utilization-bound test over `m` PRRs, each
/// job's cost inflated by `reconfig_ns`.
pub fn utilization_bound_admit(ts: &TaskSet, m: usize, reconfig_ns: u64) -> AdmissionOutcome {
    let m = m.max(1);
    let Some(bins) = partition_wfd(ts, m, reconfig_ns) else {
        return outcome(ts, reconfig_ns, None, false);
    };
    let admitted = bins.iter().all(|bin| {
        if bin.is_empty() {
            return true;
        }
        let n = bin.len() as f64;
        let bound = n * (2f64.powf(1.0 / n) - 1.0);
        let u: f64 = bin
            .iter()
            .map(|&i| inflated_util(&ts.tasks[i], reconfig_ns))
            .sum();
        u <= bound
    });
    outcome(ts, reconfig_ns, Some(&bins), admitted)
}

/// Rate-monotonic response-time analysis for one PRR's task-index bin.
/// Returns whether every task's worst-case response (including its own
/// jitter) meets its relative deadline.
fn rta_bin(ts: &TaskSet, bin: &[usize], reconfig_ns: u64) -> bool {
    // RM priority order: shorter period first (stable on ties).
    let mut order: Vec<usize> = bin.to_vec();
    order.sort_by_key(|&i| (ts.tasks[i].period_ns, i));
    for (pos, &i) in order.iter().enumerate() {
        let t = &ts.tasks[i];
        let c = t.wcet_ns + reconfig_ns;
        let mut r = c;
        // Fixpoint iteration; the deadline caps divergence.
        loop {
            let mut next = c;
            for &j in &order[..pos] {
                let hp = &ts.tasks[j];
                let releases = (r + hp.jitter_ns).div_ceil(hp.period_ns);
                next += releases * (hp.wcet_ns + reconfig_ns);
            }
            if next == r {
                break;
            }
            r = next;
            if r + t.jitter_ns > t.deadline_ns {
                return false;
            }
        }
        if r + t.jitter_ns > t.deadline_ns {
            return false;
        }
    }
    true
}

/// Partitioned rate-monotonic response-time test over `m` PRRs with
/// release jitter, each job's cost inflated by `reconfig_ns`.
pub fn response_time_admit(ts: &TaskSet, m: usize, reconfig_ns: u64) -> AdmissionOutcome {
    let m = m.max(1);
    let Some(bins) = partition_wfd(ts, m, reconfig_ns) else {
        return outcome(ts, reconfig_ns, None, false);
    };
    let admitted = bins.iter().all(|bin| rta_bin(ts, bin, reconfig_ns));
    outcome(ts, reconfig_ns, Some(&bins), admitted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(period: u64, wcet: u64) -> PeriodicTask {
        PeriodicTask {
            module: format!("t{period}_{wcet}"),
            needs: fabric::Resources::new(1, 0, 0),
            period_ns: period,
            wcet_ns: wcet,
            deadline_ns: period,
            jitter_ns: 0,
        }
    }

    #[test]
    fn light_set_admitted_by_both() {
        let ts = TaskSet {
            tasks: vec![task(1000, 100), task(2000, 200), task(4000, 300)],
        };
        assert!(utilization_bound_admit(&ts, 1, 0).admitted);
        assert!(response_time_admit(&ts, 1, 0).admitted);
    }

    #[test]
    fn overloaded_set_rejected_by_both() {
        // U = 1.5 on one PRR.
        let ts = TaskSet {
            tasks: vec![task(1000, 800), task(1000, 700)],
        };
        assert!(!utilization_bound_admit(&ts, 1, 0).admitted);
        assert!(!response_time_admit(&ts, 1, 0).admitted);
        // Two PRRs absorb it.
        assert!(utilization_bound_admit(&ts, 2, 0).admitted);
        assert!(response_time_admit(&ts, 2, 0).admitted);
    }

    #[test]
    fn rta_admits_harmonic_sets_the_bound_rejects() {
        // Harmonic periods at U = 1.0: LL bound (~0.757 for n=3) says
        // no, exact RTA says yes — the classical separation.
        let ts = TaskSet {
            tasks: vec![task(1000, 500), task(2000, 500), task(4000, 1000)],
        };
        let ub = utilization_bound_admit(&ts, 1, 0);
        let rta = response_time_admit(&ts, 1, 0);
        assert!(!ub.admitted);
        assert!(rta.admitted);
        assert!((ub.inflated_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconfiguration_inflation_can_break_feasibility() {
        let ts = TaskSet {
            tasks: vec![task(1000, 300), task(2000, 600)],
        };
        assert!(response_time_admit(&ts, 1, 0).admitted);
        // 300 ns of reconfiguration per release pushes the set over.
        let r = response_time_admit(&ts, 1, 300);
        assert!(!r.admitted);
        assert!(r.inflated_utilization > 1.0);
    }

    #[test]
    fn jitter_eats_slack() {
        let mut tight = task(1000, 480);
        let other = task(1000, 480);
        // Fits exactly without jitter (480 + 480 = 960 ≤ 1000)…
        let ts = TaskSet {
            tasks: vec![tight.clone(), other.clone()],
        };
        assert!(response_time_admit(&ts, 1, 0).admitted);
        // …but 60 ns of jitter on the low-priority task breaks it.
        tight.jitter_ns = 60;
        let ts = TaskSet {
            tasks: vec![tight, other],
        };
        assert!(!response_time_admit(&ts, 1, 0).admitted);
    }

    #[test]
    fn unpartitionable_task_reports_empty_bins() {
        // Inflated utilization > 1 for a single task: no bin fits it.
        let ts = TaskSet {
            tasks: vec![task(1000, 1200)],
        };
        let out = response_time_admit(&ts, 4, 0);
        assert!(!out.admitted);
        assert!(out.tasks_per_prr.is_empty());
    }
}
