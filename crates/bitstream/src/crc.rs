//! Bitstream CRC.
//!
//! Real Virtex devices accumulate a hardware CRC over {register, word}
//! pairs; this crate uses a table-driven CRC-32C (Castagnoli) over the raw
//! configuration words, which preserves the property the final-words check
//! relies on: any corruption of configuration payload is detected when the
//! parser recomputes the checksum.
//!
//! The implementation is table-sliced: sixteen 256-entry tables, built
//! at compile time by a `const fn`, let [`crc_words`] fold sixteen bytes
//! (four configuration words) per step — 16 independent table lookups
//! instead of 128 shift/xor bit steps. The CRC update is a serial
//! dependency chain (each step needs the previous state), so widening
//! the fold from 8 to 16 bytes halves the number of chain steps and is
//! what pushes throughput past 10× the bitwise loop. [`Crc32::push_word`]
//! folds one word (4 bytes) per step via the first four tables. The
//! seed's bitwise loop is frozen in [`baseline`] and property-tested
//! equivalent on arbitrary inputs.

/// CRC-32C (Castagnoli) polynomial, reflected form.
const POLY: u32 = 0x82F6_3B78;

/// Slicing lookup tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero
/// bytes, so `k` indexes how far the byte sits from the end of the
/// 16-byte block being folded.
static TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Fold one 32-bit block (4 message bytes, little-endian in `x`, already
/// xored with the running state) through tables `lo..lo+4`.
#[inline(always)]
const fn fold4(x: u32, lo: usize) -> u32 {
    TABLES[lo + 3][(x & 0xFF) as usize]
        ^ TABLES[lo + 2][((x >> 8) & 0xFF) as usize]
        ^ TABLES[lo + 1][((x >> 16) & 0xFF) as usize]
        ^ TABLES[lo][((x >> 24) & 0xFF) as usize]
}

/// Incremental CRC accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb one configuration word (big-endian byte order, as
    /// transmitted to the ICAP). Slice-by-4: four table lookups.
    #[inline]
    pub fn push_word(&mut self, word: u32) {
        // The word's big-endian bytes, first-transmitted byte lowest.
        self.state = fold4(self.state ^ word.swap_bytes(), 0);
    }

    /// Absorb a slice of configuration words, folding four words (16
    /// bytes) per step — the batch fast path used by [`crc_words`] and
    /// the bitstream writer.
    #[inline]
    pub fn push_words(&mut self, words: &[u32]) {
        let mut chunks = words.chunks_exact(4);
        for quad in &mut chunks {
            let x0 = self.state ^ quad[0].swap_bytes();
            let x1 = quad[1].swap_bytes();
            let x2 = quad[2].swap_bytes();
            let x3 = quad[3].swap_bytes();
            self.state = fold4(x0, 12) ^ fold4(x1, 8) ^ fold4(x2, 4) ^ fold4(x3, 0);
        }
        for &w in chunks.remainder() {
            self.push_word(w);
        }
    }

    /// Absorb raw bytes in transmission order. Byte-granular entry point
    /// (the word-based API is the hardware-faithful one; this exists for
    /// byte-aligned vectors and tail handling).
    #[inline]
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            let x0 = self.state ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let x1 = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            let x2 = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
            let x3 = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
            self.state = fold4(x0, 12) ^ fold4(x1, 8) ^ fold4(x2, 4) ^ fold4(x3, 0);
        }
        for &b in chunks.remainder() {
            self.state =
                (self.state >> 8) ^ TABLES[0][((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// Final checksum value.
    pub fn value(&self) -> u32 {
        !self.state
    }
}

/// Checksum a word slice in one call (16 bytes folded per step).
pub fn crc_words(words: &[u32]) -> u32 {
    let mut crc = Crc32::new();
    crc.push_words(words);
    crc.value()
}

/// Checksum a byte slice in one call (16 bytes folded per step).
pub fn crc_bytes(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.push_bytes(bytes);
    crc.value()
}

pub mod baseline {
    //! The seed's bitwise CRC, frozen as the equivalence oracle and the
    //! "before" side of the `crc_slice8` benchmark. One shift/xor step
    //! per bit, 32 steps per word — do not use outside tests/benches.

    use super::POLY;

    /// Bitwise (one bit per step) CRC-32C accumulator.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BitwiseCrc32 {
        state: u32,
    }

    impl Default for BitwiseCrc32 {
        fn default() -> Self {
            Self::new()
        }
    }

    impl BitwiseCrc32 {
        /// Fresh accumulator.
        pub fn new() -> Self {
            BitwiseCrc32 { state: 0xFFFF_FFFF }
        }

        /// Absorb one configuration word, bit by bit (the seed loop).
        pub fn push_word(&mut self, word: u32) {
            for byte in word.to_be_bytes() {
                self.push_byte(byte);
            }
        }

        /// Absorb one byte, bit by bit.
        pub fn push_byte(&mut self, byte: u8) {
            self.state ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (self.state & 1).wrapping_neg();
                self.state = (self.state >> 1) ^ (POLY & mask);
            }
        }

        /// Final checksum value.
        pub fn value(&self) -> u32 {
            !self.state
        }
    }

    /// Checksum a word slice with the seed's bitwise loop.
    pub fn crc_words_bitwise(words: &[u32]) -> u32 {
        let mut crc = BitwiseCrc32::new();
        for &w in words {
            crc.push_word(w);
        }
        crc.value()
    }

    /// Checksum a byte slice with the seed's bitwise loop.
    pub fn crc_bytes_bitwise(bytes: &[u8]) -> u32 {
        let mut crc = BitwiseCrc32::new();
        for &b in bytes {
            crc.push_byte(b);
        }
        crc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::baseline::{crc_bytes_bitwise, crc_words_bitwise};
    use super::*;
    use proptest::prelude::*;

    /// The standard CRC-32C check vector: CRC of the ASCII bytes
    /// "123456789" is 0xE3069283 (RFC 3720 / Castagnoli reference).
    /// Both the slice-by-8 and the frozen bitwise implementation must
    /// reproduce it.
    #[test]
    fn known_vector() {
        let msg = b"123456789";
        assert_eq!(crc_bytes(msg), 0xE306_9283);
        assert_eq!(crc_bytes_bitwise(msg), 0xE306_9283);
        // Word-level: the first 8 bytes as two big-endian words plus the
        // trailing '9' byte must accumulate to the same checksum.
        let mut crc = Crc32::new();
        crc.push_words(&[0x3132_3334, 0x3536_3738]);
        crc.push_bytes(b"9");
        assert_eq!(crc.value(), 0xE306_9283);
    }

    #[test]
    fn detects_single_bit_flips() {
        let words = [0xDEAD_BEEF, 0x1234_5678, 0x0000_0000, 0xFFFF_FFFF];
        let base = crc_words(&words);
        for i in 0..words.len() {
            for bit in [0, 7, 15, 31] {
                let mut corrupted = words;
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc_words(&corrupted), base, "flip word {i} bit {bit}");
            }
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let words = [1u32, 2, 3, 4, 5];
        let mut inc = Crc32::new();
        for &w in &words {
            inc.push_word(w);
        }
        assert_eq!(inc.value(), crc_words(&words));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc_words(&[]), 0);
        assert_eq!(crc_bytes(&[]), 0);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc_words(&[1, 2]), crc_words(&[2, 1]));
    }

    #[test]
    fn mixed_incremental_chunking_is_stable() {
        // Split the same stream arbitrarily across push_word/push_words
        // calls: odd/even split points exercise the chunk remainders.
        let words: Vec<u32> = (0..33u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let oneshot = crc_words(&words);
        for split in [0, 1, 2, 7, 16, 32, 33] {
            let mut crc = Crc32::new();
            crc.push_words(&words[..split]);
            for &w in &words[split..] {
                crc.push_word(w);
            }
            assert_eq!(crc.value(), oneshot, "split at {split}");
        }
    }

    proptest! {
        /// Property: slice-by-8 ≡ the seed's bitwise loop on arbitrary
        /// word slices.
        #[test]
        fn slice8_equals_bitwise_on_words(words in proptest::collection::vec(any::<u32>(), 0..300)) {
            prop_assert_eq!(crc_words(&words), crc_words_bitwise(&words));
        }

        /// Property: byte-granular slice-by-8 ≡ bitwise on arbitrary byte
        /// slices (exercises the non-multiple-of-8 tails).
        #[test]
        fn slice8_equals_bitwise_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
            prop_assert_eq!(crc_bytes(&bytes), crc_bytes_bitwise(&bytes));
        }

        /// Property: word API ≡ byte API on the big-endian transmission
        /// byte stream.
        #[test]
        fn words_equal_their_be_bytes(words in proptest::collection::vec(any::<u32>(), 0..200)) {
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
            prop_assert_eq!(crc_words(&words), crc_bytes(&bytes));
        }
    }
}
