//! Bitstream CRC.
//!
//! Real Virtex devices accumulate a hardware CRC over {register, word}
//! pairs; this crate uses a table-driven CRC-32C (Castagnoli) over the raw
//! configuration words, which preserves the property the final-words check
//! relies on: any corruption of configuration payload is detected when the
//! parser recomputes the checksum.
//!
//! Two kernels share the state update:
//!
//! * **Slice-16** — sixteen 256-entry tables, built at compile time by a
//!   `const fn`, fold sixteen bytes (four configuration words) per chain
//!   step — 16 independent table lookups instead of 128 shift/xor bit
//!   steps. This is the tail/fallback path and the incremental
//!   [`Crc32::push_word`] path.
//! * **Folded** — the CRC update is a serial dependency chain (each step
//!   needs the previous state), and on word-slice inputs that chain, not
//!   the table lookups, is the throughput limit. [`crc_words`] therefore
//!   folds large inputs polynomial-style: each 512-byte super-block is
//!   split into four contiguous 128-byte lanes whose CRC states evolve
//!   **independently** (four interleaved slice-16 chains, 64 bytes per
//!   combined chain step), and the lane states are recombined with
//!   precomputed `x^(8·128k) mod P` advance operators — the same algebra
//!   a carryless-multiply (CLMUL) folding kernel uses, expressed
//!   portably as per-byte xor tables over the reflected polynomial.
//!   Lane combination is exact because the CRC register update is
//!   GF(2)-linear in both state and message.
//!
//! The seed's bitwise loop is frozen in [`baseline`]; both kernels are
//! property-tested equivalent to it (and to each other) on arbitrary
//! inputs, including empty, single-word and non-multiple-of-fold-width
//! tails.
//!
//! On CPUs with hardware CRC-32C support the batch entry points do not
//! run either portable kernel: [`Crc32::push_words`] routes through
//! [`crate::arch`], which detects CPU features once per process and
//! dispatches to an SSE4.2 `crc32q` / PCLMULQDQ folding / ARMv8 `crc32c`
//! kernel when available (the CRC-32C polynomial is natively supported
//! by both ISAs). The portable folded kernel above remains the
//! always-compiled fallback and the `PRFPGA_FORCE_SCALAR=1` path; every
//! variant is property-tested byte-identical to the frozen [`baseline`]
//! in `tests/kernel_matrix.rs`.

/// CRC-32C (Castagnoli) polynomial, reflected form.
const POLY: u32 = 0x82F6_3B78;

/// Slicing lookup tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero
/// bytes, so `k` indexes how far the byte sits from the end of the
/// 16-byte block being folded.
static TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut i = 0usize;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Fold one 32-bit block (4 message bytes, little-endian in `x`, already
/// xored with the running state) through tables `lo..lo+4`.
#[inline(always)]
const fn fold4(x: u32, lo: usize) -> u32 {
    TABLES[lo + 3][(x & 0xFF) as usize]
        ^ TABLES[lo + 2][((x >> 8) & 0xFF) as usize]
        ^ TABLES[lo + 1][((x >> 16) & 0xFF) as usize]
        ^ TABLES[lo][((x >> 24) & 0xFF) as usize]
}

// ------------------------------------------------------ folded kernel
//
// The folded kernel breaks the serial state-update chain by running four
// independent CRC chains over four contiguous lanes of each super-block
// and recombining the lane states algebraically. Recombination uses
// "advance" operators: `advance_n(s)` is the CRC register after feeding
// `n` zero bytes from state `s`, i.e. multiplication of the state
// polynomial by `x^(8n) mod P` in the reflected domain. The operator is
// GF(2)-linear in `s`, so it decomposes into four per-byte xor tables —
// the portable equivalent of a CLMUL fold constant.

/// Words per lane per super-block (128 bytes).
pub(crate) const LANE_WORDS: usize = 32;
/// Lanes per super-block.
pub(crate) const LANES: usize = 4;
/// Words per super-block (512 bytes). Inputs shorter than this take the
/// slice-16 path.
pub(crate) const SUPER_WORDS: usize = LANE_WORDS * LANES;

/// One advance operator: `OP[k][b]` is `advance_n` of the state whose
/// `k`-th byte is `b` and whose other bytes are zero.
pub(crate) type AdvanceOp = [[u32; 256]; 4];

/// Advance `s` by `n` zero bytes, one table step per byte (const builder
/// only — the runtime path uses the precomputed operators).
const fn advance_bytewise(mut s: u32, n: usize) -> u32 {
    let mut i = 0;
    while i < n {
        s = (s >> 8) ^ TABLES[0][(s & 0xFF) as usize];
        i += 1;
    }
    s
}

/// Apply a precomputed advance operator to a state.
#[inline(always)]
pub(crate) fn advance(op: &AdvanceOp, s: u32) -> u32 {
    op[0][(s & 0xFF) as usize]
        ^ op[1][((s >> 8) & 0xFF) as usize]
        ^ op[2][((s >> 16) & 0xFF) as usize]
        ^ op[3][(s >> 24) as usize]
}

/// `const`-compatible [`advance`] for composing operators at build time.
const fn advance_const(op: &AdvanceOp, s: u32) -> u32 {
    op[0][(s & 0xFF) as usize]
        ^ op[1][((s >> 8) & 0xFF) as usize]
        ^ op[2][((s >> 16) & 0xFF) as usize]
        ^ op[3][(s >> 24) as usize]
}

const fn build_advance_op(n: usize) -> AdvanceOp {
    let mut t = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut b = 0;
        while b < 256 {
            t[k][b] = advance_bytewise((b as u32) << (8 * k), n);
            b += 1;
        }
        k += 1;
    }
    t
}

/// Compose two advance operators: `advance_{m+n} = advance_m ∘ advance_n`.
const fn compose_advance_ops(outer: &AdvanceOp, inner: &AdvanceOp) -> AdvanceOp {
    let mut t = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut b = 0;
        while b < 256 {
            t[k][b] = advance_const(outer, inner[k][b]);
            b += 1;
        }
        k += 1;
    }
    t
}

/// `ADVANCE[k-1]` advances a state by `k` lanes (`k·128` zero bytes),
/// i.e. multiplies it by `x^(1024k) mod P`. Built once at compile time:
/// the one-lane operator bytewise, the others by operator composition.
pub(crate) static ADVANCE: [AdvanceOp; LANES - 1] = build_advance_ops();

const fn build_advance_ops() -> [AdvanceOp; LANES - 1] {
    let a1 = build_advance_op(LANE_WORDS * 4);
    let a2 = compose_advance_ops(&a1, &a1);
    let a3 = compose_advance_ops(&a1, &a2);
    [a1, a2, a3]
}

/// Fold one 4-word (16-byte) group into a lane state — the slice-16
/// inner step, shared by all lanes.
#[inline(always)]
fn fold_quad(state: u32, q: &[u32]) -> u32 {
    fold4(state ^ q[0].swap_bytes(), 12)
        ^ fold4(q[1].swap_bytes(), 8)
        ^ fold4(q[2].swap_bytes(), 4)
        ^ fold4(q[3].swap_bytes(), 0)
}

/// Fold a whole number of super-blocks (`words.len()` must be a multiple
/// of [`SUPER_WORDS`]) into `state`. Per super-block: four independent
/// lane chains (64 bytes advance per combined chain step), then one
/// operator application per lane to recombine.
fn fold_super_blocks(mut state: u32, words: &[u32]) -> u32 {
    debug_assert_eq!(words.len() % SUPER_WORDS, 0);
    for block in words.chunks_exact(SUPER_WORDS) {
        let (a, rest) = block.split_at(LANE_WORDS);
        let (b, rest) = rest.split_at(LANE_WORDS);
        let (c, d) = rest.split_at(LANE_WORDS);
        // Lane 0 starts from the running state; lanes 1..3 start from
        // zero and contribute linearly after an advance.
        let mut s0 = state;
        let (mut s1, mut s2, mut s3) = (0u32, 0u32, 0u32);
        for (((qa, qb), qc), qd) in a
            .chunks_exact(4)
            .zip(b.chunks_exact(4))
            .zip(c.chunks_exact(4))
            .zip(d.chunks_exact(4))
        {
            s0 = fold_quad(s0, qa);
            s1 = fold_quad(s1, qb);
            s2 = fold_quad(s2, qc);
            s3 = fold_quad(s3, qd);
        }
        // F(a|b|c|d, s) = adv3(F(a,s)) ^ adv2(F(b,0)) ^ adv1(F(c,0)) ^ F(d,0)
        state = advance(&ADVANCE[2], s0) ^ advance(&ADVANCE[1], s1) ^ advance(&ADVANCE[0], s2) ^ s3;
    }
    state
}

/// Advance a raw CRC state through the slice-16 chain (four words / 16
/// bytes per serial chain step, byte-table tail). The shared scalar
/// update every portable entry point and every SIMD kernel tail is
/// defined against.
#[inline]
pub(crate) fn update_slice16(mut state: u32, words: &[u32]) -> u32 {
    let mut chunks = words.chunks_exact(4);
    for quad in &mut chunks {
        let x0 = state ^ quad[0].swap_bytes();
        let x1 = quad[1].swap_bytes();
        let x2 = quad[2].swap_bytes();
        let x3 = quad[3].swap_bytes();
        state = fold4(x0, 12) ^ fold4(x1, 8) ^ fold4(x2, 4) ^ fold4(x3, 0);
    }
    for &w in chunks.remainder() {
        state = fold4(state ^ w.swap_bytes(), 0);
    }
    state
}

/// Advance a raw CRC state over a word slice with the portable folded
/// kernel (four-lane fold on whole super-blocks, slice-16 tail). This is
/// the scalar end of the [`crate::arch`] dispatch table and the
/// always-compiled fallback on CPUs without hardware CRC support.
#[inline]
pub(crate) fn update_portable(mut state: u32, words: &[u32]) -> u32 {
    let split = words.len() - words.len() % SUPER_WORDS;
    if split > 0 {
        state = fold_super_blocks(state, &words[..split]);
    }
    update_slice16(state, &words[split..])
}

/// Reflected fold constant for the carryless-multiply kernels:
/// `rev32(x^bits mod P) << 1`, the form a `PCLMULQDQ`/`PMULL` folding
/// step multiplies a 64-bit accumulator half by. Derived from the same
/// `advance_bytewise` machinery as the table operators (advancing the
/// state `rev32(1)` by `bits/8` zero bytes multiplies it by `x^bits`),
/// so the constants share the property-tested CRC algebra rather than
/// being transcribed from a reference table. `bits` must be a positive
/// multiple of 8.
pub(crate) const fn clmul_fold_const(bits: u32) -> u64 {
    (advance_bytewise(0x8000_0000, (bits / 8) as usize) as u64) << 1
}

/// Incremental CRC accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb one configuration word (big-endian byte order, as
    /// transmitted to the ICAP). Slice-by-4: four table lookups.
    #[inline]
    pub fn push_word(&mut self, word: u32) {
        // The word's big-endian bytes, first-transmitted byte lowest.
        self.state = fold4(self.state ^ word.swap_bytes(), 0);
    }

    /// Absorb a slice of configuration words — the batch fast path used
    /// by [`crc_words`] and the bitstream writer.
    ///
    /// Routes through the [`crate::arch`] dispatch table: hardware
    /// CRC-32C / carryless-multiply kernels where the CPU supports them,
    /// otherwise the portable path (inputs of at least one super-block /
    /// 512 bytes go through the four-lane folded kernel; the remainder
    /// and short inputs take the slice-16 chain). Every kernel computes
    /// the same CRC, so results are independent of how a stream is split
    /// across calls and of which CPU runs it.
    #[inline]
    pub fn push_words(&mut self, words: &[u32]) {
        self.state = crate::arch::crc_update(self.state, words);
    }

    /// Absorb a slice of configuration words through the slice-16 chain
    /// only (four words / 16 bytes folded per serial chain step),
    /// regardless of length. This is the folded kernel's tail path, kept
    /// callable on its own as the benchmark baseline and equivalence
    /// oracle for the fold.
    #[inline]
    pub fn push_words_slice16(&mut self, words: &[u32]) {
        self.state = update_slice16(self.state, words);
    }

    /// Absorb raw bytes in transmission order. Byte-granular entry point
    /// (the word-based API is the hardware-faithful one; this exists for
    /// byte-aligned vectors and tail handling).
    #[inline]
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(16);
        for c in &mut chunks {
            let x0 = self.state ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let x1 = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            let x2 = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
            let x3 = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
            self.state = fold4(x0, 12) ^ fold4(x1, 8) ^ fold4(x2, 4) ^ fold4(x3, 0);
        }
        for &b in chunks.remainder() {
            self.state =
                (self.state >> 8) ^ TABLES[0][((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// Final checksum value.
    pub fn value(&self) -> u32 {
        !self.state
    }
}

/// Checksum a word slice in one call through the runtime-dispatched
/// kernel (hardware CRC / carryless multiply where available, otherwise
/// the folded kernel for ≥512-byte inputs with a slice-16 tail).
pub fn crc_words(words: &[u32]) -> u32 {
    let mut crc = Crc32::new();
    crc.push_words(words);
    crc.value()
}

/// Checksum a word slice through the slice-16 chain only — the
/// pre-folding kernel, kept as the fold's benchmark baseline.
pub fn crc_words_slice16(words: &[u32]) -> u32 {
    let mut crc = Crc32::new();
    crc.push_words_slice16(words);
    crc.value()
}

/// Checksum a word slice, forcing the portable folded kernel over every
/// complete super-block regardless of CPU features (equivalent to
/// [`crc_words`]; exists so benchmarks and equivalence tests can name
/// the folded path explicitly).
pub fn crc_words_folded(words: &[u32]) -> u32 {
    !update_portable(0xFFFF_FFFF, words)
}

/// Checksum a byte slice in one call (16 bytes folded per step).
pub fn crc_bytes(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.push_bytes(bytes);
    crc.value()
}

pub mod baseline {
    //! The seed's bitwise CRC, frozen as the equivalence oracle and the
    //! "before" side of the `crc_slice8` benchmark. One shift/xor step
    //! per bit, 32 steps per word — do not use outside tests/benches.

    use super::POLY;

    /// Bitwise (one bit per step) CRC-32C accumulator.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BitwiseCrc32 {
        state: u32,
    }

    impl Default for BitwiseCrc32 {
        fn default() -> Self {
            Self::new()
        }
    }

    impl BitwiseCrc32 {
        /// Fresh accumulator.
        pub fn new() -> Self {
            BitwiseCrc32 { state: 0xFFFF_FFFF }
        }

        /// Absorb one configuration word, bit by bit (the seed loop).
        pub fn push_word(&mut self, word: u32) {
            for byte in word.to_be_bytes() {
                self.push_byte(byte);
            }
        }

        /// Absorb one byte, bit by bit.
        pub fn push_byte(&mut self, byte: u8) {
            self.state ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (self.state & 1).wrapping_neg();
                self.state = (self.state >> 1) ^ (POLY & mask);
            }
        }

        /// Final checksum value.
        pub fn value(&self) -> u32 {
            !self.state
        }
    }

    /// Checksum a word slice with the seed's bitwise loop.
    pub fn crc_words_bitwise(words: &[u32]) -> u32 {
        let mut crc = BitwiseCrc32::new();
        for &w in words {
            crc.push_word(w);
        }
        crc.value()
    }

    /// Checksum a byte slice with the seed's bitwise loop.
    pub fn crc_bytes_bitwise(bytes: &[u8]) -> u32 {
        let mut crc = BitwiseCrc32::new();
        for &b in bytes {
            crc.push_byte(b);
        }
        crc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::baseline::{crc_bytes_bitwise, crc_words_bitwise};
    use super::*;
    use proptest::prelude::*;

    /// The standard CRC-32C check vector: CRC of the ASCII bytes
    /// "123456789" is 0xE3069283 (RFC 3720 / Castagnoli reference).
    /// Both the slice-by-8 and the frozen bitwise implementation must
    /// reproduce it.
    #[test]
    fn known_vector() {
        let msg = b"123456789";
        assert_eq!(crc_bytes(msg), 0xE306_9283);
        assert_eq!(crc_bytes_bitwise(msg), 0xE306_9283);
        // Word-level: the first 8 bytes as two big-endian words plus the
        // trailing '9' byte must accumulate to the same checksum.
        let mut crc = Crc32::new();
        crc.push_words(&[0x3132_3334, 0x3536_3738]);
        crc.push_bytes(b"9");
        assert_eq!(crc.value(), 0xE306_9283);
    }

    #[test]
    fn detects_single_bit_flips() {
        let words = [0xDEAD_BEEF, 0x1234_5678, 0x0000_0000, 0xFFFF_FFFF];
        let base = crc_words(&words);
        for i in 0..words.len() {
            for bit in [0, 7, 15, 31] {
                let mut corrupted = words;
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc_words(&corrupted), base, "flip word {i} bit {bit}");
            }
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let words = [1u32, 2, 3, 4, 5];
        let mut inc = Crc32::new();
        for &w in &words {
            inc.push_word(w);
        }
        assert_eq!(inc.value(), crc_words(&words));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc_words(&[]), 0);
        assert_eq!(crc_bytes(&[]), 0);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc_words(&[1, 2]), crc_words(&[2, 1]));
    }

    #[test]
    fn mixed_incremental_chunking_is_stable() {
        // Split the same stream arbitrarily across push_word/push_words
        // calls: odd/even split points exercise the chunk remainders, and
        // splits near 128/256 words exercise the super-block boundary of
        // the folded kernel.
        let words: Vec<u32> = (0..300u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let oneshot = crc_words(&words);
        for split in [0, 1, 2, 7, 16, 32, 33, 127, 128, 129, 255, 256, 257, 300] {
            let mut crc = Crc32::new();
            crc.push_words(&words[..split]);
            for &w in &words[split..] {
                crc.push_word(w);
            }
            assert_eq!(crc.value(), oneshot, "split at {split}");
        }
    }

    /// The folded kernel must agree with slice-16 and the frozen bitwise
    /// loop at every length around its dispatch boundaries: empty, one
    /// word, one short of / exactly / one past each super-block multiple,
    /// and ragged tails.
    #[test]
    fn folded_kernel_boundary_lengths() {
        let words: Vec<u32> = (0..1100u32).map(|i| i.wrapping_mul(0x6C07_8965)).collect();
        for len in [
            0usize, 1, 2, 3, 4, 5, 31, 32, 63, 127, 128, 129, 130, 255, 256, 257, 383, 384, 511,
            512, 513, 516, 639, 640, 1024, 1100,
        ] {
            let s = &words[..len];
            let folded = crc_words_folded(s);
            assert_eq!(folded, crc_words_slice16(s), "folded vs slice16 at {len}");
            assert_eq!(folded, crc_words_bitwise(s), "folded vs bitwise at {len}");
            assert_eq!(folded, crc_words(s), "folded vs dispatch at {len}");
        }
    }

    /// The standard check vector, carried through the folded path: a
    /// stream long enough to engage the fold, followed by "123456789",
    /// must produce the same checksum whichever kernel absorbed the
    /// prefix — and the pure 9-byte vector still hits 0xE3069283 through
    /// the dispatching entry points.
    #[test]
    fn check_vector_through_folded_path() {
        let prefix: Vec<u32> = (0..640u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let mut folded = Crc32::new();
        folded.push_words(&prefix); // ≥ SUPER_WORDS: folded kernel
        folded.push_bytes(b"123456789");
        let mut sliced = Crc32::new();
        sliced.push_words_slice16(&prefix);
        sliced.push_bytes(b"123456789");
        assert_eq!(folded.value(), sliced.value());
        assert_eq!(crc_bytes(b"123456789"), 0xE306_9283);
    }

    proptest! {
        /// Property: slice-by-8 ≡ the seed's bitwise loop on arbitrary
        /// word slices.
        #[test]
        fn slice8_equals_bitwise_on_words(words in proptest::collection::vec(any::<u32>(), 0..300)) {
            prop_assert_eq!(crc_words(&words), crc_words_bitwise(&words));
        }

        /// Property: folded kernel ≡ slice-16 ≡ the frozen bitwise loop
        /// on arbitrary-length word slices (lengths span several
        /// super-blocks plus ragged tails).
        #[test]
        fn folded_equals_slice16_and_bitwise(words in proptest::collection::vec(any::<u32>(), 0..700)) {
            let folded = crc_words_folded(&words);
            prop_assert_eq!(folded, crc_words_slice16(&words));
            prop_assert_eq!(folded, crc_words_bitwise(&words));
        }

        /// Property: byte-granular slice-by-8 ≡ bitwise on arbitrary byte
        /// slices (exercises the non-multiple-of-8 tails).
        #[test]
        fn slice8_equals_bitwise_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
            prop_assert_eq!(crc_bytes(&bytes), crc_bytes_bitwise(&bytes));
        }

        /// Property: word API ≡ byte API on the big-endian transmission
        /// byte stream.
        #[test]
        fn words_equal_their_be_bytes(words in proptest::collection::vec(any::<u32>(), 0..200)) {
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
            prop_assert_eq!(crc_words(&words), crc_bytes(&bytes));
        }
    }
}
