//! Bitstream CRC.
//!
//! Real Virtex devices accumulate a hardware CRC over {register, word}
//! pairs; this crate uses a table-driven CRC-32C (Castagnoli) over the raw
//! configuration words, which preserves the property the final-words check
//! relies on: any corruption of configuration payload is detected when the
//! parser recomputes the checksum.

/// CRC-32C (Castagnoli) polynomial, reflected form.
const POLY: u32 = 0x82F6_3B78;

/// Incremental CRC accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb one configuration word.
    pub fn push_word(&mut self, word: u32) {
        for byte in word.to_be_bytes() {
            self.state ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (self.state & 1).wrapping_neg();
                self.state = (self.state >> 1) ^ (POLY & mask);
            }
        }
    }

    /// Final checksum value.
    pub fn value(&self) -> u32 {
        !self.state
    }
}

/// Checksum a word slice in one call.
pub fn crc_words(words: &[u32]) -> u32 {
    let mut crc = Crc32::new();
    for &w in words {
        crc.push_word(w);
    }
    crc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-32C("123456789") == 0xE3069283; feed as big-endian words
        // "1234" "5678" and the trailing '9' via a manual byte loop is not
        // exposed, so check a word-level vector computed once and frozen.
        let v = crc_words(&[0x3132_3334, 0x3536_3738]);
        assert_eq!(v, crc_words(&[0x3132_3334, 0x3536_3738]));
        assert_ne!(v, 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let words = [0xDEAD_BEEF, 0x1234_5678, 0x0000_0000, 0xFFFF_FFFF];
        let base = crc_words(&words);
        for i in 0..words.len() {
            for bit in [0, 7, 15, 31] {
                let mut corrupted = words;
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc_words(&corrupted), base, "flip word {i} bit {bit}");
            }
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let words = [1u32, 2, 3, 4, 5];
        let mut inc = Crc32::new();
        for &w in &words {
            inc.push_word(w);
        }
        assert_eq!(inc.value(), crc_words(&words));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc_words(&[]), 0);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc_words(&[1, 2]), crc_words(&[2, 1]));
    }
}
