//! Human-readable bitstream structure dump (the paper's Fig. 2).

use crate::packet::{Command, ConfigRegister, Packet, SYNC_WORD};
use crate::parser::{parse_words, ParsedBitstream};
use crate::writer::PartialBitstream;
use std::fmt::Write as _;

/// Render a Fig.-2-style annotated structure dump of a partial bitstream:
/// the initial words, each per-row FAR/FDRI block with its frame counts,
/// BRAM initialization blocks, and the final words.
pub fn dump_structure(bs: &PartialBitstream) -> String {
    let parsed = parse_words(&bs.words, false);
    let mut out = String::new();
    let geom = &bs.spec.organization.family.params().frames;
    let _ = writeln!(
        out,
        "Partial bitstream for `{}` on `{}` ({})",
        bs.spec.module,
        bs.spec.device,
        bs.spec.organization.family.name()
    );
    let o = &bs.spec.organization;
    let _ = writeln!(
        out,
        "PRR: H={} W_CLB={} W_DSP={} W_BRAM={} at column {}, row {}",
        o.height, o.clb_cols, o.dsp_cols, o.bram_cols, bs.spec.start_col, bs.spec.start_row
    );
    let _ = writeln!(
        out,
        "{} words = {} bytes (frame = {} words)",
        bs.words.len(),
        bs.len_bytes(),
        geom.fr_size
    );
    out.push('\n');

    // Initial words.
    let _ = writeln!(out, "-- initial words (IW = {}) --", geom.iw);
    for (i, &w) in bs.words.iter().take(geom.iw as usize).enumerate() {
        let note = annotate(w, bs.words.get(i.wrapping_sub(1)).copied());
        let _ = writeln!(out, "  {i:>6}  {w:#010x}  {note}");
    }

    match parsed {
        Ok(p) => summarize_blocks(&mut out, bs, &p),
        Err(e) => {
            let _ = writeln!(out, "  <unparseable: {e}>");
        }
    }

    // Final words.
    let n = bs.words.len();
    let _ = writeln!(out, "-- final words (FW = {}) --", geom.fw);
    for (i, &w) in bs.words.iter().enumerate().skip(n - geom.fw as usize) {
        let note = annotate(w, bs.words.get(i.wrapping_sub(1)).copied());
        let _ = writeln!(out, "  {i:>6}  {w:#010x}  {note}");
    }
    out
}

fn summarize_blocks(out: &mut String, bs: &PartialBitstream, parsed: &ParsedBitstream) {
    let geom = &bs.spec.organization.family.params().frames;
    for w in &parsed.frame_writes {
        let frames = w.words / geom.fr_size;
        let kind = match w.far.block {
            crate::far::BlockType::Config => "configuration",
            crate::far::BlockType::BramContent => "BRAM initialization",
        };
        let _ = writeln!(
            out,
            "-- row {} {kind}: FAR(col {}, minor {}), FAR_FDRI = {} words, \
             {} frames x {} words = {} payload words --",
            w.far.row, w.far.column, w.far.minor, geom.far_fdri, frames, geom.fr_size, w.words
        );
    }
    let _ = writeln!(
        out,
        "-- CRC {} --",
        if parsed.crc_ok { "OK" } else { "MISMATCH" }
    );
}

fn annotate(word: u32, _prev: Option<u32>) -> &'static str {
    if word == SYNC_WORD {
        return "SYNC";
    }
    if word == 0xFFFF_FFFF {
        return "dummy";
    }
    if word == 0x0000_00BB {
        return "bus width sync";
    }
    if word == 0x1122_0044 {
        return "bus width detect";
    }
    match Packet::decode(word) {
        Some(Packet::Noop) => "NOOP",
        Some(Packet::Type1Write {
            register: ConfigRegister::Cmd,
            ..
        }) => "T1 write CMD",
        Some(Packet::Type1Write {
            register: ConfigRegister::Far,
            ..
        }) => "T1 write FAR",
        Some(Packet::Type1Write {
            register: ConfigRegister::Fdri,
            ..
        }) => "T1 write FDRI",
        Some(Packet::Type1Write {
            register: ConfigRegister::Idcode,
            ..
        }) => "T1 write IDCODE",
        Some(Packet::Type1Write {
            register: ConfigRegister::Crc,
            ..
        }) => "T1 write CRC",
        Some(Packet::Type1Write { .. }) => "T1 write",
        Some(Packet::Type2Write { .. }) => "T2 write",
        None => match Command::from_code(word) {
            Some(Command::Rcrc) => "RCRC",
            Some(Command::Wcfg) => "WCFG",
            Some(Command::Desync) => "DESYNC",
            Some(Command::Start) => "START",
            Some(Command::Lfrm) => "LFRM",
            _ => "",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{generate, BitstreamSpec};
    use fabric::database::xc5vlx110t;
    use prcost::search::plan_prr;
    use synth::PaperPrm;

    #[test]
    fn dump_contains_structure_sections() {
        let device = xc5vlx110t();
        let plan = plan_prr(&PaperPrm::Mips.synth_report(device.family()), &device).unwrap();
        let spec =
            BitstreamSpec::from_plan(device.name(), "mips_r3000", plan.organization, &plan.window);
        let bs = generate(&spec).unwrap();
        let dump = dump_structure(&bs);
        assert!(dump.contains("initial words (IW = 16)"));
        assert!(dump.contains("final words (FW = 14)"));
        assert!(dump.contains("SYNC"));
        assert!(dump.contains("DESYNC"));
        assert!(dump.contains("BRAM initialization"));
        assert!(dump.contains("CRC OK"));
        assert!(dump.contains("configuration"));
    }
}
