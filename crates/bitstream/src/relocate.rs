//! Partial bitstream relocation (HTR, the authors' ARC'13 system).
//!
//! Hardware task relocation moves a PRM between *compatible* PRRs — same
//! height and the same left-to-right column-kind sequence — by rewriting
//! the frame addresses in its partial bitstream; the frame payload (and
//! therefore the CRC, which covers only payload) is reused unchanged.
//! Vertical relocation is the common case on Virtex-5-class fabrics,
//! where every fabric row has identical column structure.

use crate::far::FrameAddress;
use crate::packet::{ConfigRegister, Packet};
use crate::writer::PartialBitstream;
use core::fmt;
use fabric::{Device, Window};

/// Relocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocateError {
    /// Source and target windows have different shapes or column mixes.
    Incompatible {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The target window does not fit the device.
    OutOfBounds,
    /// The stream contains a FAR outside the source window.
    ForeignFrameAddress {
        /// The offending address.
        far: FrameAddress,
    },
    /// Two moves in one batch target overlapping fabric regions.
    TargetOverlap {
        /// Index of the earlier conflicting move in the batch.
        first: usize,
        /// Index of the later conflicting move in the batch.
        second: usize,
    },
}

impl fmt::Display for RelocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelocateError::Incompatible { reason } => {
                write!(f, "windows are not relocation-compatible: {reason}")
            }
            RelocateError::OutOfBounds => write!(f, "target window exceeds the device"),
            RelocateError::ForeignFrameAddress { far } => {
                write!(f, "bitstream addresses a frame outside its PRR: {far:?}")
            }
            RelocateError::TargetOverlap { first, second } => {
                write!(
                    f,
                    "batch moves {first} and {second} target overlapping regions"
                )
            }
        }
    }
}

impl std::error::Error for RelocateError {}

/// Whether a PRM configured for `source` can be relocated into `target`:
/// identical height and identical column-kind sequence (HTR's
/// compatibility condition).
pub fn compatible(source: &Window, target: &Window) -> bool {
    source.height == target.height && source.columns == target.columns
}

/// Relocate `bs` from its recorded window to `target` on `device`,
/// rewriting every FAR write in place. The payload — and hence the CRC —
/// is byte-identical; only addressing changes.
///
/// ```
/// use bitstream::{generate, relocate, BitstreamSpec};
/// use fabric::database::xc5vlx110t;
/// use synth::PaperPrm;
///
/// let device = xc5vlx110t();
/// let plan = prcost::plan_prr(&PaperPrm::Sdram.synth_report(device.family()), &device).unwrap();
/// let spec = BitstreamSpec::from_plan(device.name(), "sdram", plan.organization, &plan.window);
/// let bs = generate(&spec).unwrap();
/// // Move the PRM up one fabric row (vertical relocation, HTR-style).
/// let mut target = plan.window.clone();
/// target.row += 1;
/// let moved = relocate(&bs, &device, &target).unwrap();
/// assert_eq!(moved.words.len(), bs.words.len());
/// ```
pub fn relocate(
    bs: &PartialBitstream,
    device: &Device,
    target: &Window,
) -> Result<PartialBitstream, RelocateError> {
    let source = Window {
        start_col: bs.spec.start_col as usize,
        width: bs.spec.columns.len() as u32,
        row: bs.spec.start_row,
        height: bs.spec.organization.height,
        columns: bs.spec.columns.clone(),
    };
    if !compatible(&source, target) {
        let reason = if source.height != target.height {
            "heights differ"
        } else {
            "column-kind sequences differ"
        };
        return Err(RelocateError::Incompatible { reason });
    }
    if target.end_col() > device.width()
        || device.check_row_span(target.row, target.height).is_err()
    {
        return Err(RelocateError::OutOfBounds);
    }

    let col_delta = target.start_col as i64 - source.start_col as i64;
    let row_delta = i64::from(target.row) - i64::from(source.row);

    let mut words = bs.words.clone();
    let far_header = Packet::Type1Write {
        register: ConfigRegister::Far,
        word_count: 1,
    }
    .encode();
    let mut i = 0;
    while i + 1 < words.len() {
        if words[i] == far_header {
            let Some(far) = FrameAddress::decode(words[i + 1]) else {
                i += 1;
                continue;
            };
            let in_cols = (far.column as i64) >= source.start_col as i64
                && (far.column as i64) < source.end_col() as i64 + 16; // minor spill margin
            let in_rows = far.row >= source.row && far.row <= source.top_row();
            if !(in_cols && in_rows) {
                return Err(RelocateError::ForeignFrameAddress { far });
            }
            let moved = FrameAddress {
                row: (i64::from(far.row) + row_delta) as u32,
                column: (i64::from(far.column) + col_delta) as u32,
                ..far
            };
            words[i + 1] = moved.encode();
            i += 2;
        } else {
            i += 1;
        }
    }

    let mut spec = (*bs.spec).clone();
    spec.start_col = target.start_col as u32;
    spec.start_row = target.row;
    Ok(PartialBitstream {
        spec: std::sync::Arc::new(spec),
        words,
    })
}

/// Whether two windows claim at least one common fabric cell.
fn overlaps(a: &Window, b: &Window) -> bool {
    a.start_col < b.end_col()
        && b.start_col < a.end_col()
        && a.row <= b.top_row()
        && b.row <= a.top_row()
}

/// Relocate a planned move set atomically: every move is validated
/// (compatibility, device bounds, pairwise-disjoint *targets*) before any
/// stream is rewritten, so a defrag plan either applies in full or not at
/// all. Targets may overlap other moves' *source* windows — the planner
/// schedules the ICAP writes sequentially, and by the time a later move's
/// frames land, the earlier occupant has already been rewritten elsewhere.
pub fn relocate_batch(
    device: &Device,
    moves: &[(&PartialBitstream, Window)],
) -> Result<Vec<PartialBitstream>, RelocateError> {
    for (second, (_, target)) in moves.iter().enumerate() {
        for (first, (_, earlier)) in moves.iter().enumerate().take(second) {
            if overlaps(earlier, target) {
                return Err(RelocateError::TargetOverlap { first, second });
            }
        }
    }
    // Dry-run every move before committing any result; `relocate` itself
    // leaves its input untouched, so validation and application coincide.
    moves
        .iter()
        .map(|(bs, target)| relocate(bs, device, target))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::load_bitstream;
    use crate::writer::{generate, BitstreamSpec};
    use fabric::database::xc5vlx110t;
    use fabric::Family;
    use prcost::search::plan_prr;
    use synth::PaperPrm;

    fn mips_stream() -> (fabric::Device, PartialBitstream) {
        let device = xc5vlx110t();
        let plan = plan_prr(&PaperPrm::Mips.synth_report(Family::Virtex5), &device).unwrap();
        let spec =
            BitstreamSpec::from_plan(device.name(), "mips_r3000", plan.organization, &plan.window);
        (device.clone(), generate(&spec).unwrap())
    }

    fn shifted(bs: &PartialBitstream, rows_up: u32) -> Window {
        Window {
            start_col: bs.spec.start_col as usize,
            width: bs.spec.columns.len() as u32,
            row: bs.spec.start_row + rows_up,
            height: bs.spec.organization.height,
            columns: bs.spec.columns.clone(),
        }
    }

    #[test]
    fn vertical_relocation_preserves_payload_and_crc() {
        let (device, bs) = mips_stream();
        let target = shifted(&bs, 4);
        let moved = relocate(&bs, &device, &target).unwrap();

        // Same length; only FAR words differ.
        assert_eq!(moved.words.len(), bs.words.len());
        let diffs = bs
            .words
            .iter()
            .zip(&moved.words)
            .filter(|(a, b)| a != b)
            .count();
        // One FAR value per config row + per BRAM row = 2 rows here.
        assert_eq!(diffs, 2, "exactly the FAR values change");

        // Both streams load successfully (CRC intact) and carry identical
        // frame contents at row-shifted addresses.
        let p0 = load_bitstream(device.params().frames, &bs.words).unwrap();
        let p1 = load_bitstream(device.params().frames, &moved.words).unwrap();
        assert_eq!(p0.memory().frame_count(), p1.memory().frame_count());
        for far in p0.memory().addresses() {
            let shifted_far = FrameAddress {
                row: far.row + 4,
                ..far
            };
            assert_eq!(
                p0.memory().frame(far),
                p1.memory().frame(shifted_far),
                "frame moved intact"
            );
        }
    }

    #[test]
    fn incompatible_windows_are_rejected() {
        let (device, bs) = mips_stream();
        let mut wrong_height = shifted(&bs, 1);
        wrong_height.height += 1;
        assert!(matches!(
            relocate(&bs, &device, &wrong_height),
            Err(RelocateError::Incompatible {
                reason: "heights differ"
            })
        ));

        let mut wrong_cols = shifted(&bs, 1);
        wrong_cols.columns[0] = fabric::ResourceKind::Clb;
        wrong_cols.columns[5] = fabric::ResourceKind::Bram;
        assert!(matches!(
            relocate(&bs, &device, &wrong_cols),
            Err(RelocateError::Incompatible { .. })
        ));
    }

    #[test]
    fn out_of_bounds_target_is_rejected() {
        let (device, bs) = mips_stream();
        let target = shifted(&bs, 8); // row 9 of an 8-row device
        assert_eq!(
            relocate(&bs, &device, &target),
            Err(RelocateError::OutOfBounds)
        );
    }

    #[test]
    fn batch_matches_individual_relocations() {
        let (device, bs) = mips_stream();
        let h = bs.spec.organization.height;
        let moves = vec![(&bs, shifted(&bs, h)), (&bs, shifted(&bs, 2 * h))];
        let batch = relocate_batch(&device, &moves).unwrap();
        assert_eq!(batch.len(), 2);
        for (out, (src, target)) in batch.iter().zip(&moves) {
            assert_eq!(out.words, relocate(src, &device, target).unwrap().words);
        }
    }

    #[test]
    fn batch_rejects_overlapping_targets() {
        let (device, bs) = mips_stream();
        let h = bs.spec.organization.height;
        let moves = vec![(&bs, shifted(&bs, h)), (&bs, shifted(&bs, h))];
        assert_eq!(
            relocate_batch(&device, &moves),
            Err(RelocateError::TargetOverlap {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn batch_allows_target_over_another_moves_source() {
        // First move stays put (its target covers both streams' source
        // window); second vacates upward. Source overlap is fine — only
        // *target* regions must be pairwise disjoint.
        let (device, bs) = mips_stream();
        let h = bs.spec.organization.height;
        let moves = vec![(&bs, shifted(&bs, 0)), (&bs, shifted(&bs, h))];
        assert!(relocate_batch(&device, &moves).is_ok());
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let (device, bs) = mips_stream();
        let h = bs.spec.organization.height;
        let moves = vec![(&bs, shifted(&bs, h)), (&bs, shifted(&bs, 100))];
        assert_eq!(
            relocate_batch(&device, &moves),
            Err(RelocateError::OutOfBounds)
        );
    }

    #[test]
    fn relocated_stream_can_be_relocated_back() {
        let (device, bs) = mips_stream();
        let there = relocate(&bs, &device, &shifted(&bs, 3)).unwrap();
        let back_window = shifted(&bs, 0);
        let back = relocate(&there, &device, &back_window).unwrap();
        assert_eq!(back.words, bs.words, "round-trip is the identity");
    }
}
