//! Configuration readback and hardware-task context save/restore.
//!
//! The paper's authors' companion work (\[5\] "On-chip context save and
//! restore of hardware tasks", FCCM'13; \[6\] "HTR: on-chip hardware task
//! relocation", ARC'13) preempts running PRMs by reading their state out
//! through the configuration plane (FDRO), reconfiguring the PRR, and
//! later writing the state back (with `GCAPTURE`/`GRESTORE` bracketing).
//! This module models that machinery on top of the same frame geometry as
//! the Eq. 18 model:
//!
//! * a *context save* reads every configuration frame of the PRR (the FF
//!   capture values live in the CLB frames) plus the BRAM content frames;
//! * a *context restore* is a partial-bitstream write of the same frames
//!   plus the `GRESTORE` command sequence;
//! * task *relocation* = save from one PRR + restore into a compatible
//!   PRR (same organization).

use crate::icap::IcapModel;
use prcost::PrrOrganization;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Cost model for context save/restore of one PRR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextCost {
    /// Words read back on save (per whole-PRR capture).
    pub save_words: u64,
    /// Words written on restore.
    pub restore_words: u64,
    /// Bytes per configuration word.
    pub bytes_per_word: u64,
}

impl ContextCost {
    /// Bytes transferred by a save.
    pub fn save_bytes(&self) -> u64 {
        self.save_words * self.bytes_per_word
    }

    /// Bytes transferred by a restore.
    pub fn restore_bytes(&self) -> u64 {
        self.restore_words * self.bytes_per_word
    }

    /// Save time through `icap`.
    pub fn save_time(&self, icap: &IcapModel) -> Duration {
        icap.transfer_time(self.save_bytes())
    }

    /// Restore time through `icap`.
    pub fn restore_time(&self, icap: &IcapModel) -> Duration {
        icap.transfer_time(self.restore_bytes())
    }

    /// Full context-switch time for task relocation: save + restore (the
    /// replacement bitstream write is costed separately by Eq. 18).
    pub fn relocation_time(&self, icap: &IcapModel) -> Duration {
        self.save_time(icap) + self.restore_time(icap)
    }
}

/// Context-transfer cost for a PRR organization.
///
/// The word counts come from [`prcost::context_breakdown`] — the byte
/// model lives beside the Eq. 18–23 model in `prcost::bits`; this wrapper
/// adds ICAP time pricing (readback returns one pipelining pad frame
/// before the payload, so the frame counts match the Eq. 19/23 terms; the
/// command overhead differs: `GCAPTURE`/`FDRO` vs `FAR_FDRI`).
pub fn context_cost(org: &PrrOrganization) -> ContextCost {
    let b = prcost::context_breakdown(org);
    ContextCost {
        save_words: b.save_words,
        restore_words: b.restore_words,
        bytes_per_word: b.bytes_per_word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Family;

    fn org(h: u32, clb: u32, dsp: u32, bram: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: h,
            clb_cols: clb,
            dsp_cols: dsp,
            bram_cols: bram,
        }
    }

    #[test]
    fn save_and_restore_scale_with_prr() {
        let small = context_cost(&org(1, 2, 0, 0));
        let big = context_cost(&org(4, 8, 1, 2));
        assert!(big.save_bytes() > small.save_bytes());
        assert!(big.restore_bytes() > small.restore_bytes());
    }

    #[test]
    fn restore_costs_slightly_more_than_a_plain_write() {
        let o = org(2, 4, 1, 1);
        let plain = prcost::bitstream_size_bytes(&o);
        let ctx = context_cost(&o);
        assert!(ctx.restore_bytes() > plain);
        assert!(
            ctx.restore_bytes() < plain + 100,
            "only command overhead on top"
        );
    }

    #[test]
    fn save_is_cheaper_than_restore() {
        // Readback skips the FAR_FDRI-heavy write framing per row but pays
        // its own capture overhead; for BRAM-less PRRs the two are close,
        // with restore >= save.
        let o = org(3, 6, 1, 0);
        let ctx = context_cost(&o);
        assert!(ctx.save_bytes() <= ctx.restore_bytes());
    }

    #[test]
    fn relocation_time_is_sum_of_parts() {
        let o = org(1, 17, 1, 2); // MIPS/V5 PRR
        let ctx = context_cost(&o);
        let icap = IcapModel::V5_DMA;
        let total = ctx.relocation_time(&icap);
        assert_eq!(total, ctx.save_time(&icap) + ctx.restore_time(&icap));
        // Paper-scale sanity: relocating the MIPS PRR is sub-millisecond
        // on a DMA-fed ICAP.
        assert!(total < Duration::from_millis(1));
    }

    #[test]
    fn spartan6_uses_two_byte_words() {
        let o = PrrOrganization {
            family: Family::Spartan6,
            height: 1,
            clb_cols: 4,
            dsp_cols: 0,
            bram_cols: 1,
        };
        assert_eq!(context_cost(&o).bytes_per_word, 2);
    }
}
