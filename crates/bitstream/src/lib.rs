//! # `bitstream` — Virtex-style partial bitstream substrate
//!
//! The paper validates its bitstream-size cost model against the partial
//! bitstreams emitted by Xilinx bitgen. bitgen is unavailable here, so this
//! crate implements a configuration-bitstream **writer and parser** with the
//! exact structure of the paper's Fig. 2 (and of UG191 §6, which Fig. 2
//! summarizes):
//!
//! ```text
//! [ initial words: dummies, bus-width sync, SYNC, RCRC, IDCODE, WCFG ]
//! per PRR row:
//!   [ FAR write | FDRI type-1 | type-2 word count | pad ]   (FAR_FDRI words)
//!   [ (frames + 1) x FR_size configuration words ]
//!   if the PRR has BRAM columns:
//!     [ FAR write (block type 1) ... ]                      (FAR_FDRI words)
//!     [ (W_BRAM x DF_BRAM + 1) x FR_size initialization words ]
//! [ final words: CRC, LFRM, START, DESYNC ]
//! ```
//!
//! The structural constants (`IW`, `FW`, `FAR_FDRI`, `FR_size`, frames per
//! column) come from [`fabric::FrameGeometry`], so **the byte length of a
//! generated bitstream equals the `prcost::bits` model's prediction exactly**
//! — a cross-crate property test enforces this byte-for-byte over random
//! PRRs. The crate also provides the [`icap`] transfer model used to turn
//! bitstream bytes into reconfiguration time for the `multitask` simulator.

// `deny` rather than `forbid`: the `arch` module's SIMD kernels carry
// narrowly-scoped `#[allow(unsafe_code)]` with per-site SAFETY comments;
// everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod cm;
pub mod crc;
pub mod dump;
pub mod far;
pub mod icap;
pub mod packet;
pub mod parser;
pub mod readback;
pub mod relocate;
pub mod writer;

pub use cm::{load_bitstream, ConfigMemory, ConfigPort};
pub use far::FrameAddress;
pub use icap::IcapModel;
pub use packet::{Command, ConfigRegister, Packet};
pub use parser::{parse, ParseError, ParsedBitstream};
pub use readback::{context_cost, ContextCost};
pub use relocate::{compatible, relocate, relocate_batch, RelocateError};
pub use writer::{
    digest_batch, emit_arc_into, emit_into, emit_into_with, emitted_words, generate, generate_arc,
    generate_batch, generate_owned, generate_with, BitstreamDigest, BitstreamSpec, EmitScratch,
    PartialBitstream,
};
