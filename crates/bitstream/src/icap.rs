//! ICAP transfer model: bitstream bytes → reconfiguration time.
//!
//! PRR reconfiguration time is dominated by pushing the partial bitstream
//! through the internal configuration access port. Following Claus et
//! al. \[1\] (cited by the paper), the achievable throughput is the port's
//! ideal rate (width x clock) derated by a *busy factor* modeling shared-
//! resource contention; Duhem et al.'s FaRM \[2\] raises the effective rate
//! with burst/prefetch mastering. The `baselines` crate builds those
//! prior-work comparators on top of this model.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// An ICAP (or external configuration port) transfer model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcapModel {
    /// Port width in bits (8, 16 or 32 on Virtex-class parts).
    pub width_bits: u32,
    /// Configuration clock in Hz (100 MHz max on Virtex-5/-6).
    pub clock_hz: u64,
    /// Fraction of cycles lost to contention/stalls, in `[0, 1)`.
    /// 0.0 models an ideal DMA-fed ICAP; higher values model processor-
    /// driven transfers (Claus et al. report busy factors up to ~0.9 for
    /// CPU-copied configuration data).
    pub busy_factor: f64,
}

impl IcapModel {
    /// Virtex-5/-6 ICAP at full width and clock, DMA-fed (ideal).
    pub const V5_DMA: IcapModel = IcapModel {
        width_bits: 32,
        clock_hz: 100_000_000,
        busy_factor: 0.0,
    };

    /// Processor-copied transfers: same port, high contention.
    pub const V5_CPU_COPY: IcapModel = IcapModel {
        width_bits: 32,
        clock_hz: 100_000_000,
        busy_factor: 0.85,
    };

    /// 8-bit SelectMAP-style external port.
    pub const EXT_SELECTMAP8: IcapModel = IcapModel {
        width_bits: 8,
        clock_hz: 50_000_000,
        busy_factor: 0.0,
    };

    /// Construct, clamping the busy factor into `[0, 0.999]`.
    pub fn new(width_bits: u32, clock_hz: u64, busy_factor: f64) -> Self {
        IcapModel {
            width_bits,
            clock_hz,
            busy_factor: busy_factor.clamp(0.0, 0.999),
        }
    }

    /// Ideal throughput in bytes per second (no contention).
    pub fn ideal_bytes_per_sec(&self) -> f64 {
        self.clock_hz as f64 * f64::from(self.width_bits) / 8.0
    }

    /// Effective throughput after the busy-factor derating.
    ///
    /// The busy factor is re-clamped into `[0, 0.999]` here: the fields
    /// are public, so a literal-constructed model can carry a factor
    /// outside [`IcapModel::new`]'s range (≥ 1.0 or NaN would otherwise
    /// make [`IcapModel::transfer_time`] panic on a non-finite duration).
    pub fn effective_bytes_per_sec(&self) -> f64 {
        let busy = if self.busy_factor.is_finite() {
            self.busy_factor.clamp(0.0, 0.999)
        } else {
            0.0
        };
        self.ideal_bytes_per_sec() * (1.0 - busy)
    }

    /// Time to transfer `bytes` through the port.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        let secs = bytes as f64 / self.effective_bytes_per_sec();
        // A zero-width/zero-clock port yields an infinite time; saturate
        // instead of letting `from_secs_f64` panic.
        Duration::try_from_secs_f64(secs).unwrap_or(Duration::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_v5_throughput_is_400_mb_per_sec() {
        assert_eq!(IcapModel::V5_DMA.ideal_bytes_per_sec(), 400e6);
        assert_eq!(IcapModel::V5_DMA.effective_bytes_per_sec(), 400e6);
    }

    #[test]
    fn busy_factor_derates_linearly() {
        let half = IcapModel::new(32, 100_000_000, 0.5);
        assert_eq!(half.effective_bytes_per_sec(), 200e6);
        let t_ideal = IcapModel::V5_DMA.transfer_time(400_000_000);
        let t_half = half.transfer_time(400_000_000);
        assert!((t_ideal.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((t_half.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    /// Sanity scale: the paper-era bitstreams (tens to hundreds of kB) move
    /// through a DMA-fed ICAP in well under a millisecond.
    #[test]
    fn paper_scale_reconfiguration_times() {
        let t = IcapModel::V5_DMA.transfer_time(157_272); // MIPS/V5 bitstream
        assert!(t < Duration::from_millis(1), "{t:?}");
        let t_cpu = IcapModel::V5_CPU_COPY.transfer_time(157_272);
        assert!(t_cpu > t * 5, "CPU-copy path is much slower");
    }

    #[test]
    fn busy_factor_is_clamped() {
        let m = IcapModel::new(32, 100_000_000, 7.0);
        assert!(m.effective_bytes_per_sec() > 0.0);
        let m2 = IcapModel::new(32, 100_000_000, -3.0);
        assert_eq!(m2.busy_factor, 0.0);
    }

    /// Public fields let callers bypass `new`'s clamping; a saturated
    /// busy factor must not make `transfer_time` panic (regression:
    /// `Duration::from_secs_f64` on a non-finite value).
    #[test]
    fn literal_busy_factor_at_or_above_one_does_not_panic() {
        for busy in [1.0, 2.5, f64::INFINITY, f64::NAN] {
            let m = IcapModel {
                width_bits: 32,
                clock_hz: 100_000_000,
                busy_factor: busy,
            };
            assert!(m.effective_bytes_per_sec() > 0.0, "busy={busy}");
            let t = m.transfer_time(83_040);
            assert!(
                t > Duration::ZERO && t < Duration::from_secs(3600),
                "busy={busy}"
            );
        }
    }

    #[test]
    fn zero_bytes_transfer_in_zero_time() {
        assert_eq!(IcapModel::V5_DMA.transfer_time(0), Duration::ZERO);
        let dead = IcapModel {
            width_bits: 0,
            clock_hz: 0,
            busy_factor: 0.0,
        };
        assert_eq!(dead.transfer_time(0), Duration::ZERO);
        // A dead port saturates rather than panicking for nonzero bytes.
        assert_eq!(dead.transfer_time(1), Duration::MAX);
    }

    #[test]
    fn narrow_port_is_proportionally_slower() {
        let w32 = IcapModel::new(32, 100_000_000, 0.0).transfer_time(1 << 20);
        let w8 = IcapModel::new(8, 100_000_000, 0.0).transfer_time(1 << 20);
        assert!((w8.as_secs_f64() / w32.as_secs_f64() - 4.0).abs() < 1e-9);
    }
}
