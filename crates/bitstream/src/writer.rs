//! Partial bitstream generation (the bitgen substitute).
//!
//! Emission is arena-style: [`emitted_words`] predicts the exact output
//! length so every stream is written into a single exact-size
//! allocation (no per-word `Vec` growth), invariant header packets and
//! string hashes are derived once per `(organization, device, module)`
//! triple through an [`EmitScratch`] template memo, the frame payload is
//! a counter-based (loop-carry-free, vectorizable) splitmix64 fill, and
//! the in-stream CRC runs through the folded kernel. Batch entry points
//! additionally keep a small rendered-stream cache per worker, so a
//! batch that emits the same placed module repeatedly — the steady state
//! of a hardware-multitasking system — degenerates to one `memcpy` per
//! repeat. The PR 2 push-based emitter is frozen in [`reference`] and
//! property-tested byte-identical.

use crate::crc::Crc32;
use crate::far::FrameAddress;
use crate::packet::{
    Command, ConfigRegister, Packet, BUS_WIDTH_DETECT, BUS_WIDTH_SYNC, DUMMY_WORD, SYNC_WORD,
};
use core::fmt;
use fabric::{ResourceKind, Window};
use prcost::PrrOrganization;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything needed to emit one PRM's partial bitstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitstreamSpec {
    /// Target part name (determines the IDCODE word).
    pub device: String,
    /// PRM name (seeds the frame payload so different PRMs produce
    /// different configuration data).
    pub module: String,
    /// PRR organization (heights and per-kind column counts).
    pub organization: PrrOrganization,
    /// Leftmost device column of the PRR.
    pub start_col: u32,
    /// Bottom fabric row of the PRR (1-based).
    pub start_row: u32,
    /// The window's column kinds, left to right (must match the
    /// organization's per-kind counts and contain no IOB/CLK columns).
    pub columns: Vec<ResourceKind>,
}

impl BitstreamSpec {
    /// Build a spec from a planned organization and its placement window.
    pub fn from_plan(
        device: &str,
        module: &str,
        organization: PrrOrganization,
        window: &Window,
    ) -> Self {
        BitstreamSpec {
            device: device.to_string(),
            module: module.to_string(),
            organization,
            start_col: window.start_col as u32,
            start_row: window.row,
            columns: window.columns.clone(),
        }
    }
}

/// Errors from [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The window's column mix does not match the organization.
    CompositionMismatch {
        /// Expected (clb, dsp, bram) column counts.
        expected: (u32, u32, u32),
        /// Column counts found in the window.
        found: (u32, u32, u32),
    },
    /// The window contains a column kind not allowed inside PRRs.
    ForbiddenColumn(ResourceKind),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::CompositionMismatch { expected, found } => write!(
                f,
                "window columns {found:?} do not match organization {expected:?} (CLB, DSP, BRAM)"
            ),
            GenError::ForbiddenColumn(kind) => {
                write!(f, "{kind} columns are not supported inside PRRs")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// A generated partial bitstream: 32-bit words, already stripped of the
/// `.bit`-file header the paper removes before analysis ("we remove the
/// initial bytes, including the name of the *.ncd file ... resulting in a
/// 32-bit word aligned bitstream").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialBitstream {
    /// The spec this bitstream was generated from, shared rather than
    /// deep-cloned: relocation and batch pipelines hold many bitstreams
    /// of the same module, and the columns `Vec` + device/module
    /// `String`s dominate the non-word footprint.
    pub spec: Arc<BitstreamSpec>,
    /// Configuration words, in transmission order.
    pub words: Vec<u32>,
}

impl PartialBitstream {
    /// Size in bytes (`words * Bytes_word`).
    pub fn len_bytes(&self) -> u64 {
        self.words.len() as u64
            * u64::from(self.spec.organization.family.params().frames.bytes_word)
    }

    /// Serialize to big-endian bytes (ICAP transmission order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Deserialize from big-endian bytes.
    pub fn words_from_bytes(bytes: &[u8]) -> Vec<u32> {
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }
}

/// `IW` on every supported family (asserted when templates are built).
const INITIAL_WORDS: usize = 16;
/// `FW` on every supported family.
const FINAL_WORDS: usize = 14;
/// `FAR_FDRI` on every supported family.
const HEADER_WORDS: usize = 5;
/// The splitmix64 increment; frame payload word `i` of a block is
/// `mix(seed ^ FAR + (i + 1) * GAMMA)`.
pub(crate) const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a hash for deterministic idcode/payload seeding.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn t1(register: ConfigRegister, word_count: u32) -> u32 {
    Packet::Type1Write {
        register,
        word_count,
    }
    .encode()
}

/// The splitmix64 output mix, truncated to a configuration word.
#[inline(always)]
pub(crate) fn splitmix32(state: u64) -> u32 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as u32
}

/// Fill `out` with the deterministic frame payload for `seed`, through
/// the runtime-dispatched kernel (AVX2 where available, otherwise the
/// portable counter loop below). Every kernel produces byte-identical
/// output.
#[inline]
fn fill_payload(seed: u64, out: &mut [u32]) {
    crate::arch::fill_payload(seed, out);
}

/// Fill `out` with the deterministic frame payload for `seed` — the
/// portable kernel and the definition every SIMD variant must match.
///
/// Word `i` is `splitmix32(seed + (i + 1) * GAMMA)` — exactly the
/// sequence the reference emitter's serial `state += GAMMA` walk
/// produces, but in counter form: each word depends only on `(seed, i)`,
/// so the loop has no carried dependency and the 4-way unrolled body
/// autovectorizes.
pub(crate) fn fill_payload_portable(seed: u64, out: &mut [u32]) {
    let mut chunks = out.chunks_exact_mut(4);
    let mut base = seed;
    for q in chunks.by_ref() {
        q[0] = splitmix32(base.wrapping_add(GAMMA));
        q[1] = splitmix32(base.wrapping_add(GAMMA.wrapping_mul(2)));
        q[2] = splitmix32(base.wrapping_add(GAMMA.wrapping_mul(3)));
        q[3] = splitmix32(base.wrapping_add(GAMMA.wrapping_mul(4)));
        base = base.wrapping_add(GAMMA.wrapping_mul(4));
    }
    for (i, w) in chunks.into_remainder().iter_mut().enumerate() {
        *w = splitmix32(base.wrapping_add(GAMMA.wrapping_mul(i as u64 + 1)));
    }
}

/// Exact number of configuration words [`generate`] emits for `spec`.
///
/// Pure arithmetic over the organization and its family's
/// [`fabric::FrameGeometry`] — the same quantities Eq. 18 multiplies by
/// `Bytes_word`, so `emitted_words(spec) * bytes_word` equals
/// `prcost::bitstream_size_bytes(&spec.organization)`. Emission paths
/// use it for one-shot exact-size allocations.
pub fn emitted_words(spec: &BitstreamSpec) -> usize {
    let org = &spec.organization;
    let geom = &org.family.params().frames;
    let config_frames =
        org.clb_cols * geom.cf_clb + org.dsp_cols * geom.cf_dsp + org.bram_cols * geom.cf_bram + 1;
    let config_block = geom.far_fdri + config_frames * geom.fr_size;
    let bram_block = if org.bram_cols > 0 {
        geom.far_fdri + (org.bram_cols * geom.df_bram + 1) * geom.fr_size
    } else {
        0
    };
    (geom.iw + geom.fw + org.height * (config_block + bram_block)) as usize
}

/// Check the window's column mix against the organization.
fn validate_columns(spec: &BitstreamSpec) -> Result<(), GenError> {
    let org = &spec.organization;
    let (mut clb, mut dsp, mut bram) = (0u32, 0u32, 0u32);
    for &kind in &spec.columns {
        match kind {
            ResourceKind::Clb => clb += 1,
            ResourceKind::Dsp => dsp += 1,
            ResourceKind::Bram => bram += 1,
            other => return Err(GenError::ForbiddenColumn(other)),
        }
    }
    let expected = (org.clb_cols, org.dsp_cols, org.bram_cols);
    if (clb, dsp, bram) != expected {
        return Err(GenError::CompositionMismatch {
            expected,
            found: (clb, dsp, bram),
        });
    }
    Ok(())
}

/// Everything about emission that is invariant across placements of one
/// `(organization, device, module)` triple: pre-encoded header packets,
/// the string hashes, per-block payload widths, and the total stream
/// length. Only the FAR values (and hence the block payloads and CRC)
/// depend on the placement, and those are derived per call.
#[derive(Debug, Clone)]
struct EmitTemplate {
    initial: [u32; INITIAL_WORDS],
    /// Final block with a zero CRC placeholder at index 1.
    fin: [u32; FINAL_WORDS],
    far_hdr: u32,
    fdri_hdr: u32,
    type2_config: u32,
    type2_bram: u32,
    noop: u32,
    /// `fnv1a(module)` — payload seed.
    seed: u64,
    /// Payload words per configuration FDRI block.
    config_payload: u32,
    /// Payload words per BRAM FDRI block (0 when the PRR has no BRAM).
    bram_payload: u32,
    height: u32,
    total_words: usize,
}

fn build_template(spec: &BitstreamSpec) -> EmitTemplate {
    let org = &spec.organization;
    let geom = &org.family.params().frames;
    debug_assert_eq!(geom.iw as usize, INITIAL_WORDS);
    debug_assert_eq!(geom.fw as usize, FINAL_WORDS);
    debug_assert_eq!(geom.far_fdri as usize, HEADER_WORDS);

    let seed = fnv1a(&spec.module);
    let idcode = (fnv1a(&spec.device) as u32) | 1; // LSB always set, as on real parts
    let noop = Packet::Noop.encode();

    // Frames per PRR row: every column's configuration frames + 1 pad.
    let config_frames =
        org.clb_cols * geom.cf_clb + org.dsp_cols * geom.cf_dsp + org.bram_cols * geom.cf_bram + 1;
    let bram_frames = if org.bram_cols > 0 {
        org.bram_cols * geom.df_bram + 1
    } else {
        0
    };
    let config_payload = config_frames * geom.fr_size;
    let bram_payload = bram_frames * geom.fr_size;

    let initial = [
        DUMMY_WORD,
        DUMMY_WORD,
        BUS_WIDTH_SYNC,
        BUS_WIDTH_DETECT,
        DUMMY_WORD,
        SYNC_WORD,
        noop,
        t1(ConfigRegister::Cmd, 1),
        Command::Rcrc as u32,
        noop,
        noop,
        t1(ConfigRegister::Idcode, 1),
        idcode,
        t1(ConfigRegister::Cmd, 1),
        Command::Wcfg as u32,
        noop,
    ];
    let fin = [
        t1(ConfigRegister::Crc, 1),
        0, // patched with the stream CRC at emit time
        noop,
        t1(ConfigRegister::Cmd, 1),
        Command::Lfrm as u32,
        noop,
        t1(ConfigRegister::Cmd, 1),
        Command::Start as u32,
        noop,
        t1(ConfigRegister::Cmd, 1),
        Command::Desync as u32,
        noop,
        noop,
        noop,
    ];

    EmitTemplate {
        initial,
        fin,
        far_hdr: t1(ConfigRegister::Far, 1),
        fdri_hdr: t1(ConfigRegister::Fdri, 0),
        type2_config: Packet::Type2Write {
            word_count: config_payload,
        }
        .encode(),
        type2_bram: Packet::Type2Write {
            word_count: bram_payload,
        }
        .encode(),
        noop,
        seed,
        config_payload,
        bram_payload,
        height: org.height,
        total_words: emitted_words(spec),
    }
}

/// Write one FAR + FDRI block at `pos`; returns the position past it.
#[inline]
fn emit_frame_block(
    tpl: &EmitTemplate,
    out: &mut [u32],
    crc: &mut Crc32,
    pos: usize,
    far: u32,
    type2: u32,
    payload_words: u32,
) -> usize {
    out[pos..pos + HEADER_WORDS].copy_from_slice(&[
        tpl.far_hdr,
        far,
        tpl.fdri_hdr,
        type2,
        tpl.noop,
    ]);
    let start = pos + HEADER_WORDS;
    let end = start + payload_words as usize;
    let payload = &mut out[start..end];
    fill_payload(tpl.seed ^ u64::from(far), payload);
    crc.push_words(payload);
    end
}

/// The arena emission core: one exact-size `resize`, slice-copied
/// headers, counter-based payload fill, folded CRC. `spec` must already
/// be validated against `tpl`'s organization.
fn emit_template(tpl: &EmitTemplate, spec: &BitstreamSpec, out: &mut Vec<u32>) {
    out.clear();
    out.resize(tpl.total_words, 0);
    out[..INITIAL_WORDS].copy_from_slice(&tpl.initial);

    let mut crc = Crc32::new();
    let mut pos = INITIAL_WORDS;
    // Configuration frames, row by row (bottom to top).
    for r in 0..tpl.height {
        let far = FrameAddress::config(spec.start_row + r, spec.start_col, 0).encode();
        pos = emit_frame_block(
            tpl,
            out,
            &mut crc,
            pos,
            far,
            tpl.type2_config,
            tpl.config_payload,
        );
    }
    // BRAM initialization frames, row by row, addressing the window's
    // first BRAM column.
    if tpl.bram_payload > 0 {
        let bram_col = spec
            .columns
            .iter()
            .position(|&k| k == ResourceKind::Bram)
            .expect("bram_cols > 0 implies a BRAM column") as u32;
        for r in 0..tpl.height {
            let far = FrameAddress::bram(spec.start_row + r, spec.start_col + bram_col, 0).encode();
            pos = emit_frame_block(
                tpl,
                out,
                &mut crc,
                pos,
                far,
                tpl.type2_bram,
                tpl.bram_payload,
            );
        }
    }

    let mut fin = tpl.fin;
    fin[1] = crc.value();
    out[pos..pos + FINAL_WORDS].copy_from_slice(&fin);
    debug_assert_eq!(pos + FINAL_WORDS, tpl.total_words);
}

/// Templates cached per worker (each is a few hundred bytes).
const TEMPLATE_CAP: usize = 32;
/// Rendered streams cached per worker. Bounds worker memory at
/// `STREAM_CAP` bitstreams while letting batches over a small set of
/// distinct placed modules hit `memcpy` steady state.
const STREAM_CAP: usize = 8;

/// Per-worker emission arena: the `(organization, device, module)`
/// template memo plus a small rendered-stream cache keyed by full spec
/// identity. Both caches are MRU-ordered with bounded capacity, so a
/// long-lived scratch's memory stays constant regardless of how many
/// specs flow through it.
#[derive(Debug, Clone, Default)]
pub struct EmitScratch {
    templates: Vec<(TemplateKey, EmitTemplate)>,
    streams: Vec<(Arc<BitstreamSpec>, Vec<u32>)>,
}

#[derive(Debug, Clone)]
struct TemplateKey {
    organization: PrrOrganization,
    device: String,
    module: String,
}

impl TemplateKey {
    fn of(spec: &BitstreamSpec) -> Self {
        TemplateKey {
            organization: spec.organization,
            device: spec.device.clone(),
            module: spec.module.clone(),
        }
    }

    fn matches(&self, spec: &BitstreamSpec) -> bool {
        self.organization == spec.organization
            && self.device == spec.device
            && self.module == spec.module
    }
}

impl EmitScratch {
    /// An empty arena; caches warm up on first use.
    pub fn new() -> Self {
        EmitScratch::default()
    }

    /// Index of the template for `spec`, building it on a miss.
    /// Always 0 after the MRU move-to-front.
    fn template_index(&mut self, spec: &BitstreamSpec) -> usize {
        if let Some(i) = self.templates.iter().position(|(k, _)| k.matches(spec)) {
            self.templates.swap(0, i);
        } else {
            let tpl = build_template(spec);
            self.templates.insert(0, (TemplateKey::of(spec), tpl));
            self.templates.truncate(TEMPLATE_CAP);
        }
        0
    }

    fn stream_hit(&mut self, spec: &Arc<BitstreamSpec>) -> Option<&[u32]> {
        let i = self
            .streams
            .iter()
            .position(|(s, _)| Arc::ptr_eq(s, spec) || **s == **spec)?;
        self.streams.swap(0, i);
        Some(&self.streams[0].1)
    }

    fn remember_stream(&mut self, spec: &Arc<BitstreamSpec>, words: &[u32]) {
        self.streams.insert(0, (Arc::clone(spec), words.to_vec()));
        self.streams.truncate(STREAM_CAP);
    }
}

/// Generate the partial bitstream for `spec`.
///
/// ```
/// use bitstream::{generate, BitstreamSpec};
/// use fabric::database::xc5vlx110t;
/// use synth::PaperPrm;
///
/// let device = xc5vlx110t();
/// let plan = prcost::plan_prr(&PaperPrm::Fir.synth_report(device.family()), &device).unwrap();
/// let spec = BitstreamSpec::from_plan(device.name(), "fir32", plan.organization, &plan.window);
/// let bs = generate(&spec).unwrap();
/// assert_eq!(bs.len_bytes(), plan.bitstream_bytes); // Eq. 18, byte-exact
/// ```
///
/// The emitted structure is exactly the paper's Fig. 2 / the Eq. 18 model:
/// per PRR row, one configuration FDRI write covering every column's frames
/// plus one pad frame; then, if the PRR has BRAM columns, per row one
/// BRAM-content FDRI write of `W_BRAM * DF_BRAM + 1` frames.
pub fn generate(spec: &BitstreamSpec) -> Result<PartialBitstream, GenError> {
    generate_arc(&Arc::new(spec.clone()))
}

/// [`generate`] from an already-shared spec — no `BitstreamSpec` clone;
/// the returned bitstream shares `spec`.
pub fn generate_arc(spec: &Arc<BitstreamSpec>) -> Result<PartialBitstream, GenError> {
    let mut words = Vec::new();
    emit_into(spec, &mut words)?;
    Ok(PartialBitstream {
        spec: Arc::clone(spec),
        words,
    })
}

/// [`generate`], consuming the spec — no `BitstreamSpec` clone.
///
/// The variant batch pipelines should prefer when they own their specs.
pub fn generate_owned(spec: BitstreamSpec) -> Result<PartialBitstream, GenError> {
    generate_arc(&Arc::new(spec))
}

/// [`generate_arc`] through a warm [`EmitScratch`]: template memo hit on
/// repeated `(organization, device, module)` triples, rendered-stream
/// cache hit (one exact-size allocation + `memcpy`) on repeated specs.
pub fn generate_with(
    scratch: &mut EmitScratch,
    spec: &Arc<BitstreamSpec>,
) -> Result<PartialBitstream, GenError> {
    validate_columns(spec)?;
    let words = if let Some(hit) = scratch.stream_hit(spec) {
        hit.to_vec()
    } else {
        let i = scratch.template_index(spec);
        let mut words = Vec::new();
        emit_template(&scratch.templates[i].1, spec, &mut words);
        scratch.remember_stream(spec, &words);
        words
    };
    Ok(PartialBitstream {
        spec: Arc::clone(spec),
        words,
    })
}

/// [`generate_with`]'s cache semantics with a caller-owned output
/// buffer: rendered-stream cache hits are served by one `memcpy` into
/// `out` and misses render through the template memo, but — unlike
/// [`generate_with`] — no `Vec` is allocated per call. The streaming
/// pipeline's hot path: each worker keeps one long-lived buffer, so a
/// warm cache emits at pure-`memcpy` speed with zero allocations per
/// task.
///
/// `out` is cleared first; on success it holds the exact word stream
/// [`generate`] would produce (on error it is left cleared).
pub fn emit_arc_into(
    scratch: &mut EmitScratch,
    spec: &Arc<BitstreamSpec>,
    out: &mut Vec<u32>,
) -> Result<(), GenError> {
    out.clear();
    validate_columns(spec)?;
    if let Some(hit) = scratch.stream_hit(spec) {
        out.extend_from_slice(hit);
        return Ok(());
    }
    let i = scratch.template_index(spec);
    emit_template(&scratch.templates[i].1, spec, out);
    scratch.remember_stream(spec, out);
    Ok(())
}

/// Emit `spec`'s configuration words into `out`, reusing its allocation.
///
/// `out` is cleared first; on success it holds the exact word stream
/// [`generate`] would produce (on error it is left cleared). This is the
/// streaming core every generation entry point shares: callers that loop
/// over many specs keep one buffer (or one per rayon worker, as
/// [`digest_batch`] does) and amortize `Vec` growth to zero — the buffer
/// is sized once per spec via [`emitted_words`], never grown word by
/// word.
pub fn emit_into(spec: &BitstreamSpec, out: &mut Vec<u32>) -> Result<(), GenError> {
    out.clear();
    validate_columns(spec)?;
    let tpl = build_template(spec);
    emit_template(&tpl, spec, out);
    Ok(())
}

/// [`emit_into`] through a warm [`EmitScratch`] template memo. Used by
/// digest/streaming loops that see repeated module/device triples but do
/// not hold `Arc` specs (so the rendered-stream cache does not apply).
pub fn emit_into_with(
    scratch: &mut EmitScratch,
    spec: &BitstreamSpec,
    out: &mut Vec<u32>,
) -> Result<(), GenError> {
    out.clear();
    validate_columns(spec)?;
    let i = scratch.template_index(spec);
    emit_template(&scratch.templates[i].1, spec, out);
    Ok(())
}

/// Generate many bitstreams across rayon workers.
///
/// Each worker owns an [`EmitScratch`] arena, so header templates and
/// string hashes are derived once per distinct `(organization, device,
/// module)` triple and repeated specs — the common multitasking batch
/// shape — are served from the rendered-stream cache with one exact-size
/// allocation and a `memcpy` each. Output order matches input; specs are
/// shared into the results, never deep-cloned.
pub fn generate_batch(specs: &[Arc<BitstreamSpec>]) -> Vec<Result<PartialBitstream, GenError>> {
    use rayon::prelude::*;
    specs
        .par_iter()
        .map_with(EmitScratch::new(), generate_with)
        .collect()
}

/// Summary of one generated bitstream, produced without retaining words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitstreamDigest {
    /// Emitted configuration words.
    pub words: usize,
    /// Size in bytes (`words * Bytes_word`, the Eq. 18 quantity).
    pub bytes: u64,
    /// CRC-32C over the full emitted word stream (identity fingerprint,
    /// not the in-stream payload CRC).
    pub crc: u32,
}

/// Generate and summarize many bitstreams without keeping their words.
///
/// The fully allocation-free batch path: each rayon worker owns one
/// reused emission buffer plus a template memo, and per spec only a
/// 16-byte digest escapes. This is what workload-scale evaluation loops
/// (millions of bitstreams) should use when they need sizes/fingerprints
/// rather than the streams.
pub fn digest_batch(specs: &[BitstreamSpec]) -> Vec<Result<BitstreamDigest, GenError>> {
    use rayon::prelude::*;
    specs
        .par_iter()
        .map_with(
            (EmitScratch::new(), Vec::new()),
            |(scratch, buf): &mut (EmitScratch, Vec<u32>), spec| {
                emit_into_with(scratch, spec, buf)?;
                Ok(BitstreamDigest {
                    words: buf.len(),
                    bytes: buf.len() as u64
                        * u64::from(spec.organization.family.params().frames.bytes_word),
                    crc: crate::crc::crc_words(buf),
                })
            },
        )
        .collect()
}

pub mod reference {
    //! The PR 2 emission path, frozen verbatim as the arena emitter's
    //! equivalence oracle and benchmark baseline: per-word `Vec` pushes
    //! with growth reallocation, a serial splitmix64 state walk, the
    //! slice-16 CRC kernel, and a full `BitstreamSpec` deep clone per
    //! generated bitstream. Property tests assert the arena path is
    //! byte-identical; `BENCH_crc.json` measures its speedup against
    //! this module.

    use super::*;

    /// Emit the initial-word block. Exactly `IW` (=16) words: dummies,
    /// bus-width sync, device sync, CRC reset, IDCODE check, WCFG command.
    fn push_initial(words: &mut Vec<u32>, idcode: u32) {
        words.extend_from_slice(&[
            DUMMY_WORD,
            DUMMY_WORD,
            BUS_WIDTH_SYNC,
            BUS_WIDTH_DETECT,
            DUMMY_WORD,
            SYNC_WORD,
            Packet::Noop.encode(),
            t1(ConfigRegister::Cmd, 1),
            Command::Rcrc as u32,
            Packet::Noop.encode(),
            Packet::Noop.encode(),
            t1(ConfigRegister::Idcode, 1),
            idcode,
            t1(ConfigRegister::Cmd, 1),
            Command::Wcfg as u32,
            Packet::Noop.encode(),
        ]);
    }

    /// Emit one FAR + FDRI block: exactly `FAR_FDRI` (=5) header words
    /// followed by `payload_words` words of frame data.
    fn push_frame_block(
        words: &mut Vec<u32>,
        crc: &mut Crc32,
        far: FrameAddress,
        payload_words: u32,
        seed: u64,
    ) {
        words.push(t1(ConfigRegister::Far, 1));
        words.push(far.encode());
        words.push(t1(ConfigRegister::Fdri, 0));
        words.push(
            Packet::Type2Write {
                word_count: payload_words,
            }
            .encode(),
        );
        words.push(Packet::Noop.encode());
        let payload_start = words.len();
        words.reserve(payload_words as usize);
        let mut state = seed ^ u64::from(far.encode());
        for _ in 0..payload_words {
            // splitmix64 step — deterministic frame contents per (module, FAR).
            state = state.wrapping_add(GAMMA);
            words.push(splitmix32(state));
        }
        // Batch-checksum the payload through the slice-by-16 path (the
        // dispatch kernel of this module's era).
        crc.push_words_slice16(&words[payload_start..]);
    }

    /// Emit the final-word block. Exactly `FW` (=14) words: CRC check,
    /// LFRM, START, DESYNC.
    fn push_final(words: &mut Vec<u32>, crc_value: u32) {
        words.extend_from_slice(&[
            t1(ConfigRegister::Crc, 1),
            crc_value,
            Packet::Noop.encode(),
            t1(ConfigRegister::Cmd, 1),
            Command::Lfrm as u32,
            Packet::Noop.encode(),
            t1(ConfigRegister::Cmd, 1),
            Command::Start as u32,
            Packet::Noop.encode(),
            t1(ConfigRegister::Cmd, 1),
            Command::Desync as u32,
            Packet::Noop.encode(),
            Packet::Noop.encode(),
            Packet::Noop.encode(),
        ]);
    }

    /// The push-based [`emit_into`](super::emit_into) of PR 2.
    pub fn emit_into(spec: &BitstreamSpec, out: &mut Vec<u32>) -> Result<(), GenError> {
        out.clear();
        validate_columns(spec)?;
        let org = &spec.organization;
        let geom = &org.family.params().frames;

        let seed = fnv1a(&spec.module);
        let idcode = (fnv1a(&spec.device) as u32) | 1;
        let fr = geom.fr_size;

        let config_frames: u32 = spec
            .columns
            .iter()
            .map(|&k| geom.frames_per_column(k))
            .sum::<u32>()
            + 1;
        let bram_frames: u32 = if org.bram_cols > 0 {
            org.bram_cols * geom.df_bram + 1
        } else {
            0
        };

        let mut crc = Crc32::new();
        push_initial(out, idcode);

        for r in 0..org.height {
            let far = FrameAddress::config(spec.start_row + r, spec.start_col, 0);
            push_frame_block(out, &mut crc, far, config_frames * fr, seed);
        }
        if bram_frames > 0 {
            let bram_col = spec
                .columns
                .iter()
                .position(|&k| k == ResourceKind::Bram)
                .expect("bram_cols > 0 implies a BRAM column") as u32;
            for r in 0..org.height {
                let far = FrameAddress::bram(spec.start_row + r, spec.start_col + bram_col, 0);
                push_frame_block(out, &mut crc, far, bram_frames * fr, seed);
            }
        }

        push_final(out, crc.value());
        Ok(())
    }

    /// The [`generate`](super::generate) of PR 2 (deep spec clone).
    pub fn generate(spec: &BitstreamSpec) -> Result<PartialBitstream, GenError> {
        let mut words = Vec::new();
        emit_into(spec, &mut words)?;
        Ok(PartialBitstream {
            spec: Arc::new(spec.clone()),
            words,
        })
    }

    /// The [`generate_batch`](super::generate_batch) of PR 2: per-worker
    /// reused buffer, but a deep spec clone and a buffer clone per item.
    pub fn generate_batch(specs: &[BitstreamSpec]) -> Vec<Result<PartialBitstream, GenError>> {
        use rayon::prelude::*;
        specs
            .par_iter()
            .map_with(Vec::new(), |buf: &mut Vec<u32>, spec| {
                emit_into(spec, buf)?;
                Ok(PartialBitstream {
                    spec: Arc::new(spec.clone()),
                    words: buf.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{all_devices, xc5vlx110t, xc6vlx75t};
    use fabric::Family;
    use prcost::search::plan_prr;
    use proptest::prelude::*;
    use synth::PaperPrm;

    fn spec_for(prm: PaperPrm, device: &fabric::Device) -> BitstreamSpec {
        let plan = plan_prr(&prm.synth_report(device.family()), device).unwrap();
        BitstreamSpec::from_plan(
            device.name(),
            prm.module_name(),
            plan.organization,
            &plan.window,
        )
    }

    /// The headline cross-validation: generated length == Eq. 18 prediction
    /// for all six paper PRM/device pairs.
    #[test]
    fn generated_length_matches_cost_model() {
        for device in [xc5vlx110t(), xc6vlx75t()] {
            for prm in PaperPrm::ALL {
                let spec = spec_for(prm, &device);
                let bs = generate(&spec).unwrap();
                let predicted = prcost::bitstream_size_bytes(&spec.organization);
                assert_eq!(
                    bs.len_bytes(),
                    predicted,
                    "{prm:?} on {}: generator vs model",
                    device.name()
                );
            }
        }
    }

    /// `emitted_words` is exact across the whole device database, and its
    /// byte conversion reproduces the Eq. 18 `plan.bitstream_bytes`
    /// doc-example invariant everywhere a plan exists.
    #[test]
    fn emitted_words_is_exact_across_device_database() {
        for device in all_devices() {
            for prm in PaperPrm::ALL {
                let Ok(plan) = plan_prr(&prm.synth_report(device.family()), &device) else {
                    continue; // PRM does not fit this part
                };
                let spec = BitstreamSpec::from_plan(
                    device.name(),
                    prm.module_name(),
                    plan.organization,
                    &plan.window,
                );
                let bs = generate(&spec).unwrap();
                let words = emitted_words(&spec);
                assert_eq!(bs.words.len(), words, "{prm:?} on {}", device.name());
                let bytes_word = u64::from(spec.organization.family.params().frames.bytes_word);
                assert_eq!(
                    words as u64 * bytes_word,
                    plan.bitstream_bytes,
                    "{prm:?} on {}: emitted_words vs Eq. 18",
                    device.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_module_and_distinct_across_modules() {
        let device = xc5vlx110t();
        let a = generate(&spec_for(PaperPrm::Fir, &device)).unwrap();
        let b = generate(&spec_for(PaperPrm::Fir, &device)).unwrap();
        assert_eq!(a, b);
        let mips = generate(&spec_for(PaperPrm::Mips, &device)).unwrap();
        assert_ne!(a.words, mips.words);
    }

    /// The arena emitter is byte-identical to the frozen PR 2 path on
    /// every paper PRM/device pair.
    #[test]
    fn arena_emitter_matches_reference() {
        for device in [xc5vlx110t(), xc6vlx75t()] {
            for prm in PaperPrm::ALL {
                let spec = spec_for(prm, &device);
                let arena = generate(&spec).unwrap();
                let frozen = reference::generate(&spec).unwrap();
                assert_eq!(arena.words, frozen.words, "{prm:?} on {}", device.name());
            }
        }
    }

    /// Scratch-cached emission (template memo, rendered-stream cache,
    /// repeated and interleaved specs) always matches plain `generate`.
    #[test]
    fn cached_paths_match_plain_generate() {
        let device = xc5vlx110t();
        let mut scratch = EmitScratch::new();
        let specs: Vec<Arc<BitstreamSpec>> = PaperPrm::ALL
            .iter()
            .map(|&p| Arc::new(spec_for(p, &device)))
            .collect();
        // Two interleaved passes: first populates, second hits both caches.
        for _ in 0..2 {
            for spec in &specs {
                let cached = generate_with(&mut scratch, spec).unwrap();
                let plain = generate(spec).unwrap();
                assert_eq!(cached.words, plain.words);
                assert!(Arc::ptr_eq(&cached.spec, spec));
            }
        }
        // Same module at a different placement: template hit, stream miss,
        // different FARs — must re-render, not serve the cached stream.
        let mut moved = (*specs[0]).clone();
        moved.start_col += 2;
        let moved = Arc::new(moved);
        let cached = generate_with(&mut scratch, &moved).unwrap();
        assert_eq!(cached.words, generate(&moved).unwrap().words);
        assert_ne!(cached.words, generate(&specs[0]).unwrap().words);
        // An equal-by-value spec behind a different Arc still hits.
        let twin = Arc::new((*specs[1]).clone());
        let hit = generate_with(&mut scratch, &twin).unwrap();
        assert_eq!(hit.words, generate(&twin).unwrap().words);
        // emit_into_with agrees too.
        let mut buf = vec![0xdead_beef];
        emit_into_with(&mut scratch, &specs[2], &mut buf).unwrap();
        assert_eq!(buf, generate(&specs[2]).unwrap().words);
        // emit_arc_into agrees on both the miss path (first pass) and
        // the rendered-stream hit path (second pass over a warm cache),
        // reusing one output buffer throughout.
        let mut out = Vec::new();
        for _ in 0..2 {
            for spec in &specs {
                emit_arc_into(&mut scratch, spec, &mut out).unwrap();
                assert_eq!(out, generate(spec).unwrap().words);
            }
        }
    }

    proptest! {
        /// Arena emission ≡ frozen PR 2 emission, byte for byte, over
        /// random organizations, placements, and name strings (the
        /// emitter does not require device-level feasibility, only
        /// column-mix consistency).
        #[test]
        fn arena_matches_reference_on_random_specs(
            family_ix in 0usize..Family::ALL.len(),
            height in 1u32..5,
            clb in 1u32..4, // ≥1 keeps the window non-empty
            dsp in 0u32..3,
            bram in 0u32..3,
            start_col in 0u32..40,
            start_row in 1u32..5,
            module_tag in 0u64..1_000_000,
            device_tag in 0u64..1_000_000,
        ) {
            let module = format!("prm_{module_tag}");
            let device = format!("xc{device_tag}");
            let organization = PrrOrganization {
                family: Family::ALL[family_ix],
                height,
                clb_cols: clb,
                dsp_cols: dsp,
                bram_cols: bram,
            };
            let mut columns = Vec::new();
            columns.extend(std::iter::repeat_n(ResourceKind::Clb, clb as usize));
            columns.extend(std::iter::repeat_n(ResourceKind::Dsp, dsp as usize));
            columns.extend(std::iter::repeat_n(ResourceKind::Bram, bram as usize));
            let spec = BitstreamSpec {
                device,
                module,
                organization,
                start_col,
                start_row,
                columns,
            };
            let arena = generate(&spec).unwrap();
            let frozen = reference::generate(&spec).unwrap();
            prop_assert_eq!(&arena.words, &frozen.words);
            prop_assert_eq!(arena.words.len(), emitted_words(&spec));
            let mut scratch = EmitScratch::new();
            let shared = Arc::new(spec);
            let cached = generate_with(&mut scratch, &shared).unwrap();
            prop_assert_eq!(&cached.words, &frozen.words);
        }
    }

    #[test]
    fn emit_into_reuses_buffer_and_matches_generate() {
        let device = xc5vlx110t();
        let mut buf = Vec::new();
        for prm in PaperPrm::ALL {
            let spec = spec_for(prm, &device);
            emit_into(&spec, &mut buf).unwrap();
            assert_eq!(buf, generate(&spec).unwrap().words, "{prm:?}");
        }
        // Error paths leave the buffer cleared.
        let mut bad = spec_for(PaperPrm::Fir, &device);
        bad.columns.push(ResourceKind::Clb);
        assert!(emit_into(&bad, &mut buf).is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn owned_and_batch_variants_match_generate() {
        let device = xc6vlx75t();
        let specs: Vec<BitstreamSpec> = PaperPrm::ALL
            .iter()
            .map(|&p| spec_for(p, &device))
            .collect();
        let direct: Vec<PartialBitstream> = specs.iter().map(|s| generate(s).unwrap()).collect();
        for (spec, expect) in specs.iter().zip(&direct) {
            assert_eq!(&generate_owned(spec.clone()).unwrap(), expect);
            assert_eq!(&generate_arc(&Arc::new(spec.clone())).unwrap(), expect);
        }
        // A batch with every spec repeated — exercises the per-worker
        // rendered-stream cache — preserves order and matches direct.
        let shared: Vec<Arc<BitstreamSpec>> = specs.iter().cloned().map(Arc::new).collect();
        let mut batch_in: Vec<Arc<BitstreamSpec>> = Vec::new();
        for _ in 0..3 {
            batch_in.extend(shared.iter().cloned());
        }
        let batch = generate_batch(&batch_in);
        assert_eq!(batch.len(), batch_in.len());
        for (i, got) in batch.iter().enumerate() {
            assert_eq!(got.as_ref().unwrap(), &direct[i % direct.len()]);
        }
        let digests = digest_batch(&specs);
        for (d, expect) in digests.iter().zip(&direct) {
            let d = d.as_ref().unwrap();
            assert_eq!(d.words, expect.words.len());
            assert_eq!(d.bytes, expect.len_bytes());
            assert_eq!(d.crc, crate::crc::crc_words(&expect.words));
        }
    }

    #[test]
    fn batch_surfaces_per_spec_errors() {
        let device = xc5vlx110t();
        let good = spec_for(PaperPrm::Fir, &device);
        let mut bad = good.clone();
        bad.columns[0] = ResourceKind::Clk;
        let out = generate_batch(&[Arc::new(good.clone()), Arc::new(bad.clone())]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(GenError::ForbiddenColumn(_))));
        let digests = digest_batch(&[bad, good]);
        assert!(digests[0].is_err());
        assert!(digests[1].is_ok());
    }

    #[test]
    fn byte_serialization_round_trips() {
        let device = xc6vlx75t();
        let bs = generate(&spec_for(PaperPrm::Sdram, &device)).unwrap();
        let bytes = bs.to_bytes();
        assert_eq!(bytes.len() as u64, bs.len_bytes());
        assert_eq!(PartialBitstream::words_from_bytes(&bytes), bs.words);
    }

    #[test]
    fn composition_mismatch_is_rejected() {
        let device = xc5vlx110t();
        let mut spec = spec_for(PaperPrm::Sdram, &device);
        spec.columns.push(ResourceKind::Clb);
        assert!(matches!(
            generate(&spec),
            Err(GenError::CompositionMismatch { .. })
        ));
    }

    #[test]
    fn forbidden_columns_are_rejected() {
        let device = xc5vlx110t();
        let mut spec = spec_for(PaperPrm::Sdram, &device);
        spec.columns[0] = ResourceKind::Clk;
        assert!(matches!(
            generate(&spec),
            Err(GenError::ForbiddenColumn(ResourceKind::Clk))
        ));
    }

    #[test]
    fn bram_blocks_only_when_bram_present() {
        let device = xc5vlx110t();
        let sdram = generate(&spec_for(PaperPrm::Sdram, &device)).unwrap();
        let mips = generate(&spec_for(PaperPrm::Mips, &device)).unwrap();
        let has_bram_far = |bs: &PartialBitstream| {
            bs.words.iter().any(|&w| {
                FrameAddress::decode(w)
                    .is_some_and(|f| f.block == crate::far::BlockType::BramContent && f.row >= 1)
            })
        };
        // SDRAM has no BRAM columns; its words contain no BRAM-content FAR
        // following a FAR write header. (Decode-scan is approximate but the
        // payload is pseudorandom, so require the MIPS stream to contain at
        // least one exact BRAM FAR at its known position.)
        let bram_col = mips
            .spec
            .columns
            .iter()
            .position(|&k| k == ResourceKind::Bram)
            .unwrap() as u32;
        let expected_far =
            FrameAddress::bram(mips.spec.start_row, mips.spec.start_col + bram_col, 0).encode();
        assert!(mips.words.contains(&expected_far));
        let _ = has_bram_far;
        let sdram_far = FrameAddress::bram(sdram.spec.start_row, sdram.spec.start_col, 0).encode();
        // The exact SDRAM BRAM FAR must not appear as a FAR write.
        let far_hdr = t1(ConfigRegister::Far, 1);
        let writes: Vec<u32> = sdram
            .words
            .windows(2)
            .filter(|w| w[0] == far_hdr)
            .map(|w| w[1])
            .collect();
        assert!(!writes.contains(&sdram_far));
    }
}
