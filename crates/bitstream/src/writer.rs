//! Partial bitstream generation (the bitgen substitute).

use crate::crc::Crc32;
use crate::far::FrameAddress;
use crate::packet::{
    Command, ConfigRegister, Packet, BUS_WIDTH_DETECT, BUS_WIDTH_SYNC, DUMMY_WORD, SYNC_WORD,
};
use core::fmt;
use fabric::{ResourceKind, Window};
use prcost::PrrOrganization;
use serde::{Deserialize, Serialize};

/// Everything needed to emit one PRM's partial bitstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitstreamSpec {
    /// Target part name (determines the IDCODE word).
    pub device: String,
    /// PRM name (seeds the frame payload so different PRMs produce
    /// different configuration data).
    pub module: String,
    /// PRR organization (heights and per-kind column counts).
    pub organization: PrrOrganization,
    /// Leftmost device column of the PRR.
    pub start_col: u32,
    /// Bottom fabric row of the PRR (1-based).
    pub start_row: u32,
    /// The window's column kinds, left to right (must match the
    /// organization's per-kind counts and contain no IOB/CLK columns).
    pub columns: Vec<ResourceKind>,
}

impl BitstreamSpec {
    /// Build a spec from a planned organization and its placement window.
    pub fn from_plan(
        device: &str,
        module: &str,
        organization: PrrOrganization,
        window: &Window,
    ) -> Self {
        BitstreamSpec {
            device: device.to_string(),
            module: module.to_string(),
            organization,
            start_col: window.start_col as u32,
            start_row: window.row,
            columns: window.columns.clone(),
        }
    }
}

/// Errors from [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The window's column mix does not match the organization.
    CompositionMismatch {
        /// Expected (clb, dsp, bram) column counts.
        expected: (u32, u32, u32),
        /// Column counts found in the window.
        found: (u32, u32, u32),
    },
    /// The window contains a column kind not allowed inside PRRs.
    ForbiddenColumn(ResourceKind),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::CompositionMismatch { expected, found } => write!(
                f,
                "window columns {found:?} do not match organization {expected:?} (CLB, DSP, BRAM)"
            ),
            GenError::ForbiddenColumn(kind) => {
                write!(f, "{kind} columns are not supported inside PRRs")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// A generated partial bitstream: 32-bit words, already stripped of the
/// `.bit`-file header the paper removes before analysis ("we remove the
/// initial bytes, including the name of the *.ncd file ... resulting in a
/// 32-bit word aligned bitstream").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialBitstream {
    /// The spec this bitstream was generated from.
    pub spec: BitstreamSpec,
    /// Configuration words, in transmission order.
    pub words: Vec<u32>,
}

impl PartialBitstream {
    /// Size in bytes (`words * Bytes_word`).
    pub fn len_bytes(&self) -> u64 {
        self.words.len() as u64
            * u64::from(self.spec.organization.family.params().frames.bytes_word)
    }

    /// Serialize to big-endian bytes (ICAP transmission order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Deserialize from big-endian bytes.
    pub fn words_from_bytes(bytes: &[u8]) -> Vec<u32> {
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }
}

/// FNV-1a hash for deterministic idcode/payload seeding.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn t1(register: ConfigRegister, word_count: u32) -> u32 {
    Packet::Type1Write {
        register,
        word_count,
    }
    .encode()
}

/// Emit the initial-word block. Exactly `IW` (=16) words: dummies,
/// bus-width sync, device sync, CRC reset, IDCODE check, WCFG command.
fn push_initial(words: &mut Vec<u32>, idcode: u32) {
    words.extend_from_slice(&[
        DUMMY_WORD,
        DUMMY_WORD,
        BUS_WIDTH_SYNC,
        BUS_WIDTH_DETECT,
        DUMMY_WORD,
        SYNC_WORD,
        Packet::Noop.encode(),
        t1(ConfigRegister::Cmd, 1),
        Command::Rcrc as u32,
        Packet::Noop.encode(),
        Packet::Noop.encode(),
        t1(ConfigRegister::Idcode, 1),
        idcode,
        t1(ConfigRegister::Cmd, 1),
        Command::Wcfg as u32,
        Packet::Noop.encode(),
    ]);
}

/// Emit one FAR + FDRI block: exactly `FAR_FDRI` (=5) header words followed
/// by `payload_words` words of frame data.
fn push_frame_block(
    words: &mut Vec<u32>,
    crc: &mut Crc32,
    far: FrameAddress,
    payload_words: u32,
    seed: u64,
) {
    words.push(t1(ConfigRegister::Far, 1));
    words.push(far.encode());
    words.push(t1(ConfigRegister::Fdri, 0));
    words.push(
        Packet::Type2Write {
            word_count: payload_words,
        }
        .encode(),
    );
    words.push(Packet::Noop.encode());
    let payload_start = words.len();
    words.reserve(payload_words as usize);
    let mut state = seed ^ u64::from(far.encode());
    for _ in 0..payload_words {
        // splitmix64 step — deterministic frame contents per (module, FAR).
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        words.push((z ^ (z >> 31)) as u32);
    }
    // Batch-checksum the payload through the slice-by-8 fast path.
    crc.push_words(&words[payload_start..]);
}

/// Emit the final-word block. Exactly `FW` (=14) words: CRC check, LFRM,
/// START, DESYNC.
fn push_final(words: &mut Vec<u32>, crc_value: u32) {
    words.extend_from_slice(&[
        t1(ConfigRegister::Crc, 1),
        crc_value,
        Packet::Noop.encode(),
        t1(ConfigRegister::Cmd, 1),
        Command::Lfrm as u32,
        Packet::Noop.encode(),
        t1(ConfigRegister::Cmd, 1),
        Command::Start as u32,
        Packet::Noop.encode(),
        t1(ConfigRegister::Cmd, 1),
        Command::Desync as u32,
        Packet::Noop.encode(),
        Packet::Noop.encode(),
        Packet::Noop.encode(),
    ]);
}

/// Generate the partial bitstream for `spec`.
///
/// ```
/// use bitstream::{generate, BitstreamSpec};
/// use fabric::database::xc5vlx110t;
/// use synth::PaperPrm;
///
/// let device = xc5vlx110t();
/// let plan = prcost::plan_prr(&PaperPrm::Fir.synth_report(device.family()), &device).unwrap();
/// let spec = BitstreamSpec::from_plan(device.name(), "fir32", plan.organization, &plan.window);
/// let bs = generate(&spec).unwrap();
/// assert_eq!(bs.len_bytes(), plan.bitstream_bytes); // Eq. 18, byte-exact
/// ```
///
/// The emitted structure is exactly the paper's Fig. 2 / the Eq. 18 model:
/// per PRR row, one configuration FDRI write covering every column's frames
/// plus one pad frame; then, if the PRR has BRAM columns, per row one
/// BRAM-content FDRI write of `W_BRAM * DF_BRAM + 1` frames.
pub fn generate(spec: &BitstreamSpec) -> Result<PartialBitstream, GenError> {
    let mut words = Vec::new();
    emit_into(spec, &mut words)?;
    Ok(PartialBitstream {
        spec: spec.clone(),
        words,
    })
}

/// [`generate`], consuming the spec — no `BitstreamSpec` clone.
///
/// The variant batch pipelines should prefer when they own their specs.
pub fn generate_owned(spec: BitstreamSpec) -> Result<PartialBitstream, GenError> {
    let mut words = Vec::new();
    emit_into(&spec, &mut words)?;
    Ok(PartialBitstream { spec, words })
}

/// Emit `spec`'s configuration words into `out`, reusing its allocation.
///
/// `out` is cleared first; on success it holds the exact word stream
/// [`generate`] would produce (on error it is left cleared). This is the
/// streaming core every generation entry point shares: callers that loop
/// over many specs keep one buffer (or one per rayon worker, as
/// [`digest_batch`] does) and amortize the `Vec` growth to zero.
pub fn emit_into(spec: &BitstreamSpec, out: &mut Vec<u32>) -> Result<(), GenError> {
    out.clear();
    let org = &spec.organization;
    let geom = &org.family.params().frames;

    // Validate the window against the organization.
    let (mut clb, mut dsp, mut bram) = (0u32, 0u32, 0u32);
    for &kind in &spec.columns {
        match kind {
            ResourceKind::Clb => clb += 1,
            ResourceKind::Dsp => dsp += 1,
            ResourceKind::Bram => bram += 1,
            other => return Err(GenError::ForbiddenColumn(other)),
        }
    }
    let expected = (org.clb_cols, org.dsp_cols, org.bram_cols);
    if (clb, dsp, bram) != expected {
        return Err(GenError::CompositionMismatch {
            expected,
            found: (clb, dsp, bram),
        });
    }

    let seed = fnv1a(&spec.module);
    let idcode = (fnv1a(&spec.device) as u32) | 1; // LSB always set, as on real parts
    let fr = geom.fr_size;

    // Frames per PRR row: every column's configuration frames + 1 pad.
    let config_frames: u32 = spec
        .columns
        .iter()
        .map(|&k| geom.frames_per_column(k))
        .sum::<u32>()
        + 1;
    let bram_frames: u32 = if org.bram_cols > 0 {
        org.bram_cols * geom.df_bram + 1
    } else {
        0
    };

    let mut crc = Crc32::new();
    push_initial(out, idcode);

    // Configuration frames, row by row (bottom to top).
    for r in 0..org.height {
        let far = FrameAddress::config(spec.start_row + r, spec.start_col, 0);
        push_frame_block(out, &mut crc, far, config_frames * fr, seed);
    }
    // BRAM initialization frames, row by row.
    if bram_frames > 0 {
        // Address the first BRAM column in the window.
        let bram_col = spec
            .columns
            .iter()
            .position(|&k| k == ResourceKind::Bram)
            .expect("bram_cols > 0 implies a BRAM column") as u32;
        for r in 0..org.height {
            let far = FrameAddress::bram(spec.start_row + r, spec.start_col + bram_col, 0);
            push_frame_block(out, &mut crc, far, bram_frames * fr, seed);
        }
    }

    push_final(out, crc.value());
    Ok(())
}

/// Generate many bitstreams across rayon workers.
///
/// Each worker reuses one emission buffer via [`emit_into`], so growth
/// reallocations are amortized across the batch; only the returned word
/// vectors are allocated, sized exactly. Output order matches input.
pub fn generate_batch(specs: &[BitstreamSpec]) -> Vec<Result<PartialBitstream, GenError>> {
    use rayon::prelude::*;
    specs
        .par_iter()
        .map_with(Vec::new(), |buf: &mut Vec<u32>, spec| {
            emit_into(spec, buf)?;
            Ok(PartialBitstream {
                spec: spec.clone(),
                words: buf.clone(),
            })
        })
        .collect()
}

/// Summary of one generated bitstream, produced without retaining words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitstreamDigest {
    /// Emitted configuration words.
    pub words: usize,
    /// Size in bytes (`words * Bytes_word`, the Eq. 18 quantity).
    pub bytes: u64,
    /// CRC-32C over the full emitted word stream (identity fingerprint,
    /// not the in-stream payload CRC).
    pub crc: u32,
}

/// Generate and summarize many bitstreams without keeping their words.
///
/// The fully allocation-free batch path: each rayon worker owns one
/// reused emission buffer, and per spec only a 16-byte digest escapes.
/// This is what workload-scale evaluation loops (millions of bitstreams)
/// should use when they need sizes/fingerprints rather than the streams.
pub fn digest_batch(specs: &[BitstreamSpec]) -> Vec<Result<BitstreamDigest, GenError>> {
    use rayon::prelude::*;
    specs
        .par_iter()
        .map_with(Vec::new(), |buf: &mut Vec<u32>, spec| {
            emit_into(spec, buf)?;
            Ok(BitstreamDigest {
                words: buf.len(),
                bytes: buf.len() as u64
                    * u64::from(spec.organization.family.params().frames.bytes_word),
                crc: crate::crc::crc_words(buf),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use prcost::search::plan_prr;
    use synth::PaperPrm;

    fn spec_for(prm: PaperPrm, device: &fabric::Device) -> BitstreamSpec {
        let plan = plan_prr(&prm.synth_report(device.family()), device).unwrap();
        BitstreamSpec::from_plan(
            device.name(),
            prm.module_name(),
            plan.organization,
            &plan.window,
        )
    }

    /// The headline cross-validation: generated length == Eq. 18 prediction
    /// for all six paper PRM/device pairs.
    #[test]
    fn generated_length_matches_cost_model() {
        for device in [xc5vlx110t(), xc6vlx75t()] {
            for prm in PaperPrm::ALL {
                let spec = spec_for(prm, &device);
                let bs = generate(&spec).unwrap();
                let predicted = prcost::bitstream_size_bytes(&spec.organization);
                assert_eq!(
                    bs.len_bytes(),
                    predicted,
                    "{prm:?} on {}: generator vs model",
                    device.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_module_and_distinct_across_modules() {
        let device = xc5vlx110t();
        let a = generate(&spec_for(PaperPrm::Fir, &device)).unwrap();
        let b = generate(&spec_for(PaperPrm::Fir, &device)).unwrap();
        assert_eq!(a, b);
        let mips = generate(&spec_for(PaperPrm::Mips, &device)).unwrap();
        assert_ne!(a.words, mips.words);
    }

    #[test]
    fn emit_into_reuses_buffer_and_matches_generate() {
        let device = xc5vlx110t();
        let mut buf = Vec::new();
        for prm in PaperPrm::ALL {
            let spec = spec_for(prm, &device);
            emit_into(&spec, &mut buf).unwrap();
            assert_eq!(buf, generate(&spec).unwrap().words, "{prm:?}");
        }
        // Error paths leave the buffer cleared.
        let mut bad = spec_for(PaperPrm::Fir, &device);
        bad.columns.push(ResourceKind::Clb);
        assert!(emit_into(&bad, &mut buf).is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn owned_and_batch_variants_match_generate() {
        let device = xc6vlx75t();
        let specs: Vec<BitstreamSpec> = PaperPrm::ALL
            .iter()
            .map(|&p| spec_for(p, &device))
            .collect();
        let direct: Vec<PartialBitstream> = specs.iter().map(|s| generate(s).unwrap()).collect();
        for (spec, expect) in specs.iter().zip(&direct) {
            assert_eq!(&generate_owned(spec.clone()).unwrap(), expect);
        }
        let batch = generate_batch(&specs);
        assert_eq!(batch.len(), specs.len());
        for (got, expect) in batch.iter().zip(&direct) {
            assert_eq!(got.as_ref().unwrap(), expect);
        }
        let digests = digest_batch(&specs);
        for (d, expect) in digests.iter().zip(&direct) {
            let d = d.as_ref().unwrap();
            assert_eq!(d.words, expect.words.len());
            assert_eq!(d.bytes, expect.len_bytes());
            assert_eq!(d.crc, crate::crc::crc_words(&expect.words));
        }
    }

    #[test]
    fn batch_surfaces_per_spec_errors() {
        let device = xc5vlx110t();
        let good = spec_for(PaperPrm::Fir, &device);
        let mut bad = good.clone();
        bad.columns[0] = ResourceKind::Clk;
        let out = generate_batch(&[good.clone(), bad.clone()]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(GenError::ForbiddenColumn(_))));
        let digests = digest_batch(&[bad, good]);
        assert!(digests[0].is_err());
        assert!(digests[1].is_ok());
    }

    #[test]
    fn byte_serialization_round_trips() {
        let device = xc6vlx75t();
        let bs = generate(&spec_for(PaperPrm::Sdram, &device)).unwrap();
        let bytes = bs.to_bytes();
        assert_eq!(bytes.len() as u64, bs.len_bytes());
        assert_eq!(PartialBitstream::words_from_bytes(&bytes), bs.words);
    }

    #[test]
    fn composition_mismatch_is_rejected() {
        let device = xc5vlx110t();
        let mut spec = spec_for(PaperPrm::Sdram, &device);
        spec.columns.push(ResourceKind::Clb);
        assert!(matches!(
            generate(&spec),
            Err(GenError::CompositionMismatch { .. })
        ));
    }

    #[test]
    fn forbidden_columns_are_rejected() {
        let device = xc5vlx110t();
        let mut spec = spec_for(PaperPrm::Sdram, &device);
        spec.columns[0] = ResourceKind::Clk;
        assert!(matches!(
            generate(&spec),
            Err(GenError::ForbiddenColumn(ResourceKind::Clk))
        ));
    }

    #[test]
    fn bram_blocks_only_when_bram_present() {
        let device = xc5vlx110t();
        let sdram = generate(&spec_for(PaperPrm::Sdram, &device)).unwrap();
        let mips = generate(&spec_for(PaperPrm::Mips, &device)).unwrap();
        let has_bram_far = |bs: &PartialBitstream| {
            bs.words.iter().any(|&w| {
                FrameAddress::decode(w)
                    .is_some_and(|f| f.block == crate::far::BlockType::BramContent && f.row >= 1)
            })
        };
        // SDRAM has no BRAM columns; its words contain no BRAM-content FAR
        // following a FAR write header. (Decode-scan is approximate but the
        // payload is pseudorandom, so require the MIPS stream to contain at
        // least one exact BRAM FAR at its known position.)
        let bram_col = mips
            .spec
            .columns
            .iter()
            .position(|&k| k == ResourceKind::Bram)
            .unwrap() as u32;
        let expected_far =
            FrameAddress::bram(mips.spec.start_row, mips.spec.start_col + bram_col, 0).encode();
        assert!(mips.words.contains(&expected_far));
        let _ = has_bram_far;
        let sdram_far = FrameAddress::bram(sdram.spec.start_row, sdram.spec.start_col, 0).encode();
        // The exact SDRAM BRAM FAR must not appear as a FAR write.
        let far_hdr = t1(ConfigRegister::Far, 1);
        let writes: Vec<u32> = sdram
            .words
            .windows(2)
            .filter(|w| w[0] == far_hdr)
            .map(|w| w[1])
            .collect();
        assert!(!writes.contains(&sdram_far));
    }
}
