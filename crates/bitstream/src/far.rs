//! Frame address register (FAR) encoding.
//!
//! The FAR names the first frame a following FDRI write configures. Real
//! Virtex families pack {block type, top/bottom, row, column, minor} with
//! family-specific field widths; this crate uses one generic packing wide
//! enough for every modeled device:
//!
//! ```text
//! [27:26] block type (0 = interconnect/config, 1 = BRAM content)
//! [25:18] fabric row (1-based, as in the paper's r + H - 1 <= R)
//! [17:6]  column (0-based device column index)
//! [5:0]   minor (frame index within the column)
//! ```

use serde::{Deserialize, Serialize};

/// Frame block type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockType {
    /// Interconnect and block configuration (CLB/DSP/BRAM interconnect).
    Config = 0,
    /// BRAM content initialization.
    BramContent = 1,
}

/// A decoded frame address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameAddress {
    /// Block type.
    pub block: BlockType,
    /// Fabric row, 1-based.
    pub row: u32,
    /// Device column index, 0-based.
    pub column: u32,
    /// Frame index within the column.
    pub minor: u32,
}

impl FrameAddress {
    /// A configuration-plane address.
    pub fn config(row: u32, column: u32, minor: u32) -> Self {
        FrameAddress {
            block: BlockType::Config,
            row,
            column,
            minor,
        }
    }

    /// A BRAM-content address.
    pub fn bram(row: u32, column: u32, minor: u32) -> Self {
        FrameAddress {
            block: BlockType::BramContent,
            row,
            column,
            minor,
        }
    }

    /// Pack into a 32-bit FAR word.
    pub fn encode(self) -> u32 {
        assert!(self.row < (1 << 8), "row field is 8 bits");
        assert!(self.column < (1 << 12), "column field is 12 bits");
        assert!(self.minor < (1 << 6), "minor field is 6 bits");
        ((self.block as u32) << 26) | (self.row << 18) | (self.column << 6) | self.minor
    }

    /// Unpack a 32-bit FAR word.
    pub fn decode(word: u32) -> Option<FrameAddress> {
        let block = match (word >> 26) & 0b11 {
            0 => BlockType::Config,
            1 => BlockType::BramContent,
            _ => return None,
        };
        Some(FrameAddress {
            block,
            row: (word >> 18) & 0xff,
            column: (word >> 6) & 0xfff,
            minor: word & 0x3f,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for far in [
            FrameAddress::config(1, 0, 0),
            FrameAddress::config(8, 62, 35),
            FrameAddress::bram(3, 4095, 63),
            FrameAddress::bram(255, 17, 1),
        ] {
            assert_eq!(FrameAddress::decode(far.encode()), Some(far));
        }
    }

    #[test]
    fn distinct_addresses_encode_distinctly() {
        let a = FrameAddress::config(1, 2, 3).encode();
        let b = FrameAddress::config(1, 3, 2).encode();
        let c = FrameAddress::bram(1, 2, 3).encode();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn decode_rejects_unknown_block_types() {
        assert_eq!(FrameAddress::decode(0b10 << 26), None);
        assert_eq!(FrameAddress::decode(0b11 << 26), None);
    }

    #[test]
    #[should_panic(expected = "column field")]
    fn encode_range_checked() {
        let _ = FrameAddress::config(1, 4096, 0).encode();
    }
}
