//! Configuration-memory (CM) and configuration-port model.
//!
//! The paper (§III.A): "A frame is the minimum unit of information used to
//! configure/read the FFs' stored values and BRAMs in the device's
//! configuration memory (CM)." This module models that machinery: a
//! [`ConfigPort`] consumes a bitstream word stream exactly like the
//! device's configuration logic — synchronization, packet decoding,
//! FAR/FDRI sequencing, CRC checking, desynchronization — and commits
//! frames into a [`ConfigMemory`]. Readback ([`ConfigPort::readback`])
//! returns frames FDRO-style (a pipelining pad frame first).
//!
//! This closes the loop for the bitstream substrate: a generated partial
//! bitstream, pushed through the port, configures exactly the frames the
//! Eq. 19/23 terms say it should, and reading them back returns the
//! payload bit-exactly.

use crate::crc::Crc32;
use crate::far::FrameAddress;
use crate::packet::{Command, ConfigRegister, Packet, SYNC_WORD};
use core::fmt;
use fabric::FrameGeometry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Frame storage: FAR (with incrementing minor) → frame words.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigMemory {
    frames: BTreeMap<u32, Vec<u32>>,
}

impl ConfigMemory {
    /// Number of distinct frames configured.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The frame at `far`, if configured.
    pub fn frame(&self, far: FrameAddress) -> Option<&[u32]> {
        self.frames.get(&far.encode()).map(Vec::as_slice)
    }

    /// Iterate configured frame addresses in FAR order.
    pub fn addresses(&self) -> impl Iterator<Item = FrameAddress> + '_ {
        self.frames.keys().filter_map(|&k| FrameAddress::decode(k))
    }

    fn store(&mut self, far: FrameAddress, words: Vec<u32>) {
        self.frames.insert(far.encode(), words);
    }
}

/// Port protocol errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmError {
    /// A packet word arrived before synchronization.
    NotSynchronized,
    /// An undecodable word arrived where a packet was expected.
    BadPacket {
        /// The offending word.
        word: u32,
    },
    /// An FDRI write arrived with no FAR set.
    NoFar,
    /// FDRI payload was not a whole number of frames.
    PartialFrame {
        /// Leftover words.
        leftover: u32,
    },
    /// The CRC check word did not match the accumulated value.
    CrcMismatch {
        /// Stated CRC.
        stated: u32,
        /// Accumulated CRC.
        computed: u32,
    },
}

impl fmt::Display for CmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmError::NotSynchronized => write!(f, "configuration word before SYNC"),
            CmError::BadPacket { word } => write!(f, "undecodable packet word {word:#010x}"),
            CmError::NoFar => write!(f, "FDRI write without a frame address"),
            CmError::PartialFrame { leftover } => {
                write!(f, "FDRI payload left {leftover} words (not a whole frame)")
            }
            CmError::CrcMismatch { stated, computed } => {
                write!(
                    f,
                    "CRC mismatch: stated {stated:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortState {
    /// Waiting for the SYNC word.
    Unsynced,
    /// Decoding packet headers.
    Idle,
    /// Consuming `remaining` payload words for `register`.
    Payload {
        register: ConfigRegister,
        remaining: u32,
    },
    /// Waiting for the Type-2 word count after `FDRI x0`.
    AwaitType2,
    /// Consuming FDRI frame payload.
    FrameData { remaining: u32 },
    /// Desynchronized (terminal).
    Done,
}

/// The configuration port: a word-at-a-time state machine over the packet
/// grammar, committing frames to a [`ConfigMemory`].
#[derive(Debug, Clone)]
pub struct ConfigPort {
    geometry: FrameGeometry,
    state: PortState,
    memory: ConfigMemory,
    far: Option<FrameAddress>,
    crc: Crc32,
    buffer: Vec<u32>,
    commands: Vec<Command>,
    idcode: Option<u32>,
}

impl ConfigPort {
    /// A fresh, unsynchronized port for a family's frame geometry.
    pub fn new(geometry: FrameGeometry) -> Self {
        ConfigPort {
            geometry,
            state: PortState::Unsynced,
            memory: ConfigMemory::default(),
            far: None,
            crc: Crc32::new(),
            buffer: Vec::new(),
            commands: Vec::new(),
            idcode: None,
        }
    }

    /// The configured memory.
    pub fn memory(&self) -> &ConfigMemory {
        &self.memory
    }

    /// Commands executed so far.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// IDCODE asserted by the stream.
    pub fn idcode(&self) -> Option<u32> {
        self.idcode
    }

    /// True once a DESYNC command has been executed.
    pub fn is_done(&self) -> bool {
        self.state == PortState::Done
    }

    /// Drive one configuration word into the port.
    pub fn push_word(&mut self, word: u32) -> Result<(), CmError> {
        match self.state {
            PortState::Done => Ok(()), // words after desync are ignored
            PortState::Unsynced => {
                if word == SYNC_WORD {
                    self.state = PortState::Idle;
                }
                Ok(())
            }
            PortState::Idle => self.decode_header(word),
            PortState::AwaitType2 => match Packet::decode(word) {
                Some(Packet::Type2Write { word_count }) => {
                    self.state = PortState::FrameData {
                        remaining: word_count,
                    };
                    Ok(())
                }
                Some(Packet::Noop) => Ok(()), // pad between header and count
                _ => Err(CmError::BadPacket { word }),
            },
            PortState::Payload {
                register,
                remaining,
            } => {
                self.consume_payload(register, word)?;
                // DESYNC inside the payload terminates the port; don't
                // clobber that terminal state.
                if self.state != PortState::Done {
                    self.state = if remaining > 1 {
                        PortState::Payload {
                            register,
                            remaining: remaining - 1,
                        }
                    } else {
                        PortState::Idle
                    };
                }
                Ok(())
            }
            PortState::FrameData { remaining } => {
                // Writer emits one pad NOOP between the Type-2 header and
                // the payload; swallow it before counting payload words.
                if self.buffer.is_empty() && word == Packet::Noop.encode() {
                    return Ok(());
                }
                self.crc.push_word(word);
                self.buffer.push(word);
                if remaining > 1 {
                    self.state = PortState::FrameData {
                        remaining: remaining - 1,
                    };
                    Ok(())
                } else {
                    self.state = PortState::Idle;
                    self.commit_frames()
                }
            }
        }
    }

    fn decode_header(&mut self, word: u32) -> Result<(), CmError> {
        match Packet::decode(word) {
            Some(Packet::Noop) => Ok(()),
            Some(Packet::Type1Write {
                register,
                word_count,
            }) => {
                if register == ConfigRegister::Fdri && word_count == 0 {
                    self.state = PortState::AwaitType2;
                } else if word_count > 0 {
                    self.state = PortState::Payload {
                        register,
                        remaining: word_count,
                    };
                }
                Ok(())
            }
            Some(Packet::Type2Write { .. }) | None => Err(CmError::BadPacket { word }),
        }
    }

    fn consume_payload(&mut self, register: ConfigRegister, word: u32) -> Result<(), CmError> {
        match register {
            ConfigRegister::Far => {
                self.far = FrameAddress::decode(word);
                Ok(())
            }
            ConfigRegister::Idcode => {
                self.idcode = Some(word);
                Ok(())
            }
            ConfigRegister::Cmd => {
                if let Some(cmd) = Command::from_code(word) {
                    if cmd == Command::Desync {
                        self.state = PortState::Done;
                    }
                    if cmd == Command::Rcrc {
                        self.crc = Crc32::new();
                    }
                    self.commands.push(cmd);
                }
                Ok(())
            }
            ConfigRegister::Crc => {
                let computed = self.crc.value();
                if word != computed {
                    return Err(CmError::CrcMismatch {
                        stated: word,
                        computed,
                    });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Commit the buffered FDRI payload as frames starting at the current
    /// FAR; the final frame is the pipelining pad and is discarded, as on
    /// real devices.
    fn commit_frames(&mut self) -> Result<(), CmError> {
        let Some(base) = self.far else {
            self.buffer.clear();
            return Err(CmError::NoFar);
        };
        let fr = self.geometry.fr_size;
        let total = self.buffer.len() as u32;
        if !total.is_multiple_of(fr) {
            self.buffer.clear();
            return Err(CmError::PartialFrame {
                leftover: total % fr,
            });
        }
        let n_frames = total / fr;
        // Last frame = pad, discarded.
        for i in 0..n_frames.saturating_sub(1) {
            let start = (i * fr) as usize;
            let frame = self.buffer[start..start + fr as usize].to_vec();
            let far = FrameAddress {
                minor: base.minor + (i % 64),
                column: base.column + (base.minor + i) / 64,
                ..base
            };
            self.memory.store(far, frame);
        }
        self.buffer.clear();
        Ok(())
    }

    /// FDRO-style readback of `n_frames` frames starting at `far`: one pad
    /// frame of zeros first (pipeline priming), then the stored frames
    /// (unconfigured frames read as zeros).
    pub fn readback(&self, far: FrameAddress, n_frames: u32) -> Vec<u32> {
        let fr = self.geometry.fr_size as usize;
        let mut out = vec![0u32; fr]; // pad frame
        for i in 0..n_frames {
            let addr = FrameAddress {
                minor: far.minor + (i % 64),
                column: far.column + (far.minor + i) / 64,
                ..far
            };
            match self.memory.frame(addr) {
                Some(frame) => out.extend_from_slice(frame),
                None => out.extend(std::iter::repeat_n(0u32, fr)),
            }
        }
        out
    }
}

/// Push an entire word stream through a fresh port.
pub fn load_bitstream(geometry: FrameGeometry, words: &[u32]) -> Result<ConfigPort, CmError> {
    let mut port = ConfigPort::new(geometry);
    for &w in words {
        port.push_word(w)?;
    }
    Ok(port)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{generate, BitstreamSpec};
    use fabric::database::xc5vlx110t;
    use fabric::Family;
    use prcost::search::plan_prr;
    use synth::PaperPrm;

    fn loaded(prm: PaperPrm) -> (ConfigPort, crate::writer::PartialBitstream) {
        let device = xc5vlx110t();
        let plan = plan_prr(&prm.synth_report(Family::Virtex5), &device).unwrap();
        let spec = BitstreamSpec::from_plan(
            device.name(),
            prm.module_name(),
            plan.organization,
            &plan.window,
        );
        let bs = generate(&spec).unwrap();
        let port = load_bitstream(device.params().frames, &bs.words).unwrap();
        (port, bs)
    }

    #[test]
    fn loading_configures_the_expected_frame_count() {
        let (port, bs) = loaded(PaperPrm::Mips);
        let org = &bs.spec.organization;
        let g = &org.family.params().frames;
        // Per row: all column config frames (pad discarded) + BRAM frames.
        let config = u64::from(org.clb_cols * g.cf_clb + g.cf_dsp + org.bram_cols * g.cf_bram);
        let bram = u64::from(org.bram_cols * g.df_bram);
        let expected = u64::from(org.height) * (config + bram);
        assert_eq!(port.memory().frame_count() as u64, expected);
        assert!(port.is_done());
        assert!(port.commands().contains(&Command::Wcfg));
    }

    #[test]
    fn readback_returns_written_payload() {
        let (port, bs) = loaded(PaperPrm::Sdram);
        // First configured frame address.
        let far = port.memory().addresses().next().unwrap();
        let rb = port.readback(far, 2);
        let fr = bs.spec.organization.family.params().frames.fr_size as usize;
        assert_eq!(rb.len(), 3 * fr, "pad + 2 frames");
        assert!(rb[..fr].iter().all(|&w| w == 0), "pad frame is zeros");
        assert_eq!(&rb[fr..2 * fr], port.memory().frame(far).unwrap());
    }

    #[test]
    fn reloading_a_different_module_overwrites_frames() {
        let device = xc5vlx110t();
        let plan = plan_prr(&PaperPrm::Sdram.synth_report(Family::Virtex5), &device).unwrap();
        let mk = |module: &str| {
            let spec =
                BitstreamSpec::from_plan(device.name(), module, plan.organization, &plan.window);
            generate(&spec).unwrap()
        };
        let a = mk("module_a");
        let b = mk("module_b");
        let mut port = ConfigPort::new(device.params().frames);
        for &w in &a.words {
            port.push_word(w).unwrap();
        }
        let far = port.memory().addresses().next().unwrap();
        let frame_a = port.memory().frame(far).unwrap().to_vec();
        // Ports desync after one stream; push the second through a fresh
        // sync (real systems re-sync the ICAP per bitstream).
        let mut port2 = ConfigPort::new(device.params().frames);
        for &w in &b.words {
            port2.push_word(w).unwrap();
        }
        let frame_b = port2.memory().frame(far).unwrap().to_vec();
        assert_ne!(
            frame_a, frame_b,
            "different modules configure different bits"
        );
        assert_eq!(port.memory().frame_count(), port2.memory().frame_count());
    }

    #[test]
    fn corrupted_stream_is_rejected_at_the_crc() {
        let (_, mut bs) = loaded(PaperPrm::Fir);
        bs.words[50] ^= 4; // inside the first FDRI payload
        let device = xc5vlx110t();
        let err = load_bitstream(device.params().frames, &bs.words).unwrap_err();
        assert!(matches!(err, CmError::CrcMismatch { .. }), "{err:?}");
    }

    #[test]
    fn words_before_sync_are_ignored() {
        let device = xc5vlx110t();
        let mut port = ConfigPort::new(device.params().frames);
        port.push_word(0xDEAD_BEEF).unwrap();
        port.push_word(0xFFFF_FFFF).unwrap();
        assert!(!port.is_done());
        assert_eq!(port.memory().frame_count(), 0);
    }

    #[test]
    fn fdri_without_far_errors() {
        let device = xc5vlx110t();
        let mut port = ConfigPort::new(device.params().frames);
        port.push_word(SYNC_WORD).unwrap();
        port.push_word(
            Packet::Type1Write {
                register: ConfigRegister::Fdri,
                word_count: 0,
            }
            .encode(),
        )
        .unwrap();
        let fr = device.params().frames.fr_size;
        port.push_word(Packet::Type2Write { word_count: fr }.encode())
            .unwrap();
        let mut result = Ok(());
        for i in 0..fr {
            result = port.push_word(i);
            if result.is_err() {
                break;
            }
        }
        assert_eq!(result, Err(CmError::NoFar));
    }
}
