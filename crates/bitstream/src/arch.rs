//! Runtime CPU-feature dispatch for the hot bitstream kernels.
//!
//! The two kernels that dominate `pipeline:bitstream` wall-clock are the
//! batch CRC update ([`crate::crc`]) and the deterministic frame-payload
//! fill ([`crate::writer`]). Both have portable implementations that are
//! always compiled and property-tested against the frozen oracles; this
//! module detects CPU features **once per process** and routes the hot
//! entry points to the fastest implementation the host supports:
//!
//! | path | x86_64 | aarch64 |
//! |------|--------|---------|
//! | CRC  | PCLMULQDQ 4×128-bit fold → SSE4.2 `crc32q` reduction, or the SSE4.2 `crc32q` four-lane kernel | ARMv8 `crc32cx` four-lane kernel |
//! | fill | AVX2 8-lane counter splitmix | portable (autovectorized) |
//!
//! The CRC-32C (Castagnoli) polynomial is natively supported by the x86
//! `crc32` instruction family and the ARMv8 `crc32c*` instructions, so
//! the hardware paths compute the *identical* checksum, not an
//! approximation. The carryless-multiply kernel derives its fold
//! constants at compile time from the same `advance` algebra the
//! portable folded kernel is built on (see
//! [`crate::crc::clmul_fold_const`]).
//!
//! ## Dispatch policy
//!
//! * Detection happens on first use, through a [`OnceLock`]; the chosen
//!   paths are visible via [`active`] and are reported by the pipeline
//!   benchmarks.
//! * Setting `PRFPGA_FORCE_SCALAR` to any value other than `0` or the
//!   empty string forces the portable kernels, for testing and for
//!   apples-to-apples scalar baselines. The variable is read once, at
//!   first dispatch.
//! * The portable kernels are always compiled on every target — there is
//!   no build-time feature gate to get wrong; an unrecognized CPU simply
//!   runs the scalar path.
//!
//! ## Unsafe boundary
//!
//! The crate denies `unsafe_code` globally; only this module's
//! arch-specific submodules and the thin wrappers that call them carry
//! `#[allow(unsafe_code)]`, each with a `SAFETY` comment. Every unsafe
//! function is `#[target_feature]`-annotated, and every call site either
//! sits behind the `OnceLock` table (populated only after
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!` succeeds)
//! or re-verifies the feature itself. The kernels contain no raw-pointer
//! arithmetic beyond unaligned SIMD loads/stores that are bounds-checked
//! by their callers in ordinary safe code.
//!
//! Every dispatchable variant is property-tested byte-identical to the
//! frozen `crc::baseline` / `writer::reference` oracles in
//! `tests/kernel_matrix.rs`, and CI runs the equivalence suites twice —
//! once with native dispatch and once under `PRFPGA_FORCE_SCALAR=1`.

use std::sync::OnceLock;

/// Which CRC kernel the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrcPath {
    /// Carryless-multiply folding (x86 PCLMULQDQ) with a hardware-CRC
    /// reduction and tail.
    Clmul,
    /// Hardware CRC-32C instructions (x86 SSE4.2 `crc32q` / ARMv8
    /// `crc32cx`), four-lane folded.
    HwCrc,
    /// The portable folded / slice-16 kernel.
    Portable,
}

impl CrcPath {
    /// Stable identifier used in benchmark artifacts and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            CrcPath::Clmul => "clmul-fold",
            CrcPath::HwCrc => "hw-crc32c",
            CrcPath::Portable => "portable-folded",
        }
    }
}

/// Which payload-fill kernel the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillPath {
    /// AVX2 8-lane counter-form splitmix fill.
    Avx2,
    /// The portable counter-form fill (autovectorizable).
    Portable,
}

impl FillPath {
    /// Stable identifier used in benchmark artifacts and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            FillPath::Avx2 => "avx2-splitmix",
            FillPath::Portable => "portable-splitmix",
        }
    }
}

/// The kernel selection for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Selected CRC kernel.
    pub crc: CrcPath,
    /// Selected payload-fill kernel.
    pub fill: FillPath,
}

impl Dispatch {
    /// The all-portable selection (no CPU features used).
    pub const fn portable() -> Self {
        Dispatch {
            crc: CrcPath::Portable,
            fill: FillPath::Portable,
        }
    }

    /// Probe CPU features and pick the kernel set.
    ///
    /// Pure with respect to process state (does not consult the
    /// environment): `force_scalar` is passed explicitly so tests can
    /// exercise both outcomes regardless of the ambient
    /// `PRFPGA_FORCE_SCALAR`. The process-wide selection cached by
    /// [`active`] calls this once with the environment's value.
    pub fn detect(force_scalar: bool) -> Self {
        if force_scalar {
            Dispatch::portable()
        } else {
            detect_native()
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_native() -> Dispatch {
    let sse42 = std::arch::is_x86_feature_detected!("sse4.2");
    let crc = if sse42 && std::arch::is_x86_feature_detected!("pclmulqdq") {
        CrcPath::Clmul
    } else if sse42 {
        CrcPath::HwCrc
    } else {
        CrcPath::Portable
    };
    let fill = if std::arch::is_x86_feature_detected!("avx2") {
        FillPath::Avx2
    } else {
        FillPath::Portable
    };
    Dispatch { crc, fill }
}

#[cfg(target_arch = "aarch64")]
fn detect_native() -> Dispatch {
    let crc = if std::arch::is_aarch64_feature_detected!("crc") {
        CrcPath::HwCrc
    } else {
        CrcPath::Portable
    };
    // The fill kernel relies on 64-bit lane multiplies; NEON has no
    // 64×64 multiply, and the portable counter-form loop already
    // autovectorizes, so aarch64 keeps the portable fill.
    Dispatch {
        crc,
        fill: FillPath::Portable,
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect_native() -> Dispatch {
    Dispatch::portable()
}

/// Whether `PRFPGA_FORCE_SCALAR` requests the portable kernels.
pub fn force_scalar_env() -> bool {
    matches!(std::env::var("PRFPGA_FORCE_SCALAR"), Ok(v) if !v.is_empty() && v != "0")
}

/// The resolved kernel table: one fn pointer per hot entry point. All
/// pointers are *safe* functions — the SIMD-backed ones re-verify the
/// CPU feature (a cached relaxed atomic load) before entering the
/// `unsafe` kernel, so the table stays sound even if constructed by
/// hand in a test.
struct Kernels {
    dispatch: Dispatch,
    crc: fn(u32, &[u32]) -> u32,
    fill: fn(u64, &mut [u32]),
}

static KERNELS: OnceLock<Kernels> = OnceLock::new();

fn kernels() -> &'static Kernels {
    KERNELS.get_or_init(|| build_kernels(Dispatch::detect(force_scalar_env())))
}

fn build_kernels(dispatch: Dispatch) -> Kernels {
    let crc: fn(u32, &[u32]) -> u32 = match dispatch.crc {
        #[cfg(target_arch = "x86_64")]
        CrcPath::Clmul => crc_clmul_kernel,
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        CrcPath::HwCrc => crc_hw_kernel,
        _ => crc_portable_kernel,
    };
    let fill: fn(u64, &mut [u32]) = match dispatch.fill {
        #[cfg(target_arch = "x86_64")]
        FillPath::Avx2 => fill_avx2_kernel,
        _ => fill_portable_kernel,
    };
    Kernels {
        dispatch,
        crc,
        fill,
    }
}

/// The kernel selection active in this process (detected on first use).
pub fn active() -> Dispatch {
    kernels().dispatch
}

/// Advance a raw CRC state over `words` with the dispatched kernel. The
/// hot path behind [`crate::crc::Crc32::push_words`].
#[inline]
pub(crate) fn crc_update(state: u32, words: &[u32]) -> u32 {
    (kernels().crc)(state, words)
}

/// Fill `out` with the deterministic frame payload for `seed` using the
/// dispatched kernel. The hot path behind the bitstream writer.
#[inline]
pub(crate) fn fill_payload(seed: u64, out: &mut [u32]) {
    (kernels().fill)(seed, out)
}

// ------------------------------------------------------ safe wrappers

fn crc_portable_kernel(state: u32, words: &[u32]) -> u32 {
    crate::crc::update_portable(state, words)
}

fn fill_portable_kernel(seed: u64, out: &mut [u32]) {
    crate::writer::fill_payload_portable(seed, out);
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // SAFETY: kernel entered only after verifying SSE4.2.
fn crc_hw_kernel(state: u32, words: &[u32]) -> u32 {
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: `crc_update_hw` requires SSE4.2, verified just above.
        unsafe { x86::crc_update_hw(state, words) }
    } else {
        crate::crc::update_portable(state, words)
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // SAFETY: kernel entered only after verifying PCLMULQDQ+SSE4.2.
fn crc_clmul_kernel(state: u32, words: &[u32]) -> u32 {
    if std::arch::is_x86_feature_detected!("pclmulqdq")
        && std::arch::is_x86_feature_detected!("sse4.2")
    {
        // SAFETY: `crc_update_clmul` requires PCLMULQDQ and SSE4.2,
        // verified just above.
        unsafe { x86::crc_update_clmul(state, words) }
    } else {
        crate::crc::update_portable(state, words)
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // SAFETY: kernel entered only after verifying AVX2.
fn fill_avx2_kernel(seed: u64, out: &mut [u32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: `fill_payload_avx2` requires AVX2, verified just above.
        unsafe { x86::fill_payload_avx2(seed, out) }
    } else {
        crate::writer::fill_payload_portable(seed, out);
    }
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // SAFETY: kernel entered only after verifying the crc feature.
fn crc_hw_kernel(state: u32, words: &[u32]) -> u32 {
    if std::arch::is_aarch64_feature_detected!("crc") {
        // SAFETY: `crc_update_hw` requires the ARMv8 crc feature,
        // verified just above.
        unsafe { aarch64::crc_update_hw(state, words) }
    } else {
        crate::crc::update_portable(state, words)
    }
}

// ------------------------------------------- probe-style entry points
//
// Benchmarks and the kernel-matrix equivalence tests need to name each
// variant explicitly, regardless of which one dispatch would pick. These
// return `None` / `false` when the host CPU (or target arch) lacks the
// kernel, so callers can probe without cfg ladders of their own.

/// Checksum a word slice with the hardware-CRC kernel, if this CPU has
/// one (`Some(crc)`), or `None` otherwise.
#[allow(unsafe_code)] // SAFETY: each arm verifies its feature before the unsafe call.
pub fn crc_words_hw(words: &[u32]) -> Option<u32> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: SSE4.2 verified just above.
        return Some(!unsafe { x86::crc_update_hw(0xFFFF_FFFF, words) });
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("crc") {
        // SAFETY: the ARMv8 crc feature verified just above.
        return Some(!unsafe { aarch64::crc_update_hw(0xFFFF_FFFF, words) });
    }
    let _ = words;
    None
}

/// Checksum a word slice with the carryless-multiply folding kernel, if
/// this CPU has one (`Some(crc)`), or `None` otherwise.
#[allow(unsafe_code)] // SAFETY: features verified before the unsafe call.
pub fn crc_words_clmul(words: &[u32]) -> Option<u32> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("pclmulqdq")
        && std::arch::is_x86_feature_detected!("sse4.2")
    {
        // SAFETY: PCLMULQDQ and SSE4.2 verified just above.
        return Some(!unsafe { x86::crc_update_clmul(0xFFFF_FFFF, words) });
    }
    let _ = words;
    None
}

/// Fill `out` via the dispatched kernel (same as the writer's hot path;
/// exposed for benchmarks and equivalence tests).
pub fn fill_words(seed: u64, out: &mut [u32]) {
    fill_payload(seed, out);
}

/// Fill `out` via the portable kernel, regardless of CPU features.
pub fn fill_words_portable(seed: u64, out: &mut [u32]) {
    crate::writer::fill_payload_portable(seed, out);
}

/// Fill `out` via the SIMD kernel if this CPU has one. Returns `true`
/// if the SIMD kernel ran, `false` if `out` was left untouched.
#[allow(unsafe_code)] // SAFETY: feature verified before the unsafe call.
pub fn fill_words_simd(seed: u64, out: &mut [u32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 verified just above.
        unsafe { x86::fill_payload_avx2(seed, out) };
        return true;
    }
    let _ = (seed, out);
    false
}

// ----------------------------------------------------- x86_64 kernels

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE4.2 / PCLMULQDQ / AVX2 kernels.
    //!
    //! SAFETY policy: every function here is `unsafe fn` with a
    //! `#[target_feature]` contract — the caller must have verified the
    //! listed features via `is_x86_feature_detected!`. Inside, the only
    //! unsafe operations are the intrinsics themselves and unaligned
    //! SIMD loads/stores whose bounds are established by safe slice
    //! arithmetic at the call site.
    #![allow(unsafe_code)]
    #![deny(unsafe_op_in_unsafe_fn)]

    use crate::crc::{advance, clmul_fold_const, ADVANCE, LANE_WORDS, SUPER_WORDS};
    use crate::writer::{splitmix32, GAMMA};
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi64, _mm256_loadu_si256, _mm256_mul_epu32,
        _mm256_permute2x128_si256, _mm256_permutevar8x32_epi32, _mm256_set1_epi64x,
        _mm256_set_epi64x, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_xor_si256, _mm_clmulepi64_si128, _mm_crc32_u32, _mm_crc32_u64, _mm_cvtsi128_si64,
        _mm_cvtsi32_si128, _mm_extract_epi64, _mm_loadu_si128, _mm_set_epi64x, _mm_set_epi8,
        _mm_shuffle_epi8, _mm_xor_si128,
    };

    /// Two adjacent configuration words as the 64-bit value `crc32q`
    /// consumes: the instruction absorbs its operand's bytes low-first,
    /// and the CRC stream is each word's big-endian bytes.
    #[inline(always)]
    fn stream_u64(words: &[u32], i: usize) -> u64 {
        (u64::from(words[i + 1].swap_bytes()) << 32) | u64::from(words[i].swap_bytes())
    }

    /// Single-chain `crc32q`/`crc32l` update for inputs shorter than the
    /// folding kernels' block sizes (and for their tails).
    ///
    /// # Safety
    /// CPU must support SSE4.2.
    #[target_feature(enable = "sse4.2")]
    unsafe fn crc_tail_hw(state: u32, words: &[u32]) -> u32 {
        let mut s = u64::from(state);
        let mut pairs = words.chunks_exact(2);
        for p in &mut pairs {
            s = _mm_crc32_u64(s, stream_u64(p, 0));
        }
        let mut st = s as u32;
        if let &[w] = pairs.remainder() {
            st = _mm_crc32_u32(st, w.swap_bytes());
        }
        st
    }

    /// Four-lane hardware CRC-32C kernel: the same super-block / lane
    /// structure as the portable folded kernel (four independent 128-byte
    /// lane chains per 512-byte super-block, recombined through the
    /// shared `ADVANCE` operators), with each lane chain advanced by the
    /// 8-bytes-per-instruction `crc32q` instead of table lookups. The
    /// four lanes hide the instruction's 3-cycle latency.
    ///
    /// # Safety
    /// CPU must support SSE4.2.
    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn crc_update_hw(mut state: u32, words: &[u32]) -> u32 {
        let mut blocks = words.chunks_exact(SUPER_WORDS);
        for block in &mut blocks {
            let (a, rest) = block.split_at(LANE_WORDS);
            let (b, rest) = rest.split_at(LANE_WORDS);
            let (c, d) = rest.split_at(LANE_WORDS);
            let mut s0 = u64::from(state);
            let (mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64);
            let mut i = 0;
            while i < LANE_WORDS {
                s0 = _mm_crc32_u64(s0, stream_u64(a, i));
                s1 = _mm_crc32_u64(s1, stream_u64(b, i));
                s2 = _mm_crc32_u64(s2, stream_u64(c, i));
                s3 = _mm_crc32_u64(s3, stream_u64(d, i));
                i += 2;
            }
            state = advance(&ADVANCE[2], s0 as u32)
                ^ advance(&ADVANCE[1], s1 as u32)
                ^ advance(&ADVANCE[0], s2 as u32)
                ^ s3 as u32;
        }
        // SAFETY: same contract.
        unsafe { crc_tail_hw(state, blocks.remainder()) }
    }

    // Carryless-multiply fold constants, `(K(D+32), K(D−32))` per fold
    // distance `D` in bits, in the 33-bit reflected form PCLMULQDQ
    // multiplies by (see `crc::clmul_fold_const`). 512 folds each of the
    // four accumulators one 64-byte iteration forward; 384/256/128
    // collapse the four accumulators into one.
    const FOLD_512: (i64, i64) = (clmul_fold_const(544) as i64, clmul_fold_const(480) as i64);
    const FOLD_384: (i64, i64) = (clmul_fold_const(416) as i64, clmul_fold_const(352) as i64);
    const FOLD_256: (i64, i64) = (clmul_fold_const(288) as i64, clmul_fold_const(224) as i64);
    const FOLD_128: (i64, i64) = (clmul_fold_const(160) as i64, clmul_fold_const(96) as i64);

    /// Load 16 message bytes (4 configuration words) in CRC stream
    /// order: unaligned load of the little-endian words, then a per-lane
    /// byte reversal so register byte 0 is the first transmitted byte.
    ///
    /// # Safety
    /// CPU must support SSE4.2 (implies SSSE3 for `pshufb`); caller must
    /// ensure `i + 4 <= words.len()`.
    #[target_feature(enable = "sse4.2")]
    unsafe fn load_stream(words: &[u32], i: usize, mask: __m128i) -> __m128i {
        debug_assert!(i + 4 <= words.len());
        // SAFETY: caller guarantees 16 readable bytes at `i`; features
        // per this fn's contract.
        unsafe { _mm_shuffle_epi8(_mm_loadu_si128(words.as_ptr().add(i).cast()), mask) }
    }

    /// One reflected fold step: carry `x` forward by `D` message bits,
    /// where `k` holds `(K(D+32), K(D−32))` in its (low, high) lanes.
    ///
    /// # Safety
    /// CPU must support PCLMULQDQ and SSE4.2.
    #[target_feature(enable = "sse4.2,pclmulqdq")]
    unsafe fn fold_128(x: __m128i, k: __m128i) -> __m128i {
        _mm_xor_si128(
            _mm_clmulepi64_si128(x, k, 0x00),
            _mm_clmulepi64_si128(x, k, 0x11),
        )
    }

    /// Carryless-multiply folding CRC kernel: four 128-bit accumulators
    /// consume 64 message bytes per iteration (each folded 512 bits
    /// forward per step), are collapsed to one accumulator with the
    /// 384/256/128-bit fold constants, and the final 128-bit residual is
    /// reduced through two `crc32q` steps (equivalent to the classic
    /// Barrett reduction, since both compute the CRC of the residual
    /// bytes from a zero state). Inputs shorter than one 64-byte block,
    /// and tails, take the hardware single-chain path.
    ///
    /// # Safety
    /// CPU must support PCLMULQDQ and SSE4.2.
    #[target_feature(enable = "sse4.2,pclmulqdq")]
    pub(super) unsafe fn crc_update_clmul(state: u32, words: &[u32]) -> u32 {
        /// Words per folding iteration (64 bytes, four XMM registers).
        const BLOCK_WORDS: usize = 16;
        if words.len() < BLOCK_WORDS {
            // SAFETY: SSE4.2 per this fn's contract.
            return unsafe { crc_tail_hw(state, words) };
        }
        let blocks = words.len() / BLOCK_WORDS;
        // SAFETY: all intrinsics below are covered by this fn's
        // target_feature contract; every `load_stream` offset is at most
        // `blocks * BLOCK_WORDS - 4`, in bounds by construction.
        unsafe {
            // Per-lane byte reversal: memory holds little-endian words,
            // the CRC stream is their big-endian bytes.
            let mask = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
            let k512 = _mm_set_epi64x(FOLD_512.1, FOLD_512.0);
            let mut x0 = load_stream(words, 0, mask);
            let mut x1 = load_stream(words, 4, mask);
            let mut x2 = load_stream(words, 8, mask);
            let mut x3 = load_stream(words, 12, mask);
            // Fold the running state into the first four stream bytes.
            x0 = _mm_xor_si128(x0, _mm_cvtsi32_si128(state as i32));
            for b in 1..blocks {
                let base = b * BLOCK_WORDS;
                x0 = _mm_xor_si128(fold_128(x0, k512), load_stream(words, base, mask));
                x1 = _mm_xor_si128(fold_128(x1, k512), load_stream(words, base + 4, mask));
                x2 = _mm_xor_si128(fold_128(x2, k512), load_stream(words, base + 8, mask));
                x3 = _mm_xor_si128(fold_128(x3, k512), load_stream(words, base + 12, mask));
            }
            // Collapse: x0 leads x3 by 384 message bits, x1 by 256, x2
            // by 128.
            let k384 = _mm_set_epi64x(FOLD_384.1, FOLD_384.0);
            let k256 = _mm_set_epi64x(FOLD_256.1, FOLD_256.0);
            let k128 = _mm_set_epi64x(FOLD_128.1, FOLD_128.0);
            let x = _mm_xor_si128(
                _mm_xor_si128(fold_128(x0, k384), fold_128(x1, k256)),
                _mm_xor_si128(fold_128(x2, k128), x3),
            );
            // Reduce the 128-bit residual: its register bytes are
            // already in stream order, so two crc32q steps from state 0
            // produce the CRC state of the residual message.
            let lo = _mm_cvtsi128_si64(x) as u64;
            let hi = _mm_extract_epi64::<1>(x) as u64;
            let reduced = _mm_crc32_u64(_mm_crc32_u64(0, lo), hi) as u32;
            crc_tail_hw(reduced, &words[blocks * BLOCK_WORDS..])
        }
    }

    /// 64-bit lane-wise multiply-low (AVX2 has no 64×64 multiply): three
    /// 32×32 partial products per lane.
    ///
    /// # Safety
    /// CPU must support AVX2. `bh` must be `b >> 32` lane-wise.
    #[target_feature(enable = "avx2")]
    unsafe fn mullo64(a: __m256i, b: __m256i, bh: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let mid = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
            _mm256_mul_epu32(a, bh),
        );
        _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32))
    }

    /// AVX2 payload fill: eight independent splitmix counters per
    /// iteration (two 4×u64 vectors), exactly the counter form of the
    /// portable fill — word `i` is `splitmix32(seed + (i+1)·GAMMA)` — so
    /// the output is byte-identical.
    ///
    /// # Safety
    /// CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_payload_avx2(seed: u64, out: &mut [u32]) {
        const M1: i64 = 0xbf58_476d_1ce4_e5b9_u64 as i64;
        const M2: i64 = 0x94d0_49bb_1331_11eb_u64 as i64;
        let full = out.len() - out.len() % 8;
        let mut chunks = out.chunks_exact_mut(8);
        // SAFETY: AVX2 per this fn's contract; the only memory access is
        // the unaligned 32-byte store into each exact 8-word chunk.
        unsafe {
            let m1 = _mm256_set1_epi64x(M1);
            let m1h = _mm256_srli_epi64(m1, 32);
            let m2 = _mm256_set1_epi64x(M2);
            let m2h = _mm256_srli_epi64(m2, 32);
            let step = _mm256_set1_epi64x(GAMMA.wrapping_mul(8) as i64);
            // Lane k of `ca` holds counter seed + (k+1)·GAMMA; `cb` the
            // next four.
            let mut ca = _mm256_set_epi64x(
                seed.wrapping_add(GAMMA.wrapping_mul(4)) as i64,
                seed.wrapping_add(GAMMA.wrapping_mul(3)) as i64,
                seed.wrapping_add(GAMMA.wrapping_mul(2)) as i64,
                seed.wrapping_add(GAMMA) as i64,
            );
            let mut cb = _mm256_add_epi64(ca, _mm256_set1_epi64x(GAMMA.wrapping_mul(4) as i64));
            // Gather each u64 lane's low dword into positions 0..4.
            let pack_idx = _mm256_loadu_si256([0u32, 2, 4, 6, 0, 0, 0, 0].as_ptr().cast());
            for q in chunks.by_ref() {
                let mut za = ca;
                let mut zb = cb;
                za = _mm256_xor_si256(za, _mm256_srli_epi64(za, 30));
                zb = _mm256_xor_si256(zb, _mm256_srli_epi64(zb, 30));
                za = mullo64(za, m1, m1h);
                zb = mullo64(zb, m1, m1h);
                za = _mm256_xor_si256(za, _mm256_srli_epi64(za, 27));
                zb = _mm256_xor_si256(zb, _mm256_srli_epi64(zb, 27));
                za = mullo64(za, m2, m2h);
                zb = mullo64(zb, m2, m2h);
                za = _mm256_xor_si256(za, _mm256_srli_epi64(za, 31));
                zb = _mm256_xor_si256(zb, _mm256_srli_epi64(zb, 31));
                let pa = _mm256_permutevar8x32_epi32(za, pack_idx);
                let pb = _mm256_permutevar8x32_epi32(zb, pack_idx);
                let packed = _mm256_permute2x128_si256(pa, pb, 0x20);
                _mm256_storeu_si256(q.as_mut_ptr().cast(), packed);
                ca = _mm256_add_epi64(ca, step);
                cb = _mm256_add_epi64(cb, step);
            }
        }
        let base = seed.wrapping_add(GAMMA.wrapping_mul(full as u64));
        for (j, w) in chunks.into_remainder().iter_mut().enumerate() {
            *w = splitmix32(base.wrapping_add(GAMMA.wrapping_mul(j as u64 + 1)));
        }
    }
}

// ---------------------------------------------------- aarch64 kernels

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    //! ARMv8 CRC kernels.
    //!
    //! SAFETY policy: as for the x86 module — `unsafe fn` +
    //! `#[target_feature]`, features verified by every caller. A PMULL
    //! folding kernel (the aarch64 analogue of the PCLMULQDQ path) is
    //! deliberately not implemented yet: this repository cannot
    //! compile-check aarch64, so only the simple, high-confidence
    //! `crc32c*` kernel ships for it.
    #![allow(unsafe_code)]
    #![deny(unsafe_op_in_unsafe_fn)]

    use crate::crc::{advance, ADVANCE, LANE_WORDS, SUPER_WORDS};
    use core::arch::aarch64::{__crc32cd, __crc32cw};

    /// Two adjacent configuration words as the 64-bit value `crc32cx`
    /// consumes (low byte first; the stream is big-endian per word).
    #[inline(always)]
    fn stream_u64(words: &[u32], i: usize) -> u64 {
        (u64::from(words[i + 1].swap_bytes()) << 32) | u64::from(words[i].swap_bytes())
    }

    /// Four-lane hardware CRC-32C kernel, mirroring the x86 `crc32q`
    /// kernel: independent lane chains per super-block, recombined with
    /// the shared `ADVANCE` operators.
    ///
    /// # Safety
    /// CPU must support the ARMv8 `crc` feature.
    #[target_feature(enable = "crc")]
    pub(super) unsafe fn crc_update_hw(mut state: u32, words: &[u32]) -> u32 {
        let mut blocks = words.chunks_exact(SUPER_WORDS);
        for block in &mut blocks {
            let (a, rest) = block.split_at(LANE_WORDS);
            let (b, rest) = rest.split_at(LANE_WORDS);
            let (c, d) = rest.split_at(LANE_WORDS);
            let mut s0 = state;
            let (mut s1, mut s2, mut s3) = (0u32, 0u32, 0u32);
            let mut i = 0;
            while i < LANE_WORDS {
                s0 = __crc32cd(s0, stream_u64(a, i));
                s1 = __crc32cd(s1, stream_u64(b, i));
                s2 = __crc32cd(s2, stream_u64(c, i));
                s3 = __crc32cd(s3, stream_u64(d, i));
                i += 2;
            }
            state =
                advance(&ADVANCE[2], s0) ^ advance(&ADVANCE[1], s1) ^ advance(&ADVANCE[0], s2) ^ s3;
        }
        let tail = blocks.remainder();
        let mut pairs = tail.chunks_exact(2);
        for p in &mut pairs {
            state = __crc32cd(state, stream_u64(p, 0));
        }
        if let &[w] = pairs.remainder() {
            state = __crc32cw(state, w.swap_bytes());
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_selects_portable() {
        assert_eq!(Dispatch::detect(true), Dispatch::portable());
        assert_eq!(Dispatch::detect(true).crc.name(), "portable-folded");
        assert_eq!(Dispatch::detect(true).fill.name(), "portable-splitmix");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn native_detection_matches_cpu_features() {
        let d = Dispatch::detect(false);
        let sse42 = std::arch::is_x86_feature_detected!("sse4.2");
        let clmul = sse42 && std::arch::is_x86_feature_detected!("pclmulqdq");
        let expect = if clmul {
            CrcPath::Clmul
        } else if sse42 {
            CrcPath::HwCrc
        } else {
            CrcPath::Portable
        };
        assert_eq!(d.crc, expect);
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        assert_eq!(d.fill == FillPath::Avx2, avx2);
    }

    #[test]
    fn probe_entry_points_agree_with_portable() {
        let words: Vec<u32> = (0..700u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for len in [0usize, 1, 2, 3, 15, 16, 17, 127, 128, 129, 512, 700] {
            let expect = crate::crc::crc_words_folded(&words[..len]);
            if let Some(hw) = crc_words_hw(&words[..len]) {
                assert_eq!(hw, expect, "hw at {len}");
            }
            if let Some(cl) = crc_words_clmul(&words[..len]) {
                assert_eq!(cl, expect, "clmul at {len}");
            }
        }
    }

    #[test]
    fn simd_fill_matches_portable() {
        for len in [0usize, 1, 7, 8, 9, 64, 333] {
            let mut portable = vec![0u32; len];
            fill_words_portable(0xDEAD_BEEF_0123_4567, &mut portable);
            let mut simd = vec![0u32; len];
            if fill_words_simd(0xDEAD_BEEF_0123_4567, &mut simd) {
                assert_eq!(simd, portable, "len {len}");
            }
        }
    }
}
