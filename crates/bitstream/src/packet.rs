//! Configuration packet encoding (Virtex-5-style Type-1/Type-2 packets).
//!
//! Word layout (UG191 table 6-2/6-4):
//!
//! ```text
//! Type 1: [31:29]=001  [28:27]=opcode  [17:13]=register  [10:0]=word count
//! Type 2: [31:29]=010  [28:27]=opcode  [26:0]=word count
//! NOOP  : type 1 with opcode 00 and all-zero payload fields (0x2000_0000)
//! ```

use core::fmt;
use serde::{Deserialize, Serialize};

/// Configuration registers addressable by Type-1 packets (UG191 table 6-5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ConfigRegister {
    Crc = 0x00,
    Far = 0x01,
    Fdri = 0x02,
    Fdro = 0x03,
    Cmd = 0x04,
    Ctl0 = 0x05,
    Mask = 0x06,
    Stat = 0x07,
    Lout = 0x08,
    Cor0 = 0x09,
    Mfwr = 0x0a,
    Cbc = 0x0b,
    Idcode = 0x0c,
    Axss = 0x0d,
}

impl ConfigRegister {
    /// Decode a 5-bit register address.
    pub fn from_addr(addr: u32) -> Option<ConfigRegister> {
        use ConfigRegister::*;
        Some(match addr {
            0x00 => Crc,
            0x01 => Far,
            0x02 => Fdri,
            0x03 => Fdro,
            0x04 => Cmd,
            0x05 => Ctl0,
            0x06 => Mask,
            0x07 => Stat,
            0x08 => Lout,
            0x09 => Cor0,
            0x0a => Mfwr,
            0x0b => Cbc,
            0x0c => Idcode,
            0x0d => Axss,
            _ => return None,
        })
    }
}

/// CMD register command codes (UG191 table 6-6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Command {
    Null = 0,
    Wcfg = 1,
    Mfw = 2,
    Lfrm = 3,
    Rcfg = 4,
    Start = 5,
    Rcap = 6,
    Rcrc = 7,
    Aghigh = 8,
    Switch = 9,
    Grestore = 10,
    Shutdown = 11,
    Gcapture = 12,
    Desync = 13,
}

impl Command {
    /// Decode a command word.
    pub fn from_code(code: u32) -> Option<Command> {
        use Command::*;
        Some(match code {
            0 => Null,
            1 => Wcfg,
            2 => Mfw,
            3 => Lfrm,
            4 => Rcfg,
            5 => Start,
            6 => Rcap,
            7 => Rcrc,
            8 => Aghigh,
            9 => Switch,
            10 => Grestore,
            11 => Shutdown,
            12 => Gcapture,
            13 => Desync,
            _ => return None,
        })
    }
}

/// The device synchronization word.
pub const SYNC_WORD: u32 = 0xAA99_5566;
/// Dummy padding word preceding synchronization.
pub const DUMMY_WORD: u32 = 0xFFFF_FFFF;
/// Bus-width auto-detect words.
pub const BUS_WIDTH_SYNC: u32 = 0x0000_00BB;
/// Bus-width auto-detect pattern.
pub const BUS_WIDTH_DETECT: u32 = 0x1122_0044;
/// A no-operation packet header.
pub const NOOP: u32 = 0x2000_0000;

/// A decoded configuration packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Packet {
    /// No-operation.
    Noop,
    /// Type-1 write: `word_count` payload words into `register`.
    Type1Write {
        /// Destination register.
        register: ConfigRegister,
        /// Payload word count (<= 2047).
        word_count: u32,
    },
    /// Type-2 write: extends the preceding Type-1 with a large word count.
    Type2Write {
        /// Payload word count (<= 2^27 - 1).
        word_count: u32,
    },
}

impl Packet {
    /// Encode to a 32-bit header word.
    pub fn encode(self) -> u32 {
        match self {
            Packet::Noop => NOOP,
            Packet::Type1Write {
                register,
                word_count,
            } => {
                assert!(word_count <= 0x7ff, "type-1 word count field is 11 bits");
                (0b001 << 29) | (0b10 << 27) | ((register as u32) << 13) | word_count
            }
            Packet::Type2Write { word_count } => {
                assert!(word_count < (1 << 27), "type-2 word count field is 27 bits");
                (0b010 << 29) | (0b10 << 27) | word_count
            }
        }
    }

    /// Decode a 32-bit header word.
    pub fn decode(word: u32) -> Option<Packet> {
        let header_type = word >> 29;
        let opcode = (word >> 27) & 0b11;
        match (header_type, opcode) {
            (0b001, 0b00) => Some(Packet::Noop),
            (0b001, 0b10) => {
                let register = ConfigRegister::from_addr((word >> 13) & 0x1f)?;
                Some(Packet::Type1Write {
                    register,
                    word_count: word & 0x7ff,
                })
            }
            (0b010, 0b10) => Some(Packet::Type2Write {
                word_count: word & 0x07ff_ffff,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Noop => write!(f, "NOOP"),
            Packet::Type1Write {
                register,
                word_count,
            } => {
                write!(f, "T1 WRITE {register:?} x{word_count}")
            }
            Packet::Type2Write { word_count } => write!(f, "T2 WRITE x{word_count}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_encodings_match_ug191() {
        // Well-known header words from UG191 examples.
        assert_eq!(
            Packet::Type1Write {
                register: ConfigRegister::Cmd,
                word_count: 1
            }
            .encode(),
            0x3000_8001
        );
        assert_eq!(
            Packet::Type1Write {
                register: ConfigRegister::Far,
                word_count: 1
            }
            .encode(),
            0x3000_2001
        );
        assert_eq!(
            Packet::Type1Write {
                register: ConfigRegister::Fdri,
                word_count: 0
            }
            .encode(),
            0x3000_4000
        );
        assert_eq!(Packet::Noop.encode(), 0x2000_0000);
        assert_eq!(Packet::Type2Write { word_count: 5 }.encode(), 0x5000_0005);
    }

    #[test]
    fn round_trip_all_registers() {
        for addr in 0..14 {
            let reg = ConfigRegister::from_addr(addr).unwrap();
            for wc in [0u32, 1, 41, 2047] {
                let p = Packet::Type1Write {
                    register: reg,
                    word_count: wc,
                };
                assert_eq!(Packet::decode(p.encode()), Some(p));
            }
        }
        let t2 = Packet::Type2Write {
            word_count: 123_456,
        };
        assert_eq!(Packet::decode(t2.encode()), Some(t2));
        assert_eq!(Packet::decode(NOOP), Some(Packet::Noop));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Packet::decode(DUMMY_WORD), None);
        assert_eq!(Packet::decode(SYNC_WORD), None);
        assert_eq!(
            Packet::decode(0x3000_0000 | (0x1f << 13)),
            None,
            "unknown register"
        );
    }

    #[test]
    #[should_panic(expected = "type-1 word count")]
    fn type1_word_count_overflow_panics() {
        let _ = Packet::Type1Write {
            register: ConfigRegister::Fdri,
            word_count: 2048,
        }
        .encode();
    }

    #[test]
    fn command_codes_round_trip() {
        for code in 0..14 {
            let c = Command::from_code(code).unwrap();
            assert_eq!(c as u32, code);
        }
        assert_eq!(Command::from_code(14), None);
    }
}
