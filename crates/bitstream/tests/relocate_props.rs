//! Property and negative-path suites for `bitstream::relocate` — the
//! ground truth behind the defrag planner's "payload reused unchanged"
//! assumption in `crates/layout`.
//!
//! The round-trip property (A→B→A is the byte-for-byte identity) and the
//! CRC-untouched property (FAR rewriting never changes a CRC register
//! write, because the CRC covers only payload and the payload never
//! moves) together guarantee that relocating a running module is loss-
//! free: the layout manager can move modules freely and the frames that
//! land are exactly the frames that were read.

use bitstream::{
    generate, relocate, BitstreamSpec, ConfigRegister, FrameAddress, Packet, PartialBitstream,
    RelocateError,
};
use fabric::database::all_devices;
use fabric::{Device, Window};
use prcost::search::plan_prr;
use proptest::prelude::*;
use synth::prm::GenericPrm;
use synth::{PaperPrm, PrmGenerator};

/// The one-word Type-1 FAR write header every frame address follows.
fn far_header() -> u32 {
    Packet::Type1Write {
        register: ConfigRegister::Far,
        word_count: 1,
    }
    .encode()
}

/// The one-word Type-1 CRC write header.
fn crc_header() -> u32 {
    Packet::Type1Write {
        register: ConfigRegister::Crc,
        word_count: 1,
    }
    .encode()
}

/// Plan and generate a partial bitstream for `report` on `device`, or
/// `None` when the module does not fit.
fn stream_for(
    device: &Device,
    name: &str,
    report: &synth::SynthReport,
) -> Option<(PartialBitstream, Window)> {
    let plan = plan_prr(report, device).ok()?;
    let spec = BitstreamSpec::from_plan(device.name(), name, plan.organization, &plan.window);
    Some((generate(&spec).unwrap(), plan.window))
}

/// Source window as the relocator reconstructs it from the spec.
fn source_window(bs: &PartialBitstream) -> Window {
    Window {
        start_col: bs.spec.start_col as usize,
        width: bs.spec.columns.len() as u32,
        row: bs.spec.start_row,
        height: bs.spec.organization.height,
        columns: bs.spec.columns.clone(),
    }
}

/// Assert the two loss-free-relocation invariants between an original
/// stream and its relocated form: every differing word is the payload of
/// a FAR write, and every CRC register write is untouched.
fn assert_only_fars_moved(original: &[u32], moved: &[u32]) {
    assert_eq!(original.len(), moved.len());
    let far = far_header();
    let crc = crc_header();
    for i in 0..original.len() {
        if original[i] != moved[i] {
            assert!(i > 0 && original[i - 1] == far, "non-FAR word {i} changed");
        }
        if i > 0 && original[i - 1] == crc {
            assert_eq!(original[i], moved[i], "CRC word {i} rewritten");
        }
    }
}

proptest! {
    /// relocate(A→B) then relocate(B→A) is the identity on the packet
    /// stream, for paper PRMs and random generic PRMs over every database
    /// device and every in-bounds vertical shift.
    #[test]
    fn round_trip_is_identity(
        dev_idx in 0usize..4,
        module in prop_oneof![
            Just(None),
            (0u64..1u64 << 32, 64u32..2048).prop_map(Some),
        ],
        prm_idx in 0usize..3,
        shift in 1u32..8,
    ) {
        let devices = all_devices();
        let device = &devices[dev_idx % devices.len()];
        let (name, report) = match module {
            None => {
                let prm = PaperPrm::ALL[prm_idx];
                (prm.module_name().to_string(), prm.synth_report(device.family()))
            }
            Some((seed, scale)) => {
                let prm = GenericPrm::random(seed, scale);
                (prm.name.clone(), prm.synthesize(device.family()))
            }
        };
        let Some((bs, window)) = stream_for(device, &name, &report) else {
            return Ok(()); // module does not fit this device
        };
        let mut target = window.clone();
        target.row += shift;
        if device.check_row_span(target.row, target.height).is_err() {
            return Ok(()); // shift exceeds the device; nothing to test
        }

        let there = relocate(&bs, device, &target).unwrap();
        assert_only_fars_moved(&bs.words, &there.words);

        let back = relocate(&there, device, &source_window(&bs)).unwrap();
        prop_assert_eq!(&back.words, &bs.words, "A→B→A must be the identity");
        prop_assert_eq!(back.spec.start_col, bs.spec.start_col);
        prop_assert_eq!(back.spec.start_row, bs.spec.start_row);
    }
}

/// Horizontal relocation round-trips wherever the device offers a second
/// window with the identical column-kind sequence. At least one paper
/// PRM on one database device must offer such a target, so the
/// horizontal path is genuinely exercised.
#[test]
fn horizontal_round_trip_where_compatible_window_exists() {
    let mut exercised = 0usize;
    for device in all_devices() {
        for prm in PaperPrm::ALL {
            let report = prm.synth_report(device.family());
            let Some((bs, window)) = stream_for(&device, prm.module_name(), &report) else {
                continue;
            };
            let width = window.columns.len();
            for start in 0..device.width().saturating_sub(width - 1) {
                if start == window.start_col
                    || device.columns()[start..start + width] != window.columns[..]
                {
                    continue;
                }
                let mut target = window.clone();
                target.start_col = start;
                let there = relocate(&bs, &device, &target).unwrap();
                assert_only_fars_moved(&bs.words, &there.words);
                let back = relocate(&there, &device, &source_window(&bs)).unwrap();
                assert_eq!(back.words, bs.words, "horizontal A→B→A is the identity");
                exercised += 1;
                break; // one alternate start per (device, prm) is enough
            }
        }
    }
    assert!(exercised > 0, "no device offered a horizontal target");
}

/// A stream whose FAR addresses a frame outside its recorded PRR is
/// rejected with the offending address, not silently shifted.
#[test]
fn foreign_frame_address_is_reported() {
    let device = fabric::database::xc5vlx110t();
    let report = PaperPrm::Mips.synth_report(device.family());
    let (mut bs, window) = stream_for(&device, "mips_r3000", &report).unwrap();

    // Corrupt the first FAR payload: point it past the relocator's
    // column-spill margin (end_col + 16) so it cannot be mistaken for an
    // in-window minor overflow.
    let far = far_header();
    let i = bs.words.iter().position(|&w| w == far).unwrap();
    let foreign = FrameAddress::config(window.row, (window.end_col() + 16 + 3) as u32, 0);
    bs.words[i + 1] = foreign.encode();

    let mut target = window.clone();
    target.row += 1;
    assert_eq!(
        relocate(&bs, &device, &target),
        Err(RelocateError::ForeignFrameAddress { far: foreign })
    );
}

/// A FAR below the window's row span is foreign too.
#[test]
fn foreign_row_is_reported() {
    let device = fabric::database::xc5vlx110t();
    let report = PaperPrm::Mips.synth_report(device.family());
    let (mut bs, window) = stream_for(&device, "mips_r3000", &report).unwrap();

    let far = far_header();
    let i = bs.words.iter().position(|&w| w == far).unwrap();
    let foreign = FrameAddress::config(window.top_row() + 1, window.start_col as u32, 0);
    bs.words[i + 1] = foreign.encode();

    let mut target = window.clone();
    target.row += 1;
    assert_eq!(
        relocate(&bs, &device, &target),
        Err(RelocateError::ForeignFrameAddress { far: foreign })
    );
}

/// A target window that runs past the right device edge is rejected with
/// `OutOfBounds` (column direction; the row direction is covered by the
/// in-crate unit tests).
#[test]
fn target_past_right_device_edge_is_rejected() {
    let device = fabric::database::xc5vlx110t();
    let report = PaperPrm::Mips.synth_report(device.family());
    let (bs, window) = stream_for(&device, "mips_r3000", &report).unwrap();

    let mut target = window.clone();
    target.start_col = device.width() - 1; // end_col lands past the edge
    assert_eq!(
        relocate(&bs, &device, &target),
        Err(RelocateError::OutOfBounds)
    );
}
