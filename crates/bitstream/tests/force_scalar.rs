//! Verifies that `PRFPGA_FORCE_SCALAR=1` actually selects the scalar
//! kernels: this binary contains a single test so it can safely pin the
//! environment variable before the process-wide dispatch table is
//! built, then assert the portable selection *and* that the dispatched
//! entry points still compute correct results through it.

use bitstream::arch::{self, Dispatch};
use bitstream::crc::baseline::crc_words_bitwise;
use bitstream::crc::{crc_bytes, crc_words};

#[test]
fn force_scalar_env_selects_portable_kernels() {
    // Single-test binary: no other thread can have touched the dispatch
    // table yet, and no other test observes the env mutation.
    std::env::set_var("PRFPGA_FORCE_SCALAR", "1");
    assert!(arch::force_scalar_env());
    assert_eq!(arch::active(), Dispatch::portable());
    assert_eq!(arch::active().crc.name(), "portable-folded");
    assert_eq!(arch::active().fill.name(), "portable-splitmix");

    // The dispatched entry points must still be correct on the scalar
    // path: standard check vector plus a multi-super-block stream
    // against the frozen bitwise oracle.
    assert_eq!(crc_bytes(b"123456789"), 0xE306_9283);
    let words: Vec<u32> = (0..700u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    assert_eq!(crc_words(&words), crc_words_bitwise(&words));

    let mut dispatched = vec![0u32; 333];
    arch::fill_words(0xABCD_EF01_2345_6789, &mut dispatched);
    let mut portable = vec![0u32; 333];
    arch::fill_words_portable(0xABCD_EF01_2345_6789, &mut portable);
    assert_eq!(dispatched, portable);
}
