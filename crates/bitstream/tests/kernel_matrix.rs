//! Kernel-matrix equivalence: every compiled CRC and payload-fill
//! variant — frozen bitwise baseline, slice-16, portable folded, the
//! runtime-dispatched entry point, and whichever hardware kernels this
//! CPU exposes (SSE4.2 `crc32q`, PCLMULQDQ fold, ARMv8 `crc32c*`, AVX2
//! fill) — must be byte-identical on arbitrary inputs, including empty,
//! single-word and odd tails, and must reproduce the standard CRC-32C
//! check vector.
//!
//! The hardware variants are probed through `bitstream::arch`'s
//! `Option`/`bool` entry points, so this suite automatically covers
//! exactly the set of kernels that can run on the host: on a machine
//! without SSE4.2 it degenerates to the portable matrix, and under
//! `PRFPGA_FORCE_SCALAR=1` the dispatched entry point is additionally
//! pinned to the portable result (CI runs the suite both ways).

use bitstream::arch::{self, Dispatch};
use bitstream::crc::baseline::crc_words_bitwise;
use bitstream::crc::{crc_bytes, crc_words, crc_words_folded, crc_words_slice16};
use proptest::prelude::*;

/// The writer's splitmix increment (frozen; also asserted against the
/// emitted-bitstream digests in the writer's own suites).
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The frozen reference payload generator: the serial `state += GAMMA`
/// walk of `writer::reference`, which every counter-form fill kernel
/// must reproduce exactly.
fn fill_reference(seed: u64, out: &mut [u32]) {
    let mut state = seed;
    for w in out.iter_mut() {
        state = state.wrapping_add(GAMMA);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        *w = (z ^ (z >> 31)) as u32;
    }
}

/// Compute the checksum through every variant compiled for (and
/// supported by) this host, labelled for diagnostics.
fn crc_matrix(words: &[u32]) -> Vec<(&'static str, u32)> {
    let mut m = vec![
        ("bitwise-baseline", crc_words_bitwise(words)),
        ("slice16", crc_words_slice16(words)),
        ("portable-folded", crc_words_folded(words)),
        ("dispatch", crc_words(words)),
    ];
    if let Some(hw) = arch::crc_words_hw(words) {
        m.push(("hw-crc32c", hw));
    }
    if let Some(cl) = arch::crc_words_clmul(words) {
        m.push(("clmul-fold", cl));
    }
    m
}

/// Assert the whole matrix agrees; returns the agreed value.
fn assert_crc_matrix_agrees(words: &[u32], ctx: &str) -> u32 {
    let m = crc_matrix(words);
    let (_, expect) = m[0];
    for (name, got) in &m {
        assert_eq!(*got, expect, "{name} disagrees with bitwise ({ctx})");
    }
    expect
}

/// Every fill variant against the frozen serial reference.
fn assert_fill_matrix_agrees(seed: u64, len: usize) {
    let mut reference = vec![0u32; len];
    fill_reference(seed, &mut reference);
    let mut portable = vec![0u32; len];
    arch::fill_words_portable(seed, &mut portable);
    assert_eq!(portable, reference, "portable fill (len {len})");
    let mut dispatched = vec![0u32; len];
    arch::fill_words(seed, &mut dispatched);
    assert_eq!(dispatched, reference, "dispatched fill (len {len})");
    let mut simd = vec![0u32; len];
    if arch::fill_words_simd(seed, &mut simd) {
        assert_eq!(simd, reference, "simd fill (len {len})");
    }
}

/// The standard CRC-32C check vector (RFC 3720): "123456789" →
/// 0xE3069283, through the byte entry point and — for the word-level
/// kernels — its 8-byte prefix as two big-endian configuration words.
#[test]
fn check_vector_through_every_kernel() {
    assert_eq!(crc_bytes(b"123456789"), 0xE306_9283);
    let prefix = [0x3132_3334u32, 0x3536_3738];
    let expect = crc_words_bitwise(&prefix);
    assert_eq!(
        assert_crc_matrix_agrees(&prefix, "check-vector prefix"),
        expect
    );
}

/// Boundary lengths around every kernel's internal block sizes: the
/// 16-word CLMUL block, the 128-byte lanes and 512-byte super-blocks of
/// the folded kernels, and ragged odd tails (the `crc32q` pair loop's
/// single-word remainder).
#[test]
fn crc_matrix_boundary_lengths() {
    let words: Vec<u32> = (0..1200u32).map(|i| i.wrapping_mul(0x6C07_8965)).collect();
    for len in [
        0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 130, 255,
        256, 257, 383, 384, 511, 512, 513, 516, 639, 640, 1024, 1100, 1200,
    ] {
        assert_crc_matrix_agrees(&words[..len], &format!("len {len}"));
    }
}

/// Fill boundary lengths around the AVX2 kernel's 8-word block and the
/// portable kernel's 4-word unroll, including empty and odd tails.
#[test]
fn fill_matrix_boundary_lengths() {
    for len in [
        0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 333,
    ] {
        assert_fill_matrix_agrees(0xDEAD_BEEF_0123_4567, len);
        assert_fill_matrix_agrees(u64::MAX, len);
        assert_fill_matrix_agrees(0, len);
    }
}

/// The process-wide selection must be exactly what `Dispatch::detect`
/// derives from the environment: under `PRFPGA_FORCE_SCALAR` the scalar
/// path, otherwise the native feature probe. (A dedicated single-test
/// binary, `tests/force_scalar.rs`, pins the env var itself; here we
/// assert consistency with whatever environment CI gave us.)
#[test]
fn active_dispatch_matches_environment() {
    assert_eq!(arch::active(), Dispatch::detect(arch::force_scalar_env()));
    if arch::force_scalar_env() {
        assert_eq!(arch::active(), Dispatch::portable());
    }
}

proptest! {
    /// Property: the full CRC kernel matrix agrees on arbitrary word
    /// slices spanning several super-blocks plus ragged tails.
    #[test]
    fn crc_matrix_on_arbitrary_words(words in proptest::collection::vec(any::<u32>(), 0..700)) {
        let m = crc_matrix(&words);
        let (_, expect) = m[0];
        for (name, got) in &m {
            prop_assert_eq!(*got, expect, "{} disagrees with bitwise", name);
        }
    }

    /// Property: every fill kernel reproduces the frozen serial
    /// reference walk for arbitrary seeds and lengths.
    #[test]
    fn fill_matrix_on_arbitrary_inputs(seed in any::<u64>(), len in 0usize..600) {
        let mut reference = vec![0u32; len];
        fill_reference(seed, &mut reference);
        let mut portable = vec![0u32; len];
        arch::fill_words_portable(seed, &mut portable);
        prop_assert_eq!(&portable, &reference);
        let mut dispatched = vec![0u32; len];
        arch::fill_words(seed, &mut dispatched);
        prop_assert_eq!(&dispatched, &reference);
        let mut simd = vec![0u32; len];
        if arch::fill_words_simd(seed, &mut simd) {
            prop_assert_eq!(&simd, &reference);
        }
    }
}
