//! Property suite for the parallel branch-and-bound auto-floorplanner:
//! structural invariants of every returned floorplan, and exact identity
//! with the serial tree ([`parflow::autofloorplan::auto_floorplan_serial`])
//! under the same tie-breaks.

use fabric::device_by_name;
use parflow::autofloorplan::{auto_floorplan, auto_floorplan_serial, PrrSpec};
use proptest::prelude::*;
use synth::PrmGenerator;

fn random_specs(seeds: &[u64]) -> Vec<PrrSpec> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            PrrSpec::single(
                format!("p{i}"),
                synth::prm::GenericPrm::random(s, 150 + (s as u32 % 37) * 11)
                    .synthesize(fabric::Family::Virtex5),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every returned floorplan satisfies the paper's structural
    /// invariants: PRRs never overlap, each placed window's column mix is
    /// exactly its chosen organization's, and the reported total is the
    /// sum of the per-PRR bitstream predictions.
    #[test]
    fn autofloorplan_structural_invariants(
        seeds in proptest::collection::vec(0u64..256, 1..5),
    ) {
        let device = device_by_name("xc5vsx95t").unwrap();
        let specs = random_specs(&seeds);
        let Ok(plan) = auto_floorplan(&specs, &device, 20_000) else { return Ok(()) };

        prop_assert_eq!(plan.prrs.len(), specs.len());
        for (i, a) in plan.prrs.iter().enumerate() {
            for b in &plan.prrs[i + 1..] {
                prop_assert!(!a.window.overlaps(&b.window), "{} vs {}", a.name, b.name);
            }
        }
        for p in &plan.prrs {
            let counts = p.window.column_counts();
            prop_assert_eq!(counts.clb(), u64::from(p.organization.clb_cols));
            prop_assert_eq!(counts.dsp(), u64::from(p.organization.dsp_cols));
            prop_assert_eq!(counts.bram(), u64::from(p.organization.bram_cols));
            prop_assert_eq!(p.window.height, p.organization.height);
            prop_assert_eq!(
                p.bitstream_bytes,
                prcost::bitstream_size_bytes(&p.organization)
            );
        }
        let sum: u64 = plan.prrs.iter().map(|p| p.bitstream_bytes).sum();
        prop_assert_eq!(plan.total_bitstream_bytes, sum);
        plan.to_floorplan(&device).validate(&device).unwrap();
    }

    /// The parallel tree returns the identical floorplan to the serial
    /// tree — same placements, same organizations, same total — with the
    /// node diagnostic the only field allowed to differ. Errors must
    /// agree in kind too.
    #[test]
    fn parallel_tree_is_identical_to_serial_tree(
        seeds in proptest::collection::vec(0u64..256, 1..5),
    ) {
        let device = device_by_name("xc5vsx95t").unwrap();
        let specs = random_specs(&seeds);
        let par = auto_floorplan(&specs, &device, 20_000);
        let ser = auto_floorplan_serial(&specs, &device, 20_000);
        match (par, ser) {
            (Ok(p), Ok(s)) => {
                prop_assert_eq!(p.prrs, s.prrs);
                prop_assert_eq!(p.total_bitstream_bytes, s.total_bitstream_bytes);
                prop_assert_eq!(p.device, s.device);
            }
            (Err(pe), Err(se)) => {
                prop_assert_eq!(
                    std::mem::discriminant(&pe),
                    std::mem::discriminant(&se)
                );
            }
            (p, s) => prop_assert!(false, "parallel {p:?} vs serial {s:?}"),
        }
    }
}
