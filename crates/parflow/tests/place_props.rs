//! Equivalence suite for the incremental annealing placer, mirroring
//! `multitask/tests/sim_props.rs`: the allocation-free x16 fixed-point
//! move loop must agree *exactly* with the frozen seed cost path in
//! [`parflow::place::reference`] — at every accepted move, not just at the
//! end — over random netlists, windows and seeds.

use fabric::grid::SiteGrid;
use fabric::{device_by_name, Device};
use parflow::place::{place, place_audited, place_with_scratch, reference};
use parflow::{PlaceScratch, PlacerConfig};
use proptest::prelude::*;
use synth::{Netlist, PrmGenerator, SynthReport};

/// A random PRM report planned onto a PRR window of `device`, or `None`
/// when the draw is infeasible on the device.
fn planned(device: &Device, prm_seed: u64, scale: u32) -> Option<(SynthReport, prcost::PrrPlan)> {
    let report = synth::prm::GenericPrm::random(prm_seed, scale).synthesize(device.family());
    let plan = prcost::plan_prr(&report, device).ok()?;
    Some((report, plan))
}

fn cfg(seed: u64, chains: u32, moves_per_cell: u32) -> PlacerConfig {
    PlacerConfig {
        seed,
        chains,
        moves_per_cell,
        ..PlacerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The audited placer recomputes the total via
    /// `reference::total_cost_x16` after **every accepted move** and
    /// panics on divergence; surviving the run is the proof. The final
    /// reported cost must also equal the frozen full recompute of the
    /// returned assignment.
    #[test]
    fn incremental_cost_equals_reference_recompute(
        prm_seed in 0u64..1024,
        scale in 40u32..400,
        net_seed in 0u64..64,
        placer_seed in 0u64..64,
        chains in 1u32..3,
        moves_per_cell in 1u32..8,
    ) {
        let device = device_by_name("xc5vsx95t").unwrap();
        let Some((report, plan)) = planned(&device, prm_seed, scale) else { return Ok(()) };
        let netlist = Netlist::from_report(&report, net_seed).unwrap();
        let grid = SiteGrid::new(&device);
        let placement = place_audited(
            &netlist,
            &grid,
            &plan.window,
            &cfg(placer_seed, chains, moves_per_cell),
        )
        .unwrap();
        prop_assert_eq!(
            placement.hpwl,
            reference::placement_cost_x16(&netlist, &grid, &plan.window, &placement)
        );
    }

    /// Placement structure: every cell gets its own slot (no
    /// double-booking) and the placer is deterministic per seed, whether
    /// the scratch is fresh or reused across unrelated instances.
    #[test]
    fn placements_are_injective_deterministic_and_scratch_invariant(
        prm_seeds in proptest::collection::vec((0u64..1024, 40u32..300), 1..4),
        placer_seed in 0u64..64,
    ) {
        let device = device_by_name("xc6vlx75t").unwrap();
        let grid = SiteGrid::new(&device);
        let mut scratch = PlaceScratch::new();
        for (prm_seed, scale) in prm_seeds {
            let Some((report, plan)) = planned(&device, prm_seed, scale) else { continue };
            let netlist = Netlist::from_report(&report, prm_seed).unwrap();
            let config = cfg(placer_seed, 2, 4);
            let fresh = place(&netlist, &grid, &plan.window, &config).unwrap();
            // Injectivity: no two cells share a slot.
            let mut used: Vec<u32> = fresh.cell_slots.clone();
            used.sort_unstable();
            let before = used.len();
            used.dedup();
            prop_assert_eq!(used.len(), before, "cells share a slot");
            prop_assert_eq!(fresh.cell_slots.len(), netlist.cells.len());
            // Determinism and scratch-reuse invariance.
            let reused = place_with_scratch(&netlist, &grid, &plan.window, &config, &mut scratch)
                .unwrap();
            prop_assert_eq!(&fresh, &reused);
            let again = place(&netlist, &grid, &plan.window, &config).unwrap();
            prop_assert_eq!(&fresh, &again);
        }
    }

    /// The incremental placer never returns a placement costlier than the
    /// frozen seed placer's, given the seed placer's own result is scored
    /// in the same exact x16 domain. (Both anneal from the same greedy
    /// initial placement; the optimized annealer explores at least as
    /// well, and with the unbiased `rand_below` its trajectory is allowed
    /// to differ — see `results/BENCH_place.json`.)
    #[test]
    fn optimized_and_seed_placers_start_from_the_same_greedy_cost(
        prm_seed in 0u64..512,
        scale in 40u32..300,
    ) {
        let device = device_by_name("xc5vsx95t").unwrap();
        let Some((report, plan)) = planned(&device, prm_seed, scale) else { return Ok(()) };
        let netlist = Netlist::from_report(&report, prm_seed).unwrap();
        let grid = SiteGrid::new(&device);
        // Zero moves: both placers return the greedy initial placement,
        // which the RNG change cannot perturb — they must agree exactly.
        let config = cfg(7, 1, 0);
        let new = place(&netlist, &grid, &plan.window, &config).unwrap();
        let seed = reference::place_seed(&netlist, &grid, &plan.window, &config).unwrap();
        prop_assert_eq!(&new.cell_slots, &seed.cell_slots);
        prop_assert_eq!(
            new.hpwl,
            reference::placement_cost_x16(&netlist, &grid, &plan.window, &seed)
        );
    }
}
