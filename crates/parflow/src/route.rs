//! Boundary-congestion routing model.
//!
//! Instead of a full maze router, routability is judged the way global
//! routers do in their first pass: every net demands one track across each
//! vertical column boundary (and each horizontal row boundary) its bounding
//! box spans; a boundary overflows when demand exceeds the channel
//! capacity the fabric provides there. The PRR routes iff no boundary
//! overflows. Capacity scales with the family's CLB row height, reflecting
//! that taller columns carry proportionally more routing.

use crate::place::{net_bboxes, Placement};
use fabric::grid::SiteGrid;
use fabric::Window;
use serde::{Deserialize, Serialize};
use synth::Netlist;

/// Vertical routing tracks per CLB row at each column boundary. Ten tracks
/// per CLB row comfortably routes the paper's PRMs at their model-predicted
/// densities while leaving headroom well under 2x — dense synthetic designs
/// do overflow.
const V_TRACKS_PER_CLB_ROW: f64 = 10.0;

/// Horizontal routing tracks contributed by each column at every CLB-row
/// boundary. Columns are much wider than a CLB row is tall, so each
/// provides proportionally more horizontal track.
const H_TRACKS_PER_COLUMN: f64 = 40.0;

/// One overflowed boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overflow {
    /// Boundary index (vertical boundaries first, then horizontal).
    pub boundary: u32,
    /// Track demand.
    pub demand: f64,
    /// Track capacity.
    pub capacity: f64,
}

/// Routing outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteReport {
    /// True iff no boundary overflowed.
    pub routed: bool,
    /// Highest demand/capacity ratio over all boundaries.
    pub max_utilization: f64,
    /// All overflowed boundaries.
    pub overflows: Vec<Overflow>,
    /// Total wirelength estimate (sum of net half-perimeters, x16 fixed
    /// point).
    pub wirelength: u64,
}

/// Route a placed netlist inside its window.
pub fn route(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    placement: &Placement,
) -> RouteReport {
    let params = grid.device().params();
    let bboxes = net_bboxes(netlist, grid, window, placement);

    // Vertical boundaries: between column c and c+1 for c in the window.
    let n_vert = window.width.saturating_sub(1) as usize;
    // Horizontal boundaries: between CLB rows inside the window (in
    // normalized CLB-row units).
    let window_rows_norm = window.height * params.clb_col;
    let n_horiz = window_rows_norm.saturating_sub(1) as usize;

    let mut v_demand = vec![0f64; n_vert];
    let mut h_demand = vec![0f64; n_horiz.min(4096)];
    let mut wirelength = 0f64;

    let base_col = window.start_col as f64;
    let base_y = f64::from((window.row - 1) * params.clb_col);
    for &(min_c, max_c, min_y, max_y) in &bboxes {
        wirelength += (max_c - min_c) + (max_y - min_y);
        // Vertical boundary b sits between window columns b and b+1.
        let lo = (min_c - base_col).floor() as usize;
        let hi = (max_c - base_col).ceil() as usize;
        for b in v_demand.iter_mut().take(hi.min(n_vert)).skip(lo) {
            *b += 1.0;
        }
        // Horizontal boundary b sits between normalized rows b and b+1.
        let lo = (min_y - base_y).floor().max(0.0) as usize;
        let hi = ((max_y - base_y).ceil() as usize).min(h_demand.len());
        for b in h_demand.iter_mut().take(hi).skip(lo) {
            *b += 1.0;
        }
    }

    // Capacity: vertical channels grow with the window height in CLB rows
    // (`H * CLB_col` rows, TRACKS_PER_CLB tracks each); horizontal channels
    // grow with the window width.
    let v_capacity =
        (f64::from(window.height) * f64::from(params.clb_col) * V_TRACKS_PER_CLB_ROW).max(1.0);
    let h_capacity = (f64::from(window.width) * H_TRACKS_PER_COLUMN).max(1.0);

    let mut overflows = Vec::new();
    let mut max_util = 0.0f64;
    for (i, &d) in v_demand.iter().enumerate() {
        let u = d / v_capacity;
        max_util = max_util.max(u);
        if d > v_capacity {
            overflows.push(Overflow {
                boundary: i as u32,
                demand: d,
                capacity: v_capacity,
            });
        }
    }
    for (i, &d) in h_demand.iter().enumerate() {
        let u = d / h_capacity;
        max_util = max_util.max(u);
        if d > h_capacity {
            overflows.push(Overflow {
                boundary: (n_vert + i) as u32,
                demand: d,
                capacity: h_capacity,
            });
        }
    }

    RouteReport {
        routed: overflows.is_empty(),
        max_utilization: max_util,
        overflows,
        wirelength: (wirelength * 16.0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerConfig};
    use fabric::database::xc5vlx110t;
    use fabric::{Family, WindowRequest};
    use synth::{Netlist, PaperPrm, SynthReport};

    #[test]
    fn paper_prm_routes_in_model_prr() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let plan =
            prcost::plan_prr(&PaperPrm::Sdram.synth_report(Family::Virtex5), &device).unwrap();
        let nl = PaperPrm::Sdram.netlist(Family::Virtex5, 2);
        let p = place(&nl, &grid, &plan.window, &PlacerConfig::fast(3)).unwrap();
        let r = route(&nl, &grid, &plan.window, &p);
        assert!(r.routed, "max utilization {}", r.max_utilization);
        assert!(r.wirelength > 0);
    }

    #[test]
    fn pathologically_connected_design_overflows() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 0, 1)).unwrap();
        // 400 cells with dense random connectivity: build a netlist whose
        // nets all span the window.
        let r = SynthReport::new("dense", Family::Virtex5, 400, 300, 200, 0, 0);
        let mut nl = Netlist::from_report(&r, 9).unwrap();
        // Add 3000 window-spanning 2-pin nets (first cell to last cells).
        for i in 0..3000u32 {
            nl.nets.push(synth::Net {
                pins: vec![i % 10, 390 + (i % 10)],
            });
        }
        let p = place(
            &nl,
            &grid,
            &w,
            &PlacerConfig {
                chains: 1,
                moves_per_cell: 0,
                ..PlacerConfig::fast(1)
            },
        )
        .unwrap();
        let rep = route(&nl, &grid, &w, &p);
        assert!(!rep.routed, "max utilization {}", rep.max_utilization);
        assert!(!rep.overflows.is_empty());
        assert!(rep.max_utilization > 1.0);
    }

    #[test]
    fn utilization_monotone_in_window_height() {
        // Same netlist, taller window => more capacity => lower utilization.
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let nl = {
            let r = SynthReport::new("m", Family::Virtex5, 200, 150, 100, 0, 0);
            Netlist::from_report(&r, 4).unwrap()
        };
        let w1 = device.find_window(&WindowRequest::new(2, 0, 0, 1)).unwrap();
        let w2 = device.find_window(&WindowRequest::new(2, 0, 0, 4)).unwrap();
        let cfg = PlacerConfig::fast(5);
        let p1 = place(&nl, &grid, &w1, &cfg).unwrap();
        let p2 = place(&nl, &grid, &w2, &cfg).unwrap();
        let r1 = route(&nl, &grid, &w1, &p1);
        let r2 = route(&nl, &grid, &w2, &p2);
        assert!(r1.max_utilization >= r2.max_utilization * 0.5, "sanity");
        assert!(r1.routed && r2.routed);
    }
}
