//! End-to-end PR design flow driver with per-stage wall times.
//!
//! This is the "lengthy PR design flow" of the paper's Table VIII: design
//! synthesis, PRR floorplanning, implementation-time optimization, place,
//! route and bitstream generation — run for real on the simulated
//! substrate, stage times measured. The contrast with
//! `prcost::timing::time_model` is the paper's productivity argument.

use crate::floorplan::{AreaGroup, Floorplan};
use crate::optimize::{optimize, OptimizeError, OptimizeOptions, OptimizerReport};
use crate::place::{place_with_scratch, PlaceError, PlaceScratch, Placement, PlacerConfig};
use crate::route::{route, RouteReport};
use crate::timing::{analyze, TimingReport};
use bitstream::writer::{generate, BitstreamSpec, GenError, PartialBitstream};
use core::fmt;
use fabric::grid::SiteGrid;
use fabric::Device;
use prcost::{CostError, Metrics, PrrPlan};
use rayon::prelude::*;
use serde::Serialize;
use std::time::{Duration, Instant};
use synth::{Netlist, PaperPrm, PrmGenerator, SynthReport};

/// Flow stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FlowStage {
    /// Design synthesis (report + netlist materialization).
    Synthesis,
    /// PRR floorplanning (model-driven AREA_GROUP generation).
    Floorplan,
    /// Implementation-time netlist optimization.
    Optimize,
    /// Simulated-annealing placement.
    Place,
    /// Congestion routing.
    Route,
    /// Partial bitstream generation.
    Bitgen,
}

impl FlowStage {
    /// Static label used when recording this stage into
    /// [`prcost::Metrics`] histograms (`flow:<stage>`).
    pub fn metrics_label(self) -> &'static str {
        match self {
            FlowStage::Synthesis => "flow:synthesis",
            FlowStage::Floorplan => "flow:floorplan",
            FlowStage::Optimize => "flow:optimize",
            FlowStage::Place => "flow:place",
            FlowStage::Route => "flow:route",
            FlowStage::Bitgen => "flow:bitgen",
        }
    }
}

/// Flow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOptions {
    /// Netlist/connectivity seed.
    pub seed: u64,
    /// Placer effort.
    pub placer: PlacerConfig,
    /// Optimization policy (`None` = the default heuristic, or the paper's
    /// Table VI targets when driven through [`run_paper_flow`]).
    pub optimize: Option<OptimizeOptions>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            seed: 1,
            placer: PlacerConfig::default(),
            optimize: None,
        }
    }
}

impl FlowOptions {
    /// Low-effort options for tests.
    pub fn fast(seed: u64) -> Self {
        FlowOptions {
            seed,
            placer: PlacerConfig::fast(seed),
            optimize: None,
        }
    }
}

/// Everything the flow produced.
#[derive(Debug, Clone, Serialize)]
pub struct FlowReport {
    /// Module name.
    pub module: String,
    /// Device name.
    pub device: String,
    /// Synthesis-report inputs (the cost model's inputs).
    pub synth_report: SynthReport,
    /// Post-optimization (post-"PAR") resource counts.
    pub post_report: SynthReport,
    /// Optimizer edit summary.
    pub optimizer: OptimizerReport,
    /// The model-predicted PRR the flow floorplanned into.
    pub plan: PrrPlan,
    /// The floorplan constraint text (UCF-style).
    pub ucf: String,
    /// Final placement wirelength (x16 fixed point).
    pub placement_hpwl: u64,
    /// Routing outcome.
    pub route: RouteReport,
    /// Post-placement timing estimate.
    pub timing: TimingReport,
    /// Generated partial bitstream size in bytes.
    pub bitstream_bytes: u64,
    /// Wall time per stage.
    pub stage_times: Vec<(FlowStage, Duration)>,
}

impl FlowReport {
    /// Total implementation time (everything after synthesis).
    pub fn implementation_time(&self) -> Duration {
        self.stage_times
            .iter()
            .filter(|(s, _)| *s != FlowStage::Synthesis)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Total flow time.
    pub fn total_time(&self) -> Duration {
        self.stage_times.iter().map(|(_, d)| *d).sum()
    }
}

/// Flow failure, tagged with the failing stage.
#[derive(Debug)]
pub enum FlowError {
    /// The cost-model planning step failed (no feasible PRR).
    Plan(CostError),
    /// The netlist was internally inconsistent.
    Netlist(synth::ReportError),
    /// Optimization failed.
    Optimize(OptimizeError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing overflowed.
    RouteOverflow(RouteReport),
    /// Bitstream generation failed.
    Bitgen(GenError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Plan(e) => write!(f, "floorplanning failed: {e}"),
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Optimize(e) => write!(f, "optimization failed: {e}"),
            FlowError::Place(e) => write!(f, "placement failed: {e}"),
            FlowError::RouteOverflow(r) => write!(
                f,
                "routing overflowed {} boundaries (max utilization {:.2})",
                r.overflows.len(),
                r.max_utilization
            ),
            FlowError::Bitgen(e) => write!(f, "bitstream generation failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// Run the full flow for an already-synthesized report/netlist pair.
///
/// Equivalent to [`run_flow_from_report_with_scratch`] with a fresh
/// [`PlaceScratch`]; batch callers should use [`run_flows`] (or carry a
/// scratch per worker) instead.
pub fn run_flow_from_report(
    report: &SynthReport,
    device: &Device,
    opts: &FlowOptions,
    synth_time: Duration,
) -> Result<(FlowReport, PartialBitstream), FlowError> {
    run_flow_from_report_with_scratch(report, device, opts, synth_time, &mut PlaceScratch::new())
}

/// [`run_flow_from_report`] with caller-owned placer working memory.
pub fn run_flow_from_report_with_scratch(
    report: &SynthReport,
    device: &Device,
    opts: &FlowOptions,
    synth_time: Duration,
    scratch: &mut PlaceScratch,
) -> Result<(FlowReport, PartialBitstream), FlowError> {
    let t = Instant::now();
    let plan = prcost::plan_prr(report, device).map_err(FlowError::Plan)?;
    finish_flow(report, device, opts, synth_time, t, plan, scratch)
}

/// The flow from a computed PRR plan onward: floorplan rendering,
/// optimization, place, route, timing and bitgen. `plan_started` marks
/// when the planning step began, so the Floorplan stage time covers both
/// the Fig. 1 search and the AREA_GROUP rendering regardless of which
/// planning path produced `plan`.
fn finish_flow(
    report: &SynthReport,
    device: &Device,
    opts: &FlowOptions,
    synth_time: Duration,
    plan_started: Instant,
    plan: PrrPlan,
    scratch: &mut PlaceScratch,
) -> Result<(FlowReport, PartialBitstream), FlowError> {
    let mut times = vec![(FlowStage::Synthesis, synth_time)];

    // Floorplan: model-predicted PRR rendered as an AREA_GROUP constraint.
    let t = plan_started;
    let mut floorplan = Floorplan::new(device);
    floorplan.push(AreaGroup::new(
        format!("pblock_{}", report.module),
        plan.window.clone(),
    ));
    floorplan
        .validate(device)
        .expect("model-planned windows are valid by construction");
    let ucf = floorplan.to_ucf();
    times.push((FlowStage::Floorplan, t.elapsed()));

    // Optimize.
    let t = Instant::now();
    let netlist = Netlist::from_report(report, opts.seed).map_err(FlowError::Netlist)?;
    let opt_options = opts
        .optimize
        .clone()
        .unwrap_or_else(OptimizeOptions::default_heuristic);
    let (optimized, optimizer) = optimize(&netlist, &opt_options).map_err(FlowError::Optimize)?;
    let post_report = optimized.to_report();
    times.push((FlowStage::Optimize, t.elapsed()));

    // Place.
    let t = Instant::now();
    let grid = SiteGrid::new(device);
    let placement: Placement =
        place_with_scratch(&optimized, &grid, &plan.window, &opts.placer, scratch)
            .map_err(FlowError::Place)?;
    times.push((FlowStage::Place, t.elapsed()));

    // Route + timing.
    let t = Instant::now();
    let route_report = route(&optimized, &grid, &plan.window, &placement);
    let timing = analyze(&optimized, &grid, &plan.window, &placement);
    times.push((FlowStage::Route, t.elapsed()));
    if !route_report.routed {
        return Err(FlowError::RouteOverflow(route_report));
    }

    // Bitgen.
    let t = Instant::now();
    let spec = BitstreamSpec::from_plan(
        device.name(),
        &report.module,
        plan.organization,
        &plan.window,
    );
    let bs = generate(&spec).map_err(FlowError::Bitgen)?;
    times.push((FlowStage::Bitgen, t.elapsed()));

    Ok((
        FlowReport {
            module: report.module.clone(),
            device: device.name().to_string(),
            synth_report: report.clone(),
            post_report,
            optimizer,
            plan,
            ucf,
            placement_hpwl: placement.hpwl,
            route: route_report,
            timing,
            bitstream_bytes: bs.len_bytes(),
            stage_times: times,
        },
        bs,
    ))
}

/// Run the full flow for a parametric PRM generator.
pub fn run_flow(
    generator: &dyn PrmGenerator,
    device: &Device,
    opts: &FlowOptions,
) -> Result<(FlowReport, PartialBitstream), FlowError> {
    let t = Instant::now();
    let report = generator.synthesize(device.family());
    let synth_time = t.elapsed();
    run_flow_from_report(&report, device, opts, synth_time)
}

/// Run the full flow for a paper PRM: calibrated synthesis inputs, and the
/// optimizer driven toward the published Table VI post-PAR counts when the
/// paper evaluated this family.
pub fn run_paper_flow(
    prm: PaperPrm,
    device: &Device,
    opts: &FlowOptions,
) -> Result<(FlowReport, PartialBitstream), FlowError> {
    let t = Instant::now();
    let report = prm.synth_report(device.family());
    let synth_time = t.elapsed();
    let mut opts = opts.clone();
    if opts.optimize.is_none() {
        if let Some(target) = prm.post_par_report(device.family()) {
            opts.optimize = Some(OptimizeOptions::TowardTarget(target));
        }
    }
    run_flow_from_report(&report, device, &opts, synth_time)
}

/// One unit of work for [`run_flows`]: an already-synthesized report plus
/// its flow options.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowJob {
    /// Synthesis-report inputs.
    pub report: SynthReport,
    /// Flow configuration for this job.
    pub options: FlowOptions,
}

impl FlowJob {
    /// A job with the given report and options.
    pub fn new(report: SynthReport, options: FlowOptions) -> Self {
        FlowJob { report, options }
    }
}

/// Run many flows against one device, fanned out over rayon with one
/// reused [`PlaceScratch`] per worker (the `map_with` idiom
/// `simulate_batch` uses for `SimScratch`).
///
/// The batch builds the device's composition index
/// ([`fabric::DeviceGeometry`]) once and shares it read-only across all
/// workers: every Floorplan stage plans through
/// [`prcost::plan_prr_cached`] with a per-worker [`prcost::PlanScratch`],
/// so window searches are lock-free O(1) probes and each distinct
/// composition is resolved once per plan. Plans are byte-identical to the
/// solo [`run_flow_from_report`] path.
///
/// Every completed flow's per-stage wall times are recorded into the
/// process-global [`prcost::Metrics`] stage histograms under
/// `flow:<stage>` labels, so flow sweeps get the same observability as
/// `simulate_batch` (`prcost::Metrics::global().snapshot()` to read them
/// back). Results come back in job order; each job is independent, so a
/// failure only fails its own slot. Jobs are pre-synthesized, so each
/// report's `Synthesis` stage records zero.
pub fn run_flows(jobs: &[FlowJob], device: &Device) -> Vec<Result<FlowReport, FlowError>> {
    let geometry = fabric::DeviceGeometry::new(device);
    jobs.par_iter()
        .map_with(
            (PlaceScratch::new(), prcost::PlanScratch::default()),
            |(scratch, plan_scratch), job| {
                let t = Instant::now();
                let plan = prcost::plan_prr_cached(&job.report, device, &geometry, plan_scratch)
                    .map_err(FlowError::Plan)?;
                let (report, _bitstream) = finish_flow(
                    &job.report,
                    device,
                    &job.options,
                    Duration::ZERO,
                    t,
                    plan,
                    scratch,
                )?;
                let metrics = Metrics::global();
                for (stage, elapsed) in &report.stage_times {
                    metrics.record_stage(stage.metrics_label(), *elapsed);
                }
                Ok(report)
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};

    #[test]
    fn paper_flow_sdram_v5_end_to_end() {
        let device = xc5vlx110t();
        let (rep, bs) = run_paper_flow(PaperPrm::Sdram, &device, &FlowOptions::fast(3)).unwrap();
        // Post counts equal Table VI.
        assert_eq!(rep.post_report.lut_ff_pairs, 324);
        assert_eq!(rep.post_report.luts, 191);
        assert_eq!(rep.post_report.ffs, 292);
        // Bitstream matches the Eq. 18 prediction.
        assert_eq!(rep.bitstream_bytes, rep.plan.bitstream_bytes);
        assert_eq!(bs.len_bytes(), rep.bitstream_bytes);
        // All six stages timed.
        assert_eq!(rep.stage_times.len(), 6);
        assert!(rep.route.routed);
        assert!(rep.timing.max_frequency_mhz > 0.0);
        assert!(rep.ucf.contains("AREA_GROUP \"pblock_sdram_ctrl\""));
    }

    #[test]
    fn paper_flow_fir_v6_end_to_end() {
        let device = xc6vlx75t();
        let (rep, _) = run_paper_flow(PaperPrm::Fir, &device, &FlowOptions::fast(5)).unwrap();
        assert_eq!(rep.post_report.lut_ff_pairs, 999);
        assert_eq!(rep.plan.organization.height, 1);
        assert_eq!(rep.plan.organization.dsp_cols, 2);
        assert!(rep.route.routed);
    }

    #[test]
    fn generic_flow_uses_heuristic_optimizer() {
        let device = xc5vlx110t();
        let prm = synth::prm::GenericPrm::random(17, 800);
        let (rep, _) = run_flow(&prm, &device, &FlowOptions::fast(17)).unwrap();
        assert!(rep.post_report.lut_ff_pairs <= rep.synth_report.lut_ff_pairs);
        assert!(rep.optimizer.packed > 0 || rep.optimizer.total_edits() == 0);
        assert!(rep.implementation_time() <= rep.total_time());
    }

    #[test]
    fn run_flows_matches_single_runs_and_records_metrics() {
        let device = xc5vlx110t();
        let jobs: Vec<FlowJob> = [3u64, 5, 9]
            .iter()
            .map(|&seed| {
                FlowJob::new(
                    PaperPrm::Sdram.synth_report(device.family()),
                    FlowOptions::fast(seed),
                )
            })
            .collect();
        let before = Metrics::global().snapshot().stage_total("flow:place");
        let batch = run_flows(&jobs, &device);
        assert_eq!(batch.len(), jobs.len());
        for (job, result) in jobs.iter().zip(&batch) {
            let batched = result.as_ref().unwrap();
            let (solo, _) =
                run_flow_from_report(&job.report, &device, &job.options, Duration::ZERO).unwrap();
            // Same deterministic outcome as the one-off entry point
            // (stage_times are wall-clock and excluded).
            assert_eq!(batched.placement_hpwl, solo.placement_hpwl);
            assert_eq!(batched.bitstream_bytes, solo.bitstream_bytes);
            assert_eq!(batched.ucf, solo.ucf);
            assert_eq!(batched.post_report, solo.post_report);
        }
        let after = Metrics::global().snapshot().stage_total("flow:place");
        assert!(after > before, "batch flows record stage histograms");
    }

    #[test]
    fn run_flows_isolates_failures() {
        let device = xc5vlx110t();
        let jobs = vec![
            FlowJob::new(
                PaperPrm::Sdram.synth_report(device.family()),
                FlowOptions::fast(3),
            ),
            FlowJob::new(
                SynthReport::new(
                    "huge",
                    fabric::Family::Virtex5,
                    100_000,
                    90_000,
                    50_000,
                    0,
                    0,
                ),
                FlowOptions::fast(1),
            ),
        ];
        let batch = run_flows(&jobs, &device);
        assert!(batch[0].is_ok());
        assert!(matches!(batch[1], Err(FlowError::Plan(_))));
    }

    #[test]
    fn flow_reports_infeasible_plan() {
        let device = xc5vlx110t();
        let report = SynthReport::new(
            "huge",
            fabric::Family::Virtex5,
            100_000,
            90_000,
            50_000,
            0,
            0,
        );
        match run_flow_from_report(&report, &device, &FlowOptions::fast(1), Duration::ZERO) {
            Err(FlowError::Plan(CostError::NoFeasiblePlacement { .. })) => {}
            other => panic!("expected plan failure, got {other:?}"),
        }
    }
}
