//! Automatic multi-PRR floorplanning — the paper's stated future work
//! ("our future work will use our cost models as part of the floorplanning
//! stage in the PR design flow"), implemented.
//!
//! Given several PRRs (each hosting one or more time-multiplexed PRMs),
//! find non-overlapping placements for all of them simultaneously,
//! minimizing the total predicted partial bitstream bytes (and hence total
//! reconfiguration traffic). The search is branch-and-bound over each
//! PRR's cost-model candidates (all feasible heights from the Fig. 1
//! enumeration), each tried at every horizontal window and vertical
//! offset, hardest PRR first.
//!
//! Three things make the search fast (Deak & Creț and Goswami & Bhatia
//! both report that pruning plus cheap candidate evaluation is what makes
//! PR floorplanning tractable at device scale):
//!
//! * **indexed geometry** — candidate windows are probed through one shared
//!   [`fabric::DeviceGeometry`] composition index
//!   (`prcost::search::candidates_for_cached`), so every spec and every
//!   height is a lock-free O(1) lookup instead of a column-list rescan;
//!   batch drivers pass their own index via
//!   [`auto_floorplan_with_geometry`];
//! * **dominance pruning** — a candidate organization whose bitstream,
//!   column span and height are all covered by another candidate can be
//!   substituted by it in any solution without raising the cost, so it is
//!   dropped before the tree is built;
//! * **parallel branch-and-bound** — the tree fans out over rayon at the
//!   first branching level with the incumbent cost shared through an
//!   `AtomicU64`, so every worker prunes against the globally best known
//!   solution. Workers prune *strictly* against the shared bound and the
//!   per-branch results are reduced in depth-first order, which makes the
//!   parallel answer identical to the serial tree's under the same
//!   tie-breaks ([`auto_floorplan_serial`] is the identity oracle;
//!   equality is property-tested in `crates/parflow/tests/floorplan_props.rs`).
//!
//! The pre-optimization floorplanner — serial tree, raw
//! `Device::find_window` probes, no dominance pruning — is frozen in
//! [`reference`] as the benchmark baseline (`results/BENCH_floorplan.json`).

use crate::floorplan::{AreaGroup, Floorplan};
use core::fmt;
use fabric::{Device, DeviceGeometry, Window};
use prcost::search::{candidates_for_cached, CandidateOutcome};
use prcost::{PlanScratch, PrrOrganization, PrrRequirements};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use synth::SynthReport;

/// One PRR to place: a name and the PRMs that will time-multiplex it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrrSpec {
    /// PRR name (becomes the AREA_GROUP name).
    pub name: String,
    /// The PRMs sharing this PRR.
    pub reports: Vec<SynthReport>,
}

impl PrrSpec {
    /// One PRR for one PRM.
    pub fn single(name: impl Into<String>, report: SynthReport) -> Self {
        PrrSpec {
            name: name.into(),
            reports: vec![report],
        }
    }

    /// Component-wise maximum requirements over the spec's PRMs.
    pub fn combined_requirements(&self) -> Option<PrrRequirements> {
        let mut reqs = self.reports.iter().map(PrrRequirements::from_report);
        let first = reqs.next()?;
        Some(reqs.fold(first, |acc, r| acc.max(&r)))
    }
}

/// One placed PRR in the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedPrr {
    /// Spec name.
    pub name: String,
    /// Chosen organization.
    pub organization: PrrOrganization,
    /// Placement.
    pub window: Window,
    /// Predicted bitstream bytes.
    pub bitstream_bytes: u64,
}

/// A complete automatic floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoFloorplan {
    /// Device name.
    pub device: String,
    /// Placed PRRs, in input order.
    pub prrs: Vec<PlacedPrr>,
    /// Sum of predicted bitstream bytes over all PRRs.
    pub total_bitstream_bytes: u64,
    /// Search nodes expanded (diagnostic).
    pub nodes_explored: u64,
}

impl AutoFloorplan {
    /// Render as a validated UCF-style floorplan.
    pub fn to_floorplan(&self, device: &Device) -> Floorplan {
        let mut plan = Floorplan::new(device);
        for p in &self.prrs {
            plan.push(AreaGroup::new(p.name.clone(), p.window.clone()));
        }
        plan
    }
}

/// Floorplanning failures.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoFloorplanError {
    /// No PRR specs given.
    Empty,
    /// A spec has no PRMs or requires nothing.
    EmptySpec {
        /// Offending spec name.
        name: String,
    },
    /// A spec's family does not match the device.
    FamilyMismatch {
        /// Offending spec name.
        name: String,
    },
    /// No joint non-overlapping placement exists (within the node budget).
    NoPlacement {
        /// Search nodes expanded before giving up.
        nodes_explored: u64,
    },
}

impl fmt::Display for AutoFloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoFloorplanError::Empty => write!(f, "no PRR specs to place"),
            AutoFloorplanError::EmptySpec { name } => {
                write!(f, "PRR spec `{name}` has no resource requirements")
            }
            AutoFloorplanError::FamilyMismatch { name } => {
                write!(
                    f,
                    "PRR spec `{name}` targets a different family than the device"
                )
            }
            AutoFloorplanError::NoPlacement { nodes_explored } => write!(
                f,
                "no joint non-overlapping placement found ({nodes_explored} nodes explored)"
            ),
        }
    }
}

impl std::error::Error for AutoFloorplanError {}

/// A feasible (organization, column window) option for one spec.
#[derive(Debug, Clone)]
struct Option_ {
    organization: PrrOrganization,
    window: Window,
    bitstream_bytes: u64,
}

/// Drop every option that another option *dominates*: `a` dominates `b`
/// when `a` costs no more bitstream, its column span lies inside `b`'s and
/// it is no taller. Any complete floorplan using `b` at some row stays
/// feasible — and gets no more expensive — with `a` substituted at the
/// same row, so pruned options can never be part of a *strictly* better
/// solution and the optimal total cost is preserved. (This strengthens
/// plain `(bitstream, width, height)` dominance with the span condition,
/// which is what makes the substitution argument airtight: a narrower
/// window elsewhere on the device could dodge an overlap the dominating
/// one has.) Options must arrive sorted by ascending bitstream; the
/// earliest of two mutually dominating options survives, keeping the
/// pruned set deterministic.
fn prune_dominated(options: &mut Vec<Option_>) {
    let mut keep = vec![true; options.len()];
    for j in 1..options.len() {
        let b = &options[j];
        for (i, a) in options[..j].iter().enumerate() {
            if keep[i]
                && a.bitstream_bytes <= b.bitstream_bytes
                && a.window.start_col >= b.window.start_col
                && a.window.end_col() <= b.window.end_col()
                && a.organization.height <= b.organization.height
            {
                keep[j] = false;
                break;
            }
        }
    }
    let mut it = keep.iter();
    options.retain(|_| *it.next().expect("keep mask covers options"));
}

/// Candidate options per spec, dominance-pruned and ordered hardest spec
/// first. Returns the spec order (search position -> input index) and the
/// per-position option lists.
#[allow(clippy::type_complexity)]
fn spec_options(
    specs: &[PrrSpec],
    device: &Device,
    geometry: &DeviceGeometry,
) -> Result<(Vec<usize>, Vec<Vec<Option_>>), AutoFloorplanError> {
    let mut scratch = PlanScratch::default();
    let mut per_spec: Vec<(usize, Vec<Option_>)> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let req = spec
            .combined_requirements()
            .filter(|r| !r.is_empty())
            .ok_or_else(|| AutoFloorplanError::EmptySpec {
                name: spec.name.clone(),
            })?;
        if req.family != device.family() {
            return Err(AutoFloorplanError::FamilyMismatch {
                name: spec.name.clone(),
            });
        }
        let mut options: Vec<Option_> = candidates_for_cached(&req, device, geometry, &mut scratch)
            .into_iter()
            .filter_map(|c| match c.outcome {
                CandidateOutcome::Feasible {
                    organization,
                    window,
                    bitstream_bytes,
                    ..
                } => Some(Option_ {
                    organization,
                    window,
                    bitstream_bytes,
                }),
                _ => None,
            })
            .collect();
        options.sort_by_key(|o| o.bitstream_bytes);
        prune_dominated(&mut options);
        if options.is_empty() {
            return Err(AutoFloorplanError::NoPlacement { nodes_explored: 0 });
        }
        per_spec.push((i, options));
    }

    // Hardest (most expensive cheapest-option) first.
    per_spec.sort_by_key(|(_, opts)| std::cmp::Reverse(opts[0].bitstream_bytes));
    let order: Vec<usize> = per_spec.iter().map(|(i, _)| *i).collect();
    let options: Vec<Vec<Option_>> = per_spec.into_iter().map(|(_, o)| o).collect();
    Ok((order, options))
}

/// `lb[d]` = sum over positions `d..` of each spec's cheapest option — the
/// admissible remaining-cost lower bound at depth `d`.
fn suffix_lower_bounds(options: &[Vec<Option_>]) -> Vec<u64> {
    let mut lb = vec![0u64; options.len() + 1];
    for d in (0..options.len()).rev() {
        lb[d] = lb[d + 1] + options[d].first().map_or(0, |o| o.bitstream_bytes);
    }
    lb
}

/// A chosen option per search position: `(option index, window row)`.
/// Windows are only materialized for the final assignment — the descent
/// itself works on [`OptSpan`]s, never cloning a `Window` (whose `columns`
/// `Vec` makes cloning an allocation, the seed tree's dominant per-node
/// cost).
type Assignment = Vec<(usize, u32)>;

/// The placement-relevant footprint of one option: its column interval,
/// height and cost, precomputed once per search.
#[derive(Debug, Clone, Copy)]
struct OptSpan {
    start: usize,
    end: usize,
    height: u32,
    bytes: u64,
}

/// One assigned spec on the descent stack: option choice plus its
/// occupied rectangle.
#[derive(Debug, Clone, Copy)]
struct PlacedSpan {
    oi: usize,
    row: u32,
    start: usize,
    end: usize,
    top: u32,
}

impl PlacedSpan {
    fn at(span: &OptSpan, oi: usize, row: u32) -> Self {
        PlacedSpan {
            oi,
            row,
            start: span.start,
            end: span.end,
            top: row + span.height - 1,
        }
    }

    /// Mirror of [`Window::overlaps`] on spans.
    fn clear_of(&self, start: usize, end: usize, row: u32, top: u32) -> bool {
        !(self.start < end && start < self.end && self.row <= top && row <= self.top)
    }
}

/// Per-position option footprints for the span-based descent.
fn option_spans(options: &[Vec<Option_>]) -> Vec<Vec<OptSpan>> {
    options
        .iter()
        .map(|opts| {
            opts.iter()
                .map(|o| OptSpan {
                    start: o.window.start_col,
                    end: o.window.end_col(),
                    height: o.organization.height,
                    bytes: o.bitstream_bytes,
                })
                .collect()
        })
        .collect()
}

fn extract(placed: &[PlacedSpan]) -> Assignment {
    placed.iter().map(|p| (p.oi, p.row)).collect()
}

struct SerialSearch<'a> {
    rows: u32,
    /// Option footprints per search position (sorted by bitstream).
    spans: &'a [Vec<OptSpan>],
    lb: &'a [u64],
    budget: u64,
    nodes: u64,
    best: Option<(u64, Assignment)>,
}

impl SerialSearch<'_> {
    /// Depth-first branch and bound: `placed` holds the chosen option and
    /// occupied rectangle per already-assigned spec; `cost` is their
    /// bitstream sum.
    fn descend(&mut self, depth: usize, cost: u64, placed: &mut Vec<PlacedSpan>) {
        if self.nodes >= self.budget {
            return;
        }
        self.nodes += 1;
        if let Some((best_cost, _)) = &self.best {
            if cost + self.lb[depth] >= *best_cost {
                return;
            }
        }
        if depth == self.spans.len() {
            self.best = Some((cost, extract(placed)));
            return;
        }
        // Try each option at each vertical offset.
        for oi in 0..self.spans[depth].len() {
            let span = self.spans[depth][oi];
            for row in 1..=(self.rows - span.height + 1) {
                let top = row + span.height - 1;
                if placed
                    .iter()
                    .all(|p| p.clear_of(span.start, span.end, row, top))
                {
                    placed.push(PlacedSpan::at(&span, oi, row));
                    self.descend(depth + 1, cost + span.bytes, placed);
                    placed.pop();
                }
                if self.nodes >= self.budget {
                    return;
                }
            }
        }
    }
}

/// Bits reserved for the branch index in the packed shared bound.
const BRANCH_BITS: u32 = 20;

/// Pack an incumbent as `(cost, first-level branch index)` in one `u64`,
/// ordered lexicographically — smaller cost wins, and on equal cost the
/// DFS-earlier branch wins, which is exactly the serial tree's
/// first-of-equals tie-break. Publishing *provenance* with the cost is
/// what lets workers prune with `>=` (instead of the lossier strict `>`)
/// without ever cutting the branch the serial tree would have kept: a
/// subtree of branch `i` whose packed floor is `>=` the bound cannot
/// contain a solution that beats the bound's (cost, branch) pair.
fn pack_bound(cost: u64, branch: u64) -> u64 {
    debug_assert!(cost < 1 << (u64::BITS - BRANCH_BITS));
    debug_assert!(branch < 1 << BRANCH_BITS);
    (cost << BRANCH_BITS) | branch
}

/// Shared state of the parallel branch-and-bound.
struct ParSearch<'a> {
    rows: u32,
    spans: &'a [Vec<OptSpan>],
    lb: &'a [u64],
    budget: u64,
    /// Nodes expanded across all workers (also the budget gate).
    nodes: AtomicU64,
    /// Best complete solution published by any worker so far, packed via
    /// [`pack_bound`].
    bound: AtomicU64,
}

impl ParSearch<'_> {
    /// Serial descent within one first-level branch (`branch` is its
    /// depth-first index). `local_best` follows the classic `>=` prune;
    /// the shared bound compares packed `(cost, branch)` values, so a
    /// cost tie prunes exactly when the published solution sits in a
    /// DFS-earlier branch — the serial incumbent rule, distributed.
    fn descend(
        &self,
        branch: u64,
        depth: usize,
        cost: u64,
        placed: &mut Vec<PlacedSpan>,
        local_best: &mut Option<(u64, Assignment)>,
    ) {
        if self.nodes.fetch_add(1, Ordering::Relaxed) >= self.budget {
            return;
        }
        if let Some((best_cost, _)) = local_best {
            if cost + self.lb[depth] >= *best_cost {
                return;
            }
        }
        if pack_bound(cost + self.lb[depth], branch) >= self.bound.load(Ordering::Relaxed) {
            return;
        }
        if depth == self.spans.len() {
            self.bound
                .fetch_min(pack_bound(cost, branch), Ordering::Relaxed);
            *local_best = Some((cost, extract(placed)));
            return;
        }
        for oi in 0..self.spans[depth].len() {
            let span = self.spans[depth][oi];
            for row in 1..=(self.rows - span.height + 1) {
                let top = row + span.height - 1;
                if placed
                    .iter()
                    .all(|p| p.clear_of(span.start, span.end, row, top))
                {
                    placed.push(PlacedSpan::at(&span, oi, row));
                    self.descend(branch, depth + 1, cost + span.bytes, placed, local_best);
                    placed.pop();
                }
                if self.nodes.load(Ordering::Relaxed) >= self.budget {
                    return;
                }
            }
        }
    }
}

/// Run the parallel branch-and-bound over pruned `options`.
fn search_parallel(
    device: &Device,
    options: &[Vec<Option_>],
    budget: u64,
) -> (u64, Option<(u64, Assignment)>) {
    let lb = suffix_lower_bounds(options);
    let spans = option_spans(options);
    let search = ParSearch {
        rows: device.rows(),
        spans: &spans,
        lb: &lb,
        budget,
        nodes: AtomicU64::new(0),
        bound: AtomicU64::new(u64::MAX),
    };

    // First branching level, in depth-first order: every (option, row)
    // pair of the hardest spec seeds one worker subtree.
    let mut branches: Vec<(usize, u32)> = Vec::new();
    for (oi, span) in spans[0].iter().enumerate() {
        for row in 1..=(device.rows() - span.height + 1) {
            branches.push((oi, row));
        }
    }
    if branches.len() >= 1 << BRANCH_BITS {
        // Too wide for the packed bound (never seen on real devices) —
        // the serial tree is the defined behaviour anyway.
        return search_serial(device, options, budget);
    }

    let per_branch: Vec<Option<(u64, Assignment)>> = branches
        .par_iter()
        .enumerate()
        .map(|(branch, &(oi, row))| {
            let span = search.spans[0][oi];
            let mut placed = vec![PlacedSpan::at(&span, oi, row)];
            let mut local_best = None;
            search.descend(branch as u64, 1, span.bytes, &mut placed, &mut local_best);
            local_best
        })
        .collect();

    // Depth-first-ordered reduction: first strictly-smaller cost wins,
    // exactly like the serial incumbent update.
    let mut best: Option<(u64, Assignment)> = None;
    for candidate in per_branch.into_iter().flatten() {
        match &best {
            Some((c, _)) if candidate.0 >= *c => {}
            _ => best = Some(candidate),
        }
    }
    (search.nodes.load(Ordering::Relaxed), best)
}

/// Run the serial branch-and-bound over pruned `options`.
fn search_serial(
    device: &Device,
    options: &[Vec<Option_>],
    budget: u64,
) -> (u64, Option<(u64, Assignment)>) {
    let lb = suffix_lower_bounds(options);
    let spans = option_spans(options);
    let mut search = SerialSearch {
        rows: device.rows(),
        spans: &spans,
        lb: &lb,
        budget,
        nodes: 0,
        best: None,
    };
    let mut placed = Vec::new();
    search.descend(0, 0, &mut placed);
    (search.nodes, search.best)
}

/// Reassemble a search result into input-spec order.
fn assemble(
    specs: &[PrrSpec],
    device: &Device,
    order: &[usize],
    options: &[Vec<Option_>],
    nodes: u64,
    found: Option<(u64, Assignment)>,
) -> Result<AutoFloorplan, AutoFloorplanError> {
    let Some((total, assignment)) = found else {
        return Err(AutoFloorplanError::NoPlacement {
            nodes_explored: nodes,
        });
    };
    let mut prrs: Vec<Option<PlacedPrr>> = vec![None; specs.len()];
    for (search_pos, &(oi, row)) in assignment.iter().enumerate() {
        let spec_idx = order[search_pos];
        let opt = &options[search_pos][oi];
        let mut window = opt.window.clone();
        window.row = row;
        prrs[spec_idx] = Some(PlacedPrr {
            name: specs[spec_idx].name.clone(),
            organization: opt.organization,
            window,
            bitstream_bytes: opt.bitstream_bytes,
        });
    }
    Ok(AutoFloorplan {
        device: device.name().to_string(),
        prrs: prrs
            .into_iter()
            .map(|p| p.expect("every spec assigned"))
            .collect(),
        total_bitstream_bytes: total,
        nodes_explored: nodes,
    })
}

/// Place all `specs` on `device` without overlap, minimizing total
/// predicted bitstream bytes. `node_budget` bounds the branch-and-bound
/// (10 000 nodes resolves typical 2–6-PRR problems exactly).
///
/// The tree is explored in parallel (see the module docs); with the
/// budget not exhausted the result is identical to
/// [`auto_floorplan_serial`]'s. `nodes_explored` counts expansions across
/// all workers and is the one field that may differ from the serial tree.
///
/// ```
/// use parflow::autofloorplan::{auto_floorplan, PrrSpec};
/// use fabric::database::xc5vlx110t;
/// use synth::PaperPrm;
///
/// let device = xc5vlx110t();
/// let specs: Vec<PrrSpec> = PaperPrm::ALL
///     .iter()
///     .map(|p| PrrSpec::single(p.module_name(), p.synth_report(device.family())))
///     .collect();
/// let plan = auto_floorplan(&specs, &device, 10_000).unwrap();
/// assert_eq!(plan.prrs.len(), 3);
/// plan.to_floorplan(&device).validate(&device).unwrap();
/// ```
pub fn auto_floorplan(
    specs: &[PrrSpec],
    device: &Device,
    node_budget: u64,
) -> Result<AutoFloorplan, AutoFloorplanError> {
    auto_floorplan_with_geometry(specs, device, &DeviceGeometry::new(device), node_budget)
}

/// [`auto_floorplan`] probing candidate windows through a caller-supplied
/// composition index instead of deriving one per call.
///
/// Batch drivers (the parallel PR flow in [`crate::flow::run_flows`],
/// repeated floorplans of the same device) build one
/// [`DeviceGeometry`] and share it across every invocation and worker —
/// probes are lock-free, so sharing scales. `geometry` must have been
/// derived from `device`; results are identical to [`auto_floorplan`].
pub fn auto_floorplan_with_geometry(
    specs: &[PrrSpec],
    device: &Device,
    geometry: &DeviceGeometry,
    node_budget: u64,
) -> Result<AutoFloorplan, AutoFloorplanError> {
    if specs.is_empty() {
        return Err(AutoFloorplanError::Empty);
    }
    let (order, options) = spec_options(specs, device, geometry)?;
    let (nodes, found) = search_parallel(device, &options, node_budget.max(1));
    assemble(specs, device, &order, &options, nodes, found)
}

/// [`auto_floorplan`] with the branch-and-bound run serially — the
/// identity oracle the parallel tree is property-tested against
/// (`crates/parflow/tests/floorplan_props.rs`). Same candidate options,
/// same dominance pruning, same tie-breaks.
#[doc(hidden)]
pub fn auto_floorplan_serial(
    specs: &[PrrSpec],
    device: &Device,
    node_budget: u64,
) -> Result<AutoFloorplan, AutoFloorplanError> {
    if specs.is_empty() {
        return Err(AutoFloorplanError::Empty);
    }
    let geometry = DeviceGeometry::new(device);
    let (order, options) = spec_options(specs, device, &geometry)?;
    let (nodes, found) = search_serial(device, &options, node_budget.max(1));
    assemble(specs, device, &order, &options, nodes, found)
}

pub mod reference {
    //! The seed floorplanner, frozen verbatim as the benchmark baseline.
    //!
    //! This is the exact pre-optimization implementation: candidate
    //! windows probed through raw [`Device::find_window`] rescans for
    //! every spec and height, no dominance pruning of the option lists,
    //! and a strictly serial branch-and-bound. The live
    //! [`auto_floorplan`](super::auto_floorplan) is benchmarked against
    //! it in `crates/bench/benches/floorplan_bb.rs`; both reach the same
    //! optimal total bitstream bytes whenever neither exhausts its node
    //! budget (dominance pruning is cost-preserving).

    use super::{AutoFloorplan, AutoFloorplanError, PlacedPrr, PrrSpec};
    use fabric::{Device, Window};
    use prcost::search::{candidates_for, CandidateOutcome};
    use prcost::PrrOrganization;

    /// A feasible (organization, column window) option for one spec.
    #[derive(Debug, Clone)]
    struct Option_ {
        organization: PrrOrganization,
        window: Window,
        bitstream_bytes: u64,
    }

    struct Search<'a> {
        device: &'a Device,
        /// Options per spec (sorted by bitstream), spec order = search order.
        options: Vec<Vec<Option_>>,
        budget: u64,
        nodes: u64,
        best: Option<(u64, Vec<(usize, Window)>)>,
    }

    impl Search<'_> {
        /// Depth-first branch and bound: `placed` holds (option index,
        /// placed window) per already-assigned spec; `cost` is their
        /// bitstream sum.
        fn descend(&mut self, depth: usize, cost: u64, placed: &mut Vec<(usize, Window)>) {
            if self.nodes >= self.budget {
                return;
            }
            self.nodes += 1;
            if let Some((best_cost, _)) = &self.best {
                // Lower bound: remaining specs each cost at least their
                // cheapest option.
                let lb: u64 = self.options[depth..]
                    .iter()
                    .map(|opts| opts.first().map_or(0, |o| o.bitstream_bytes))
                    .sum();
                if cost + lb >= *best_cost {
                    return;
                }
            }
            if depth == self.options.len() {
                self.best = Some((cost, placed.clone()));
                return;
            }
            // Try each option at each vertical offset.
            let n_options = self.options[depth].len();
            for oi in 0..n_options {
                let (h, base, bytes) = {
                    let o = &self.options[depth][oi];
                    (o.organization.height, o.window.clone(), o.bitstream_bytes)
                };
                for row in 1..=(self.device.rows() - h + 1) {
                    let mut w = base.clone();
                    w.row = row;
                    if placed.iter().all(|(_, pw)| !pw.overlaps(&w)) {
                        placed.push((oi, w));
                        self.descend(depth + 1, cost + bytes, placed);
                        placed.pop();
                    }
                    if self.nodes >= self.budget {
                        return;
                    }
                }
            }
        }
    }

    /// The frozen seed floorplanner (see the module docs).
    pub fn auto_floorplan_seed(
        specs: &[PrrSpec],
        device: &Device,
        node_budget: u64,
    ) -> Result<AutoFloorplan, AutoFloorplanError> {
        if specs.is_empty() {
            return Err(AutoFloorplanError::Empty);
        }

        // Candidate options per spec.
        let mut per_spec: Vec<(usize, Vec<Option_>)> = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let req = spec
                .combined_requirements()
                .filter(|r| !r.is_empty())
                .ok_or_else(|| AutoFloorplanError::EmptySpec {
                    name: spec.name.clone(),
                })?;
            if req.family != device.family() {
                return Err(AutoFloorplanError::FamilyMismatch {
                    name: spec.name.clone(),
                });
            }
            let mut options: Vec<Option_> = candidates_for(&req, device)
                .into_iter()
                .filter_map(|c| match c.outcome {
                    CandidateOutcome::Feasible {
                        organization,
                        window,
                        bitstream_bytes,
                        ..
                    } => Some(Option_ {
                        organization,
                        window,
                        bitstream_bytes,
                    }),
                    _ => None,
                })
                .collect();
            options.sort_by_key(|o| o.bitstream_bytes);
            if options.is_empty() {
                return Err(AutoFloorplanError::NoPlacement { nodes_explored: 0 });
            }
            per_spec.push((i, options));
        }

        // Hardest (most expensive cheapest-option) first.
        per_spec.sort_by_key(|(_, opts)| std::cmp::Reverse(opts[0].bitstream_bytes));
        let order: Vec<usize> = per_spec.iter().map(|(i, _)| *i).collect();
        let options: Vec<Vec<Option_>> = per_spec.into_iter().map(|(_, o)| o).collect();

        let mut search = Search {
            device,
            options,
            budget: node_budget.max(1),
            nodes: 0,
            best: None,
        };
        let mut placed = Vec::new();
        search.descend(0, 0, &mut placed);

        let Some((total, assignment)) = search.best else {
            return Err(AutoFloorplanError::NoPlacement {
                nodes_explored: search.nodes,
            });
        };

        // Reassemble in input order.
        let mut prrs: Vec<Option<PlacedPrr>> = vec![None; specs.len()];
        for (search_pos, (oi, window)) in assignment.iter().enumerate() {
            let spec_idx = order[search_pos];
            let opt = &search.options[search_pos][*oi];
            prrs[spec_idx] = Some(PlacedPrr {
                name: specs[spec_idx].name.clone(),
                organization: opt.organization,
                window: window.clone(),
                bitstream_bytes: opt.bitstream_bytes,
            });
        }
        Ok(AutoFloorplan {
            device: device.name().to_string(),
            prrs: prrs
                .into_iter()
                .map(|p| p.expect("every spec assigned"))
                .collect(),
            total_bitstream_bytes: total,
            nodes_explored: search.nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use fabric::Family;
    use synth::PaperPrm;

    fn paper_specs(fam: Family) -> Vec<PrrSpec> {
        PaperPrm::ALL
            .iter()
            .map(|p| PrrSpec::single(format!("prr_{}", p.module_name()), p.synth_report(fam)))
            .collect()
    }

    /// Parallel tree == serial tree on `specs` (everything except the
    /// node diagnostic), and both reach the frozen seed's optimal cost.
    fn assert_matches_serial_and_seed(specs: &[PrrSpec], device: &Device, budget: u64) {
        let par = auto_floorplan(specs, device, budget).unwrap();
        let ser = auto_floorplan_serial(specs, device, budget).unwrap();
        assert_eq!(par.prrs, ser.prrs);
        assert_eq!(par.total_bitstream_bytes, ser.total_bitstream_bytes);
        assert_eq!(par.device, ser.device);
        let seed = reference::auto_floorplan_seed(specs, device, budget).unwrap();
        assert_eq!(par.total_bitstream_bytes, seed.total_bitstream_bytes);
        assert_eq!(par.prrs, seed.prrs);
    }

    /// The marquee future-work scenario: all three paper PRMs in separate
    /// PRRs on the LX110T. FIR and MIPS both need the device's single DSP
    /// column, so the planner must stack them vertically on it.
    #[test]
    fn three_prrs_on_lx110t() {
        let device = xc5vlx110t();
        let plan = auto_floorplan(&paper_specs(Family::Virtex5), &device, 10_000).unwrap();
        assert_eq!(plan.prrs.len(), 3);
        for (i, a) in plan.prrs.iter().enumerate() {
            for b in &plan.prrs[i + 1..] {
                assert!(!a.window.overlaps(&b.window), "{} vs {}", a.name, b.name);
            }
        }
        // The result renders as a valid floorplan.
        plan.to_floorplan(&device).validate(&device).unwrap();
        // FIR and MIPS both sit on the single DSP column (disjoint rows).
        let on_dsp: Vec<&PlacedPrr> = plan
            .prrs
            .iter()
            .filter(|p| p.organization.dsp_cols > 0)
            .collect();
        assert_eq!(on_dsp.len(), 2);
        assert_ne!(on_dsp[0].window.row, on_dsp[1].window.row);
        assert_matches_serial_and_seed(&paper_specs(Family::Virtex5), &device, 10_000);
    }

    /// Joint placement never beats the sum of individually optimal plans,
    /// and matches it when the PRRs do not contend.
    #[test]
    fn total_cost_bounded_by_individual_optima() {
        let device = xc6vlx75t();
        let specs = paper_specs(Family::Virtex6);
        let plan = auto_floorplan(&specs, &device, 10_000).unwrap();
        let individual: u64 = PaperPrm::ALL
            .iter()
            .map(|p| {
                prcost::plan_prr(&p.synth_report(Family::Virtex6), &device)
                    .unwrap()
                    .bitstream_bytes
            })
            .sum();
        assert!(plan.total_bitstream_bytes >= individual);
        // On the LX75T (6 DSP columns, plenty of room) there is no
        // contention: the joint optimum equals the individual sum.
        assert_eq!(plan.total_bitstream_bytes, individual);
        assert_matches_serial_and_seed(&specs, &device, 10_000);
    }

    #[test]
    fn shared_prr_specs_work() {
        let device = xc6vlx75t();
        let specs = vec![
            PrrSpec {
                name: "compute".into(),
                reports: vec![
                    PaperPrm::Fir.synth_report(Family::Virtex6),
                    PaperPrm::Mips.synth_report(Family::Virtex6),
                ],
            },
            PrrSpec::single("io", PaperPrm::Sdram.synth_report(Family::Virtex6)),
        ];
        let plan = auto_floorplan(&specs, &device, 10_000).unwrap();
        assert_eq!(plan.prrs.len(), 2);
        let compute = &plan.prrs[0];
        assert!(compute.organization.dsp_cols >= 2, "FIR needs 27 DSPs");
        assert!(compute.organization.bram_cols >= 1, "MIPS needs 6 BRAMs");
        assert_matches_serial_and_seed(&specs, &device, 10_000);
    }

    #[test]
    fn impossible_packings_are_reported() {
        let device = xc5vlx110t();
        // Nine full-height PRRs cannot fit an 8-row device's single DSP
        // column.
        let specs: Vec<PrrSpec> = (0..9)
            .map(|i| PrrSpec::single(format!("p{i}"), PaperPrm::Fir.synth_report(Family::Virtex5)))
            .collect();
        assert!(matches!(
            auto_floorplan(&specs, &device, 50_000),
            Err(AutoFloorplanError::NoPlacement { .. })
        ));
        assert!(matches!(
            auto_floorplan_serial(&specs, &device, 50_000),
            Err(AutoFloorplanError::NoPlacement { .. })
        ));
    }

    #[test]
    fn input_validation() {
        let device = xc5vlx110t();
        assert_eq!(
            auto_floorplan(&[], &device, 100),
            Err(AutoFloorplanError::Empty)
        );
        let empty = PrrSpec {
            name: "e".into(),
            reports: vec![],
        };
        assert!(matches!(
            auto_floorplan(&[empty], &device, 100),
            Err(AutoFloorplanError::EmptySpec { .. })
        ));
        let wrong_family = PrrSpec::single("w", PaperPrm::Fir.synth_report(Family::Virtex6));
        assert!(matches!(
            auto_floorplan(&[wrong_family], &device, 100),
            Err(AutoFloorplanError::FamilyMismatch { .. })
        ));
    }

    #[test]
    fn dominance_pruning_is_cost_preserving() {
        // On both paper devices the pruned searches reach the frozen
        // seed's optimum (checked spec-by-spec and jointly above); here
        // make sure pruning actually removes something on the LX110T so
        // the property is not vacuous.
        let device = xc5vlx110t();
        let specs = paper_specs(Family::Virtex5);
        let geometry = DeviceGeometry::new(&device);
        let (_, options) = spec_options(&specs, &device, &geometry).unwrap();
        let pruned: usize = options.iter().map(Vec::len).sum();
        let unpruned: usize = specs
            .iter()
            .map(|s| {
                let req = s.combined_requirements().unwrap();
                prcost::search::candidates_for(&req, &device)
                    .into_iter()
                    .filter(|c| c.bitstream_bytes().is_some())
                    .count()
            })
            .sum();
        assert!(pruned < unpruned, "{pruned} vs {unpruned}");
    }
}
