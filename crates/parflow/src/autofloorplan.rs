//! Automatic multi-PRR floorplanning — the paper's stated future work
//! ("our future work will use our cost models as part of the floorplanning
//! stage in the PR design flow"), implemented.
//!
//! Given several PRRs (each hosting one or more time-multiplexed PRMs),
//! find non-overlapping placements for all of them simultaneously,
//! minimizing the total predicted partial bitstream bytes (and hence total
//! reconfiguration traffic). The search is branch-and-bound over each
//! PRR's cost-model candidates (all feasible heights from the Fig. 1
//! enumeration), each tried at every horizontal window and vertical
//! offset, hardest PRR first.

use crate::floorplan::{AreaGroup, Floorplan};
use core::fmt;
use fabric::{Device, Window};
use prcost::search::{candidates_for, CandidateOutcome};
use prcost::{PrrOrganization, PrrRequirements};
use serde::{Deserialize, Serialize};
use synth::SynthReport;

/// One PRR to place: a name and the PRMs that will time-multiplex it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrrSpec {
    /// PRR name (becomes the AREA_GROUP name).
    pub name: String,
    /// The PRMs sharing this PRR.
    pub reports: Vec<SynthReport>,
}

impl PrrSpec {
    /// One PRR for one PRM.
    pub fn single(name: impl Into<String>, report: SynthReport) -> Self {
        PrrSpec {
            name: name.into(),
            reports: vec![report],
        }
    }

    /// Component-wise maximum requirements over the spec's PRMs.
    pub fn combined_requirements(&self) -> Option<PrrRequirements> {
        let mut reqs = self.reports.iter().map(PrrRequirements::from_report);
        let first = reqs.next()?;
        Some(reqs.fold(first, |acc, r| acc.max(&r)))
    }
}

/// One placed PRR in the result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedPrr {
    /// Spec name.
    pub name: String,
    /// Chosen organization.
    pub organization: PrrOrganization,
    /// Placement.
    pub window: Window,
    /// Predicted bitstream bytes.
    pub bitstream_bytes: u64,
}

/// A complete automatic floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoFloorplan {
    /// Device name.
    pub device: String,
    /// Placed PRRs, in input order.
    pub prrs: Vec<PlacedPrr>,
    /// Sum of predicted bitstream bytes over all PRRs.
    pub total_bitstream_bytes: u64,
    /// Search nodes expanded (diagnostic).
    pub nodes_explored: u64,
}

impl AutoFloorplan {
    /// Render as a validated UCF-style floorplan.
    pub fn to_floorplan(&self, device: &Device) -> Floorplan {
        let mut plan = Floorplan::new(device);
        for p in &self.prrs {
            plan.push(AreaGroup::new(p.name.clone(), p.window.clone()));
        }
        plan
    }
}

/// Floorplanning failures.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoFloorplanError {
    /// No PRR specs given.
    Empty,
    /// A spec has no PRMs or requires nothing.
    EmptySpec {
        /// Offending spec name.
        name: String,
    },
    /// A spec's family does not match the device.
    FamilyMismatch {
        /// Offending spec name.
        name: String,
    },
    /// No joint non-overlapping placement exists (within the node budget).
    NoPlacement {
        /// Search nodes expanded before giving up.
        nodes_explored: u64,
    },
}

impl fmt::Display for AutoFloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoFloorplanError::Empty => write!(f, "no PRR specs to place"),
            AutoFloorplanError::EmptySpec { name } => {
                write!(f, "PRR spec `{name}` has no resource requirements")
            }
            AutoFloorplanError::FamilyMismatch { name } => {
                write!(
                    f,
                    "PRR spec `{name}` targets a different family than the device"
                )
            }
            AutoFloorplanError::NoPlacement { nodes_explored } => write!(
                f,
                "no joint non-overlapping placement found ({nodes_explored} nodes explored)"
            ),
        }
    }
}

impl std::error::Error for AutoFloorplanError {}

/// A feasible (organization, column window) option for one spec.
#[derive(Debug, Clone)]
struct Option_ {
    organization: PrrOrganization,
    window: Window,
    bitstream_bytes: u64,
}

struct Search<'a> {
    device: &'a Device,
    /// Options per spec (sorted by bitstream), spec order = search order.
    options: Vec<Vec<Option_>>,
    budget: u64,
    nodes: u64,
    best: Option<(u64, Vec<(usize, Window)>)>,
}

impl Search<'_> {
    /// Depth-first branch and bound: `placed` holds (option index, placed
    /// window) per already-assigned spec; `cost` is their bitstream sum.
    fn descend(&mut self, depth: usize, cost: u64, placed: &mut Vec<(usize, Window)>) {
        if self.nodes >= self.budget {
            return;
        }
        self.nodes += 1;
        if let Some((best_cost, _)) = &self.best {
            // Lower bound: remaining specs each cost at least their
            // cheapest option.
            let lb: u64 = self.options[depth..]
                .iter()
                .map(|opts| opts.first().map_or(0, |o| o.bitstream_bytes))
                .sum();
            if cost + lb >= *best_cost {
                return;
            }
        }
        if depth == self.options.len() {
            self.best = Some((cost, placed.clone()));
            return;
        }
        // Try each option at each vertical offset.
        let n_options = self.options[depth].len();
        for oi in 0..n_options {
            let (h, base, bytes) = {
                let o = &self.options[depth][oi];
                (o.organization.height, o.window.clone(), o.bitstream_bytes)
            };
            for row in 1..=(self.device.rows() - h + 1) {
                let mut w = base.clone();
                w.row = row;
                if placed.iter().all(|(_, pw)| !pw.overlaps(&w)) {
                    placed.push((oi, w));
                    self.descend(depth + 1, cost + bytes, placed);
                    placed.pop();
                }
                if self.nodes >= self.budget {
                    return;
                }
            }
        }
    }
}

/// Place all `specs` on `device` without overlap, minimizing total
/// predicted bitstream bytes. `node_budget` bounds the branch-and-bound
/// (10 000 nodes resolves typical 2–6-PRR problems exactly).
///
/// ```
/// use parflow::autofloorplan::{auto_floorplan, PrrSpec};
/// use fabric::database::xc5vlx110t;
/// use synth::PaperPrm;
///
/// let device = xc5vlx110t();
/// let specs: Vec<PrrSpec> = PaperPrm::ALL
///     .iter()
///     .map(|p| PrrSpec::single(p.module_name(), p.synth_report(device.family())))
///     .collect();
/// let plan = auto_floorplan(&specs, &device, 10_000).unwrap();
/// assert_eq!(plan.prrs.len(), 3);
/// plan.to_floorplan(&device).validate(&device).unwrap();
/// ```
pub fn auto_floorplan(
    specs: &[PrrSpec],
    device: &Device,
    node_budget: u64,
) -> Result<AutoFloorplan, AutoFloorplanError> {
    if specs.is_empty() {
        return Err(AutoFloorplanError::Empty);
    }

    // Candidate options per spec.
    let mut per_spec: Vec<(usize, Vec<Option_>)> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let req = spec
            .combined_requirements()
            .filter(|r| !r.is_empty())
            .ok_or_else(|| AutoFloorplanError::EmptySpec {
                name: spec.name.clone(),
            })?;
        if req.family != device.family() {
            return Err(AutoFloorplanError::FamilyMismatch {
                name: spec.name.clone(),
            });
        }
        let mut options: Vec<Option_> = candidates_for(&req, device)
            .into_iter()
            .filter_map(|c| match c.outcome {
                CandidateOutcome::Feasible {
                    organization,
                    window,
                    bitstream_bytes,
                    ..
                } => Some(Option_ {
                    organization,
                    window,
                    bitstream_bytes,
                }),
                _ => None,
            })
            .collect();
        options.sort_by_key(|o| o.bitstream_bytes);
        if options.is_empty() {
            return Err(AutoFloorplanError::NoPlacement { nodes_explored: 0 });
        }
        per_spec.push((i, options));
    }

    // Hardest (most expensive cheapest-option) first.
    per_spec.sort_by_key(|(_, opts)| std::cmp::Reverse(opts[0].bitstream_bytes));
    let order: Vec<usize> = per_spec.iter().map(|(i, _)| *i).collect();
    let options: Vec<Vec<Option_>> = per_spec.into_iter().map(|(_, o)| o).collect();

    let mut search = Search {
        device,
        options,
        budget: node_budget.max(1),
        nodes: 0,
        best: None,
    };
    let mut placed = Vec::new();
    search.descend(0, 0, &mut placed);

    let Some((total, assignment)) = search.best else {
        return Err(AutoFloorplanError::NoPlacement {
            nodes_explored: search.nodes,
        });
    };

    // Reassemble in input order.
    let mut prrs: Vec<Option<PlacedPrr>> = vec![None; specs.len()];
    for (search_pos, (oi, window)) in assignment.iter().enumerate() {
        let spec_idx = order[search_pos];
        let opt = &search.options[search_pos][*oi];
        prrs[spec_idx] = Some(PlacedPrr {
            name: specs[spec_idx].name.clone(),
            organization: opt.organization,
            window: window.clone(),
            bitstream_bytes: opt.bitstream_bytes,
        });
    }
    Ok(AutoFloorplan {
        device: device.name().to_string(),
        prrs: prrs
            .into_iter()
            .map(|p| p.expect("every spec assigned"))
            .collect(),
        total_bitstream_bytes: total,
        nodes_explored: search.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use fabric::Family;
    use synth::PaperPrm;

    fn paper_specs(fam: Family) -> Vec<PrrSpec> {
        PaperPrm::ALL
            .iter()
            .map(|p| PrrSpec::single(format!("prr_{}", p.module_name()), p.synth_report(fam)))
            .collect()
    }

    /// The marquee future-work scenario: all three paper PRMs in separate
    /// PRRs on the LX110T. FIR and MIPS both need the device's single DSP
    /// column, so the planner must stack them vertically on it.
    #[test]
    fn three_prrs_on_lx110t() {
        let device = xc5vlx110t();
        let plan = auto_floorplan(&paper_specs(Family::Virtex5), &device, 10_000).unwrap();
        assert_eq!(plan.prrs.len(), 3);
        for (i, a) in plan.prrs.iter().enumerate() {
            for b in &plan.prrs[i + 1..] {
                assert!(!a.window.overlaps(&b.window), "{} vs {}", a.name, b.name);
            }
        }
        // The result renders as a valid floorplan.
        plan.to_floorplan(&device).validate(&device).unwrap();
        // FIR and MIPS both sit on the single DSP column (disjoint rows).
        let on_dsp: Vec<&PlacedPrr> = plan
            .prrs
            .iter()
            .filter(|p| p.organization.dsp_cols > 0)
            .collect();
        assert_eq!(on_dsp.len(), 2);
        assert_ne!(on_dsp[0].window.row, on_dsp[1].window.row);
    }

    /// Joint placement never beats the sum of individually optimal plans,
    /// and matches it when the PRRs do not contend.
    #[test]
    fn total_cost_bounded_by_individual_optima() {
        let device = xc6vlx75t();
        let specs = paper_specs(Family::Virtex6);
        let plan = auto_floorplan(&specs, &device, 10_000).unwrap();
        let individual: u64 = PaperPrm::ALL
            .iter()
            .map(|p| {
                prcost::plan_prr(&p.synth_report(Family::Virtex6), &device)
                    .unwrap()
                    .bitstream_bytes
            })
            .sum();
        assert!(plan.total_bitstream_bytes >= individual);
        // On the LX75T (6 DSP columns, plenty of room) there is no
        // contention: the joint optimum equals the individual sum.
        assert_eq!(plan.total_bitstream_bytes, individual);
    }

    #[test]
    fn shared_prr_specs_work() {
        let device = xc6vlx75t();
        let specs = vec![
            PrrSpec {
                name: "compute".into(),
                reports: vec![
                    PaperPrm::Fir.synth_report(Family::Virtex6),
                    PaperPrm::Mips.synth_report(Family::Virtex6),
                ],
            },
            PrrSpec::single("io", PaperPrm::Sdram.synth_report(Family::Virtex6)),
        ];
        let plan = auto_floorplan(&specs, &device, 10_000).unwrap();
        assert_eq!(plan.prrs.len(), 2);
        let compute = &plan.prrs[0];
        assert!(compute.organization.dsp_cols >= 2, "FIR needs 27 DSPs");
        assert!(compute.organization.bram_cols >= 1, "MIPS needs 6 BRAMs");
    }

    #[test]
    fn impossible_packings_are_reported() {
        let device = xc5vlx110t();
        // Nine full-height PRRs cannot fit an 8-row device's single DSP
        // column.
        let specs: Vec<PrrSpec> = (0..9)
            .map(|i| PrrSpec::single(format!("p{i}"), PaperPrm::Fir.synth_report(Family::Virtex5)))
            .collect();
        assert!(matches!(
            auto_floorplan(&specs, &device, 50_000),
            Err(AutoFloorplanError::NoPlacement { .. })
        ));
    }

    #[test]
    fn input_validation() {
        let device = xc5vlx110t();
        assert_eq!(
            auto_floorplan(&[], &device, 100),
            Err(AutoFloorplanError::Empty)
        );
        let empty = PrrSpec {
            name: "e".into(),
            reports: vec![],
        };
        assert!(matches!(
            auto_floorplan(&[empty], &device, 100),
            Err(AutoFloorplanError::EmptySpec { .. })
        ));
        let wrong_family = PrrSpec::single("w", PaperPrm::Fir.synth_report(Family::Virtex6));
        assert!(matches!(
            auto_floorplan(&[wrong_family], &device, 100),
            Err(AutoFloorplanError::FamilyMismatch { .. })
        ));
    }
}
