//! AREA_GROUP-style floorplan constraints.
//!
//! The paper validates its PRR model by constraining each PRM to the
//! model-predicted region with the `AREA_GROUP` attribute in a `.ucf` file
//! and letting ISE place and route inside it. This module provides the
//! equivalent: named rectangular region constraints over a device, with a
//! UCF-like text round-trip and overlap/containment validation.

use core::fmt;
use fabric::{Device, ResourceKind, Window};
use serde::{Deserialize, Serialize};

/// One named region constraint (one PRR or the static region).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaGroup {
    /// Group name, e.g. `"pblock_fir32"`.
    pub name: String,
    /// The constrained window.
    pub window: Window,
}

impl AreaGroup {
    /// Constrain `name` to `window`.
    pub fn new(name: impl Into<String>, window: Window) -> Self {
        AreaGroup {
            name: name.into(),
            window,
        }
    }

    /// Render one UCF-style constraint line:
    /// `AREA_GROUP "name" RANGE=COL_x0:COL_x1 ROW_r0:ROW_r1;`.
    pub fn to_ucf(&self) -> String {
        format!(
            "AREA_GROUP \"{}\" RANGE=COL_{}:COL_{} ROW_{}:ROW_{};",
            self.name,
            self.window.start_col,
            self.window.end_col() - 1,
            self.window.row,
            self.window.top_row()
        )
    }
}

/// A set of area groups over one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    /// Device part name the plan targets.
    pub device: String,
    /// All region constraints.
    pub groups: Vec<AreaGroup>,
}

/// Floorplan validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FloorplanError {
    /// A group's window exceeds the device bounds.
    OutOfBounds {
        /// Offending group.
        group: String,
    },
    /// A group's window covers an IOB or CLK column.
    ForbiddenColumn {
        /// Offending group.
        group: String,
        /// The forbidden column kind.
        kind: ResourceKind,
        /// Device column index.
        column: usize,
    },
    /// Two groups overlap.
    Overlap {
        /// First group.
        a: String,
        /// Second group.
        b: String,
    },
    /// A UCF line could not be parsed.
    BadUcfLine {
        /// The malformed line.
        line: String,
    },
    /// A group's recorded column kinds disagree with the device layout.
    LayoutMismatch {
        /// Offending group.
        group: String,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::OutOfBounds { group } => {
                write!(f, "area group `{group}` exceeds the device bounds")
            }
            FloorplanError::ForbiddenColumn {
                group,
                kind,
                column,
            } => write!(
                f,
                "area group `{group}` covers a {kind} column at index {column}; \
                 IOB/CLK columns cannot be inside PRRs"
            ),
            FloorplanError::Overlap { a, b } => write!(f, "area groups `{a}` and `{b}` overlap"),
            FloorplanError::BadUcfLine { line } => write!(f, "cannot parse UCF line: {line:?}"),
            FloorplanError::LayoutMismatch { group } => write!(
                f,
                "area group `{group}` records column kinds that disagree with the device layout"
            ),
        }
    }
}

impl std::error::Error for FloorplanError {}

impl Floorplan {
    /// Empty floorplan for `device`.
    pub fn new(device: &Device) -> Self {
        Floorplan {
            device: device.name().to_string(),
            groups: Vec::new(),
        }
    }

    /// Add a group.
    pub fn push(&mut self, group: AreaGroup) {
        self.groups.push(group);
    }

    /// Validate all groups against `device`: bounds, forbidden columns,
    /// column-kind agreement and pairwise non-overlap.
    pub fn validate(&self, device: &Device) -> Result<(), FloorplanError> {
        for g in &self.groups {
            let w = &g.window;
            if w.end_col() > device.width() || device.check_row_span(w.row, w.height).is_err() {
                return Err(FloorplanError::OutOfBounds {
                    group: g.name.clone(),
                });
            }
            for (offset, &kind) in w.columns.iter().enumerate() {
                let col = w.start_col + offset;
                let actual = device.columns()[col];
                if actual != kind {
                    return Err(FloorplanError::LayoutMismatch {
                        group: g.name.clone(),
                    });
                }
                if !kind.allowed_in_prr() {
                    return Err(FloorplanError::ForbiddenColumn {
                        group: g.name.clone(),
                        kind,
                        column: col,
                    });
                }
            }
        }
        for (i, a) in self.groups.iter().enumerate() {
            for b in &self.groups[i + 1..] {
                if a.window.overlaps(&b.window) {
                    return Err(FloorplanError::Overlap {
                        a: a.name.clone(),
                        b: b.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Render the whole plan as UCF-style text.
    pub fn to_ucf(&self) -> String {
        let mut out = format!("# floorplan for {}\n", self.device);
        for g in &self.groups {
            out.push_str(&g.to_ucf());
            out.push('\n');
        }
        out
    }

    /// Parse UCF-style text back into a floorplan (columns kinds are
    /// re-derived from `device`).
    pub fn from_ucf(text: &str, device: &Device) -> Result<Self, FloorplanError> {
        let mut plan = Floorplan::new(device);
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed =
                parse_ucf_line(line, device).ok_or_else(|| FloorplanError::BadUcfLine {
                    line: line.to_string(),
                })?;
            plan.push(parsed);
        }
        Ok(plan)
    }
}

fn parse_ucf_line(line: &str, device: &Device) -> Option<AreaGroup> {
    let rest = line.strip_prefix("AREA_GROUP")?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let (name, rest) = rest.split_once('"')?;
    let rest = rest.trim_start().strip_prefix("RANGE=")?;
    let rest = rest.trim_end().strip_suffix(';')?;
    let (cols, rows) = rest.split_once(' ')?;
    let (c0, c1) = cols.strip_prefix("COL_")?.split_once(":COL_")?;
    let (r0, r1) = rows.strip_prefix("ROW_")?.split_once(":ROW_")?;
    let (c0, c1): (usize, usize) = (c0.parse().ok()?, c1.parse().ok()?);
    let (r0, r1): (u32, u32) = (r0.parse().ok()?, r1.parse().ok()?);
    if c1 < c0 || r1 < r0 || c1 >= device.width() {
        return None;
    }
    let columns = device.columns()[c0..=c1].to_vec();
    Some(AreaGroup::new(
        name,
        Window {
            start_col: c0,
            width: (c1 - c0 + 1) as u32,
            row: r0,
            height: r1 - r0 + 1,
            columns,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::xc5vlx110t;
    use fabric::WindowRequest;

    fn window(device: &Device, req: &WindowRequest) -> Window {
        device.find_window(req).unwrap()
    }

    #[test]
    fn ucf_round_trip() {
        let device = xc5vlx110t();
        let mut plan = Floorplan::new(&device);
        plan.push(AreaGroup::new(
            "pblock_fir",
            window(&device, &WindowRequest::new(2, 1, 0, 5)),
        ));
        plan.push(AreaGroup::new(
            "pblock_sdram",
            window(&device, &WindowRequest::new(3, 0, 0, 1)),
        ));
        // The two leftmost windows may overlap; shift the second one up.
        plan.groups[1].window.row = 7;
        plan.validate(&device).unwrap();
        let text = plan.to_ucf();
        let back = Floorplan::from_ucf(&text, &device).unwrap();
        assert_eq!(back.groups, plan.groups);
        back.validate(&device).unwrap();
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let device = xc5vlx110t();
        let mut w = window(&device, &WindowRequest::new(2, 0, 0, 1));
        w.row = 8;
        w.height = 2; // rows 8..9 on an 8-row device
        let mut plan = Floorplan::new(&device);
        plan.push(AreaGroup::new("too_tall", w));
        assert!(matches!(
            plan.validate(&device),
            Err(FloorplanError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn validate_rejects_forbidden_columns() {
        let device = xc5vlx110t();
        // Column 0 is an IOB column.
        let w = Window {
            start_col: 0,
            width: 2,
            row: 1,
            height: 1,
            columns: device.columns()[0..2].to_vec(),
        };
        let mut plan = Floorplan::new(&device);
        plan.push(AreaGroup::new("bad", w));
        assert!(matches!(
            plan.validate(&device),
            Err(FloorplanError::ForbiddenColumn {
                kind: ResourceKind::Iob,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_overlap() {
        let device = xc5vlx110t();
        let w = window(&device, &WindowRequest::new(2, 0, 0, 2));
        let mut plan = Floorplan::new(&device);
        plan.push(AreaGroup::new("a", w.clone()));
        plan.push(AreaGroup::new("b", w));
        assert!(matches!(
            plan.validate(&device),
            Err(FloorplanError::Overlap { .. })
        ));
    }

    #[test]
    fn validate_rejects_layout_mismatch() {
        let device = xc5vlx110t();
        let mut w = window(&device, &WindowRequest::new(2, 1, 0, 1));
        w.columns[0] = ResourceKind::Bram; // lie about the layout
        let mut plan = Floorplan::new(&device);
        plan.push(AreaGroup::new("liar", w));
        assert!(matches!(
            plan.validate(&device),
            Err(FloorplanError::LayoutMismatch { .. })
        ));
    }

    #[test]
    fn bad_ucf_lines_are_rejected() {
        let device = xc5vlx110t();
        for bad in [
            "AREA_GROUP pblock RANGE=COL_0:COL_1 ROW_1:ROW_1;",
            "AREA_GROUP \"p\" RANGE=COL_5:COL_2 ROW_1:ROW_1;",
            "AREA_GROUP \"p\" RANGE=COL_0:COL_9999 ROW_1:ROW_1;",
            "AREA_GROUP \"p\" COL_0:COL_1 ROW_1:ROW_1;",
        ] {
            assert!(
                Floorplan::from_ucf(bad, &device).is_err(),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let device = xc5vlx110t();
        let plan = Floorplan::from_ucf("# nothing\n\n", &device).unwrap();
        assert!(plan.groups.is_empty());
    }
}
