//! Analytic (force-directed) placement: the classic quadratic alternative
//! to simulated annealing.
//!
//! Each cell iteratively moves to the weighted centroid of its nets'
//! other pins (Jacobi relaxation of the quadratic wirelength objective),
//! then the continuous solution is legalized by snapping cells to free
//! slots of their kind in centroid order. Much faster than annealing at
//! somewhat higher wirelength — the `flow_stages` bench and the placer
//! comparison test quantify the trade.

use crate::place::{slots_in_window, PlaceError, Placement};
use fabric::grid::SiteGrid;
use fabric::{ResourceKind, Window};
use synth::{CellKind, Netlist};

/// Iterations of Jacobi relaxation before legalization.
const RELAX_ITERS: usize = 24;

fn cell_kind(kind: CellKind) -> ResourceKind {
    match kind {
        CellKind::Slice { .. } => ResourceKind::Clb,
        CellKind::Dsp => ResourceKind::Dsp,
        CellKind::Bram => ResourceKind::Bram,
    }
}

/// Place `netlist` into `window` with force-directed relaxation followed
/// by nearest-slot legalization.
pub fn place_analytic(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    seed: u64,
) -> Result<Placement, PlaceError> {
    let slots = slots_in_window(grid, window);

    // Capacity check per kind (same contract as the annealer).
    let mut kind_slots: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, s) in slots.iter().enumerate() {
        let pool = match s.kind {
            ResourceKind::Clb => 0,
            ResourceKind::Dsp => 1,
            ResourceKind::Bram => 2,
            _ => continue,
        };
        kind_slots[pool].push(i as u32);
    }
    let mut need = [0u64; 3];
    for c in &netlist.cells {
        let pool = match cell_kind(c.kind) {
            ResourceKind::Clb => 0,
            ResourceKind::Dsp => 1,
            _ => 2,
        };
        need[pool] += 1;
    }
    for (pool, kind) in [
        (0, ResourceKind::Clb),
        (1, ResourceKind::Dsp),
        (2, ResourceKind::Bram),
    ] {
        if need[pool] > kind_slots[pool].len() as u64 {
            return Err(PlaceError::Insufficient {
                kind,
                need: need[pool],
                have: kind_slots[pool].len() as u64,
            });
        }
    }

    // Continuous coordinates, seeded deterministically across the window.
    let n = netlist.cells.len();
    let (c0, c1) = (window.start_col as f64, window.end_col() as f64);
    let mut xs: Vec<f64> = (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            c0 + (h >> 40) as f64 / (1u64 << 24) as f64 * (c1 - c0)
        })
        .collect();
    let mut ys: Vec<f64> = (0..n)
        .map(|i| {
            let h = (i as u64 ^ 0xABCD)
                .wrapping_mul(seed | 3)
                .wrapping_mul(0x94d0_49bb_1331_11eb);
            (h >> 40) as f64 / (1u64 << 24) as f64 * f64::from(window.height * 20)
        })
        .collect();

    // Jacobi relaxation toward net centroids.
    let mut nx = vec![0f64; n];
    let mut ny = vec![0f64; n];
    let mut wsum = vec![0f64; n];
    for _ in 0..RELAX_ITERS {
        nx.iter_mut().for_each(|v| *v = 0.0);
        ny.iter_mut().for_each(|v| *v = 0.0);
        wsum.iter_mut().for_each(|v| *v = 0.0);
        for net in &netlist.nets {
            let k = net.pins.len() as f64;
            if k < 2.0 {
                continue;
            }
            let cx: f64 = net.pins.iter().map(|&p| xs[p as usize]).sum::<f64>() / k;
            let cy: f64 = net.pins.iter().map(|&p| ys[p as usize]).sum::<f64>() / k;
            let w = 1.0 / (k - 1.0);
            for &p in &net.pins {
                nx[p as usize] += cx * w;
                ny[p as usize] += cy * w;
                wsum[p as usize] += w;
            }
        }
        for i in 0..n {
            if wsum[i] > 0.0 {
                xs[i] = 0.5 * xs[i] + 0.5 * (nx[i] / wsum[i]);
                ys[i] = 0.5 * ys[i] + 0.5 * (ny[i] / wsum[i]);
            }
        }
    }

    // Legalize: per kind, match cells to slots in sorted x-order (a
    // linear-time transportation heuristic that preserves relative order).
    let mut assignment = vec![u32::MAX; n];
    for (pool, pool_slots) in kind_slots.iter().enumerate() {
        let mut cells: Vec<usize> = (0..n)
            .filter(|&i| {
                let p = match cell_kind(netlist.cells[i].kind) {
                    ResourceKind::Clb => 0,
                    ResourceKind::Dsp => 1,
                    _ => 2,
                };
                p == pool
            })
            .collect();
        cells.sort_by(|&a, &b| (xs[a], ys[a]).partial_cmp(&(xs[b], ys[b])).unwrap());
        let mut slot_ids = pool_slots.clone();
        slot_ids.sort_by(|&a, &b| {
            let sa = &slots[a as usize];
            let sb = &slots[b as usize];
            (sa.col, sa.y_times_16()).cmp(&(sb.col, sb.y_times_16()))
        });
        for (cell, slot) in cells.into_iter().zip(slot_ids) {
            assignment[cell] = slot;
        }
    }

    // Final HPWL in the same fixed-point scale as the annealer.
    let hpwl: f64 = netlist
        .nets
        .iter()
        .map(|net| {
            let mut min_c = f64::MAX;
            let mut max_c = f64::MIN;
            let mut min_y = f64::MAX;
            let mut max_y = f64::MIN;
            for &p in &net.pins {
                let s = &slots[assignment[p as usize] as usize];
                min_c = min_c.min(f64::from(s.col));
                max_c = max_c.max(f64::from(s.col));
                let y = s.y_times_16() as f64 / 16.0;
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            (max_c - min_c) + (max_y - min_y)
        })
        .sum();

    Ok(Placement {
        cell_slots: assignment,
        hpwl: (hpwl * 16.0) as u64,
        chains: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerConfig};
    use fabric::database::xc5vlx110t;
    use fabric::{Family, WindowRequest};
    use synth::SynthReport;

    fn netlist(pairs: u64) -> Netlist {
        let r = SynthReport::new("a", Family::Virtex5, pairs, pairs * 3 / 4, pairs / 2, 0, 1);
        Netlist::from_report(&r, 7).unwrap()
    }

    #[test]
    fn analytic_placement_is_valid() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = netlist(200);
        let p = place_analytic(&nl, &grid, &w, 11).unwrap();
        assert_eq!(p.cell_slots.len(), nl.cells.len());
        let mut used = p.cell_slots.clone();
        used.sort_unstable();
        let len = used.len();
        used.dedup();
        assert_eq!(used.len(), len, "no slot double-booked");
    }

    #[test]
    fn analytic_is_competitive_with_annealing() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 2)).unwrap();
        let nl = netlist(300);
        let sa = place(&nl, &grid, &w, &PlacerConfig::fast(5)).unwrap();
        let an = place_analytic(&nl, &grid, &w, 5).unwrap();
        // The analytic result lands within a small constant factor of the
        // (locality-friendly) annealer on chain-dominated netlists.
        assert!(
            an.hpwl < sa.hpwl * 4,
            "analytic {} vs annealed {}",
            an.hpwl,
            sa.hpwl
        );
    }

    #[test]
    fn capacity_errors_match_the_annealer() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(1, 0, 0, 1)).unwrap();
        let nl = netlist(500);
        assert!(matches!(
            place_analytic(&nl, &grid, &w, 1),
            Err(PlaceError::Insufficient {
                kind: ResourceKind::Clb,
                ..
            })
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = netlist(150);
        assert_eq!(
            place_analytic(&nl, &grid, &w, 9).unwrap(),
            place_analytic(&nl, &grid, &w, 9).unwrap()
        );
    }
}
