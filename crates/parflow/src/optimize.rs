//! Implementation-time netlist optimization.
//!
//! The Xilinx tools "perform optimizations to reduce the PRMs' resource
//! requirements during place and route" (paper §IV): unrelated LUT-only and
//! FF-only slice slots get packed into one LUT–FF pair, unused LUTs are
//! trimmed, high-fanout registers are replicated, and route-through LUTs
//! appear. This module performs those transformations (plus the inverse
//! unpack) as genuine netlist edits, driven either **toward a target
//! report** (the paper PRMs' published Table VI post-PAR counts) or by a
//! **heuristic profile** for arbitrary PRMs.

use core::fmt;
use serde::{Deserialize, Serialize};
use synth::{Cell, CellKind, Net, Netlist, SynthReport};

/// How the optimizer decides how much to transform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimizeOptions {
    /// Transform until the pair/LUT/FF counts equal `target` (DSP/BRAM
    /// counts must already match — the tools never change them).
    TowardTarget(SynthReport),
    /// Heuristic profile for PRMs without published post-PAR numbers.
    Heuristic {
        /// Fraction of packable (LUT-only, FF-only) slot pairs to pack.
        pack_fraction: f64,
        /// Fraction of LUT-only slots to trim after packing.
        lut_trim_fraction: f64,
    },
}

impl OptimizeOptions {
    /// The default heuristic, fitted to the paper PRMs' observed behaviour
    /// (pack ~40 % of packable slot pairs — the Table VI PRMs leave most
    /// pairs unpacked — and trim ~15 % of remaining LUT-only slots).
    pub fn default_heuristic() -> Self {
        OptimizeOptions::Heuristic {
            pack_fraction: 0.4,
            lut_trim_fraction: 0.15,
        }
    }
}

/// What the optimizer did, by edit kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerReport {
    /// (LUT-only, FF-only) slot pairs packed into full pairs.
    pub packed: u64,
    /// Full pairs split back into separate slots.
    pub unpacked: u64,
    /// FF-only slots that gained a route-through LUT (became full pairs).
    pub route_throughs: u64,
    /// LUT-only slots trimmed away.
    pub luts_trimmed: u64,
    /// FF-only slots trimmed away.
    pub ffs_trimmed: u64,
    /// FF-only slots added (register replication).
    pub ffs_replicated: u64,
    /// LUT-only slots added (buffer/route LUT insertion).
    pub luts_added: u64,
}

impl OptimizerReport {
    /// Total edits performed.
    pub fn total_edits(&self) -> u64 {
        self.packed
            + self.unpacked
            + self.route_throughs
            + self.luts_trimmed
            + self.ffs_trimmed
            + self.ffs_replicated
            + self.luts_added
    }
}

/// Optimization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// Target changes DSP or BRAM counts, which implementation never does.
    TargetChangesHardBlocks,
    /// The target report is internally inconsistent.
    InvalidTarget(synth::ReportError),
    /// No sequence of pack/trim/replicate edits reaches the target.
    Unreachable,
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::TargetChangesHardBlocks => {
                write!(
                    f,
                    "post-PAR DSP/BRAM counts must equal the synthesis counts"
                )
            }
            OptimizeError::InvalidTarget(e) => write!(f, "invalid target report: {e}"),
            OptimizeError::Unreachable => {
                write!(
                    f,
                    "no pack/trim/replicate sequence reaches the target counts"
                )
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Slice-slot component counts: (FF-only, fully used, LUT-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Components {
    ff_only: i64,
    full: i64,
    lut_only: i64,
}

fn components(r: &SynthReport) -> Components {
    Components {
        ff_only: (r.lut_ff_pairs - r.luts) as i64,
        full: (r.luts + r.ffs - r.lut_ff_pairs) as i64,
        lut_only: (r.lut_ff_pairs - r.ffs) as i64,
    }
}

/// Solve for the edit counts that turn `cur` into `tgt`.
fn solve(cur: Components, tgt: Components) -> Result<OptimizerReport, OptimizeError> {
    let mut rep = OptimizerReport::default();
    let mut c = cur;

    let d_full = tgt.full - c.full;
    if d_full > 0 {
        // Prefer packing (consumes one FF-only and one LUT-only each); the
        // remainder becomes route-through LUT insertion into FF-only slots.
        let pack = d_full.min(c.ff_only).min(c.lut_only);
        let route = d_full - pack;
        if c.ff_only - pack < route {
            return Err(OptimizeError::Unreachable);
        }
        rep.packed = pack as u64;
        rep.route_throughs = route as u64;
        c.ff_only -= pack + route;
        c.lut_only -= pack;
        c.full += d_full;
    } else if d_full < 0 {
        let unpack = -d_full;
        if c.full < unpack {
            return Err(OptimizeError::Unreachable);
        }
        rep.unpacked = unpack as u64;
        c.full -= unpack;
        c.ff_only += unpack;
        c.lut_only += unpack;
    }

    match tgt.lut_only - c.lut_only {
        d if d < 0 => {
            if c.lut_only < -d {
                return Err(OptimizeError::Unreachable);
            }
            rep.luts_trimmed = (-d) as u64;
        }
        d => rep.luts_added = d as u64,
    }
    match tgt.ff_only - c.ff_only {
        d if d < 0 => {
            if c.ff_only < -d {
                return Err(OptimizeError::Unreachable);
            }
            rep.ffs_trimmed = (-d) as u64;
        }
        d => rep.ffs_replicated = d as u64,
    }
    Ok(rep)
}

/// Apply the planned edits to the netlist.
fn apply(netlist: &mut Netlist, rep: &OptimizerReport) {
    let mut ff_only: Vec<usize> = Vec::new();
    let mut lut_only: Vec<usize> = Vec::new();
    for (i, cell) in netlist.cells.iter().enumerate() {
        match cell.kind {
            CellKind::Slice {
                lut: false,
                ff: true,
            } => ff_only.push(i),
            CellKind::Slice {
                lut: true,
                ff: false,
            } => lut_only.push(i),
            _ => {}
        }
    }
    let mut ff_iter = ff_only.into_iter();
    let mut lut_iter = lut_only.into_iter();
    let mut removed: Vec<usize> = Vec::new();

    // Pack: merge an FF-only slot into a LUT-only slot.
    for _ in 0..rep.packed {
        let lut_idx = lut_iter
            .next()
            .expect("solver bounded packs by availability");
        let ff_idx = ff_iter
            .next()
            .expect("solver bounded packs by availability");
        netlist.cells[lut_idx].kind = CellKind::Slice {
            lut: true,
            ff: true,
        };
        rehome_pins(netlist, ff_idx, lut_idx);
        removed.push(ff_idx);
    }

    // Route-through: FF-only slot gains a pass-through LUT in place.
    for _ in 0..rep.route_throughs {
        let idx = ff_iter.next().expect("solver bounded route-throughs");
        netlist.cells[idx].kind = CellKind::Slice {
            lut: true,
            ff: true,
        };
    }

    // Unpack: split full slots into LUT-only + a fresh FF-only cell.
    for _ in 0..rep.unpacked {
        let idx = netlist
            .cells
            .iter()
            .position(|c| {
                matches!(
                    c.kind,
                    CellKind::Slice {
                        lut: true,
                        ff: true
                    }
                )
            })
            .expect("solver bounded unpacks by full-pair availability");
        netlist.cells[idx].kind = CellKind::Slice {
            lut: true,
            ff: false,
        };
        let new_idx = netlist.cells.len() as u32;
        netlist.cells.push(Cell {
            kind: CellKind::Slice {
                lut: false,
                ff: true,
            },
        });
        netlist.nets.push(Net {
            pins: vec![idx as u32, new_idx],
        });
    }

    // Trims.
    for _ in 0..rep.luts_trimmed {
        removed.push(lut_iter.next().expect("solver bounded LUT trims"));
    }
    for _ in 0..rep.ffs_trimmed {
        removed.push(ff_iter.next().expect("solver bounded FF trims"));
    }

    // Additions: buffer LUTs and replicated registers, each tied to the
    // previous cell so connectivity stays realistic.
    for kind in std::iter::repeat_n(
        CellKind::Slice {
            lut: true,
            ff: false,
        },
        rep.luts_added as usize,
    )
    .chain(std::iter::repeat_n(
        CellKind::Slice {
            lut: false,
            ff: true,
        },
        rep.ffs_replicated as usize,
    )) {
        let new_idx = netlist.cells.len() as u32;
        netlist.cells.push(Cell { kind });
        if new_idx > 0 {
            netlist.nets.push(Net {
                pins: vec![new_idx - 1, new_idx],
            });
        }
    }

    // Physically remove dropped cells (compact indices, fix nets).
    if !removed.is_empty() {
        removed.sort_unstable();
        removed.dedup();
        let mut keep = vec![true; netlist.cells.len()];
        for &i in &removed {
            keep[i] = false;
        }
        let mut remap = vec![u32::MAX; netlist.cells.len()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = next;
                next += 1;
            }
        }
        let mut i = 0;
        netlist.cells.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
        for net in &mut netlist.nets {
            net.pins.retain(|&p| keep[p as usize]);
            for p in &mut net.pins {
                *p = remap[*p as usize];
            }
        }
        netlist.nets.retain(|n| n.pins.len() >= 2);
    }
}

fn rehome_pins(netlist: &mut Netlist, from: usize, to: usize) {
    for net in &mut netlist.nets {
        for p in &mut net.pins {
            if *p as usize == from {
                *p = to as u32;
            }
        }
        net.pins.sort_unstable();
        net.pins.dedup();
    }
}

/// Optimize `netlist` per `options`; returns the edited netlist and report.
pub fn optimize(
    netlist: &Netlist,
    options: &OptimizeOptions,
) -> Result<(Netlist, OptimizerReport), OptimizeError> {
    let before = netlist.to_report();
    let cur = components(&before);

    let tgt = match options {
        OptimizeOptions::TowardTarget(target) => {
            target.validate().map_err(OptimizeError::InvalidTarget)?;
            if target.dsps != before.dsps || target.brams != before.brams {
                return Err(OptimizeError::TargetChangesHardBlocks);
            }
            components(target)
        }
        OptimizeOptions::Heuristic {
            pack_fraction,
            lut_trim_fraction,
        } => {
            let pack = (cur.ff_only.min(cur.lut_only) as f64 * pack_fraction.clamp(0.0, 1.0))
                .floor() as i64;
            let trim =
                ((cur.lut_only - pack) as f64 * lut_trim_fraction.clamp(0.0, 1.0)).floor() as i64;
            Components {
                ff_only: cur.ff_only - pack,
                full: cur.full + pack,
                lut_only: cur.lut_only - pack - trim,
            }
        }
    };

    let plan = solve(cur, tgt)?;
    let mut out = netlist.clone();
    apply(&mut out, &plan);
    debug_assert_eq!(
        components(&out.to_report()),
        tgt,
        "apply must realize the solved plan"
    );
    Ok((out, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::Family;
    use synth::PaperPrm;

    /// The headline Table VI reproduction: optimizing each paper PRM's
    /// netlist toward its published post-PAR counts must yield a netlist
    /// that recounts to exactly those counts.
    #[test]
    fn table6_counts_reproduce_via_netlist_edits() {
        for prm in PaperPrm::ALL {
            for fam in [Family::Virtex5, Family::Virtex6] {
                let nl = prm.netlist(fam, 3);
                let target = prm.post_par_report(fam).unwrap();
                let (opt, rep) =
                    optimize(&nl, &OptimizeOptions::TowardTarget(target.clone())).unwrap();
                let after = opt.to_report();
                assert_eq!(
                    after.lut_ff_pairs, target.lut_ff_pairs,
                    "{prm:?}/{fam} pairs"
                );
                assert_eq!(after.luts, target.luts, "{prm:?}/{fam} luts");
                assert_eq!(after.ffs, target.ffs, "{prm:?}/{fam} ffs");
                assert_eq!(after.dsps, target.dsps);
                assert_eq!(after.brams, target.brams);
                assert!(
                    rep.total_edits() > 0,
                    "{prm:?}/{fam}: optimizer must do something"
                );
            }
        }
    }

    /// FIR/Virtex-5: the known decomposition is pack 99, trim 135 LUTs,
    /// replicate 16 FFs (DESIGN.md §5 algebra).
    #[test]
    fn fir_v5_edit_counts() {
        let nl = PaperPrm::Fir.netlist(Family::Virtex5, 3);
        let target = PaperPrm::Fir.post_par_report(Family::Virtex5).unwrap();
        let (_, rep) = optimize(&nl, &OptimizeOptions::TowardTarget(target)).unwrap();
        assert_eq!(rep.packed, 99);
        assert_eq!(rep.luts_trimmed, 135);
        assert_eq!(rep.ffs_replicated, 16);
        assert_eq!(rep.unpacked, 0);
        assert_eq!(rep.route_throughs, 0);
    }

    /// SDRAM/Virtex-5 exercises the route-through path: 40 packs exhaust
    /// the LUT-only pool, the remaining 2 full-pair increases come from
    /// route-through LUTs, and 32 buffer LUTs appear.
    #[test]
    fn sdram_v5_uses_route_throughs() {
        let nl = PaperPrm::Sdram.netlist(Family::Virtex5, 3);
        let target = PaperPrm::Sdram.post_par_report(Family::Virtex5).unwrap();
        let (_, rep) = optimize(&nl, &OptimizeOptions::TowardTarget(target)).unwrap();
        assert_eq!(rep.packed, 40);
        assert_eq!(rep.route_throughs, 2);
        assert_eq!(rep.luts_added, 32);
    }

    #[test]
    fn heuristic_mode_reduces_pairs_and_validates() {
        let nl = PaperPrm::Mips.netlist(Family::Virtex5, 5);
        let before = nl.to_report();
        let (opt, rep) = optimize(&nl, &OptimizeOptions::default_heuristic()).unwrap();
        let after = opt.to_report();
        after.validate().unwrap();
        assert!(after.lut_ff_pairs < before.lut_ff_pairs);
        assert!(rep.packed > 0);
        assert_eq!(after.dsps, before.dsps);
        assert_eq!(after.brams, before.brams);
    }

    #[test]
    fn target_changing_hard_blocks_is_rejected() {
        let nl = PaperPrm::Mips.netlist(Family::Virtex5, 5);
        let mut target = PaperPrm::Mips.post_par_report(Family::Virtex5).unwrap();
        target.dsps += 1;
        assert_eq!(
            optimize(&nl, &OptimizeOptions::TowardTarget(target)),
            Err(OptimizeError::TargetChangesHardBlocks)
        );
    }

    #[test]
    fn nets_stay_valid_after_optimization() {
        let nl = PaperPrm::Fir.netlist(Family::Virtex5, 11);
        let target = PaperPrm::Fir.post_par_report(Family::Virtex5).unwrap();
        let (opt, _) = optimize(&nl, &OptimizeOptions::TowardTarget(target)).unwrap();
        let n = opt.cells.len() as u32;
        for net in &opt.nets {
            assert!(net.pins.len() >= 2);
            assert!(net.pins.iter().all(|&p| p < n));
        }
    }

    #[test]
    fn identity_target_is_a_noop() {
        let nl = PaperPrm::Sdram.netlist(Family::Virtex5, 1);
        let target = nl.to_report();
        let (opt, rep) = optimize(&nl, &OptimizeOptions::TowardTarget(target.clone())).unwrap();
        assert_eq!(opt.to_report().lut_ff_pairs, target.lut_ff_pairs);
        assert_eq!(rep, OptimizerReport::default());
    }

    #[test]
    fn unpack_path_handles_fewer_full_pairs() {
        // Target with fewer full pairs than the source: full 244 -> 100.
        let nl = PaperPrm::Fir.netlist(Family::Virtex5, 7);
        let before = nl.to_report();
        let target = SynthReport::new(
            before.module.clone(),
            before.family,
            before.lut_ff_pairs + 144, // unpacking grows pair slots
            before.luts,
            before.ffs,
            before.dsps,
            before.brams,
        );
        let (opt, rep) = optimize(&nl, &OptimizeOptions::TowardTarget(target.clone())).unwrap();
        assert_eq!(rep.unpacked, 144);
        assert_eq!(opt.to_report().lut_ff_pairs, target.lut_ff_pairs);
    }
}
