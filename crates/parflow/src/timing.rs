//! Post-placement static timing estimation.
//!
//! The paper motivates right-sized PRRs partly with delay: "oversized PRRs
//! impose longer routing delays". This module quantifies that on the
//! simulated substrate: each net's delay is a logic term plus a wire term
//! proportional to its placed half-perimeter; the critical path is the
//! longest register-to-register path through the netlist's implied DAG
//! (net pins are index-sorted, so the lowest-index pin drives the rest —
//! the same convention the synthetic connectivity generator uses).

use crate::place::{net_bboxes, Placement};
use fabric::grid::SiteGrid;
use fabric::Window;
use serde::{Deserialize, Serialize};
use synth::Netlist;

/// Fixed per-level logic delay (LUT + local interconnect), ns.
const LOGIC_DELAY_NS: f64 = 0.40;
/// Wire delay per unit of half-perimeter (columns + CLB rows), ns.
const WIRE_DELAY_NS_PER_UNIT: f64 = 0.06;

/// Timing analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Longest path delay, ns.
    pub critical_path_ns: f64,
    /// 1 / critical path, MHz.
    pub max_frequency_mhz: f64,
    /// Logic levels on the critical path.
    pub logic_levels: u32,
    /// Mean net delay, ns.
    pub mean_net_delay_ns: f64,
}

/// Estimate timing for a placed netlist.
pub fn analyze(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    placement: &Placement,
) -> TimingReport {
    let bboxes = net_bboxes(netlist, grid, window, placement);
    let n_cells = netlist.cells.len();
    let mut depth_ns = vec![0f64; n_cells];
    let mut levels = vec![0u32; n_cells];
    let mut total_net_delay = 0f64;

    // Nets in driver-index order gives a forward pass over the DAG.
    let mut order: Vec<usize> = (0..netlist.nets.len()).collect();
    order.sort_by_key(|&i| netlist.nets[i].pins.first().copied().unwrap_or(0));

    for i in order {
        let net = &netlist.nets[i];
        let Some((&driver, sinks)) = net.pins.split_first() else {
            continue;
        };
        let (min_c, max_c, min_y, max_y) = bboxes[i];
        let wire = ((max_c - min_c) + (max_y - min_y)) * WIRE_DELAY_NS_PER_UNIT;
        let delay = LOGIC_DELAY_NS + wire;
        total_net_delay += delay;
        let d = depth_ns[driver as usize] + delay;
        let l = levels[driver as usize] + 1;
        for &s in sinks {
            if d > depth_ns[s as usize] {
                depth_ns[s as usize] = d;
                levels[s as usize] = l;
            }
        }
    }

    let (critical_idx, &critical_path_ns) = depth_ns
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap_or((0, &LOGIC_DELAY_NS));
    let critical_path_ns = critical_path_ns.max(LOGIC_DELAY_NS);
    TimingReport {
        critical_path_ns,
        max_frequency_mhz: 1000.0 / critical_path_ns,
        logic_levels: levels.get(critical_idx).copied().unwrap_or(1).max(1),
        mean_net_delay_ns: if netlist.nets.is_empty() {
            0.0
        } else {
            total_net_delay / netlist.nets.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{place, PlacerConfig};
    use fabric::database::xc5vlx110t;
    use fabric::{Family, WindowRequest};
    use synth::{Netlist, SynthReport};

    fn setup(pairs: u64) -> (fabric::Device, Netlist) {
        let device = xc5vlx110t();
        let r = SynthReport::new("t", Family::Virtex5, pairs, pairs * 3 / 4, pairs / 2, 0, 0);
        let nl = Netlist::from_report(&r, 5).unwrap();
        (device, nl)
    }

    #[test]
    fn basic_properties() {
        let (device, nl) = setup(200);
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(2, 0, 0, 1)).unwrap();
        let p = place(&nl, &grid, &w, &PlacerConfig::fast(1)).unwrap();
        let t = analyze(&nl, &grid, &w, &p);
        assert!(t.critical_path_ns > 0.0);
        assert!(t.max_frequency_mhz > 0.0 && t.max_frequency_mhz.is_finite());
        assert!(t.logic_levels >= 1);
        assert!(t.mean_net_delay_ns >= LOGIC_DELAY_NS);
        // Deterministic.
        let t2 = analyze(&nl, &grid, &w, &p);
        assert_eq!(t, t2);
    }

    /// "Oversized PRRs impose longer routing delays": the same netlist
    /// spread across a much larger window clocks slower.
    #[test]
    fn oversized_window_is_slower() {
        let (device, nl) = setup(200);
        let grid = SiteGrid::new(&device);
        let tight = device.find_window(&WindowRequest::new(2, 0, 0, 1)).unwrap();
        let loose = device.find_window(&WindowRequest::new(8, 0, 0, 8)).unwrap();
        // Scatter placement in the loose window: zero-effort chains keep
        // greedy locality, so force spreading via distinct chain rotations.
        let p_tight = place(
            &nl,
            &grid,
            &tight,
            &PlacerConfig {
                chains: 1,
                moves_per_cell: 0,
                ..PlacerConfig::fast(1)
            },
        )
        .unwrap();
        // Worst-of-4 random-rotation greedy placements in the big window.
        let p_loose = (0..4)
            .map(|c| {
                place(
                    &nl,
                    &grid,
                    &loose,
                    &PlacerConfig {
                        chains: 1,
                        moves_per_cell: 0,
                        seed: c,
                        ..PlacerConfig::fast(c)
                    },
                )
                .unwrap()
            })
            .max_by_key(|p| p.hpwl)
            .unwrap();
        let t_tight = analyze(&nl, &grid, &tight, &p_tight);
        let t_loose = analyze(&nl, &grid, &loose, &p_loose);
        assert!(
            t_loose.mean_net_delay_ns >= t_tight.mean_net_delay_ns,
            "loose {} vs tight {}",
            t_loose.mean_net_delay_ns,
            t_tight.mean_net_delay_ns
        );
    }

    #[test]
    fn long_net_lowers_fmax() {
        let (device, mut nl) = setup(300);
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(4, 0, 0, 2)).unwrap();
        let cfg = PlacerConfig {
            chains: 1,
            moves_per_cell: 0,
            ..PlacerConfig::fast(3)
        };
        let p = place(&nl, &grid, &w, &cfg).unwrap();
        let before = analyze(&nl, &grid, &w, &p);
        // Chain the last cell back to cell 0: a long feedback wire that
        // also deepens the path.
        nl.nets.push(synth::Net {
            pins: vec![0, (nl.cells.len() - 1) as u32],
        });
        let p2 = place(&nl, &grid, &w, &cfg).unwrap();
        let after = analyze(&nl, &grid, &w, &p2);
        assert!(after.critical_path_ns >= before.critical_path_ns);
    }

    #[test]
    fn empty_netlist_degenerates_gracefully() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(1, 0, 0, 1)).unwrap();
        let r = SynthReport::new("e", Family::Virtex5, 1, 1, 0, 0, 0);
        let nl = Netlist::from_report(&r, 0).unwrap();
        let p = place(&nl, &grid, &w, &PlacerConfig::fast(1)).unwrap();
        let t = analyze(&nl, &grid, &w, &p);
        assert!(t.critical_path_ns >= LOGIC_DELAY_NS);
        assert!(t.max_frequency_mhz.is_finite());
    }
}
