//! # `parflow` — simulated PR design flow
//!
//! The paper's cost models exist to *avoid* the "lengthy PR design flow":
//! design synthesis, manual PRR floorplanning, place and route, and
//! bitstream generation. To evaluate the models against that flow (the
//! paper's Tables VI and VIII), this crate implements a functional
//! simulation of each stage on the `fabric` substrate:
//!
//! * [`floorplan`] — AREA_GROUP-style region constraints (a UCF-like text
//!   form plus validation against the device).
//! * [`optimize`](mod@optimize) — the post-synthesis optimization the Xilinx tools apply
//!   during implementation: LUT/FF pair packing, LUT trimming, register
//!   replication and route-through LUT insertion, performed as real netlist
//!   transformations. For the paper's PRMs the optimizer is driven toward
//!   the published post-PAR resource counts (Table VI); for other PRMs a
//!   heuristic profile applies.
//! * [`place`](mod@place) — a deterministic multi-start simulated-annealing placer
//!   over the device's site grid (rayon-parallel across restarts). The
//!   move loop is allocation-free: x16 fixed-point HPWL maintained by
//!   incremental per-net bounding boxes, proven identical to the frozen
//!   [`place::reference`] full recompute (see DESIGN.md §9).
//! * [`route`](mod@route) — a boundary-congestion router: per-column-boundary channel
//!   demand from net bounding boxes against family-derived capacity.
//! * [`flow`] — the end-to-end driver with per-stage wall times (the
//!   "Implementation" column of Table VIII), plus [`run_flows`]: batch
//!   execution over rayon with per-worker placer scratch and per-stage
//!   histograms recorded into `prcost::Metrics`.
//! * [`autofloorplan`] — the paper's stated future work: using the cost
//!   models to floorplan several PRRs jointly (parallel branch-and-bound
//!   over each PRR's Fig. 1 candidates with a shared best-cost bound and
//!   dominance pruning, minimizing total bitstream bytes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod autofloorplan;
pub mod crossings;
pub mod floorplan;
pub mod flow;
pub mod optimize;
pub mod place;
pub mod route;
pub mod timing;

pub use analytic::place_analytic;
pub use autofloorplan::{auto_floorplan, AutoFloorplan, PrrSpec};
pub use crossings::{assess, CrossingRisk};
pub use floorplan::{AreaGroup, Floorplan, FloorplanError};
pub use flow::{run_flow, run_flows, FlowJob, FlowOptions, FlowReport, FlowStage};
pub use optimize::{optimize, OptimizeOptions, OptimizerReport};
pub use place::{place, place_with_scratch, PlaceError, PlaceScratch, Placement, PlacerConfig};
pub use route::{route, RouteReport};
pub use timing::{analyze, TimingReport};
