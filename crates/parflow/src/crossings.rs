//! Static-region net crossings through PRRs.
//!
//! The paper (§IV): "since the Xilinx tools allow the static region's nets
//! to cross the PRRs, routing problems may arise if nets from the static
//! region try to cross a densely packed PRR." This module estimates that
//! risk for a floorplan: static logic on both sides of a PRR forces some
//! of its nets through the PRR's routing channels, whose slack is whatever
//! the PRR's own utilization leaves behind.

use crate::floorplan::Floorplan;
use fabric::{Device, ResourceKind};
use serde::{Deserialize, Serialize};

/// Fraction of a column's vertical routing a fully-utilized PRM consumes,
/// leaving `1 - this` for static crossings at RU = 100 %.
const PRM_ROUTING_SHARE: f64 = 0.7;

/// Static nets demanded per static CLB column adjacent to each side of a
/// PRR (an empirical locality constant: most static nets stay local; only
/// a few need to cross).
const CROSSING_NETS_PER_COLUMN: f64 = 12.0;

/// Vertical routing tracks per CLB row (matches the router's capacity
/// constant).
const TRACKS_PER_CLB_ROW: f64 = 10.0;

/// Crossing-risk assessment for one PRR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossingRisk {
    /// PRR (area group) name.
    pub group: String,
    /// Estimated static nets that must cross this PRR.
    pub demand: f64,
    /// Routing tracks left over by the PRM at the given utilization.
    pub slack: f64,
    /// demand / slack; above 1.0 the paper's warning applies.
    pub pressure: f64,
}

impl CrossingRisk {
    /// Whether the paper's "routing problems may arise" condition holds.
    pub fn at_risk(&self) -> bool {
        self.pressure > 1.0
    }
}

/// Assess every group of `floorplan` on `device`. `utilization` gives each
/// PRR's LUT utilization in `[0, 100]` (index-aligned with
/// `floorplan.groups`); denser PRMs leave less crossing slack.
pub fn assess(device: &Device, floorplan: &Floorplan, utilization: &[f64]) -> Vec<CrossingRisk> {
    floorplan
        .groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let w = &g.window;
            // Static CLB columns strictly left and right of the window at
            // the window's rows (other PRRs' columns are not static).
            let is_static = |col: usize| -> bool {
                device.columns()[col] == ResourceKind::Clb
                    && !floorplan.groups.iter().any(|other| {
                        col >= other.window.start_col
                            && col < other.window.end_col()
                            && other.window.row <= w.top_row()
                            && w.row <= other.window.top_row()
                    })
            };
            let left = (0..w.start_col).filter(|&c| is_static(c)).count() as f64;
            let right = (w.end_col()..device.width())
                .filter(|&c| is_static(c))
                .count() as f64;
            // Nets cross only if static logic exists on both sides.
            let demand = if left > 0.0 && right > 0.0 {
                left.min(right) * CROSSING_NETS_PER_COLUMN
            } else {
                0.0
            };

            let rows = f64::from(w.height) * f64::from(device.params().clb_col);
            let total_tracks = rows * TRACKS_PER_CLB_ROW;
            let ru = utilization
                .get(i)
                .copied()
                .unwrap_or(100.0)
                .clamp(0.0, 100.0)
                / 100.0;
            let slack = total_tracks * (1.0 - PRM_ROUTING_SHARE * ru);

            let pressure = if slack > 0.0 {
                demand / slack
            } else {
                f64::INFINITY
            };
            CrossingRisk {
                group: g.name.clone(),
                demand,
                slack,
                pressure,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{AreaGroup, Floorplan};
    use fabric::database::xc5vlx110t;
    use fabric::WindowRequest;

    /// A window for `req` whose start column is at least `min_col` (so the
    /// tests control whether static logic exists on the left).
    fn window_from(device: &Device, req: &WindowRequest, min_col: usize) -> fabric::Window {
        device
            .windows(req)
            .find(|w| w.start_col >= min_col)
            .unwrap()
    }

    fn plan_mid(device: &Device, req: &WindowRequest, name: &str) -> Floorplan {
        let mut plan = Floorplan::new(device);
        plan.push(AreaGroup::new(name, window_from(device, req, 10)));
        plan
    }

    /// A short, lightly-utilized PRR in the middle of the fabric carries
    /// crossing demand but has slack for it.
    #[test]
    fn sparse_prr_is_safe() {
        let device = xc5vlx110t();
        let plan = plan_mid(&device, &WindowRequest::new(3, 0, 0, 8), "mid");
        let risks = assess(&device, &plan, &[30.0]);
        assert_eq!(risks.len(), 1);
        assert!(risks[0].demand > 0.0, "static logic on both sides");
        assert!(!risks[0].at_risk(), "pressure {}", risks[0].pressure);
    }

    /// The same footprint at 100 % utilization has far less slack — the
    /// paper's "densely packed PRR" warning shows up as rising pressure.
    #[test]
    fn pressure_rises_with_utilization() {
        let device = xc5vlx110t();
        let plan = plan_mid(&device, &WindowRequest::new(3, 0, 0, 1), "tight");
        let lo = assess(&device, &plan, &[20.0])[0].pressure;
        let hi = assess(&device, &plan, &[100.0])[0].pressure;
        assert!(hi > lo * 2.0, "lo {lo} hi {hi}");
        // A single-row fully packed PRR with the whole static region on
        // both sides is where problems arise.
        assert!(assess(&device, &plan, &[100.0])[0].at_risk());
    }

    /// A PRR at the fabric edge has static logic on one side only: no
    /// crossing demand at all.
    #[test]
    fn edge_prrs_have_no_crossings() {
        let device = xc5vlx110t();
        // Leftmost CLB window: columns 1..3 (column 0 is IOB).
        let w = device.find_window(&WindowRequest::new(3, 0, 0, 8)).unwrap();
        assert_eq!(w.start_col, 1);
        let mut plan = Floorplan::new(&device);
        plan.push(AreaGroup::new("edge", w));
        // Nothing static to the left except the IOB column -> demand 0.
        let risks = assess(&device, &plan, &[100.0]);
        assert_eq!(risks[0].demand, 0.0);
        assert!(!risks[0].at_risk());
    }

    /// Columns belonging to other PRRs do not count as static.
    #[test]
    fn other_prrs_are_not_static() {
        let device = xc5vlx110t();
        // Two tall PRRs side by side: the second "sees" fewer static
        // columns than it would alone.
        let w1 = device.find_window(&WindowRequest::new(6, 0, 0, 8)).unwrap();
        let mut w2 = device.find_window(&WindowRequest::new(3, 0, 0, 8)).unwrap();
        // Place w2 to the right of w1 if they overlap.
        if w2.overlaps(&w1) {
            let req = WindowRequest::new(3, 0, 0, 8);
            w2 = device.windows(&req).find(|w| !w.overlaps(&w1)).unwrap();
        }
        let mut both = Floorplan::new(&device);
        both.push(AreaGroup::new("a", w1));
        both.push(AreaGroup::new("b", w2.clone()));
        let mut alone = Floorplan::new(&device);
        alone.push(AreaGroup::new("b", w2));
        let with_neighbor = assess(&device, &both, &[50.0, 50.0])[1].demand;
        let solo = assess(&device, &alone, &[50.0])[0].demand;
        assert!(with_neighbor <= solo);
    }
}
