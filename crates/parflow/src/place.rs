//! Simulated-annealing placement over the fabric site grid.
//!
//! Cells place onto *slots*: each CLB site offers `LUT_CLB` slice pair
//! slots, each DSP/BRAM site one slot. The objective is total net
//! half-perimeter wirelength (HPWL) in normalized fabric coordinates
//! (columns × CLB-row units). Placement runs several independent annealing
//! chains in parallel with rayon — the canonical data-parallel pattern —
//! and returns the best chain's result. Everything is deterministic in the
//! configured seed.

use core::fmt;
use fabric::grid::SiteGrid;
use fabric::{ResourceKind, Window};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use synth::{CellKind, Netlist};

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// Not enough slots of one kind in the region.
    Insufficient {
        /// Resource kind that ran out.
        kind: ResourceKind,
        /// Slots needed.
        need: u64,
        /// Slots available in the region.
        have: u64,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Insufficient { kind, need, have } => {
                write!(
                    f,
                    "region offers {have} {kind} slots but the netlist needs {need}"
                )
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Annealer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// Base RNG seed (chains derive their own seeds from it).
    pub seed: u64,
    /// Independent annealing chains run in parallel; best result wins.
    pub chains: u32,
    /// Annealing moves per cell per chain.
    pub moves_per_cell: u32,
    /// Initial temperature as a fraction of the initial mean net length.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor applied every `cells` moves.
    pub cooling: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            seed: 1,
            chains: 4,
            moves_per_cell: 24,
            initial_temp_frac: 0.5,
            cooling: 0.92,
        }
    }
}

impl PlacerConfig {
    /// A fast low-effort configuration for tests.
    pub fn fast(seed: u64) -> Self {
        PlacerConfig {
            seed,
            chains: 2,
            moves_per_cell: 6,
            ..PlacerConfig::default()
        }
    }
}

/// One placement slot: a position in normalized coordinates plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct Slot {
    pub(crate) kind: ResourceKind,
    /// Column index on the device.
    pub(crate) col: u32,
    /// Vertical position in CLB-row units (normalized across kinds).
    pub(crate) y_norm: f64,
}

impl Slot {
    /// Fixed-point vertical position for deterministic ordering.
    pub(crate) fn y_times_16(&self) -> u64 {
        (self.y_norm * 16.0) as u64
    }
}

/// A completed placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Slot index per cell (into the region's slot list).
    pub cell_slots: Vec<u32>,
    /// Final total HPWL (in column/CLB-row units, scaled by 16 and
    /// truncated for determinism).
    pub hpwl: u64,
    /// Chains evaluated.
    pub chains: u32,
}

fn cell_kind(kind: CellKind) -> ResourceKind {
    match kind {
        CellKind::Slice { .. } => ResourceKind::Clb,
        CellKind::Dsp => ResourceKind::Dsp,
        CellKind::Bram => ResourceKind::Bram,
    }
}

/// Expand a window into placement slots.
pub(crate) fn slots_in_window(grid: &SiteGrid<'_>, window: &Window) -> Vec<Slot> {
    let params = grid.device().params();
    let mut slots = Vec::new();
    for site in grid.sites_in_window(window) {
        let per = params.per_column(site.kind).max(1);
        let y_norm = f64::from(site.y) * f64::from(params.clb_col) / f64::from(per);
        match site.kind {
            ResourceKind::Clb => {
                // One slice pair slot per LUT-FF pair the CLB can hold.
                for s in 0..params.lut_clb {
                    slots.push(Slot {
                        kind: ResourceKind::Clb,
                        col: site.col,
                        y_norm: y_norm + f64::from(s) / f64::from(params.lut_clb),
                    });
                }
            }
            kind => slots.push(Slot {
                kind,
                col: site.col,
                y_norm,
            }),
        }
    }
    slots
}

struct Chain<'a> {
    netlist: &'a Netlist,
    slots: &'a [Slot],
    /// cell -> slot
    assignment: Vec<u32>,
    /// slot -> cell (u32::MAX = empty)
    occupant: Vec<u32>,
    /// nets touching each cell
    cell_nets: &'a [Vec<u32>],
    rng: u64,
}

impl Chain<'_> {
    fn rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn rand_below(&mut self, n: usize) -> usize {
        (self.rand() % n.max(1) as u64) as usize
    }

    fn net_hpwl(&self, net: u32) -> f64 {
        let pins = &self.netlist.nets[net as usize].pins;
        let mut min_c = f64::MAX;
        let mut max_c = f64::MIN;
        let mut min_y = f64::MAX;
        let mut max_y = f64::MIN;
        for &p in pins {
            let s = &self.slots[self.assignment[p as usize] as usize];
            min_c = min_c.min(f64::from(s.col));
            max_c = max_c.max(f64::from(s.col));
            min_y = min_y.min(s.y_norm);
            max_y = max_y.max(s.y_norm);
        }
        (max_c - min_c) + (max_y - min_y)
    }

    fn cost_of_cells(&self, cells: &[u32]) -> f64 {
        let mut seen: Vec<u32> = Vec::with_capacity(8);
        let mut cost = 0.0;
        for &c in cells {
            for &net in &self.cell_nets[c as usize] {
                if !seen.contains(&net) {
                    seen.push(net);
                    cost += self.net_hpwl(net);
                }
            }
        }
        cost
    }

    fn total_hpwl(&self) -> f64 {
        (0..self.netlist.nets.len() as u32)
            .map(|n| self.net_hpwl(n))
            .sum()
    }

    /// Propose and maybe accept one move; returns accepted.
    fn step(&mut self, temp: f64, kind_slots: &[Vec<u32>]) -> bool {
        let n_cells = self.netlist.cells.len();
        let cell = self.rand_below(n_cells) as u32;
        let kind = cell_kind(self.netlist.cells[cell as usize].kind);
        let pool = &kind_slots[kind_pool(kind)];
        let target_slot = pool[self.rand_below(pool.len())];
        let cur_slot = self.assignment[cell as usize];
        if target_slot == cur_slot {
            return false;
        }
        let other = self.occupant[target_slot as usize];

        let affected: Vec<u32> = if other == u32::MAX {
            vec![cell]
        } else {
            vec![cell, other]
        };
        let before = self.cost_of_cells(&affected);

        // Apply (swap or move).
        self.assignment[cell as usize] = target_slot;
        self.occupant[target_slot as usize] = cell;
        if other == u32::MAX {
            self.occupant[cur_slot as usize] = u32::MAX;
        } else {
            self.assignment[other as usize] = cur_slot;
            self.occupant[cur_slot as usize] = other;
        }

        let after = self.cost_of_cells(&affected);
        let delta = after - before;
        let accept = delta <= 0.0 || {
            let u = (self.rand() >> 11) as f64 / (1u64 << 53) as f64;
            u < (-delta / temp.max(1e-9)).exp()
        };
        if !accept {
            // Revert.
            self.assignment[cell as usize] = cur_slot;
            self.occupant[cur_slot as usize] = cell;
            if other == u32::MAX {
                self.occupant[target_slot as usize] = u32::MAX;
            } else {
                self.assignment[other as usize] = target_slot;
                self.occupant[target_slot as usize] = other;
            }
        }
        accept
    }
}

fn kind_pool(kind: ResourceKind) -> usize {
    match kind {
        ResourceKind::Clb => 0,
        ResourceKind::Dsp => 1,
        ResourceKind::Bram => 2,
        _ => unreachable!("only reconfigurable kinds are placed"),
    }
}

/// Place `netlist` into `window` on `grid`.
pub fn place(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    cfg: &PlacerConfig,
) -> Result<Placement, PlaceError> {
    let slots = slots_in_window(grid, window);

    // Capacity check per kind.
    let mut kind_slots: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, s) in slots.iter().enumerate() {
        kind_slots[kind_pool(s.kind)].push(i as u32);
    }
    let mut need = [0u64; 3];
    for c in &netlist.cells {
        need[kind_pool(cell_kind(c.kind))] += 1;
    }
    for (pool, kind) in [
        (0, ResourceKind::Clb),
        (1, ResourceKind::Dsp),
        (2, ResourceKind::Bram),
    ] {
        if need[pool] > kind_slots[pool].len() as u64 {
            return Err(PlaceError::Insufficient {
                kind,
                need: need[pool],
                have: kind_slots[pool].len() as u64,
            });
        }
    }

    // Precompute cell -> nets.
    let mut cell_nets: Vec<Vec<u32>> = vec![Vec::new(); netlist.cells.len()];
    for (i, net) in netlist.nets.iter().enumerate() {
        for &p in &net.pins {
            cell_nets[p as usize].push(i as u32);
        }
    }

    let run_chain = |chain_idx: u32| -> (f64, Vec<u32>) {
        // Greedy initial placement: cells in index order into slots in
        // order (chains perturb the start by rotating slot order).
        let mut assignment = vec![u32::MAX; netlist.cells.len()];
        let mut occupant = vec![u32::MAX; slots.len()];
        let mut cursors = [0usize; 3];
        let rot = chain_idx as usize;
        for (i, cell) in netlist.cells.iter().enumerate() {
            let pool = kind_pool(cell_kind(cell.kind));
            let list = &kind_slots[pool];
            let slot = list[(cursors[pool] + rot) % list.len()];
            // Find next free slot from the rotated cursor.
            let mut k = (cursors[pool] + rot) % list.len();
            let mut slot = slot;
            while occupant[slot as usize] != u32::MAX {
                k = (k + 1) % list.len();
                slot = list[k];
            }
            assignment[i] = slot;
            occupant[slot as usize] = i as u32;
            cursors[pool] += 1;
        }

        let mut chain = Chain {
            netlist,
            slots: &slots,
            assignment,
            occupant,
            cell_nets: &cell_nets,
            rng: cfg.seed ^ (u64::from(chain_idx).wrapping_mul(0xA24B_AED4_963E_E407)),
        };

        let n_cells = netlist.cells.len().max(1);
        let initial = chain.total_hpwl();
        let mut temp = (initial / netlist.nets.len().max(1) as f64) * cfg.initial_temp_frac + 1e-6;
        let total_moves = cfg.moves_per_cell as usize * n_cells;
        for m in 0..total_moves {
            chain.step(temp, &kind_slots);
            if m % n_cells == n_cells - 1 {
                temp *= cfg.cooling;
            }
        }
        (chain.total_hpwl(), chain.assignment)
    };

    let results: Vec<(f64, Vec<u32>)> = (0..cfg.chains.max(1))
        .into_par_iter()
        .map(run_chain)
        .collect();
    let (best_hpwl, best_assignment) = results
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("at least one chain");

    Ok(Placement {
        cell_slots: best_assignment,
        hpwl: (best_hpwl * 16.0) as u64,
        chains: cfg.chains.max(1),
    })
}

/// Compute the per-net bounding boxes of a placement, in (column, CLB-row)
/// units — consumed by the congestion router.
pub fn net_bboxes(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    placement: &Placement,
) -> Vec<(f64, f64, f64, f64)> {
    let slots = slots_in_window(grid, window);
    netlist
        .nets
        .iter()
        .map(|net| {
            let mut min_c = f64::MAX;
            let mut max_c = f64::MIN;
            let mut min_y = f64::MAX;
            let mut max_y = f64::MIN;
            for &p in &net.pins {
                let s = &slots[placement.cell_slots[p as usize] as usize];
                min_c = min_c.min(f64::from(s.col));
                max_c = max_c.max(f64::from(s.col));
                min_y = min_y.min(s.y_norm);
                max_y = max_y.max(s.y_norm);
            }
            (min_c, max_c, min_y, max_y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::xc5vlx110t;
    use fabric::{Family, WindowRequest};
    use synth::{PaperPrm, SynthReport};

    fn small_netlist() -> Netlist {
        let r = SynthReport::new("t", Family::Virtex5, 120, 100, 60, 0, 1);
        Netlist::from_report(&r, 5).unwrap()
    }

    #[test]
    fn placement_is_valid_and_deterministic() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        let cfg = PlacerConfig::fast(42);
        let a = place(&nl, &grid, &w, &cfg).unwrap();
        let b = place(&nl, &grid, &w, &cfg).unwrap();
        assert_eq!(a, b, "same seed, same result");

        // No slot hosts two cells.
        let mut used = a.cell_slots.clone();
        used.sort_unstable();
        let before = used.len();
        used.dedup();
        assert_eq!(used.len(), before, "slot double-booked");
    }

    #[test]
    fn annealing_improves_over_one_chain_worst_case() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        let lazy = place(
            &nl,
            &grid,
            &w,
            &PlacerConfig {
                chains: 1,
                moves_per_cell: 0,
                ..PlacerConfig::fast(7)
            },
        )
        .unwrap();
        let tuned = place(&nl, &grid, &w, &PlacerConfig::fast(7)).unwrap();
        assert!(
            tuned.hpwl <= lazy.hpwl,
            "annealing must not worsen: {} vs {}",
            tuned.hpwl,
            lazy.hpwl
        );
    }

    #[test]
    fn insufficient_capacity_is_reported() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        // 1 CLB column x 1 row = 20 CLBs x 8 slots = 160 pair slots; the
        // netlist below wants 500.
        let w = device.find_window(&WindowRequest::new(1, 0, 0, 1)).unwrap();
        let r = SynthReport::new("big", Family::Virtex5, 500, 400, 200, 0, 0);
        let nl = Netlist::from_report(&r, 1).unwrap();
        match place(&nl, &grid, &w, &PlacerConfig::fast(1)) {
            Err(PlaceError::Insufficient {
                kind: ResourceKind::Clb,
                need: 500,
                have: 160,
            }) => {}
            other => panic!("expected Insufficient, got {other:?}"),
        }
    }

    #[test]
    fn paper_prm_places_in_model_predicted_prr() {
        // SDRAM/Virtex-5 in its model PRR (H=1, W_CLB=3): 332 pair slots
        // into 480 — must place.
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let plan =
            prcost::plan_prr(&PaperPrm::Sdram.synth_report(Family::Virtex5), &device).unwrap();
        let nl = PaperPrm::Sdram.netlist(Family::Virtex5, 2);
        let p = place(&nl, &grid, &plan.window, &PlacerConfig::fast(3)).unwrap();
        assert_eq!(p.cell_slots.len(), nl.cells.len());
    }

    #[test]
    fn bboxes_cover_all_nets() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        let p = place(&nl, &grid, &w, &PlacerConfig::fast(9)).unwrap();
        let bb = net_bboxes(&nl, &grid, &w, &p);
        assert_eq!(bb.len(), nl.nets.len());
        for (min_c, max_c, min_y, max_y) in bb {
            assert!(min_c <= max_c && min_y <= max_y);
            assert!(min_c >= w.start_col as f64 && max_c < w.end_col() as f64);
        }
    }
}
