//! Simulated-annealing placement over the fabric site grid.
//!
//! Cells place onto *slots*: each CLB site offers `LUT_CLB` slice pair
//! slots, each DSP/BRAM site one slot. The objective is total net
//! half-perimeter wirelength (HPWL) in normalized fabric coordinates
//! (columns × CLB-row units), carried as **x16 fixed-point `u64`** — the
//! same scale `route.rs` uses for wirelength — so cost deltas are exactly
//! associative and the annealer can evaluate moves incrementally instead
//! of recomputing affected nets from their pins. Placement runs several
//! independent annealing chains in parallel with rayon — the canonical
//! data-parallel pattern — and returns the best chain's result.
//! Everything is deterministic in the configured seed.
//!
//! The hot path is allocation-free after warm-up: per-net bounding boxes
//! (with per-extreme pin counts, so removing a pin off a boundary knows
//! whether a rescan is needed) live in a [`PlaceScratch`] that callers can
//! carry across `place` calls, the affected-net set is deduplicated with
//! epoch stamps instead of a linear `seen` scan, and move proposals touch
//! a fixed two-slot cell array. The pre-optimization placer — f64 cost,
//! full recompute of every affected net twice per move, two `Vec`
//! allocations per proposal — is frozen verbatim in [`reference`] as the
//! benchmark baseline, and `reference::total_cost_x16` is the
//! full-recompute oracle the equivalence suite
//! (`crates/parflow/tests/place_props.rs`) checks the incremental cost
//! against at every accepted move.

use core::fmt;
use fabric::grid::SiteGrid;
use fabric::{ResourceKind, Window};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use synth::{CellKind, Netlist};

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// Not enough slots of one kind in the region.
    Insufficient {
        /// Resource kind that ran out.
        kind: ResourceKind,
        /// Slots needed.
        need: u64,
        /// Slots available in the region.
        have: u64,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::Insufficient { kind, need, have } => {
                write!(
                    f,
                    "region offers {have} {kind} slots but the netlist needs {need}"
                )
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Annealer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// Base RNG seed (chains derive their own seeds from it).
    pub seed: u64,
    /// Independent annealing chains run in parallel; best result wins.
    pub chains: u32,
    /// Annealing moves per cell per chain.
    pub moves_per_cell: u32,
    /// Initial temperature as a fraction of the initial mean net length.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor applied every `cells` moves.
    pub cooling: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            seed: 1,
            chains: 4,
            moves_per_cell: 24,
            initial_temp_frac: 0.5,
            cooling: 0.92,
        }
    }
}

impl PlacerConfig {
    /// A fast low-effort configuration for tests.
    pub fn fast(seed: u64) -> Self {
        PlacerConfig {
            seed,
            chains: 2,
            moves_per_cell: 6,
            ..PlacerConfig::default()
        }
    }
}

/// One placement slot: a position in normalized coordinates plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct Slot {
    pub(crate) kind: ResourceKind,
    /// Column index on the device.
    pub(crate) col: u32,
    /// Vertical position in CLB-row units (normalized across kinds).
    pub(crate) y_norm: f64,
}

impl Slot {
    /// Fixed-point vertical position for deterministic ordering.
    pub(crate) fn y_times_16(&self) -> u64 {
        (self.y_norm * 16.0) as u64
    }

    /// x16 fixed-point `(column, vertical)` position — the cost domain of
    /// the incremental annealer and of `reference::total_cost_x16`.
    pub(crate) fn pos_x16(&self) -> (u64, u64) {
        (u64::from(self.col) * 16, self.y_times_16())
    }
}

/// A completed placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Slot index per cell (into the region's slot list).
    pub cell_slots: Vec<u32>,
    /// Final total HPWL (in column/CLB-row units, scaled by 16 and
    /// truncated for determinism).
    pub hpwl: u64,
    /// Chains evaluated.
    pub chains: u32,
}

fn cell_kind(kind: CellKind) -> ResourceKind {
    match kind {
        CellKind::Slice { .. } => ResourceKind::Clb,
        CellKind::Dsp => ResourceKind::Dsp,
        CellKind::Bram => ResourceKind::Bram,
    }
}

/// Expand a window into placement slots.
pub(crate) fn slots_in_window(grid: &SiteGrid<'_>, window: &Window) -> Vec<Slot> {
    let params = grid.device().params();
    let mut slots = Vec::new();
    for site in grid.sites_in_window(window) {
        let per = params.per_column(site.kind).max(1);
        let y_norm = f64::from(site.y) * f64::from(params.clb_col) / f64::from(per);
        match site.kind {
            ResourceKind::Clb => {
                // One slice pair slot per LUT-FF pair the CLB can hold.
                for s in 0..params.lut_clb {
                    slots.push(Slot {
                        kind: ResourceKind::Clb,
                        col: site.col,
                        y_norm: y_norm + f64::from(s) / f64::from(params.lut_clb),
                    });
                }
            }
            kind => slots.push(Slot {
                kind,
                col: site.col,
                y_norm,
            }),
        }
    }
    slots
}

fn kind_pool(kind: ResourceKind) -> usize {
    match kind {
        ResourceKind::Clb => 0,
        ResourceKind::Dsp => 1,
        ResourceKind::Bram => 2,
        _ => unreachable!("only reconfigurable kinds are placed"),
    }
}

/// Per-net bounding box in x16 fixed point, with the number of pins
/// sitting on each extreme. The counts are what make removal incremental:
/// taking a pin off a boundary with other pins still on it leaves the
/// boundary where it is (decrement), while removing the last pin on a
/// boundary forces a rescan of the net's pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct NetBox {
    min_c: u64,
    max_c: u64,
    min_y: u64,
    max_y: u64,
    n_min_c: u32,
    n_max_c: u32,
    n_min_y: u32,
    n_max_y: u32,
}

impl NetBox {
    /// HPWL contribution in x16 fixed point.
    fn cost(&self) -> u64 {
        (self.max_c - self.min_c) + (self.max_y - self.min_y)
    }

    /// Box over `pins` under `assignment` (full rescan). Two branchless
    /// passes — min/max, then extreme counts — beat per-pin
    /// [`NetBox::insert`] calls, and rescans are the incremental placer's
    /// hottest path (every move of a 2-pin net's endpoint lands here).
    fn scan(pins: &[u32], assignment: &[u32], pos: &[(u64, u64)]) -> NetBox {
        let mut b = NetBox {
            min_c: u64::MAX,
            max_c: 0,
            min_y: u64::MAX,
            max_y: 0,
            n_min_c: 0,
            n_max_c: 0,
            n_min_y: 0,
            n_max_y: 0,
        };
        for &p in pins {
            let (c, y) = pos[assignment[p as usize] as usize];
            b.min_c = b.min_c.min(c);
            b.max_c = b.max_c.max(c);
            b.min_y = b.min_y.min(y);
            b.max_y = b.max_y.max(y);
        }
        for &p in pins {
            let (c, y) = pos[assignment[p as usize] as usize];
            b.n_min_c += u32::from(c == b.min_c);
            b.n_max_c += u32::from(c == b.max_c);
            b.n_min_y += u32::from(y == b.min_y);
            b.n_max_y += u32::from(y == b.max_y);
        }
        b
    }

    /// Add a pin at `(c, y)`, widening extremes or bumping their counts.
    fn insert(&mut self, c: u64, y: u64) {
        match c.cmp(&self.min_c) {
            std::cmp::Ordering::Less => {
                self.min_c = c;
                self.n_min_c = 1;
            }
            std::cmp::Ordering::Equal => self.n_min_c += 1,
            std::cmp::Ordering::Greater => {}
        }
        match c.cmp(&self.max_c) {
            std::cmp::Ordering::Greater => {
                self.max_c = c;
                self.n_max_c = 1;
            }
            std::cmp::Ordering::Equal => self.n_max_c += 1,
            std::cmp::Ordering::Less => {}
        }
        match y.cmp(&self.min_y) {
            std::cmp::Ordering::Less => {
                self.min_y = y;
                self.n_min_y = 1;
            }
            std::cmp::Ordering::Equal => self.n_min_y += 1,
            std::cmp::Ordering::Greater => {}
        }
        match y.cmp(&self.max_y) {
            std::cmp::Ordering::Greater => {
                self.max_y = y;
                self.n_max_y = 1;
            }
            std::cmp::Ordering::Equal => self.n_max_y += 1,
            std::cmp::Ordering::Less => {}
        }
    }

    /// Remove a pin at `(c, y)`. Returns `false` when the removal empties
    /// an extreme (the box would have to shrink inward) — the caller must
    /// rescan the net.
    fn remove(&mut self, c: u64, y: u64) -> bool {
        if c == self.min_c {
            if self.n_min_c <= 1 {
                return false;
            }
            self.n_min_c -= 1;
        }
        if c == self.max_c {
            if self.n_max_c <= 1 {
                return false;
            }
            self.n_max_c -= 1;
        }
        if y == self.min_y {
            if self.n_min_y <= 1 {
                return false;
            }
            self.n_min_y -= 1;
        }
        if y == self.max_y {
            if self.n_max_y <= 1 {
                return false;
            }
            self.n_max_y -= 1;
        }
        true
    }
}

/// Per-chain working state, reused across `place` calls.
#[derive(Debug, Clone, Default)]
struct ChainScratch {
    /// cell -> slot
    assignment: Vec<u32>,
    /// slot -> cell (u32::MAX = empty)
    occupant: Vec<u32>,
    /// Cached per-net bounding boxes.
    boxes: Vec<NetBox>,
    /// Boxes of the affected nets as the current proposal would leave
    /// them, committed on accept.
    staged: Vec<NetBox>,
    /// Net ids touched by the current proposal, epoch-deduplicated.
    affected: Vec<u32>,
    /// `net_epoch[n] == epoch` iff net `n` is already in `affected` (its
    /// position there is `net_slot[n]`).
    net_epoch: Vec<u32>,
    net_slot: Vec<u32>,
    /// Moved-pin multiplicities per affected net: `[cell pins, other pins]`.
    moved: Vec<[u32; 2]>,
    epoch: u32,
}

/// Reusable placer working memory: slot tables, the flattened cell→net
/// index and one [`ChainScratch`] per annealing chain. A fresh
/// `PlaceScratch::default()` is always valid — results never depend on
/// scratch contents, only allocation reuse does. Carry one per worker
/// across `place_with_scratch` calls (mirroring `SimScratch` and
/// `PlanScratch`) to keep batch flows allocation-free after warm-up.
#[derive(Debug, Clone, Default)]
pub struct PlaceScratch {
    slots: Vec<Slot>,
    /// x16 fixed-point position per slot.
    pos: Vec<(u64, u64)>,
    kind_slots: [Vec<u32>; 3],
    /// CSR cell→net adjacency: nets of cell `c` are
    /// `net_data[net_off[c]..net_off[c + 1]]` (one entry per pin, so a
    /// cell with several pins on one net appears with multiplicity).
    net_off: Vec<u32>,
    net_data: Vec<u32>,
    chains: Vec<ChainScratch>,
}

impl PlaceScratch {
    /// New empty scratch.
    pub fn new() -> Self {
        PlaceScratch::default()
    }
}

struct Chain<'a> {
    netlist: &'a Netlist,
    pos: &'a [(u64, u64)],
    net_off: &'a [u32],
    net_data: &'a [u32],
    s: &'a mut ChainScratch,
    /// Shared deterministic stream ([`prcost::rng::Rng`]) continued from
    /// the chain's raw per-chain state — bit-compatible with the private
    /// splitmix copy this replaced, so per-seed trajectories are
    /// unchanged.
    rng: prcost::rng::Rng,
    /// Running total HPWL in x16 fixed point, maintained incrementally.
    total: u64,
}

impl Chain<'_> {
    /// Uniform draw in `[0, n)` by widening multiply — unlike the seed's
    /// `rand() % n`, this has no modulo bias (for any `n`, buckets differ
    /// by at most one part in 2⁶⁴). Per-seed move sequences therefore
    /// differ from the frozen [`reference`] placer; the change is noted in
    /// the `BENCH_place.json` baseline.
    fn rand_below(&mut self, n: usize) -> usize {
        self.rng.rand_below(n)
    }

    /// Seed all net boxes and the running total from the current
    /// assignment (full scan; done once per chain).
    fn reset_boxes(&mut self) {
        self.s.boxes.clear();
        self.total = 0;
        for net in &self.netlist.nets {
            let b = NetBox::scan(&net.pins, &self.s.assignment, self.pos);
            self.total += b.cost();
            self.s.boxes.push(b);
        }
    }

    /// Register `net` as affected by the current proposal and charge one
    /// moved pin to `who` (0 = the picked cell, 1 = the displaced one).
    fn touch(&mut self, net: u32, who: usize) {
        let n = net as usize;
        if self.s.net_epoch[n] == self.s.epoch {
            self.s.moved[self.s.net_slot[n] as usize][who] += 1;
        } else {
            self.s.net_epoch[n] = self.s.epoch;
            self.s.net_slot[n] = self.s.affected.len() as u32;
            self.s.affected.push(net);
            let mut m = [0u32; 2];
            m[who] = 1;
            self.s.moved.push(m);
        }
    }

    /// Propose and maybe accept one move; returns accepted.
    ///
    /// The cost of a proposal is evaluated as an exact incremental delta:
    /// each affected net's cached box is updated by removing the moved
    /// pins' old positions and inserting the new ones (rescanning only
    /// when a boundary empties), and the per-net cost difference is
    /// accumulated in `i64`. Fixed-point arithmetic makes the delta
    /// exactly the difference of full recomputes, so `total` never
    /// drifts — `place_audited` checks this against
    /// `reference::total_cost_x16` at every accept.
    fn step(&mut self, temp: f64, kind_slots: &[Vec<u32>; 3]) -> bool {
        let n_cells = self.netlist.cells.len();
        let cell = self.rand_below(n_cells) as u32;
        let kind = cell_kind(self.netlist.cells[cell as usize].kind);
        let pool = &kind_slots[kind_pool(kind)];
        let target_slot = pool[self.rand_below(pool.len())];
        let cur_slot = self.s.assignment[cell as usize];
        if target_slot == cur_slot {
            return false;
        }
        let other = self.s.occupant[target_slot as usize];

        // Apply (swap or move) — the fixed two-cell affected set.
        self.s.assignment[cell as usize] = target_slot;
        self.s.occupant[target_slot as usize] = cell;
        if other == u32::MAX {
            self.s.occupant[cur_slot as usize] = u32::MAX;
        } else {
            self.s.assignment[other as usize] = cur_slot;
            self.s.occupant[cur_slot as usize] = other;
        }

        // Collect the affected nets (epoch-deduplicated, no allocation).
        self.s.epoch = self.s.epoch.wrapping_add(1);
        if self.s.epoch == u32::MAX {
            // About to collide with the never-touched sentinel: restamp.
            self.s.net_epoch.iter_mut().for_each(|e| *e = u32::MAX);
            self.s.epoch = 0;
        }
        self.s.affected.clear();
        self.s.moved.clear();
        self.s.staged.clear();
        let (c0, c1) = (
            self.net_off[cell as usize] as usize,
            self.net_off[cell as usize + 1] as usize,
        );
        for i in c0..c1 {
            let net = self.net_data[i];
            self.touch(net, 0);
        }
        if other != u32::MAX {
            let (o0, o1) = (
                self.net_off[other as usize] as usize,
                self.net_off[other as usize + 1] as usize,
            );
            for i in o0..o1 {
                let net = self.net_data[i];
                self.touch(net, 1);
            }
        }

        // Stage each affected net's new box and accumulate the delta.
        let (cell_old, cell_new) = (self.pos[cur_slot as usize], self.pos[target_slot as usize]);
        // The displaced cell moves the opposite way.
        let (other_old, other_new) = (cell_new, cell_old);
        let mut delta = 0i64;
        {
            let ChainScratch {
                affected,
                moved,
                staged,
                boxes,
                assignment,
                ..
            } = &mut *self.s;
            for (k, &net) in affected.iter().enumerate() {
                let old_box = boxes[net as usize];
                let pins = &self.netlist.nets[net as usize].pins;
                // Small nets rescan on virtually every move (each pin sits
                // on a boundary), so skip straight to the scan — it is as
                // cheap as one failed remove.
                let b = if pins.len() <= 3 {
                    NetBox::scan(pins, assignment, self.pos)
                } else {
                    let [m_cell, m_other] = moved[k];
                    let mut b = old_box;
                    let mut ok = true;
                    'update: {
                        for _ in 0..m_cell {
                            if !b.remove(cell_old.0, cell_old.1) {
                                ok = false;
                                break 'update;
                            }
                            b.insert(cell_new.0, cell_new.1);
                        }
                        for _ in 0..m_other {
                            if !b.remove(other_old.0, other_old.1) {
                                ok = false;
                                break 'update;
                            }
                            b.insert(other_new.0, other_new.1);
                        }
                    }
                    if ok {
                        b
                    } else {
                        NetBox::scan(pins, assignment, self.pos)
                    }
                };
                delta += b.cost() as i64 - old_box.cost() as i64;
                staged.push(b);
            }
        }

        let accept = delta <= 0 || {
            // Unclamped 53-bit uniform (not `Rng::unit`): the frozen
            // trajectory used the raw draw, and a zero here is harmless.
            let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            u < (-(delta as f64 / 16.0) / temp.max(1e-9)).exp()
        };
        if accept {
            // Commit the staged boxes and the exact delta.
            let ChainScratch {
                affected,
                staged,
                boxes,
                ..
            } = &mut *self.s;
            for (k, &net) in affected.iter().enumerate() {
                boxes[net as usize] = staged[k];
            }
            self.total = (self.total as i64 + delta) as u64;
        } else {
            // Revert the assignment; cached boxes were never touched.
            self.s.assignment[cell as usize] = cur_slot;
            self.s.occupant[cur_slot as usize] = cell;
            if other == u32::MAX {
                self.s.occupant[target_slot as usize] = u32::MAX;
            } else {
                self.s.assignment[other as usize] = target_slot;
                self.s.occupant[target_slot as usize] = other;
            }
        }
        accept
    }
}

/// Place `netlist` into `window` on `grid`.
///
/// Equivalent to [`place_with_scratch`] with a fresh [`PlaceScratch`];
/// batch callers should carry a scratch per worker instead.
pub fn place(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    cfg: &PlacerConfig,
) -> Result<Placement, PlaceError> {
    place_with_scratch(netlist, grid, window, cfg, &mut PlaceScratch::new())
}

/// [`place`] with caller-owned working memory.
pub fn place_with_scratch(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    cfg: &PlacerConfig,
    scratch: &mut PlaceScratch,
) -> Result<Placement, PlaceError> {
    place_impl(netlist, grid, window, cfg, scratch, false)
}

/// [`place_with_scratch`] that additionally recomputes the total cost from
/// scratch via [`reference::total_cost_x16`] after **every accepted move**
/// and panics on any divergence from the incrementally maintained total.
/// This is the equivalence harness driven by
/// `crates/parflow/tests/place_props.rs`; it is exposed (hidden) so the
/// suite exercises the exact production code path.
#[doc(hidden)]
pub fn place_audited(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    cfg: &PlacerConfig,
) -> Result<Placement, PlaceError> {
    place_impl(netlist, grid, window, cfg, &mut PlaceScratch::new(), true)
}

fn place_impl(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    cfg: &PlacerConfig,
    scratch: &mut PlaceScratch,
    audit: bool,
) -> Result<Placement, PlaceError> {
    scratch.slots.clear();
    scratch.slots.extend(slots_in_window(grid, window));
    let slots = &scratch.slots;
    scratch.pos.clear();
    scratch.pos.extend(slots.iter().map(Slot::pos_x16));

    // Capacity check per kind.
    for pool in &mut scratch.kind_slots {
        pool.clear();
    }
    for (i, s) in slots.iter().enumerate() {
        scratch.kind_slots[kind_pool(s.kind)].push(i as u32);
    }
    let mut need = [0u64; 3];
    for c in &netlist.cells {
        need[kind_pool(cell_kind(c.kind))] += 1;
    }
    for (pool, kind) in [
        (0, ResourceKind::Clb),
        (1, ResourceKind::Dsp),
        (2, ResourceKind::Bram),
    ] {
        if need[pool] > scratch.kind_slots[pool].len() as u64 {
            return Err(PlaceError::Insufficient {
                kind,
                need: need[pool],
                have: scratch.kind_slots[pool].len() as u64,
            });
        }
    }

    // Flattened cell -> nets adjacency (CSR), one entry per pin.
    let n_cells = netlist.cells.len();
    scratch.net_off.clear();
    scratch.net_off.resize(n_cells + 1, 0);
    for net in &netlist.nets {
        for &p in &net.pins {
            scratch.net_off[p as usize + 1] += 1;
        }
    }
    for i in 0..n_cells {
        scratch.net_off[i + 1] += scratch.net_off[i];
    }
    scratch
        .net_data
        .resize(scratch.net_off[n_cells] as usize, 0);
    {
        let mut cursor: Vec<u32> = scratch.net_off[..n_cells].to_vec();
        for (ni, net) in netlist.nets.iter().enumerate() {
            for &p in &net.pins {
                scratch.net_data[cursor[p as usize] as usize] = ni as u32;
                cursor[p as usize] += 1;
            }
        }
    }

    let n_chains = cfg.chains.max(1) as usize;
    scratch.chains.resize_with(n_chains, ChainScratch::default);

    let kind_slots = &scratch.kind_slots;
    let pos = &scratch.pos;
    let net_off = &scratch.net_off;
    let net_data = &scratch.net_data;
    let n_nets = netlist.nets.len();

    let run_chain = |chain_idx: usize, s: &mut ChainScratch| -> u64 {
        // Greedy initial placement: cells in index order into slots in
        // order (chains perturb the start by rotating slot order).
        s.assignment.clear();
        s.assignment.resize(n_cells, u32::MAX);
        s.occupant.clear();
        s.occupant.resize(slots.len(), u32::MAX);
        s.net_epoch.clear();
        s.net_epoch.resize(n_nets, u32::MAX);
        s.net_slot.clear();
        s.net_slot.resize(n_nets, 0);
        s.epoch = 0;
        let mut cursors = [0usize; 3];
        let rot = chain_idx;
        for (i, cell) in netlist.cells.iter().enumerate() {
            let pool = kind_pool(cell_kind(cell.kind));
            let list = &kind_slots[pool];
            // Find next free slot from the rotated cursor.
            let mut k = (cursors[pool] + rot) % list.len();
            let mut slot = list[k];
            while s.occupant[slot as usize] != u32::MAX {
                k = (k + 1) % list.len();
                slot = list[k];
            }
            s.assignment[i] = slot;
            s.occupant[slot as usize] = i as u32;
            cursors[pool] += 1;
        }

        let mut chain = Chain {
            netlist,
            pos,
            net_off,
            net_data,
            s,
            rng: prcost::rng::Rng::from_raw(
                cfg.seed ^ ((chain_idx as u64).wrapping_mul(0xA24B_AED4_963E_E407)),
            ),
            total: 0,
        };
        chain.reset_boxes();

        let denom = n_cells.max(1);
        let initial = chain.total as f64 / 16.0;
        let mut temp = (initial / n_nets.max(1) as f64) * cfg.initial_temp_frac + 1e-6;
        let total_moves = cfg.moves_per_cell as usize * n_cells;
        for m in 0..total_moves {
            let accepted = chain.step(temp, kind_slots);
            if audit && accepted {
                let full = reference::total_cost_x16(netlist, slots, &chain.s.assignment);
                assert_eq!(
                    chain.total, full,
                    "incremental cost diverged from full recompute at move {m}"
                );
            }
            if m % denom == denom - 1 {
                temp *= cfg.cooling;
            }
        }
        chain.total
    };

    let results: Vec<(usize, u64)> = scratch
        .chains
        .par_iter_mut()
        .enumerate()
        .map(|(idx, s)| (idx, run_chain(idx, s)))
        .collect();
    let &(best_idx, best_total) = results
        .iter()
        .min_by_key(|(idx, total)| (*total, *idx))
        .expect("at least one chain");

    Ok(Placement {
        cell_slots: scratch.chains[best_idx].assignment.clone(),
        hpwl: best_total,
        chains: cfg.chains.max(1),
    })
}

/// Compute the per-net bounding boxes of a placement, in (column, CLB-row)
/// units — consumed by the congestion router.
pub fn net_bboxes(
    netlist: &Netlist,
    grid: &SiteGrid<'_>,
    window: &Window,
    placement: &Placement,
) -> Vec<(f64, f64, f64, f64)> {
    let slots = slots_in_window(grid, window);
    netlist
        .nets
        .iter()
        .map(|net| {
            let mut min_c = f64::MAX;
            let mut max_c = f64::MIN;
            let mut min_y = f64::MAX;
            let mut max_y = f64::MIN;
            for &p in &net.pins {
                let s = &slots[placement.cell_slots[p as usize] as usize];
                min_c = min_c.min(f64::from(s.col));
                max_c = max_c.max(f64::from(s.col));
                min_y = min_y.min(s.y_norm);
                max_y = max_y.max(s.y_norm);
            }
            (min_c, max_c, min_y, max_y)
        })
        .collect()
}

pub mod reference {
    //! The seed placer, frozen verbatim as the benchmark baseline, plus
    //! the fixed-point full-recompute cost oracle.
    //!
    //! [`place_seed`] is the exact pre-optimization implementation: f64
    //! HPWL, `cost_of_cells` full recomputes of every affected net twice
    //! per move, a linear `seen.contains` net dedup, two `Vec`
    //! allocations per proposal, and the modulo-biased `rand() % n`
    //! draw. The live placer is benchmarked against it in
    //! `crates/bench/benches/place_incr.rs`.
    //!
    //! [`total_cost_x16`] recomputes a placement's total HPWL from pins
    //! in the live placer's x16 fixed-point domain; the equivalence suite
    //! asserts the incremental total equals it at every accepted move.

    use super::{cell_kind, kind_pool, slots_in_window, PlaceError, Placement, PlacerConfig, Slot};
    use fabric::grid::SiteGrid;
    use fabric::{ResourceKind, Window};
    use rayon::prelude::*;
    use synth::Netlist;

    /// Total HPWL of `assignment` in x16 fixed point, recomputed from
    /// every net's pins (the audit oracle for the incremental placer).
    pub(crate) fn total_cost_x16(netlist: &Netlist, slots: &[Slot], assignment: &[u32]) -> u64 {
        let mut total = 0u64;
        for net in &netlist.nets {
            let mut min_c = u64::MAX;
            let mut max_c = 0u64;
            let mut min_y = u64::MAX;
            let mut max_y = 0u64;
            for &p in &net.pins {
                let (c, y) = slots[assignment[p as usize] as usize].pos_x16();
                min_c = min_c.min(c);
                max_c = max_c.max(c);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            if min_c != u64::MAX {
                total += (max_c - min_c) + (max_y - min_y);
            }
        }
        total
    }

    /// Total x16 HPWL of a finished [`Placement`] for `netlist` placed in
    /// `window` — the public face of the oracle for tests and benches.
    pub fn placement_cost_x16(
        netlist: &Netlist,
        grid: &SiteGrid<'_>,
        window: &Window,
        placement: &Placement,
    ) -> u64 {
        let slots = slots_in_window(grid, window);
        total_cost_x16(netlist, &slots, &placement.cell_slots)
    }

    struct Chain<'a> {
        netlist: &'a Netlist,
        slots: &'a [Slot],
        /// cell -> slot
        assignment: Vec<u32>,
        /// slot -> cell (u32::MAX = empty)
        occupant: Vec<u32>,
        /// nets touching each cell
        cell_nets: &'a [Vec<u32>],
        rng: u64,
    }

    impl Chain<'_> {
        fn rand(&mut self) -> u64 {
            self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn rand_below(&mut self, n: usize) -> usize {
            (self.rand() % n.max(1) as u64) as usize
        }

        fn net_hpwl(&self, net: u32) -> f64 {
            let pins = &self.netlist.nets[net as usize].pins;
            let mut min_c = f64::MAX;
            let mut max_c = f64::MIN;
            let mut min_y = f64::MAX;
            let mut max_y = f64::MIN;
            for &p in pins {
                let s = &self.slots[self.assignment[p as usize] as usize];
                min_c = min_c.min(f64::from(s.col));
                max_c = max_c.max(f64::from(s.col));
                min_y = min_y.min(s.y_norm);
                max_y = max_y.max(s.y_norm);
            }
            (max_c - min_c) + (max_y - min_y)
        }

        fn cost_of_cells(&self, cells: &[u32]) -> f64 {
            let mut seen: Vec<u32> = Vec::with_capacity(8);
            let mut cost = 0.0;
            for &c in cells {
                for &net in &self.cell_nets[c as usize] {
                    if !seen.contains(&net) {
                        seen.push(net);
                        cost += self.net_hpwl(net);
                    }
                }
            }
            cost
        }

        fn total_hpwl(&self) -> f64 {
            (0..self.netlist.nets.len() as u32)
                .map(|n| self.net_hpwl(n))
                .sum()
        }

        /// Propose and maybe accept one move; returns accepted.
        fn step(&mut self, temp: f64, kind_slots: &[Vec<u32>]) -> bool {
            let n_cells = self.netlist.cells.len();
            let cell = self.rand_below(n_cells) as u32;
            let kind = cell_kind(self.netlist.cells[cell as usize].kind);
            let pool = &kind_slots[kind_pool(kind)];
            let target_slot = pool[self.rand_below(pool.len())];
            let cur_slot = self.assignment[cell as usize];
            if target_slot == cur_slot {
                return false;
            }
            let other = self.occupant[target_slot as usize];

            let affected: Vec<u32> = if other == u32::MAX {
                vec![cell]
            } else {
                vec![cell, other]
            };
            let before = self.cost_of_cells(&affected);

            // Apply (swap or move).
            self.assignment[cell as usize] = target_slot;
            self.occupant[target_slot as usize] = cell;
            if other == u32::MAX {
                self.occupant[cur_slot as usize] = u32::MAX;
            } else {
                self.assignment[other as usize] = cur_slot;
                self.occupant[cur_slot as usize] = other;
            }

            let after = self.cost_of_cells(&affected);
            let delta = after - before;
            let accept = delta <= 0.0 || {
                let u = (self.rand() >> 11) as f64 / (1u64 << 53) as f64;
                u < (-delta / temp.max(1e-9)).exp()
            };
            if !accept {
                // Revert.
                self.assignment[cell as usize] = cur_slot;
                self.occupant[cur_slot as usize] = cell;
                if other == u32::MAX {
                    self.occupant[target_slot as usize] = u32::MAX;
                } else {
                    self.assignment[other as usize] = target_slot;
                    self.occupant[target_slot as usize] = other;
                }
            }
            accept
        }
    }

    /// The frozen seed placer (see the module docs).
    pub fn place_seed(
        netlist: &Netlist,
        grid: &SiteGrid<'_>,
        window: &Window,
        cfg: &PlacerConfig,
    ) -> Result<Placement, PlaceError> {
        let slots = slots_in_window(grid, window);

        // Capacity check per kind.
        let mut kind_slots: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, s) in slots.iter().enumerate() {
            kind_slots[kind_pool(s.kind)].push(i as u32);
        }
        let mut need = [0u64; 3];
        for c in &netlist.cells {
            need[kind_pool(cell_kind(c.kind))] += 1;
        }
        for (pool, kind) in [
            (0, ResourceKind::Clb),
            (1, ResourceKind::Dsp),
            (2, ResourceKind::Bram),
        ] {
            if need[pool] > kind_slots[pool].len() as u64 {
                return Err(PlaceError::Insufficient {
                    kind,
                    need: need[pool],
                    have: kind_slots[pool].len() as u64,
                });
            }
        }

        // Precompute cell -> nets.
        let mut cell_nets: Vec<Vec<u32>> = vec![Vec::new(); netlist.cells.len()];
        for (i, net) in netlist.nets.iter().enumerate() {
            for &p in &net.pins {
                cell_nets[p as usize].push(i as u32);
            }
        }

        let run_chain = |chain_idx: u32| -> (f64, Vec<u32>) {
            // Greedy initial placement: cells in index order into slots in
            // order (chains perturb the start by rotating slot order).
            let mut assignment = vec![u32::MAX; netlist.cells.len()];
            let mut occupant = vec![u32::MAX; slots.len()];
            let mut cursors = [0usize; 3];
            let rot = chain_idx as usize;
            for (i, cell) in netlist.cells.iter().enumerate() {
                let pool = kind_pool(cell_kind(cell.kind));
                let list = &kind_slots[pool];
                let slot = list[(cursors[pool] + rot) % list.len()];
                // Find next free slot from the rotated cursor.
                let mut k = (cursors[pool] + rot) % list.len();
                let mut slot = slot;
                while occupant[slot as usize] != u32::MAX {
                    k = (k + 1) % list.len();
                    slot = list[k];
                }
                assignment[i] = slot;
                occupant[slot as usize] = i as u32;
                cursors[pool] += 1;
            }

            let mut chain = Chain {
                netlist,
                slots: &slots,
                assignment,
                occupant,
                cell_nets: &cell_nets,
                rng: cfg.seed ^ (u64::from(chain_idx).wrapping_mul(0xA24B_AED4_963E_E407)),
            };

            let n_cells = netlist.cells.len().max(1);
            let initial = chain.total_hpwl();
            let mut temp =
                (initial / netlist.nets.len().max(1) as f64) * cfg.initial_temp_frac + 1e-6;
            let total_moves = cfg.moves_per_cell as usize * n_cells;
            for m in 0..total_moves {
                chain.step(temp, &kind_slots);
                if m % n_cells == n_cells - 1 {
                    temp *= cfg.cooling;
                }
            }
            (chain.total_hpwl(), chain.assignment)
        };

        let results: Vec<(f64, Vec<u32>)> = (0..cfg.chains.max(1))
            .into_par_iter()
            .map(run_chain)
            .collect();
        let (best_hpwl, best_assignment) = results
            .into_iter()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least one chain");

        Ok(Placement {
            cell_slots: best_assignment,
            hpwl: (best_hpwl * 16.0) as u64,
            chains: cfg.chains.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::xc5vlx110t;
    use fabric::{Family, WindowRequest};
    use synth::{PaperPrm, SynthReport};

    fn small_netlist() -> Netlist {
        let r = SynthReport::new("t", Family::Virtex5, 120, 100, 60, 0, 1);
        Netlist::from_report(&r, 5).unwrap()
    }

    #[test]
    fn placement_is_valid_and_deterministic() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        let cfg = PlacerConfig::fast(42);
        let a = place(&nl, &grid, &w, &cfg).unwrap();
        let b = place(&nl, &grid, &w, &cfg).unwrap();
        assert_eq!(a, b, "same seed, same result");

        // No slot hosts two cells.
        let mut used = a.cell_slots.clone();
        used.sort_unstable();
        let before = used.len();
        used.dedup();
        assert_eq!(used.len(), before, "slot double-booked");
    }

    #[test]
    fn scratch_reuse_is_result_invariant() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        let cfg = PlacerConfig::fast(6);
        let mut scratch = PlaceScratch::new();
        let warm = place_with_scratch(&nl, &grid, &w, &cfg, &mut scratch).unwrap();
        // A second run with the now-dirty scratch must match a fresh one.
        let again = place_with_scratch(&nl, &grid, &w, &cfg, &mut scratch).unwrap();
        assert_eq!(warm, again);
        assert_eq!(warm, place(&nl, &grid, &w, &cfg).unwrap());
    }

    #[test]
    fn incremental_total_matches_full_recompute() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        // `place_audited` panics internally on any divergence.
        let p = place_audited(&nl, &grid, &w, &PlacerConfig::fast(11)).unwrap();
        assert_eq!(p.hpwl, reference::placement_cost_x16(&nl, &grid, &w, &p));
    }

    #[test]
    fn annealing_improves_over_one_chain_worst_case() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        let lazy = place(
            &nl,
            &grid,
            &w,
            &PlacerConfig {
                chains: 1,
                moves_per_cell: 0,
                ..PlacerConfig::fast(7)
            },
        )
        .unwrap();
        let tuned = place(&nl, &grid, &w, &PlacerConfig::fast(7)).unwrap();
        assert!(
            tuned.hpwl <= lazy.hpwl,
            "annealing must not worsen: {} vs {}",
            tuned.hpwl,
            lazy.hpwl
        );
    }

    #[test]
    fn insufficient_capacity_is_reported() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        // 1 CLB column x 1 row = 20 CLBs x 8 slots = 160 pair slots; the
        // netlist below wants 500.
        let w = device.find_window(&WindowRequest::new(1, 0, 0, 1)).unwrap();
        let r = SynthReport::new("big", Family::Virtex5, 500, 400, 200, 0, 0);
        let nl = Netlist::from_report(&r, 1).unwrap();
        match place(&nl, &grid, &w, &PlacerConfig::fast(1)) {
            Err(PlaceError::Insufficient {
                kind: ResourceKind::Clb,
                need: 500,
                have: 160,
            }) => {}
            other => panic!("expected Insufficient, got {other:?}"),
        }
    }

    #[test]
    fn seed_placer_reports_insufficient_capacity_too() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(1, 0, 0, 1)).unwrap();
        let r = SynthReport::new("big", Family::Virtex5, 500, 400, 200, 0, 0);
        let nl = Netlist::from_report(&r, 1).unwrap();
        assert!(matches!(
            reference::place_seed(&nl, &grid, &w, &PlacerConfig::fast(1)),
            Err(PlaceError::Insufficient { .. })
        ));
    }

    #[test]
    fn paper_prm_places_in_model_predicted_prr() {
        // SDRAM/Virtex-5 in its model PRR (H=1, W_CLB=3): 332 pair slots
        // into 480 — must place.
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let plan =
            prcost::plan_prr(&PaperPrm::Sdram.synth_report(Family::Virtex5), &device).unwrap();
        let nl = PaperPrm::Sdram.netlist(Family::Virtex5, 2);
        let p = place(&nl, &grid, &plan.window, &PlacerConfig::fast(3)).unwrap();
        assert_eq!(p.cell_slots.len(), nl.cells.len());
    }

    #[test]
    fn bboxes_cover_all_nets() {
        let device = xc5vlx110t();
        let grid = SiteGrid::new(&device);
        let w = device.find_window(&WindowRequest::new(3, 0, 1, 1)).unwrap();
        let nl = small_netlist();
        let p = place(&nl, &grid, &w, &PlacerConfig::fast(9)).unwrap();
        let bb = net_bboxes(&nl, &grid, &w, &p);
        assert_eq!(bb.len(), nl.nets.len());
        for (min_c, max_c, min_y, max_y) in bb {
            assert!(min_c <= max_c && min_y <= max_y);
            assert!(min_c >= w.start_col as f64 && max_c < w.end_col() as f64);
        }
    }
}
