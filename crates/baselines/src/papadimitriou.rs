//! Papadimitriou et al.'s storage-media reconfiguration-time model \[7\].
//!
//! The TRETS survey models PRR reconfiguration time as the bitstream read
//! from its storage medium plus the configuration-port transfer, with the
//! storage medium usually dominating. The paper under reproduction notes
//! the model "had a 30 % to 60 % error as compared to the measured
//! reconfiguration times" — [`PapadimitriouModel::error_bounds`] exposes
//! that band.

use bitstream::IcapModel;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Where the partial bitstream lives before reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageMedium {
    /// CompactFlash card through SystemACE (slow, common on dev boards).
    CompactFlash,
    /// On-chip BRAM staging (fast, capacity-limited).
    Bram,
    /// DDR SDRAM via DMA.
    DdrSdram,
    /// Linear/parallel flash.
    ParallelFlash,
}

impl StorageMedium {
    /// Sustained read throughput in bytes/second (order-of-magnitude
    /// values from the survey's measurements).
    pub fn read_bytes_per_sec(self) -> f64 {
        match self {
            StorageMedium::CompactFlash => 1.5e6,
            StorageMedium::Bram => 800.0e6,
            StorageMedium::DdrSdram => 200.0e6,
            StorageMedium::ParallelFlash => 20.0e6,
        }
    }

    /// All media, for sweeps.
    pub const ALL: [StorageMedium; 4] = [
        StorageMedium::CompactFlash,
        StorageMedium::Bram,
        StorageMedium::DdrSdram,
        StorageMedium::ParallelFlash,
    ];
}

/// The storage-media reconfiguration-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PapadimitriouModel {
    /// Bitstream storage medium.
    pub medium: StorageMedium,
    /// Configuration port.
    pub port: IcapModel,
    /// Whether the fetch and the port transfer are pipelined (overlap) or
    /// sequential.
    pub overlapped: bool,
}

impl PapadimitriouModel {
    /// Model with a DMA-fed Virtex-5 ICAP.
    pub fn new(medium: StorageMedium, overlapped: bool) -> Self {
        PapadimitriouModel {
            medium,
            port: IcapModel::V5_DMA,
            overlapped,
        }
    }

    /// Estimated reconfiguration time for a partial bitstream of `bytes`.
    pub fn estimate(&self, bytes: u64) -> Duration {
        let fetch = bytes as f64 / self.medium.read_bytes_per_sec();
        let transfer = bytes as f64 / self.port.effective_bytes_per_sec();
        let secs = if self.overlapped {
            fetch.max(transfer)
        } else {
            fetch + transfer
        };
        Duration::from_secs_f64(secs)
    }

    /// The survey's observed error band: the measured time lies within
    /// (estimate / (1 + 0.6), estimate / (1 - 0.6))-ish; the paper quotes
    /// 30–60 % error, so we report estimate x [0.4, 1.6].
    pub fn error_bounds(&self, bytes: u64) -> (Duration, Duration) {
        let est = self.estimate(bytes).as_secs_f64();
        (
            Duration::from_secs_f64(est * 0.4),
            Duration::from_secs_f64(est * 1.6),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_media_dominate() {
        let cf = PapadimitriouModel::new(StorageMedium::CompactFlash, false);
        let bram = PapadimitriouModel::new(StorageMedium::Bram, false);
        let bytes = 157_272; // MIPS/V5 partial bitstream
        assert!(cf.estimate(bytes) > bram.estimate(bytes) * 50);
    }

    #[test]
    fn overlap_never_slower() {
        for m in StorageMedium::ALL {
            let seq = PapadimitriouModel::new(m, false);
            let ovl = PapadimitriouModel::new(m, true);
            assert!(ovl.estimate(100_000) <= seq.estimate(100_000), "{m:?}");
        }
    }

    #[test]
    fn bounds_bracket_estimate() {
        let m = PapadimitriouModel::new(StorageMedium::DdrSdram, true);
        let (lo, hi) = m.error_bounds(83_040);
        let est = m.estimate(83_040);
        assert!(lo < est && est < hi);
    }

    #[test]
    fn linear_in_bytes() {
        let m = PapadimitriouModel::new(StorageMedium::ParallelFlash, false);
        let t1 = m.estimate(10_000).as_secs_f64();
        let t2 = m.estimate(20_000).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
