//! # `baselines` — prior-work cost models and naive sizing strategies
//!
//! The paper's related-work section (§II) surveys earlier PR cost models,
//! each covering only part of the design space. This crate implements them
//! as comparators:
//!
//! * [`papadimitriou`] — Papadimitriou, Dollas & Hauck's reconfiguration-
//!   time model parameterized by the bitstream storage medium \[7\]; the
//!   paper notes its 30–60 % estimation error, which we expose as bounds.
//! * [`claus`] — Claus et al.'s ICAP busy-factor throughput model \[1\]
//!   (valid only when the ICAP is the bottleneck).
//! * [`duhem`] — Duhem et al.'s FaRM controller model \[2\]: fixed controller
//!   overhead plus a compression-scaled transfer term.
//! * [`naive`] — naive PRR sizing strategies (full device height, single
//!   row, square-ish aspect) that a designer without the paper's model
//!   might pick; benches compare their bitstream/reconfiguration cost
//!   against the model-planned PRR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claus;
pub mod duhem;
pub mod naive;
pub mod papadimitriou;

pub use claus::ClausModel;
pub use duhem::FarmModel;
pub use naive::{naive_plan, NaiveStrategy};
pub use papadimitriou::{PapadimitriouModel, StorageMedium};
