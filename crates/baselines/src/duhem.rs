//! Duhem et al.'s FaRM controller model \[2\].
//!
//! FaRM (Fast Reconfiguration Manager) raises effective configuration
//! throughput with bitstream preloading and lightweight compression. Its
//! published cost model is a fixed controller overhead plus a transfer
//! term scaled by the compression ratio. The paper under reproduction
//! notes the model was never validated against measurements and covered
//! only one bitstream size — our benches sweep sizes to fill that gap.

use bitstream::IcapModel;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The FaRM reconfiguration-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FarmModel {
    /// Underlying port.
    pub port: IcapModel,
    /// Fixed controller setup overhead per reconfiguration.
    pub overhead: Duration,
    /// Compression ratio in `(0, 1]`: transferred bytes = `bytes * ratio`.
    pub compression_ratio: f64,
}

impl FarmModel {
    /// FaRM over a full-rate Virtex-5 ICAP with typical ~0.7 compression
    /// and 2 us setup.
    pub fn typical() -> Self {
        FarmModel {
            port: IcapModel::V5_DMA,
            overhead: Duration::from_micros(2),
            compression_ratio: 0.7,
        }
    }

    /// Custom model; the ratio is clamped into `(0, 1]`.
    pub fn new(port: IcapModel, overhead: Duration, compression_ratio: f64) -> Self {
        FarmModel {
            port,
            overhead,
            compression_ratio: compression_ratio.clamp(0.01, 1.0),
        }
    }

    /// Estimated reconfiguration time for `bytes`.
    pub fn estimate(&self, bytes: u64) -> Duration {
        let transferred = (bytes as f64 * self.compression_ratio).ceil();
        self.overhead + Duration::from_secs_f64(transferred / self.port.effective_bytes_per_sec())
    }

    /// Speedup over an uncompressed, overhead-free transfer of the same
    /// bitstream (asymptotic value `1 / compression_ratio`).
    pub fn speedup(&self, bytes: u64) -> f64 {
        let plain = self.port.transfer_time(bytes).as_secs_f64();
        plain / self.estimate(bytes).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_beats_plain_for_large_bitstreams() {
        let m = FarmModel::typical();
        assert!(m.speedup(1_000_000) > 1.2);
    }

    #[test]
    fn overhead_dominates_tiny_bitstreams() {
        let m = FarmModel::typical();
        // 100 bytes: transfer is ~0.25 us but overhead is 2 us.
        assert!(m.speedup(100) < 1.0, "speedup {}", m.speedup(100));
    }

    #[test]
    fn speedup_approaches_inverse_ratio() {
        let m = FarmModel::typical();
        let s = m.speedup(100_000_000);
        assert!((s - 1.0 / 0.7).abs() < 0.05, "s = {s}");
    }

    #[test]
    fn ratio_is_clamped() {
        let m = FarmModel::new(IcapModel::V5_DMA, Duration::ZERO, 0.0);
        assert!(m.compression_ratio > 0.0);
        let m = FarmModel::new(IcapModel::V5_DMA, Duration::ZERO, 5.0);
        assert_eq!(m.compression_ratio, 1.0);
    }
}
