//! Claus et al.'s ICAP busy-factor model \[1\].
//!
//! Reconfiguration time is modeled from the ICAP's ideal rate derated by a
//! measured *busy factor* — the fraction of cycles the port stalls waiting
//! for configuration data. The paper under reproduction points out the
//! model "is only valid if the ICAP is the limiting factor during
//! reconfiguration", which [`ClausModel::valid_for`] encodes.

use bitstream::IcapModel;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Busy-factor presets measured by Claus et al. per data-supply path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SupplyPath {
    /// Processor copies words to the ICAP (heavily stalled).
    CpuCopy,
    /// Bus-master DMA feeds the ICAP.
    BusMasterDma,
    /// Dedicated streaming controller (near-zero stalls).
    Streaming,
}

impl SupplyPath {
    /// Busy factor for the path.
    pub fn busy_factor(self) -> f64 {
        match self {
            SupplyPath::CpuCopy => 0.88,
            SupplyPath::BusMasterDma => 0.25,
            SupplyPath::Streaming => 0.02,
        }
    }
}

/// The busy-factor reconfiguration-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClausModel {
    /// Underlying port.
    pub port: IcapModel,
    /// Data-supply path determining the busy factor.
    pub path: SupplyPath,
}

impl ClausModel {
    /// Model over a full-width Virtex-5 ICAP.
    pub fn new(path: SupplyPath) -> Self {
        ClausModel {
            port: IcapModel::new(32, 100_000_000, path.busy_factor()),
            path,
        }
    }

    /// Estimated reconfiguration time for `bytes`.
    pub fn estimate(&self, bytes: u64) -> Duration {
        self.port.transfer_time(bytes)
    }

    /// The model's validity precondition: the ICAP must be the bottleneck,
    /// i.e. the supply path must deliver at least the port's effective
    /// rate. `supply_bytes_per_sec` is the measured upstream rate.
    pub fn valid_for(&self, supply_bytes_per_sec: f64) -> bool {
        supply_bytes_per_sec >= self.port.effective_bytes_per_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_copy_is_an_order_slower_than_streaming() {
        let cpu = ClausModel::new(SupplyPath::CpuCopy);
        let stream = ClausModel::new(SupplyPath::Streaming);
        let t_cpu = cpu.estimate(100_000).as_secs_f64();
        let t_stream = stream.estimate(100_000).as_secs_f64();
        assert!(t_cpu / t_stream > 7.0, "{t_cpu} vs {t_stream}");
    }

    #[test]
    fn validity_precondition() {
        let m = ClausModel::new(SupplyPath::Streaming);
        // Effective rate = 392 MB/s; a 100 MB/s DDR path starves it.
        assert!(!m.valid_for(100e6));
        assert!(m.valid_for(500e6));
    }

    #[test]
    fn estimates_scale_with_busy_factor() {
        let bytes = 83_040;
        let dma = ClausModel::new(SupplyPath::BusMasterDma)
            .estimate(bytes)
            .as_secs_f64();
        let stream = ClausModel::new(SupplyPath::Streaming)
            .estimate(bytes)
            .as_secs_f64();
        let ratio = dma / stream;
        let expected = (1.0 - 0.02) / (1.0 - 0.25);
        // Duration has nanosecond resolution, so allow ~1e-3 slack.
        assert!((ratio - expected).abs() < 1e-3, "{ratio} vs {expected}");
    }
}
