//! Naive PRR sizing strategies.
//!
//! What a designer without the paper's Fig. 1 search might do: fix the PRR
//! height a priori (full device height, or a single row, or the squarest
//! feasible aspect) and derive column counts from Eqs. 2–5 at that height.
//! Benches compare the resulting bitstream sizes and reconfiguration times
//! against the model-planned PRR, quantifying the cost of skipping the
//! search.

use fabric::Device;
use prcost::prr::{OrganizationError, PrrOrganization};
use prcost::{bitstream_size_bytes, CostError, PrrRequirements};
use serde::{Deserialize, Serialize};

/// A fixed-height sizing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NaiveStrategy {
    /// Use the full device height (maximal time-multiplexing headroom,
    /// maximal bitstream).
    FullHeight,
    /// Always use one fabric row (fails when a single-DSP-column device
    /// needs more DSP rows).
    SingleRow,
    /// Pick the feasible height whose footprint is closest to square
    /// (aspect ratio of H rows x W columns nearest 1 in CLB units).
    Squarish,
}

impl NaiveStrategy {
    /// All strategies.
    pub const ALL: [NaiveStrategy; 3] = [
        NaiveStrategy::FullHeight,
        NaiveStrategy::SingleRow,
        NaiveStrategy::Squarish,
    ];

    /// Strategy name for reports.
    pub fn name(self) -> &'static str {
        match self {
            NaiveStrategy::FullHeight => "full-height",
            NaiveStrategy::SingleRow => "single-row",
            NaiveStrategy::Squarish => "squarish",
        }
    }
}

/// Result of a naive plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaivePlan {
    /// Strategy used.
    pub strategy: NaiveStrategy,
    /// Chosen organization.
    pub organization: PrrOrganization,
    /// Predicted bitstream size (Eq. 18) for comparison with the model
    /// plan.
    pub bitstream_bytes: u64,
}

/// Size a PRR for `req` on `device` with a naive fixed-height strategy.
///
/// Physical placeability is still enforced (a plan nobody can floorplan is
/// useless as a baseline).
pub fn naive_plan(
    strategy: NaiveStrategy,
    req: &PrrRequirements,
    device: &Device,
) -> Result<NaivePlan, CostError> {
    let single_dsp = device.dsp_column_count() == 1;
    let feasible = |h: u32| -> Option<PrrOrganization> {
        match PrrOrganization::for_height(req, h, single_dsp) {
            Ok(org) if device.has_window(&org.window_request()) => Some(org),
            Ok(_) | Err(OrganizationError::SingleDspColumnNeedsRows { .. }) => None,
            Err(OrganizationError::EmptyRequirements) => None,
        }
    };

    let org = match strategy {
        NaiveStrategy::FullHeight => feasible(device.rows()),
        NaiveStrategy::SingleRow => feasible(1),
        NaiveStrategy::Squarish => {
            // Aspect = (H * CLB_col) rows of CLBs vs W columns; CLB columns
            // are ~arrays of 1x1 cells, so compare H*CLB_col against
            // W * aspect constant ~ W.
            let clb_col = f64::from(req.family.params().clb_col);
            (1..=device.rows()).filter_map(feasible).min_by(|a, b| {
                let ra = (f64::from(a.height) * clb_col / f64::from(a.width().max(1)))
                    .ln()
                    .abs();
                let rb = (f64::from(b.height) * clb_col / f64::from(b.width().max(1)))
                    .ln()
                    .abs();
                ra.total_cmp(&rb)
            })
        }
    };

    match org {
        Some(org) => Ok(NaivePlan {
            strategy,
            organization: org,
            bitstream_bytes: bitstream_size_bytes(&org),
        }),
        None => Err(CostError::NoFeasiblePlacement {
            device: device.name().to_string(),
            trace: prcost::SearchTrace {
                device: device.name().to_string(),
                candidates: vec![],
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::database::{xc5vlx110t, xc6vlx75t};
    use fabric::Family;
    use synth::PaperPrm;

    fn req(prm: PaperPrm, fam: Family) -> PrrRequirements {
        PrrRequirements::from_report(&prm.synth_report(fam))
    }

    /// The model's plan is never worse than any naive strategy — by
    /// construction it minimizes the predicted bitstream over all heights.
    #[test]
    fn model_plan_dominates_naive_strategies() {
        for (device, fam) in [
            (xc5vlx110t(), Family::Virtex5),
            (xc6vlx75t(), Family::Virtex6),
        ] {
            for prm in PaperPrm::ALL {
                let r = req(prm, fam);
                let model = prcost::search::plan_prr_from_requirements(&r, &device).unwrap();
                for strat in NaiveStrategy::ALL {
                    if let Ok(naive) = naive_plan(strat, &r, &device) {
                        assert!(
                            model.bitstream_bytes <= naive.bitstream_bytes,
                            "{prm:?}/{fam}/{}: model {} vs naive {}",
                            strat.name(),
                            model.bitstream_bytes,
                            naive.bitstream_bytes
                        );
                    }
                }
            }
        }
    }

    /// Full-height PRRs on the 8-row LX110T inflate the SDRAM bitstream by
    /// roughly the row count.
    #[test]
    fn full_height_inflation_factor() {
        let device = xc5vlx110t();
        let r = req(PaperPrm::Sdram, Family::Virtex5);
        let model = prcost::search::plan_prr_from_requirements(&r, &device).unwrap();
        let naive = naive_plan(NaiveStrategy::FullHeight, &r, &device).unwrap();
        let factor = naive.bitstream_bytes as f64 / model.bitstream_bytes as f64;
        assert!(factor > 2.0, "inflation factor {factor}");
    }

    /// Single-row sizing fails for FIR on the LX110T (needs 4 DSP rows
    /// from the single DSP column) — the model handles it, the naive
    /// strategy cannot.
    #[test]
    fn single_row_fails_where_eq4_binds() {
        let device = xc5vlx110t();
        let r = req(PaperPrm::Fir, Family::Virtex5);
        assert!(naive_plan(NaiveStrategy::SingleRow, &r, &device).is_err());
        assert!(prcost::search::plan_prr_from_requirements(&r, &device).is_ok());
    }

    #[test]
    fn squarish_picks_a_feasible_height() {
        let device = xc5vlx110t();
        let r = req(PaperPrm::Mips, Family::Virtex5);
        let plan = naive_plan(NaiveStrategy::Squarish, &r, &device).unwrap();
        assert!(plan.organization.height >= 1);
        assert!(device.has_window(&plan.organization.window_request()));
    }
}
