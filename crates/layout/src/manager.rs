//! The online layout manager: allocation bookkeeping over [`FreeSpace`]
//! with fragmentation-aware failure classification and `layout:*`
//! observability wired into [`prcost::Metrics`].

use crate::free::FreeSpace;
use bitstream::IcapModel;
use fabric::{Device, Window, WindowRequest};
use prcost::{bitstream_size_bytes, Metrics, PrrOrganization};
use std::collections::BTreeMap;

/// One live PRR placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Manager-assigned id, unique over the manager's lifetime.
    pub id: u64,
    /// Module configured in the region (shares partial bitstreams with
    /// equally named modules).
    pub module: String,
    /// The Eq. 2–6 organization the region was sized for.
    pub organization: PrrOrganization,
    /// The placed window.
    pub window: Window,
    /// Eq. 18 predicted partial-bitstream bytes for the organization —
    /// what one ICAP write (placement or relocation) costs.
    pub bitstream_bytes: u64,
}

/// ICAP price of relocating one live allocation once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveCost {
    /// Total bytes through the port: the Eq. 18 partial-bitstream write,
    /// plus `context_bytes` when priced preemption-aware.
    pub bytes: u64,
    /// Context save + restore bytes (zero when the module is treated as
    /// idle — a plain write-only HTR relocation).
    pub context_bytes: u64,
    /// `IcapModel::transfer_time(bytes)` in nanoseconds.
    pub transfer_ns: u64,
}

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The device cannot host the organization even when empty, or the
    /// free cells remaining are insufficient.
    Capacity,
    /// Total free resources suffice but no contiguous window fits —
    /// external fragmentation; defragmentation may recover it.
    Fragmentation,
}

/// Online layout manager for one device.
#[derive(Debug)]
pub struct LayoutManager {
    device: Device,
    free: FreeSpace,
    allocations: BTreeMap<u64, Allocation>,
    next_id: u64,
    icap: IcapModel,
    max_moves: usize,
}

impl LayoutManager {
    /// A manager over an empty `device`; `icap` prices relocations.
    pub fn new(device: &Device, icap: IcapModel) -> Self {
        LayoutManager {
            device: device.clone(),
            free: FreeSpace::new(device),
            allocations: BTreeMap::new(),
            next_id: 0,
            icap,
            max_moves: 4,
        }
    }

    /// Cap on relocations per defrag plan (default 4).
    pub fn set_max_moves(&mut self, max_moves: usize) {
        self.max_moves = max_moves;
    }

    pub(crate) fn max_moves(&self) -> usize {
        self.max_moves
    }

    /// The managed device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The ICAP port model used to price relocations.
    pub fn icap(&self) -> &IcapModel {
        &self.icap
    }

    /// The live free-space map.
    pub fn free_space(&self) -> &FreeSpace {
        &self.free
    }

    /// Live allocations in id order.
    pub fn allocations(&self) -> impl Iterator<Item = &Allocation> {
        self.allocations.values()
    }

    pub(crate) fn allocation_map(&self) -> &BTreeMap<u64, Allocation> {
        &self.allocations
    }

    /// One live allocation by id.
    pub fn allocation(&self, id: u64) -> Option<&Allocation> {
        self.allocations.get(&id)
    }

    /// Current external-fragmentation index of the free space.
    pub fn fragmentation_index(&self) -> f64 {
        self.free.fragmentation_index()
    }

    /// Price one relocation of `alloc`. A `running` module pays the
    /// context save + restore bytes (the paper's companion readback /
    /// `GRESTORE` machinery, [`prcost::context_breakdown`]) on top of the
    /// Eq. 18 partial-bitstream write; an idle module pays the write
    /// only. The cost depends only on the allocation's organization —
    /// every compatible target is the same FAR-rewritten replay — which
    /// is what makes per-module move costs exact lower bounds for the
    /// multi-move search.
    pub fn move_cost(&self, alloc: &Allocation, running: bool) -> MoveCost {
        let context_bytes = if running {
            let ctx = bitstream::context_cost(&alloc.organization);
            ctx.save_bytes() + ctx.restore_bytes()
        } else {
            0
        };
        let bytes = alloc.bitstream_bytes + context_bytes;
        MoveCost {
            bytes,
            context_bytes,
            transfer_ns: self.icap.transfer_time(bytes).as_nanos() as u64,
        }
    }

    /// Place `module` with organization `org` (leftmost-then-bottom first
    /// fit), or classify the failure. Wires `layout:allocs` /
    /// `layout:alloc_fail_capacity` / `layout:alloc_fail_fragmentation`
    /// counters into the global metrics.
    pub fn allocate(&mut self, module: &str, org: &PrrOrganization) -> Result<u64, AllocError> {
        let req = WindowRequest::new(org.clb_cols, org.dsp_cols, org.bram_cols, org.height);
        match self.free.find_window(&req) {
            Some(window) => {
                Metrics::global().incr_labeled("layout:allocs");
                Ok(self.place(module, org, window))
            }
            None => {
                let err = self.classify_failure(org);
                Metrics::global().incr_labeled(match err {
                    AllocError::Capacity => "layout:alloc_fail_capacity",
                    AllocError::Fragmentation => "layout:alloc_fail_fragmentation",
                });
                Err(err)
            }
        }
    }

    /// Record a placement into `window` (assumed free and matching `org`).
    pub(crate) fn place(&mut self, module: &str, org: &PrrOrganization, window: Window) -> u64 {
        self.free.allocate(&window);
        let id = self.next_id;
        self.next_id += 1;
        self.allocations.insert(
            id,
            Allocation {
                id,
                module: module.to_string(),
                organization: *org,
                window,
                bitstream_bytes: bitstream_size_bytes(org),
            },
        );
        id
    }

    /// Move one live allocation to `target` (free-space bookkeeping only;
    /// the ICAP charge is the caller's to account).
    pub(crate) fn move_allocation(&mut self, id: u64, target: Window) {
        let alloc = self.allocations.get_mut(&id).expect("live allocation");
        self.free.release(&alloc.window);
        self.free.allocate(&target);
        alloc.window = target;
    }

    /// Free the allocation and return it.
    pub fn release(&mut self, id: u64) -> Option<Allocation> {
        let alloc = self.allocations.remove(&id)?;
        self.free.release(&alloc.window);
        Metrics::global().incr_labeled("layout:releases");
        Some(alloc)
    }

    /// Fragmentation iff the empty device could host the organization and
    /// every resource kind still has enough free cells — the window is
    /// blocked purely by the free space's *shape*.
    fn classify_failure(&self, org: &PrrOrganization) -> AllocError {
        if org.height > self.free.rows()
            || !self
                .free
                .is_achievable(org.clb_cols, org.dsp_cols, org.bram_cols)
        {
            return AllocError::Capacity;
        }
        let h = u64::from(org.height);
        let need = [
            u64::from(org.clb_cols) * h,
            u64::from(org.dsp_cols) * h,
            u64::from(org.bram_cols) * h,
        ];
        let have = self.free.free_cells_by_kind();
        if need.iter().zip(&have).all(|(n, a)| n <= a) {
            AllocError::Fragmentation
        } else {
            AllocError::Capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{Family, ResourceKind::*};

    fn strip(width: u32) -> Device {
        Device::new("strip", Family::Virtex5, 1, vec![Clb; width as usize]).unwrap()
    }

    fn clb_org(cols: u32) -> PrrOrganization {
        PrrOrganization {
            family: Family::Virtex5,
            height: 1,
            clb_cols: cols,
            dsp_cols: 0,
            bram_cols: 0,
        }
    }

    #[test]
    fn failure_classification_separates_capacity_from_fragmentation() {
        let d = strip(8);
        let mut m = LayoutManager::new(&d, IcapModel::V5_DMA);
        let a = m.allocate("a", &clb_org(3)).unwrap();
        m.allocate("b", &clb_org(2)).unwrap();
        let c = m.allocate("c", &clb_org(3)).unwrap();
        // Full device: 4 columns is a capacity failure (only 0 free).
        assert_eq!(m.allocate("d", &clb_org(4)), Err(AllocError::Capacity));
        m.release(a);
        m.release(c);
        // 6 cells free in runs of 3+3: enough cells, no window — that is
        // fragmentation, and a 9-column ask is still capacity.
        assert_eq!(m.allocate("d", &clb_org(4)), Err(AllocError::Fragmentation));
        assert_eq!(m.allocate("e", &clb_org(9)), Err(AllocError::Capacity));
        assert!(m.fragmentation_index() > 0.0);
    }

    #[test]
    fn allocations_track_bitstream_bytes() {
        let d = strip(8);
        let mut m = LayoutManager::new(&d, IcapModel::V5_DMA);
        let org = clb_org(2);
        let id = m.allocate("m", &org).unwrap();
        assert_eq!(
            m.allocation(id).unwrap().bitstream_bytes,
            bitstream_size_bytes(&org)
        );
        assert_eq!(m.release(id).unwrap().module, "m");
        assert!(m.release(id).is_none());
    }
}
