//! Online layout management for hardware multitasking on a partially
//! reconfigurable fabric.
//!
//! The paper's cost models price *static* decisions: how a PRR is
//! organized (Eqs. 2–6), how many bytes its partial bitstream needs
//! (Eqs. 18–23) and how long the ICAP takes to push them. This crate
//! connects those ingredients into the *dynamic* setting the paper
//! targets — PRRs allocated and freed at runtime, the fabric
//! fragmenting — following the module-layout-defragmentation line of van
//! der Veen et al.:
//!
//! * [`FreeSpace`] — per-row maximal free-run tracking with a
//!   composition-indexed placement query ([`free`]);
//! * [`LayoutManager`] — allocation bookkeeping, capacity-versus-
//!   fragmentation failure classification, `layout:*` metrics
//!   ([`manager`]);
//! * [`DefragPolicy`]/[`DefragPlan`] — minimal relocation plans among
//!   `bitstream::relocate`-compatible windows, priced through
//!   [`bitstream::IcapModel::transfer_time`] ([`defrag`]);
//! * [`Defrag2Config`]/[`Defrag2Plan`] — parallel bounded-depth
//!   branch-and-bound over multi-move relocation *sequences* with
//!   incremental layout state and preemption-aware pricing
//!   ([`defrag2`]);
//! * [`simulate_layout`] — the dynamic-placement loss-system simulator,
//!   sharing one serialized ICAP between configurations and relocations
//!   ([`sim`]).

pub mod defrag;
pub mod defrag2;
pub mod free;
pub mod manager;
pub mod sim;

pub use defrag::{DefragPlan, DefragPolicy, RelocationMove};
pub use defrag2::{Defrag2Config, Defrag2Plan};
pub use free::{FreeSpace, NaiveFreeSpace};
pub use manager::{AllocError, Allocation, LayoutManager, MoveCost};
pub use sim::{simulate_layout, LayoutConfig, LayoutReport, RelocationEvent};
