//! `defrag2`: parallel bounded-depth branch-and-bound over relocation
//! *sequences* — the multi-move defragmentation planner.
//!
//! The PR-5 planner ([`crate::defrag`]) only considers *single-step*
//! relocation sets: every target must be free before the plan runs. Van
//! der Veen et al. ("Defragmenting the Module Layout of a Partially
//! Reconfigurable Device") show the real admission wins come from
//! multi-move *schedules*, where a later move lands in cells an earlier
//! move vacated. This module searches those schedules with the same
//! machinery that made `parflow::autofloorplan` fast:
//!
//! * **incremental layout state** — [`LayoutState`] overlays the
//!   [`FreeSpace`] per-row free runs; applying or undoing a move is two
//!   run splices and two hash XORs, never a clone down the tree;
//! * **Zobrist-style transposition table** — each (allocation, position)
//!   pair hashes to a derived 64-bit key; the layout hash is their XOR,
//!   so permuted move orders reaching the same layout collide in the
//!   per-rectangle visited set and are pruned. Pruning is exact: a
//!   layout determines which movers have moved (a moved blocker never
//!   overlaps the admit rectangle again), hence the remaining depth, and
//!   feasibility is a function of the layout alone;
//! * **exact per-module lower bounds** — an HTR relocation is the same
//!   FAR-rewritten replay at every compatible target, so one move of one
//!   module costs `IcapModel::transfer_time` over its bytes *wherever*
//!   it lands. Every blocker of an admit rectangle must move exactly
//!   once, so a rectangle's whole-sequence cost is known *before* the
//!   search: the suffix lower bound is exact, and branch-and-bound
//!   collapses to pruning entire rectangles against the incumbent plus a
//!   feasibility-only descent inside each rectangle;
//! * **first-level rayon fan-out with a packed atomic incumbent** — the
//!   candidate admit rectangles fan out over rayon, sharing the best
//!   known `(cost, moves, rectangle index)` packed into one `AtomicU64`
//!   ([`pack_bound`], the PR-3 trick). Workers prune with `>=` against
//!   the bound; packs are unique per rectangle, so the depth-first
//!   reduction reproduces the serial tie-break exactly
//!   ([`plan_serial`] is the identity oracle).
//!
//! **Documented tie-break**: minimise total move cost (ns), then move
//! count, then the admit-rectangle enumeration order (candidate starts
//! ascending, base row ascending), then the first feasible sequence in
//! canonical descent order (movers by ascending allocation id, targets
//! leftmost-then-bottom). [`reference`] freezes an exhaustive
//! clone-based enumeration of the same plan space as the equivalence
//! oracle.
//!
//! Moves are priced *preemption-aware* by default: a live module is
//! running, so relocating it pays context save + restore bytes
//! ([`prcost::context_breakdown`]) on top of the Eq. 18 write
//! ([`LayoutManager::move_cost`]).

use crate::defrag::RelocationMove;
use crate::free::FreeSpace;
use crate::manager::{Allocation, LayoutManager, MoveCost};
use fabric::{ColumnKind, Window};
use prcost::{Metrics, PrrOrganization};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Hard cap on sequence depth (the paper-scale regime; deeper searches
/// lose to the admission they were meant to enable).
pub const MAX_DEPTH: u32 = 4;

/// Multi-move search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Defrag2Config {
    /// Maximum moves per plan, clamped to [`MAX_DEPTH`]; 0 disables the
    /// search entirely.
    pub depth: u32,
    /// Price moves preemption-aware: live modules are running, so each
    /// move pays context save + restore bytes on top of the bitstream
    /// write. `false` prices write-only (idle modules).
    pub context_aware: bool,
    /// Deterministic per-rectangle node budget: a rectangle whose
    /// feasibility descent exceeds it is abandoned (same outcome serial
    /// or parallel). The default is far above anything the depth-capped
    /// tree reaches on real devices.
    pub node_budget: u64,
}

impl Default for Defrag2Config {
    fn default() -> Self {
        Defrag2Config {
            depth: 3,
            context_aware: true,
            node_budget: 100_000,
        }
    }
}

/// A validated, costed multi-move defragmentation plan. Unlike
/// [`crate::DefragPlan`], `moves` is an *ordered sequence*: each move's
/// target is free when its turn comes, possibly only because an earlier
/// move vacated it.
#[derive(Debug, Clone, PartialEq)]
pub struct Defrag2Plan {
    /// Relocations in execution order.
    pub moves: Vec<RelocationMove>,
    /// The window freed for the failed organization once moves complete.
    pub admit: Window,
    /// Total ICAP time of all moves, nanoseconds.
    pub total_move_ns: u64,
    /// Total bytes replayed by all moves (bitstream + context).
    pub total_move_bytes: u64,
    /// Context save + restore bytes included in `total_move_bytes`.
    pub total_context_bytes: u64,
    /// Search nodes expanded (diagnostic).
    pub nodes: u64,
}

/// splitmix64 finalizer — the repo's standard deterministic mixer.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Zobrist-style key of one (allocation, position) pair: derived (not
/// tabulated) so no per-device key table is needed, deterministic across
/// runs and threads.
fn zkey(id: u64, start_col: usize, row: u32) -> u64 {
    splitmix64(
        splitmix64(splitmix64(id ^ 0xa076_1d64_78bd_642f) ^ start_col as u64) ^ u64::from(row),
    )
}

/// A rectangle in span form (no `columns` vector to clone).
#[derive(Debug, Clone, Copy)]
struct SpanRect {
    start: usize,
    end: usize,
    row: u32,
    top: u32,
}

impl SpanRect {
    fn of(w: &Window) -> Self {
        SpanRect {
            start: w.start_col,
            end: w.end_col(),
            row: w.row,
            top: w.top_row(),
        }
    }

    fn overlaps(&self, start: usize, end: usize, row: u32, top: u32) -> bool {
        self.start < end && start < self.end && self.row <= top && row <= self.top
    }
}

/// One allocation that must vacate a candidate admit rectangle.
struct Mover<'a> {
    alloc: &'a Allocation,
    cost: MoveCost,
}

/// One candidate admit rectangle with its blockers and exact sequence
/// cost (each blocker moves exactly once at a position-independent
/// price).
struct RectCand<'a> {
    admit: SpanRect,
    movers: Vec<Mover<'a>>,
    cost: u64,
}

/// Incremental search state: the per-row free runs (copied once per
/// rectangle, then mutated by apply/undo — never cloned down the tree)
/// plus the XOR layout hash over the movers' current positions.
struct LayoutState {
    runs: Vec<Vec<(usize, usize)>>,
    hash: u64,
}

impl LayoutState {
    fn new(free: &FreeSpace, movers: &[Mover<'_>]) -> Self {
        let mut hash = 0u64;
        for m in movers {
            hash ^= zkey(m.alloc.id, m.alloc.window.start_col, m.alloc.window.row);
        }
        LayoutState {
            runs: free.runs().to_vec(),
            hash,
        }
    }

    /// Whether every cell of the rectangle is currently free (same run
    /// probe as [`FreeSpace::is_free`]).
    fn is_free(&self, start_col: usize, width: usize, row: u32, height: u32) -> bool {
        let end = start_col + width;
        (row..row + height).all(|r| {
            let runs = &self.runs[(r - 1) as usize];
            let i = runs.partition_point(|&(s, _)| s <= start_col);
            i > 0 && runs[i - 1].1 >= end
        })
    }

    /// Apply one move of mover `m` from its current span to `(to_start,
    /// to_row)`: two run splices per row plus two hash XORs.
    fn apply(&mut self, m: &Mover<'_>, from: SpanRect, to_start: usize, to_row: u32) {
        let w = from.end - from.start;
        let h = from.top - from.row + 1;
        for r in to_row..to_row + h {
            crate::free::carve_run(&mut self.runs[(r - 1) as usize], to_start, to_start + w);
        }
        for r in from.row..from.row + h {
            crate::free::merge_run(&mut self.runs[(r - 1) as usize], from.start, from.end);
        }
        self.hash ^= zkey(m.alloc.id, from.start, from.row) ^ zkey(m.alloc.id, to_start, to_row);
    }

    /// Exact inverse of [`LayoutState::apply`].
    fn undo(&mut self, m: &Mover<'_>, from: SpanRect, to_start: usize, to_row: u32) {
        let w = from.end - from.start;
        let h = from.top - from.row + 1;
        for r in from.row..from.row + h {
            crate::free::carve_run(&mut self.runs[(r - 1) as usize], from.start, from.end);
        }
        for r in to_row..to_row + h {
            crate::free::merge_run(&mut self.runs[(r - 1) as usize], to_start, to_start + w);
        }
        self.hash ^= zkey(m.alloc.id, from.start, from.row) ^ zkey(m.alloc.id, to_start, to_row);
    }
}

/// Canonical target enumeration for one mover: compatible column spans
/// ascending, base rows ascending, currently free, disjoint from the
/// admit rectangle. Shared (by specification) with the frozen oracle.
fn targets_into(
    columns: &[ColumnKind],
    rows: u32,
    state: &LayoutState,
    admit: &SpanRect,
    mover: &Mover<'_>,
    out: &mut Vec<(usize, u32)>,
) {
    out.clear();
    let want = &mover.alloc.window.columns[..];
    let bw = want.len();
    let bh = mover.alloc.window.height;
    for start in 0..=columns.len().saturating_sub(bw) {
        if &columns[start..start + bw] != want {
            continue;
        }
        for row in 1..=rows - bh + 1 {
            if !state.is_free(start, bw, row, bh) {
                continue;
            }
            if admit.overlaps(start, start + bw, row, row + bh - 1) {
                continue;
            }
            out.push((start, row));
        }
    }
}

/// Depth-first feasibility descent inside one rectangle: find the first
/// (in canonical order) sequence of single moves taking every mover out
/// of the admit rectangle. The visited set prunes permuted move orders
/// reaching the same layout; a pruned layout was fully explored and
/// failed, so skipping it never changes the first success.
/// A complete move sequence: `(mover index, target start col, target row)`
/// per move, in execution order.
type Seq = Vec<(usize, usize, u32)>;

#[allow(clippy::too_many_arguments)]
fn descend(
    columns: &[ColumnKind],
    rows: u32,
    admit: &SpanRect,
    movers: &[Mover<'_>],
    state: &mut LayoutState,
    visited: &mut HashSet<u64>,
    moved: u32,
    seq: &mut Seq,
    nodes: &mut u64,
    budget: u64,
) -> bool {
    if *nodes >= budget {
        return false;
    }
    *nodes += 1;
    if moved.count_ones() as usize == movers.len() {
        return true;
    }
    let mut targets = Vec::new();
    for (mi, mover) in movers.iter().enumerate() {
        if moved & (1 << mi) != 0 {
            continue;
        }
        let from = SpanRect::of(&mover.alloc.window);
        targets_into(columns, rows, state, admit, mover, &mut targets);
        for &(to_start, to_row) in &targets {
            state.apply(mover, from, to_start, to_row);
            seq.push((mi, to_start, to_row));
            if visited.insert(state.hash)
                && descend(
                    columns,
                    rows,
                    admit,
                    movers,
                    state,
                    visited,
                    moved | (1 << mi),
                    seq,
                    nodes,
                    budget,
                )
            {
                return true;
            }
            seq.pop();
            state.undo(mover, from, to_start, to_row);
        }
    }
    false
}

/// Enumerate candidate admit rectangles (candidate starts ascending,
/// base rows ascending — the tie-break order) with their blockers and
/// exact sequence costs. Rectangles with more blockers than `depth` are
/// unreachable and dropped here.
fn rect_candidates<'a>(
    mgr: &'a LayoutManager,
    org: &PrrOrganization,
    depth: usize,
    context_aware: bool,
) -> Vec<RectCand<'a>> {
    let free = mgr.free_space();
    let width = org.width() as usize;
    let mut rects = Vec::new();
    if width == 0 || org.height < 1 || org.height > free.rows() {
        return rects;
    }
    let allocs: Vec<&Allocation> = mgr.allocation_map().values().collect();
    let costs: Vec<MoveCost> = allocs
        .iter()
        .map(|a| mgr.move_cost(a, context_aware))
        .collect();
    for &start in free.candidate_starts(org.clb_cols, org.dsp_cols, org.bram_cols) {
        let start = start as usize;
        for row in 1..=free.rows() - org.height + 1 {
            let admit = SpanRect {
                start,
                end: start + width,
                row,
                top: row + org.height - 1,
            };
            let movers: Vec<Mover<'a>> = allocs
                .iter()
                .zip(&costs)
                .filter(|(a, _)| {
                    let w = &a.window;
                    admit.overlaps(w.start_col, w.end_col(), w.row, w.top_row())
                })
                .map(|(a, &cost)| Mover { alloc: a, cost })
                .collect();
            if movers.len() > depth {
                continue;
            }
            let cost = movers.iter().map(|m| m.cost.transfer_ns).sum();
            rects.push(RectCand {
                admit,
                movers,
                cost,
            });
        }
    }
    rects
}

/// Bits for the move count and rectangle index in the packed bound.
const MOVES_BITS: u32 = 4;
const RECT_BITS: u32 = 20;

/// Pack an incumbent `(cost, moves, rectangle index)` into one `u64`,
/// ordered lexicographically. Packs are unique per rectangle, so `>=`
/// pruning against the shared bound can never cut the rectangle the
/// serial scan would have kept (same trick as `parflow::pack_bound`,
/// with the branch index extended by the move count).
fn pack_bound(cost: u64, moves: usize, rect: usize) -> u64 {
    debug_assert!(cost < 1 << (u64::BITS - MOVES_BITS - RECT_BITS));
    debug_assert!(moves < 1 << MOVES_BITS);
    debug_assert!(rect < 1 << RECT_BITS);
    (cost << (MOVES_BITS + RECT_BITS)) | ((moves as u64) << RECT_BITS) | rect as u64
}

/// Run the feasibility descent for one rectangle; returns the canonical
/// first sequence if one exists.
fn solve_rect(
    columns: &[ColumnKind],
    rows: u32,
    free: &FreeSpace,
    rect: &RectCand<'_>,
    budget: u64,
    nodes: &mut u64,
) -> Option<Seq> {
    let mut state = LayoutState::new(free, &rect.movers);
    let mut visited = HashSet::new();
    let mut seq = Vec::with_capacity(rect.movers.len());
    if descend(
        columns,
        rows,
        &rect.admit,
        &rect.movers,
        &mut state,
        &mut visited,
        0,
        &mut seq,
        nodes,
        budget,
    ) {
        Some(seq)
    } else {
        None
    }
}

/// Materialise the winning rectangle + sequence into a plan.
fn materialize(
    mgr: &LayoutManager,
    rect: &RectCand<'_>,
    seq: &[(usize, usize, u32)],
    nodes: u64,
) -> Defrag2Plan {
    let columns = mgr.device().columns();
    let moves: Vec<RelocationMove> = seq
        .iter()
        .map(|&(mi, to_start, to_row)| {
            let m = &rect.movers[mi];
            let from = m.alloc.window.clone();
            let to = Window {
                start_col: to_start,
                width: from.width,
                row: to_row,
                height: from.height,
                columns: from.columns.clone(),
            };
            debug_assert!(bitstream::compatible(&from, &to));
            RelocationMove {
                id: m.alloc.id,
                from,
                to,
                bytes: m.cost.bytes,
                context_bytes: m.cost.context_bytes,
                transfer_ns: m.cost.transfer_ns,
            }
        })
        .collect();
    let admit = Window {
        start_col: rect.admit.start,
        width: (rect.admit.end - rect.admit.start) as u32,
        row: rect.admit.row,
        height: rect.admit.top - rect.admit.row + 1,
        columns: columns[rect.admit.start..rect.admit.end].to_vec(),
    };
    Defrag2Plan {
        total_move_ns: moves.iter().map(|m| m.transfer_ns).sum(),
        total_move_bytes: moves.iter().map(|m| m.bytes).sum(),
        total_context_bytes: moves.iter().map(|m| m.context_bytes).sum(),
        moves,
        admit,
        nodes,
    }
}

/// Serial bounded-depth multi-move search: rectangles in enumeration
/// order, incumbent pruning on `(cost, moves, index)`. The parallel
/// search is property-tested identical to this.
pub fn plan_serial(
    mgr: &LayoutManager,
    org: &PrrOrganization,
    config: &Defrag2Config,
) -> Option<Defrag2Plan> {
    let depth = config.depth.min(MAX_DEPTH) as usize;
    if config.depth == 0 {
        return None;
    }
    let rects = rect_candidates(mgr, org, depth, config.context_aware);
    let columns = mgr.device().columns();
    let free = mgr.free_space();
    let mut nodes = 0u64;
    let mut best: Option<(u64, usize, usize, Seq)> = None;
    for (idx, rect) in rects.iter().enumerate() {
        if let Some((bc, bm, _, _)) = &best {
            if (rect.cost, rect.movers.len()) >= (*bc, *bm) {
                continue;
            }
        }
        if let Some(seq) = solve_rect(
            columns,
            free.rows(),
            free,
            rect,
            config.node_budget,
            &mut nodes,
        ) {
            best = Some((rect.cost, rect.movers.len(), idx, seq));
        }
    }
    best.map(|(_, _, idx, seq)| materialize(mgr, &rects[idx], &seq, nodes))
}

/// Parallel bounded-depth multi-move search: first-level rayon fan-out
/// over the candidate admit rectangles with the incumbent shared through
/// a packed `AtomicU64`. Identical result to [`plan_serial`] (packs are
/// unique per rectangle, so the reduction has no ties to break).
pub fn plan(
    mgr: &LayoutManager,
    org: &PrrOrganization,
    config: &Defrag2Config,
) -> Option<Defrag2Plan> {
    let depth = config.depth.min(MAX_DEPTH) as usize;
    if config.depth == 0 {
        return None;
    }
    let rects = rect_candidates(mgr, org, depth, config.context_aware);
    if rects.len() >= 1 << RECT_BITS
        || rects
            .iter()
            .any(|r| r.cost >= 1 << (u64::BITS - MOVES_BITS - RECT_BITS))
    {
        // Too wide/expensive for the packed bound (never seen on real
        // devices) — the serial scan is the defined behaviour anyway.
        return plan_serial(mgr, org, config);
    }
    let columns = mgr.device().columns();
    let free = mgr.free_space();
    let bound = AtomicU64::new(u64::MAX);
    let total_nodes = AtomicU64::new(0);
    let solved: Vec<Option<(usize, Seq)>> = rects
        .par_iter()
        .enumerate()
        .map(|(idx, rect)| {
            let lb = pack_bound(rect.cost, rect.movers.len(), idx);
            if lb >= bound.load(Ordering::Relaxed) {
                return None;
            }
            let mut nodes = 0u64;
            let seq = solve_rect(
                columns,
                free.rows(),
                free,
                rect,
                config.node_budget,
                &mut nodes,
            );
            total_nodes.fetch_add(nodes, Ordering::Relaxed);
            seq.map(|s| {
                bound.fetch_min(lb, Ordering::Relaxed);
                (idx, s)
            })
        })
        .collect();
    // The globally best rectangle can never be pruned (pruning needs a
    // strictly smaller completed pack), so the minimum over whatever ran
    // is deterministic.
    let best = solved
        .into_iter()
        .flatten()
        .min_by_key(|(idx, seq)| pack_bound(rects[*idx].cost, seq.len(), *idx));
    best.map(|(idx, seq)| materialize(mgr, &rects[idx], &seq, total_nodes.load(Ordering::Relaxed)))
}

impl LayoutManager {
    /// Plan a bounded-depth multi-move relocation sequence freeing a
    /// window for `org`, or `None` when no sequence within
    /// `config.depth` moves exists. See the [module docs](self) for the
    /// search machinery and the documented tie-break.
    pub fn plan_defrag2(
        &self,
        org: &PrrOrganization,
        config: &Defrag2Config,
    ) -> Option<Defrag2Plan> {
        let started = Instant::now();
        let plan = plan(self, org, config);
        Metrics::global().record_stage("layout:defrag2_plan", started.elapsed());
        if plan.is_some() {
            Metrics::global().incr_labeled("layout:defrag2_plans");
        }
        plan
    }

    /// Execute a multi-move plan *in order*: each move's target is free
    /// at its turn (debug-asserted), possibly only because an earlier
    /// move vacated it. Bumps the `layout:*` relocation counters; ICAP
    /// time accounting is the caller's (the simulator serializes moves
    /// through the port).
    pub fn execute_defrag2(&mut self, plan: &Defrag2Plan) {
        for mv in &plan.moves {
            debug_assert!(bitstream::compatible(&mv.from, &mv.to));
            debug_assert!(
                self.free_space().is_free(
                    mv.to.start_col,
                    mv.to.width as usize,
                    mv.to.row,
                    mv.to.height
                ),
                "sequence move target not free at its turn"
            );
            self.move_allocation(mv.id, mv.to.clone());
        }
        let m = Metrics::global();
        m.incr_labeled("layout:defrag2_executed");
        m.add_labeled("layout:relocations", plan.moves.len() as u64);
        m.add_labeled("layout:relocated_bytes", plan.total_move_bytes);
        m.add_labeled("layout:context_bytes", plan.total_context_bytes);
    }
}

pub mod reference {
    //! Frozen exhaustive-enumeration oracle for the multi-move search —
    //! the *specification* of the plan space and tie-break, kept naive
    //! on purpose: occupancy-grid state ([`NaiveFreeSpace`]), full
    //! enumeration of every sequence (no transposition table, no lower
    //! bounds, no incumbent pruning across rectangles beyond strict
    //! improvement, no parallelism), per-sequence cost summation (it
    //! does not assume position-independent move costs — it verifies
    //! them). Do not optimize; the equivalence property suite pins
    //! [`super::plan`] and [`super::plan_serial`] against it at small
    //! depths.

    use super::{Defrag2Config, Defrag2Plan, MAX_DEPTH};
    use crate::defrag::{overlaps, RelocationMove};
    use crate::free::NaiveFreeSpace;
    use crate::manager::{Allocation, LayoutManager};
    use fabric::Window;
    use prcost::PrrOrganization;

    struct Best {
        cost: u64,
        moves: usize,
        admit: Window,
        seq: Vec<RelocationMove>,
    }

    /// Exhaustively enumerate every bounded-depth relocation sequence
    /// over every candidate admit rectangle and return the best plan
    /// under the documented tie-break (cost, then move count, then
    /// rectangle enumeration order, then first sequence in canonical
    /// descent order).
    pub fn plan_exhaustive(
        mgr: &LayoutManager,
        org: &PrrOrganization,
        config: &Defrag2Config,
    ) -> Option<Defrag2Plan> {
        let depth = config.depth.min(MAX_DEPTH) as usize;
        if config.depth == 0 {
            return None;
        }
        let device = mgr.device();
        let mut grid = NaiveFreeSpace::new(device);
        for a in mgr.allocations() {
            grid.allocate(&a.window);
        }
        let free = mgr.free_space();
        let width = org.width() as usize;
        if width == 0 || org.height < 1 || org.height > free.rows() {
            return None;
        }
        let rows = free.rows();
        let mut best: Option<Best> = None;
        for &start in free.candidate_starts(org.clb_cols, org.dsp_cols, org.bram_cols) {
            let start = start as usize;
            for row in 1..=free.rows() - org.height + 1 {
                let admit = Window {
                    start_col: start,
                    width: width as u32,
                    row,
                    height: org.height,
                    columns: device.columns()[start..start + width].to_vec(),
                };
                let movers: Vec<&Allocation> = mgr
                    .allocation_map()
                    .values()
                    .filter(|a| overlaps(&a.window, &admit))
                    .collect();
                if movers.len() > depth {
                    continue;
                }
                let mut positions: Vec<Window> = movers.iter().map(|a| a.window.clone()).collect();
                let mut moved = vec![false; movers.len()];
                let mut seq = Vec::new();
                enumerate(
                    mgr,
                    config,
                    rows,
                    &admit,
                    &movers,
                    &mut grid,
                    &mut positions,
                    &mut moved,
                    &mut seq,
                    0,
                    &mut best,
                );
            }
        }
        best.map(|b| Defrag2Plan {
            total_move_ns: b.cost,
            total_move_bytes: b.seq.iter().map(|m| m.bytes).sum(),
            total_context_bytes: b.seq.iter().map(|m| m.context_bytes).sum(),
            moves: b.seq,
            admit: b.admit,
            nodes: 0,
        })
    }

    /// Recursive exhaustive sequence enumeration for one rectangle:
    /// movers by ascending allocation id, targets leftmost-then-bottom.
    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        mgr: &LayoutManager,
        config: &Defrag2Config,
        rows: u32,
        admit: &Window,
        movers: &[&Allocation],
        grid: &mut NaiveFreeSpace,
        positions: &mut [Window],
        moved: &mut [bool],
        seq: &mut Vec<RelocationMove>,
        cost: u64,
        best: &mut Option<Best>,
    ) {
        if moved.iter().all(|&m| m) {
            let better = best
                .as_ref()
                .is_none_or(|b| (cost, seq.len()) < (b.cost, b.moves));
            if better {
                *best = Some(Best {
                    cost,
                    moves: seq.len(),
                    admit: admit.clone(),
                    seq: seq.clone(),
                });
            }
            return;
        }
        let columns = mgr.device().columns();
        for mi in 0..movers.len() {
            if moved[mi] {
                continue;
            }
            let from = positions[mi].clone();
            let bw = from.columns.len();
            let bh = from.height;
            let mut targets = Vec::new();
            for start in 0..=columns.len().saturating_sub(bw) {
                if columns[start..start + bw] != from.columns[..] {
                    continue;
                }
                for trow in 1..=rows - bh + 1 {
                    let to = Window {
                        start_col: start,
                        width: bw as u32,
                        row: trow,
                        height: bh,
                        columns: from.columns.clone(),
                    };
                    if !grid.is_free(start, bw, trow, bh) || overlaps(&to, admit) {
                        continue;
                    }
                    targets.push(to);
                }
            }
            for to in targets {
                let mc = mgr.move_cost(movers[mi], config.context_aware);
                grid.release(&from);
                grid.allocate(&to);
                positions[mi] = to.clone();
                moved[mi] = true;
                seq.push(RelocationMove {
                    id: movers[mi].id,
                    from: from.clone(),
                    to: to.clone(),
                    bytes: mc.bytes,
                    context_bytes: mc.context_bytes,
                    transfer_ns: mc.transfer_ns,
                });
                enumerate(
                    mgr,
                    config,
                    rows,
                    admit,
                    movers,
                    grid,
                    positions,
                    moved,
                    seq,
                    cost + mc.transfer_ns,
                    best,
                );
                seq.pop();
                moved[mi] = false;
                positions[mi] = from.clone();
                grid.release(&to);
                grid.allocate(&from);
            }
        }
    }
}
