//! `LayoutSim`: the dynamic-placement counterpart of the fixed-PRR
//! event-heap simulator in `multitask::sim`.
//!
//! PRRs are placed and freed at runtime through the [`LayoutManager`]
//! instead of being fixed at construction. The model is a loss system:
//! a task that cannot be admitted at its arrival instant is dropped (no
//! queueing), which makes "defrag admits strictly more tasks" a directly
//! measurable comparison between [`DefragPolicy`] settings on the same
//! workload. Every admission writes a fresh partial bitstream (dynamic
//! placement means the region content never matches), and relocations
//! flow through the same single serialized ICAP as configurations, each
//! charged [`IcapModel::transfer_time`] over the moved module's Eq. 18
//! predicted bytes. A relocated module is stalled for its copy time, so
//! its completion slips by exactly the transfer — accounted with an
//! authoritative completion map and lazy invalidation of stale heap
//! entries, the same trick the fixed-PRR simulator uses for batching.

use crate::defrag::{DefragPolicy, RelocationMove};
use crate::defrag2::Defrag2Config;
use crate::manager::{AllocError, LayoutManager};
use bitstream::IcapModel;
use fabric::{Device, Resources, WindowRequest};
use multitask::Workload;
use prcost::{bitstream_size_bytes, PrrOrganization, PrrRequirements};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayoutConfig {
    /// When to execute defragmentation plans.
    pub policy: DefragPolicy,
    /// ICAP port model pricing configurations and relocations.
    pub icap: IcapModel,
    /// Cap on relocations per single-step defrag plan.
    pub max_moves: u32,
    /// Multi-move search depth. `0` (the default) keeps the single-step
    /// planner on admission failures — the pinned PR-5 behaviour; `> 0`
    /// switches repair to the bounded-depth sequence search
    /// ([`crate::defrag2`]) with preemption-aware move pricing.
    pub depth: u32,
    /// Run the multi-move search *proactively* in ICAP idle windows:
    /// after a fragmentation rejection, the simulator remembers the
    /// rejected organization and repairs the layout for it at the next
    /// arrival whose instant finds the ICAP idle — before the next
    /// admission attempt rather than after the next failure. Requires
    /// `depth > 0`.
    pub proactive: bool,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            policy: DefragPolicy::Never,
            icap: IcapModel::V5_DMA,
            max_moves: 4,
            depth: 0,
            proactive: false,
        }
    }
}

/// One executed relocation, logged with enough detail to regenerate the
/// moved bitstream and re-validate the move through `bitstream::relocate`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelocationEvent {
    /// Task whose admission triggered the move.
    pub task: u32,
    /// Module that was moved.
    pub module: String,
    /// The moved module's organization (determines its bytes).
    pub organization: PrrOrganization,
    /// Source window position.
    pub from_col: u32,
    /// Source bottom row.
    pub from_row: u32,
    /// Target window position.
    pub to_col: u32,
    /// Target bottom row.
    pub to_row: u32,
    /// Total bytes replayed through the ICAP (partial-bitstream write
    /// plus `context_bytes`).
    pub bytes: u64,
    /// Context save + restore bytes included in `bytes` (zero for
    /// single-step plans, which price the write only).
    pub context_bytes: u64,
    /// ICAP transfer time charged, nanoseconds.
    pub transfer_ns: u64,
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutReport {
    /// Tasks admitted (placed and run to completion).
    pub admitted: u32,
    /// Tasks dropped because the device lacks the resources outright.
    pub rejected_capacity: u32,
    /// Tasks dropped because free space was fragmented (and no plan ran).
    pub rejected_fragmentation: u32,
    /// Admissions that required a defrag plan to succeed.
    pub defrag_admissions: u32,
    /// Proactive multi-move defrags executed in ICAP idle windows.
    pub proactive_defrags: u32,
    /// Individual module relocations executed.
    pub relocations: u32,
    /// Total ICAP time spent relocating, nanoseconds.
    pub relocation_ns: u64,
    /// Total bytes replayed by relocations (bitstream + context).
    pub relocated_bytes: u64,
    /// Context save + restore bytes included in `relocated_bytes`.
    pub context_bytes: u64,
    /// Partial-bitstream configurations written (one per admission).
    pub reconfigurations: u32,
    /// Total ICAP time spent configuring admitted tasks, nanoseconds.
    pub reconfig_ns: u64,
    /// Total ICAP busy time (configurations + relocations), nanoseconds.
    pub icap_busy_ns: u64,
    /// Completion time of the last admitted task, nanoseconds.
    pub makespan_ns: u64,
    /// Σ (execution start − arrival) over admitted tasks, nanoseconds.
    pub total_wait_ns: u64,
    /// Σ execution time over admitted tasks, nanoseconds.
    pub total_exec_ns: u64,
    /// Highest fragmentation index sampled at any admission/release.
    pub peak_fragmentation: f64,
    /// Mean fragmentation index over all samples.
    pub mean_fragmentation: f64,
    /// Every executed relocation, in ICAP order.
    pub relocation_log: Vec<RelocationEvent>,
}

/// Fragmentation-index accumulator sampled at every placement change.
#[derive(Default)]
struct FragStats {
    sum: f64,
    samples: u64,
    peak: f64,
}

impl FragStats {
    fn sample(&mut self, mgr: &LayoutManager) {
        let f = mgr.fragmentation_index();
        self.sum += f;
        self.samples += 1;
        if f > self.peak {
            self.peak = f;
        }
    }
}

/// Release every allocation completing at or before `now`, skipping or
/// rescheduling heap entries the relocation stalls made stale.
fn drain_until(
    now: u64,
    mgr: &mut LayoutManager,
    heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
    completion: &mut HashMap<u64, u64>,
    frag: &mut FragStats,
    report: &mut LayoutReport,
) {
    while let Some(&Reverse((t, id))) = heap.peek() {
        if t > now {
            break;
        }
        heap.pop();
        let Some(&auth) = completion.get(&id) else {
            continue; // already drained via a fresher entry
        };
        if auth != t {
            heap.push(Reverse((auth, id))); // stale: reschedule
            continue;
        }
        completion.remove(&id);
        mgr.release(id);
        if t > report.makespan_ns {
            report.makespan_ns = t;
        }
        frag.sample(mgr);
    }
}

/// Serialize already-executed relocations through the ICAP: advance the
/// port's free time, stall each moved (running) module by its copy time,
/// and log the events. `task_id` is the arrival that triggered the plan
/// (for proactive defrag, the task whose arrival instant found the port
/// idle).
#[allow(clippy::too_many_arguments)]
fn account_moves(
    task_id: u32,
    now: u64,
    moves: &[RelocationMove],
    manager: &LayoutManager,
    completion: &mut HashMap<u64, u64>,
    heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
    icap_free_at: &mut u64,
    report: &mut LayoutReport,
) {
    let mut at = (*icap_free_at).max(now);
    for mv in moves {
        at += mv.transfer_ns;
        if let Some(c) = completion.get_mut(&mv.id) {
            *c += mv.transfer_ns;
            heap.push(Reverse((*c, mv.id)));
        }
        let moved = manager.allocation(mv.id).expect("moved allocation");
        report.relocation_log.push(RelocationEvent {
            task: task_id,
            module: moved.module.clone(),
            organization: moved.organization,
            from_col: mv.from.start_col as u32,
            from_row: mv.from.row,
            to_col: mv.to.start_col as u32,
            to_row: mv.to.row,
            bytes: mv.bytes,
            context_bytes: mv.context_bytes,
            transfer_ns: mv.transfer_ns,
        });
    }
    *icap_free_at = at;
    let total_ns: u64 = moves.iter().map(|m| m.transfer_ns).sum();
    report.relocations += moves.len() as u32;
    report.relocation_ns += total_ns;
    report.relocated_bytes += moves.iter().map(|m| m.bytes).sum::<u64>();
    report.context_bytes += moves.iter().map(|m| m.context_bytes).sum::<u64>();
    report.icap_busy_ns += total_ns;
}

/// Eq. 2–6 organizations for `needs` on `device`, cheapest bitstream
/// first (then lowest height), keeping only compositions the device can
/// host at all (one composition-index probe each).
fn candidate_orgs(
    device: &Device,
    geometry: &fabric::DeviceGeometry,
    needs: &Resources,
) -> Vec<PrrOrganization> {
    if needs.clb() == 0 && needs.dsp() == 0 && needs.bram() == 0 {
        return Vec::new();
    }
    let family = device.family();
    let lut_clb = u64::from(family.params().lut_clb);
    let req = PrrRequirements::new(
        family,
        needs.clb() * lut_clb,
        0,
        0,
        needs.dsp(),
        needs.bram(),
    );
    let single_dsp = device.dsp_column_count() == 1;
    let mut orgs: Vec<PrrOrganization> = (1..=device.rows())
        .filter_map(|h| PrrOrganization::for_height(&req, h, single_dsp).ok())
        .filter(|o| {
            geometry
                .leftmost_start(o.clb_cols, o.dsp_cols, o.bram_cols)
                .is_some()
        })
        .collect();
    orgs.sort_by_key(|o| (bitstream_size_bytes(o), o.height));
    orgs
}

/// Run the dynamic-placement loss-system simulation.
pub fn simulate_layout(
    device: &Device,
    workload: &Workload,
    config: &LayoutConfig,
) -> LayoutReport {
    let mut manager = LayoutManager::new(device, config.icap);
    manager.set_max_moves(config.max_moves as usize);

    // Candidate organizations per distinct needs bundle (tasks sharing a
    // module share these).
    let mut org_cache: HashMap<(u64, u64, u64), Vec<PrrOrganization>> = HashMap::new();

    let mut report = LayoutReport {
        admitted: 0,
        rejected_capacity: 0,
        rejected_fragmentation: 0,
        defrag_admissions: 0,
        proactive_defrags: 0,
        relocations: 0,
        relocation_ns: 0,
        relocated_bytes: 0,
        context_bytes: 0,
        reconfigurations: 0,
        reconfig_ns: 0,
        icap_busy_ns: 0,
        makespan_ns: 0,
        total_wait_ns: 0,
        total_exec_ns: 0,
        peak_fragmentation: 0.0,
        mean_fragmentation: 0.0,
        relocation_log: Vec::new(),
    };

    // Authoritative completion time per live allocation; the heap may
    // hold stale entries (relocation stalls push completions later).
    let mut completion: HashMap<u64, u64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut icap_free_at = 0u64;
    let mut frag = FragStats::default();
    let geometry = fabric::DeviceGeometry::new(device);
    let d2cfg = Defrag2Config {
        depth: config.depth,
        ..Defrag2Config::default()
    };
    // Organization of the most recent fragmentation rejection — the goal
    // a proactive defrag repairs the layout for.
    let mut repair_goal: Option<PrrOrganization> = None;

    for task in &workload.tasks {
        let now = task.arrival_ns;
        drain_until(
            now,
            &mut manager,
            &mut heap,
            &mut completion,
            &mut frag,
            &mut report,
        );

        // Proactive defrag: at an arrival whose instant finds the ICAP
        // idle, repair the layout for the last fragmentation-rejected
        // organization *before* this task's admission attempt. The
        // Threshold benefit is the remaining (not total) execution time
        // of the live admitted tasks — only outstanding work can recoup
        // the move cost.
        if config.proactive && config.depth > 0 && config.policy != DefragPolicy::Never {
            if let Some(goal) = repair_goal {
                let req =
                    WindowRequest::new(goal.clb_cols, goal.dsp_cols, goal.bram_cols, goal.height);
                // While a window for the goal class exists there is
                // nothing to repair, but the goal stays armed: it fires
                // when the fabric re-fragments against that class.
                if manager.free_space().find_window(&req).is_none() && icap_free_at <= now {
                    if let Some(plan) = manager.plan_defrag2(&goal, &d2cfg) {
                        let benefit: u64 =
                            completion.values().map(|&c| c.saturating_sub(now)).sum();
                        if config.policy.accepts(plan.total_move_ns, benefit) {
                            manager.execute_defrag2(&plan);
                            account_moves(
                                task.id,
                                now,
                                &plan.moves,
                                &manager,
                                &mut completion,
                                &mut heap,
                                &mut icap_free_at,
                                &mut report,
                            );
                            report.proactive_defrags += 1;
                            frag.sample(&manager);
                            repair_goal = None;
                        }
                    }
                }
            }
        }

        let needs = (task.needs.clb(), task.needs.dsp(), task.needs.bram());
        let orgs = org_cache
            .entry(needs)
            .or_insert_with(|| candidate_orgs(device, &geometry, &task.needs))
            .clone();
        if orgs.is_empty() {
            report.rejected_capacity += 1;
            continue;
        }

        // Direct admission: cheapest-bitstream organization that fits.
        let mut admitted_org = None;
        let mut saw_fragmentation = false;
        for org in &orgs {
            match manager.allocate(&task.module, org) {
                Ok(id) => {
                    admitted_org = Some((id, *org));
                    break;
                }
                Err(AllocError::Fragmentation) => saw_fragmentation = true,
                Err(AllocError::Capacity) => {}
            }
        }

        // Fragmentation-caused failure: try a costed defrag plan —
        // multi-move sequence search when `depth > 0`, the pinned
        // single-step planner otherwise. The Threshold benefit is the
        // incoming task's execution time (none of it has run at its
        // arrival, so remaining equals total). Every executed move
        // serializes through the ICAP and stalls the moved (running)
        // module for its copy time.
        if admitted_org.is_none() && saw_fragmentation && config.policy != DefragPolicy::Never {
            for org in &orgs {
                let moves = if config.depth > 0 {
                    let Some(plan) = manager.plan_defrag2(org, &d2cfg) else {
                        continue;
                    };
                    if !config.policy.accepts(plan.total_move_ns, task.exec_ns) {
                        prcost::Metrics::global().incr_labeled("layout:defrag_rejected_cost");
                        continue;
                    }
                    manager.execute_defrag2(&plan);
                    plan.moves
                } else {
                    let Some(plan) = manager.plan_defrag(org) else {
                        continue;
                    };
                    if !config.policy.accepts(plan.total_move_ns, task.exec_ns) {
                        prcost::Metrics::global().incr_labeled("layout:defrag_rejected_cost");
                        continue;
                    }
                    manager.execute_defrag(&plan);
                    plan.moves
                };
                account_moves(
                    task.id,
                    now,
                    &moves,
                    &manager,
                    &mut completion,
                    &mut heap,
                    &mut icap_free_at,
                    &mut report,
                );
                let id = manager
                    .allocate(&task.module, org)
                    .expect("admit window freed by the plan");
                admitted_org = Some((id, *org));
                report.defrag_admissions += 1;
                // This organization class needed a repair to get in —
                // pre-free a window for its next arrival in idle time.
                repair_goal = Some(*org);
                break;
            }
        }

        match admitted_org {
            Some((id, org)) => {
                frag.sample(&manager);
                let bytes = bitstream_size_bytes(&org);
                let reconfig = config.icap.transfer_time(bytes).as_nanos() as u64;
                let cfg_start = icap_free_at.max(now);
                let cfg_end = cfg_start + reconfig;
                icap_free_at = cfg_end;
                report.reconfigurations += 1;
                report.reconfig_ns += reconfig;
                report.icap_busy_ns += reconfig;
                report.total_wait_ns += cfg_end - now;
                report.total_exec_ns += task.exec_ns;
                report.admitted += 1;
                let done = cfg_end + task.exec_ns;
                completion.insert(id, done);
                heap.push(Reverse((done, id)));
            }
            None => {
                if saw_fragmentation {
                    report.rejected_fragmentation += 1;
                    // Remember the cheapest organization as the proactive
                    // repair goal for the next ICAP idle window.
                    repair_goal = Some(orgs[0]);
                } else {
                    report.rejected_capacity += 1;
                }
            }
        }
    }

    drain_until(
        u64::MAX,
        &mut manager,
        &mut heap,
        &mut completion,
        &mut frag,
        &mut report,
    );
    report.peak_fragmentation = frag.peak;
    if frag.samples > 0 {
        report.mean_fragmentation = frag.sum / frag.samples as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric::{Family, ResourceKind::*};
    use multitask::HwTask;

    fn strip(width: u32) -> Device {
        Device::new("strip", Family::Virtex5, 1, vec![Clb; width as usize]).unwrap()
    }

    /// A task needing exactly `cols` CLB columns on a 1-row Virtex-5
    /// strip (`clb_col` CLBs fill one column-row).
    fn task(id: u32, module: &str, cols: u64, arrival_ns: u64, exec_ns: u64) -> HwTask {
        let clb_col = u64::from(Family::Virtex5.params().clb_col);
        HwTask {
            id,
            module: module.to_string(),
            needs: Resources::new(cols * clb_col, 0, 0),
            arrival_ns,
            exec_ns,
            deadline_ns: None,
        }
    }

    /// The canonical checkerboard: A(3) B(2) C(3) fill an 8-column strip;
    /// A and C finish, leaving 3+3 free cells split by B; D needs 4.
    fn checkerboard() -> (Device, Workload) {
        let device = strip(8);
        let workload = Workload::new(vec![
            task(0, "a", 3, 0, 1_000_000),
            task(1, "b", 2, 1_000, 1_000_000_000),
            task(2, "c", 3, 2_000, 1_000_000),
            task(3, "d", 4, 500_000_000, 1_000_000_000),
        ]);
        (device, workload)
    }

    #[test]
    fn defrag_admits_strictly_more_than_never_on_checkerboard() {
        let (device, workload) = checkerboard();
        let never = simulate_layout(&device, &workload, &LayoutConfig::default());
        assert_eq!(never.admitted, 3);
        assert_eq!(never.rejected_fragmentation, 1);
        assert_eq!(never.relocations, 0);

        let always = simulate_layout(
            &device,
            &workload,
            &LayoutConfig {
                policy: DefragPolicy::Always,
                ..LayoutConfig::default()
            },
        );
        assert_eq!(always.admitted, 4);
        assert_eq!(always.defrag_admissions, 1);
        assert_eq!(always.relocations, 1);
        assert!(always.admitted > never.admitted);
    }

    #[test]
    fn relocation_time_equals_icap_transfer_over_predicted_bytes() {
        let (device, workload) = checkerboard();
        let config = LayoutConfig {
            policy: DefragPolicy::Always,
            ..LayoutConfig::default()
        };
        let r = simulate_layout(&device, &workload, &config);
        assert_eq!(r.relocation_log.len(), 1);
        let total: u64 = r
            .relocation_log
            .iter()
            .map(|ev| {
                assert_eq!(ev.bytes, bitstream_size_bytes(&ev.organization));
                config.icap.transfer_time(ev.bytes).as_nanos() as u64
            })
            .sum();
        assert_eq!(r.relocation_ns, total);
    }

    #[test]
    fn threshold_policy_rejects_unrecouped_moves() {
        let (device, mut workload) = checkerboard();
        // Make D's execution vanishingly short: a strict threshold should
        // refuse to pay the relocation for it.
        workload.tasks[3].exec_ns = 1;
        let workload = Workload::new(workload.tasks);
        let r = simulate_layout(
            &device,
            &workload,
            &LayoutConfig {
                policy: DefragPolicy::Threshold(0.1),
                ..LayoutConfig::default()
            },
        );
        assert_eq!(r.admitted, 3);
        assert_eq!(r.rejected_fragmentation, 1);
        assert_eq!(r.relocations, 0);
    }

    #[test]
    fn relocation_stalls_the_moved_module() {
        let (device, workload) = checkerboard();
        let config = LayoutConfig {
            policy: DefragPolicy::Always,
            ..LayoutConfig::default()
        };
        let with = simulate_layout(&device, &workload, &config);
        let without = simulate_layout(&device, &workload, &LayoutConfig::default());
        // B (the moved module) completes later than in the no-defrag run
        // by exactly the relocation stall, and D's completion defines the
        // makespan in both worlds.
        assert!(with.makespan_ns > without.makespan_ns);
    }
}
